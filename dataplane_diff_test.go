package pos_test

import (
	"context"
	"testing"
	"time"

	"pos"
	"pos/internal/compare"
	"pos/internal/telemetry"
)

// The batched cut-through data plane is a pure performance optimization: its
// contract is byte-identical results against the scalar event-per-hop engine
// it replaced. These differential tests hold it to that contract across the
// paper's workloads — Fig. 3a (bare metal), Fig. 3b (seeded virtual), the
// latency CDF samples, the full Appendix A workflow artifact tree, and the
// sharded parallel sweep.

// diffSweep runs the same measurement points on both topologies and fails on
// the first field that differs.
func diffSweep(t *testing.T, batched, scalar *pos.CaseStudy, sizes []int, rates []float64) {
	t.Helper()
	for _, size := range sizes {
		for _, rate := range rates {
			got, err := batched.DirectRun(size, rate, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scalar.DirectRun(size, rate, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("size=%d rate=%g: batched %+v != scalar %+v", size, rate, got, want)
			}
		}
	}
}

// TestBatchedMatchesScalarFigure3a sweeps the bare-metal router (Fig. 3a:
// the 1.75 Mpps CPU plateau and the 1500 B line-rate ceiling) through both
// engines.
func TestBatchedMatchesScalarFigure3a(t *testing.T) {
	batched, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	scalar, err := pos.NewCaseStudy(pos.BareMetal, pos.WithScalarEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	diffSweep(t, batched, scalar,
		[]int{64, 1500},
		[]float64{10_000, 150_000, 300_000, 1_000_000, 1_800_000, 2_200_000})
}

// TestBatchedMatchesScalarFigure3b sweeps the seeded virtual testbed
// (Fig. 3b): jittered links keep the scalar delivery path, the software
// clock adds timestamp noise, and overload sheds packets — all of it must
// still agree bit for bit.
func TestBatchedMatchesScalarFigure3b(t *testing.T) {
	batched, err := pos.NewCaseStudy(pos.Virtual, pos.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	scalar, err := pos.NewCaseStudy(pos.Virtual, pos.WithSeed(7), pos.WithScalarEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	diffSweep(t, batched, scalar,
		[]int{64, 1500},
		[]float64{20_000, 120_000, 250_000, 400_000})
}

// TestBatchedMatchesScalarLatencySamples compares the raw latency sample
// streams — order and value — behind the paper's latency CDF.
func TestBatchedMatchesScalarLatencySamples(t *testing.T) {
	batched, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	scalar, err := pos.NewCaseStudy(pos.BareMetal, pos.WithScalarEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	got, err := batched.LatencySamples(64, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scalar.LatencySamples(64, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sample counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestBatchedMatchesScalarWorkflowArtifacts executes the Appendix A workflow
// end to end — control plane, measurement scripts, artifact uploads — on
// both engines with a pinned wall clock, then diffs the two experiment
// result trees byte for byte: metadata.json, moongen.log, router.stats,
// every run directory.
func TestBatchedMatchesScalarWorkflowArtifacts(t *testing.T) {
	cfg := pos.SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 300_000},
		RuntimeSec: 1,
	}
	epoch := time.Date(2021, 10, 12, 11, 20, 32, 230471000, time.UTC)
	// Span archiving is off for this test: spans.json records the order in
	// which concurrent per-host goroutines opened spans — host scheduling,
	// not measurement results — so it is legitimately run-to-run volatile.
	telemetry.Default.SetEnabled(false)
	defer telemetry.Default.SetEnabled(true)
	runTree := func(opts ...pos.CaseStudyOption) string {
		topo, err := pos.NewCaseStudy(pos.Virtual, append([]pos.CaseStudyOption{pos.WithSeed(3)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		store, err := pos.NewResultsStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		exp := topo.Experiment(cfg)
		runner := topo.Testbed.Runner()
		runner.Clock = func() time.Time { return epoch }
		if _, err := runner.Run(context.Background(), exp, store); err != nil {
			t.Fatal(err)
		}
		ids, err := store.ListExperiments(exp.User, exp.Name)
		if err != nil || len(ids) != 1 {
			t.Fatalf("experiments = %v, %v", ids, err)
		}
		rec, err := store.OpenExperiment(exp.User, exp.Name, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		return rec.Dir()
	}
	batchedDir := runTree()
	scalarDir := runTree(pos.WithScalarEngine())
	diffs, err := compare.DiffExperiments(batchedDir, scalarDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("artifact differs: %s", d)
	}
}

// TestShardedSweepMatchesSequential runs the same sweep once through the
// parallel sharded executor and once sequentially on identically built
// replicas, asserting point-for-point equality in campaign order.
func TestShardedSweepMatchesSequential(t *testing.T) {
	cfg := pos.SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{20_000, 120_000, 250_000},
		RuntimeSec: 1,
	}
	const n = 3
	build := func() []*pos.CaseStudy {
		topos, err := pos.NewCaseStudyReplicas(pos.Virtual, n, pos.WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return topos
	}
	sharded := build()
	got, err := pos.ShardedSweep(sharded, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range sharded {
		topo.Close()
	}

	// Sequential oracle: each replica runs its round-robin subsequence of
	// the campaign-order point list, exactly as the shard driver does.
	seq := build()
	defer func() {
		for _, topo := range seq {
			topo.Close()
		}
	}()
	var pts [][2]float64
	for _, size := range cfg.Sizes {
		for _, rate := range cfg.RatesPPS {
			pts = append(pts, [2]float64{float64(size), float64(rate)})
		}
	}
	want := make([]pos.RunPoint, len(pts))
	for i, topo := range seq {
		for p := i; p < len(pts); p += n {
			pt, err := topo.DirectRun(int(pts[p][0]), pts[p][1], cfg.RuntimeSec)
			if err != nil {
				t.Fatal(err)
			}
			want[p] = pt
		}
	}
	if len(got) != len(want) {
		t.Fatalf("point counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: sharded %+v != sequential %+v", i, got[i], want[i])
		}
	}
}
