module pos

go 1.22
