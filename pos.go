package pos

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"time"

	"pos/internal/api"
	"pos/internal/calendar"
	"pos/internal/casestudy"
	"pos/internal/compare"
	"pos/internal/core"
	"pos/internal/eval"
	"pos/internal/eventlog"
	"pos/internal/expfile"
	"pos/internal/health"
	"pos/internal/hosttools"
	"pos/internal/image"
	"pos/internal/loadgen"
	"pos/internal/moonparse"
	"pos/internal/ndr"
	"pos/internal/netem"
	"pos/internal/node"
	"pos/internal/packet"
	"pos/internal/pcap"
	"pos/internal/perfmodel"
	"pos/internal/plot"
	"pos/internal/publish"
	"pos/internal/queue"
	"pos/internal/repeat"
	"pos/internal/results"
	"pos/internal/router"
	"pos/internal/sched"
	"pos/internal/sim"
	"pos/internal/telemetry"
	"pos/internal/testbed"
	"pos/internal/timeline"
	"pos/internal/topo"
	"pos/internal/trace"
	"pos/internal/vpos"
)

// Methodology types (internal/core): the experiment model and workflow
// engine — the paper's primary contribution.
type (
	// Experiment is a complete pos experiment: scripts plus variables.
	Experiment = core.Experiment
	// HostSpec binds one experiment role to a node, image, and scripts.
	HostSpec = core.HostSpec
	// Vars is a set of experiment variables.
	Vars = core.Vars
	// LoopVar is one swept parameter.
	LoopVar = core.LoopVar
	// Combination is one concrete loop-variable assignment.
	Combination = core.Combination
	// Runner executes experiments over a set of hosts.
	Runner = core.Runner
	// Host is the runner's control handle for one node.
	Host = core.Host
	// Summary reports a workflow execution.
	Summary = core.Summary
	// RunRecord summarizes one measurement run.
	RunRecord = core.RunRecord
	// ProgressEvent is emitted as the workflow advances.
	ProgressEvent = core.ProgressEvent
)

// CrossProduct expands loop variables into every combination, in
// deterministic order — one measurement run per combination.
func CrossProduct(vars []LoopVar) ([]Combination, error) { return core.CrossProduct(vars) }

// NumRuns reports the cross-product size without materializing it.
func NumRuns(vars []LoopVar) int { return core.NumRuns(vars) }

// MergeVars overlays variable sets with pos precedence (later wins).
func MergeVars(layers ...Vars) Vars { return core.Merge(layers...) }

// Testbed types (internal/testbed and substrates).
type (
	// Testbed is the controller: images, calendar, nodes, host tools.
	Testbed = testbed.Testbed
	// Handle bundles one node with its control-plane endpoints.
	Handle = testbed.Handle
	// BootHook runs on a node after every boot.
	BootHook = testbed.BootHook
	// Node is one emulated experiment host.
	Node = node.Node
	// NodeCommand is an executable deployable onto a node — how
	// experiments attach domain tools (generators, routers, workloads).
	NodeCommand = node.Command
	// NodeWriter is the output sink passed to NodeCommands.
	NodeWriter = node.ErrWriter
	// Image is a versioned live-boot image.
	Image = image.Image
	// Allocation is a confirmed calendar reservation.
	Allocation = calendar.Allocation
	// Calendar is the multi-user allocation calendar.
	Calendar = calendar.Calendar
	// HostService is the controller-side variable/barrier/upload endpoint.
	HostService = hosttools.Service
)

// NewTestbed returns an empty testbed controller.
func NewTestbed() *Testbed { return testbed.New() }

// DebianBusterImage is the pinned live image of the paper's case study.
func DebianBusterImage() Image { return image.DefaultDebianBuster() }

// Results types (internal/results).
type (
	// ResultsStore is the root of the results tree.
	ResultsStore = results.Store
	// ExperimentResults is one experiment's result directory.
	ExperimentResults = results.Experiment
	// RunMeta is the per-run loop-parameter metadata.
	RunMeta = results.RunMeta
)

// ResultsOption configures a results store (Durable, NoDedup, NoIndex).
type ResultsOption = results.Option

// Store options re-exported for facade users.
var (
	// Durable fsyncs files and directories around every publish rename.
	Durable = results.Durable
	// NoDedup disables content-addressed deduplication.
	NoDedup = results.NoDedup
	// NoIndex disables the run manifest; enumerations scan the tree.
	NoIndex = results.NoIndex
)

// NewResultsStore opens (creating if needed) a results tree at dir.
func NewResultsStore(dir string, opts ...ResultsOption) (*ResultsStore, error) {
	return results.NewStore(dir, opts...)
}

// Case-study types (internal/casestudy): the paper's Sec. 5 experiment.
type (
	// CaseStudy is the running two-node LoadGen/DuT rig.
	CaseStudy = casestudy.Topology
	// Flavor selects the platform: BareMetal (pos) or Virtual (vpos).
	Flavor = casestudy.Flavor
	// SweepConfig parameterizes the rate/size sweep.
	SweepConfig = casestudy.SweepConfig
	// RunPoint is one sweep point (one cell of Fig. 3).
	RunPoint = casestudy.RunPoint
	// CaseStudyOption tweaks the topology.
	CaseStudyOption = casestudy.Option
	// ChainConfig parameterizes the partitioned multi-hop router chain.
	ChainConfig = casestudy.ChainConfig
)

// The two platforms of Fig. 3.
const (
	// BareMetal is the hardware testbed (pos).
	BareMetal = casestudy.BareMetal
	// Virtual is the virtual clone (vpos).
	Virtual = casestudy.Virtual
)

// NewCaseStudy builds the paper's two-node topology on the given platform.
func NewCaseStudy(flavor Flavor, opts ...CaseStudyOption) (*CaseStudy, error) {
	return casestudy.New(flavor, opts...)
}

// NewCaseStudyChain builds a multi-hop router chain, partitions its devices
// across shards with the latency-aware topology partitioner, and couples the
// cut links through batched cross-shard mailboxes (Chandy–Misra lookahead
// from the trunk delays). WithScalarEngine collapses the identical chain
// onto one scalar engine — the byte-identical differential-test oracle.
func NewCaseStudyChain(flavor Flavor, cfg ChainConfig, opts ...CaseStudyOption) (*CaseStudy, error) {
	return casestudy.NewChain(flavor, cfg, opts...)
}

// WithSeed pins the vpos jitter seed.
func WithSeed(seed uint64) CaseStudyOption { return casestudy.WithSeed(seed) }

// WithSwitch inserts L2 cross-connects instead of direct wiring (ablation).
func WithSwitch(delay sim.Duration) CaseStudyOption { return casestudy.WithSwitch(delay) }

// WithGenerator selects the load-generator fidelity profile.
func WithGenerator(p GeneratorProfile) CaseStudyOption { return casestudy.WithGenerator(p) }

// WithScalarEngine opts the topology out of the batched cut-through data
// plane and runs the original event-per-hop engine — the differential-test
// oracle. Results are byte-identical either way; scalar is simply slower.
func WithScalarEngine() CaseStudyOption { return casestudy.WithScalarEngine() }

// GeneratorProfile models a traffic-generator implementation's fidelity.
type GeneratorProfile = loadgen.Profile

// MoonGenProfile is the paper's default generator (DPDK + NIC hardware
// timestamps).
func MoonGenProfile() GeneratorProfile { return loadgen.MoonGenProfile() }

// OSNTProfile is the NetFPGA hardware generator (cycle-exact, hardware
// timestamps).
func OSNTProfile() GeneratorProfile { return loadgen.OSNTProfile() }

// IPerfProfile is a sockets-based software generator (bursty, software
// timestamps only).
func IPerfProfile() GeneratorProfile { return loadgen.IPerfProfile() }

// Campaign scheduling (internal/sched): shard one experiment's measurement
// runs across replica testbeds, preserving the sequential sweep's run
// numbering and per-run artifacts.
type (
	// Campaign shards a sweep across replica testbeds.
	Campaign = sched.Campaign
	// CampaignReplica is one replica testbed participating in a campaign.
	CampaignReplica = sched.Replica
	// Session is a prepared experiment execution (nodes booted, setup
	// done); measurement runs are dispatched onto it.
	Session = core.Session
)

// NewCaseStudyReplicas builds n independent case-study topologies — the
// replica testbeds of a parallel campaign (paper's pos/vpos dual setup,
// generalized to n instances).
func NewCaseStudyReplicas(flavor Flavor, n int, opts ...CaseStudyOption) ([]*CaseStudy, error) {
	return casestudy.NewReplicas(flavor, n, opts...)
}

// CaseStudyReplicas renders one sweep as campaign replicas over topologies
// built with NewCaseStudyReplicas.
func CaseStudyReplicas(topos []*CaseStudy, cfg SweepConfig) []CampaignReplica {
	return casestudy.Replicas(topos, cfg)
}

// ShardedSweep executes a sweep's measurement points in parallel across the
// replica topologies, one shard per replica timeline (internal/sim's
// conservative time-window synchronizer). Results come back in campaign
// order and are deterministic regardless of GOMAXPROCS.
func ShardedSweep(topos []*CaseStudy, cfg SweepConfig, window sim.Duration) ([]RunPoint, error) {
	return casestudy.ShardedSweep(topos, cfg, window)
}

// Deterministic fault injection (internal/sim + internal/core): schedule
// exec/boot/upload faults by occurrence index and rehearse the campaign's
// fault-tolerance path (retry, clean-slate re-setup, quarantine) — chaos
// testing without the chaos.
type (
	// FaultPlan schedules deterministic faults for one node.
	FaultPlan = sim.FaultPlan
	// FaultInjector tracks operation counters against a set of plans.
	FaultInjector = sim.FaultInjector
)

// NewFaultInjector builds an injector over per-node fault plans.
func NewFaultInjector(plans map[string]FaultPlan) *FaultInjector {
	return sim.NewFaultInjector(plans)
}

// WithFaults arms a case-study topology with a deterministic fault schedule
// keyed by node name (vriga, vtartu).
func WithFaults(plans map[string]FaultPlan) CaseStudyOption { return casestudy.WithFaults(plans) }

// NDR search (internal/ndr): RFC 2544-style throughput search.
type (
	// NDRConfig bounds a non-drop-rate search.
	NDRConfig = ndr.Config
	// NDRResult is the outcome of a search.
	NDRResult = ndr.Result
	// NDRTrial is one measurement of a search.
	NDRTrial = ndr.Trial
	// NDRMeasurer performs one trial at a rate.
	NDRMeasurer = ndr.Measurer
)

// SearchNDR binary-searches the highest drop-free offered rate.
func SearchNDR(cfg NDRConfig, m NDRMeasurer) (NDRResult, error) { return ndr.Search(cfg, m) }

// Experiment directories (internal/expfile): the published artifact layout.

// LoadExperimentDir reads an experiment directory, optionally remapping
// roles to physical nodes.
func LoadExperimentDir(dir string, bindings map[string]string) (*Experiment, error) {
	return expfile.Load(dir, bindings)
}

// SaveExperimentDir writes an experiment as a publishable directory.
func SaveExperimentDir(exp *Experiment, dir string) error { return expfile.Save(exp, dir) }

// Repeatability verification (internal/repeat).
type (
	// RepeatConfig drives a repeatability check.
	RepeatConfig = repeat.Config
	// RepeatReport quantifies deviation across repeated executions.
	RepeatReport = repeat.Report
)

// VerifyRepeatability executes an experiment several times and quantifies
// the deviation between executions — the ACM "repeatable" property as a
// measured artifact.
func VerifyRepeatability(ctx context.Context, runner *Runner, exp *Experiment, store *ResultsStore, cfg RepeatConfig) (*RepeatReport, error) {
	return repeat.Verify(ctx, runner, exp, store, cfg)
}

// Controller HTTP API (internal/api): the "pos API" experiment tooling uses.
type (
	// APIServer serves the controller API for one testbed.
	APIServer = api.Server
	// APIClient is the typed client for the controller API.
	APIClient = api.Client
	// APIServerOption configures ServeAPI.
	APIServerOption = api.ServerOption
)

// WithAPIDebug mounts net/http/pprof under /debug/pprof/ on the controller
// API — live profiling of a serving controller.
func WithAPIDebug() APIServerOption { return api.WithDebug() }

// ServeAPI starts the controller HTTP API on a loopback port.
func ServeAPI(tb *Testbed, opts ...APIServerOption) (*APIServer, error) {
	return api.Serve(tb, opts...)
}

// NewAPIClient returns a client for a controller API at addr.
func NewAPIClient(addr string) *APIClient { return api.NewClient(addr) }

// Multi-tenant campaign queue (internal/queue): durable submissions admitted
// against the allocation calendar, fair-share across users, journaled so a
// controller restart resumes still-owed work.
type (
	// CampaignQueue is the controller's admission scheduler.
	CampaignQueue = queue.Controller
	// QueueConfig wires a CampaignQueue (journal dir, calendar, launcher).
	QueueConfig = queue.Config
	// QueueSubmission is one tenant's request to run a campaign.
	QueueSubmission = queue.Submission
	// QueueStatus is a submission plus its lifecycle state.
	QueueStatus = queue.Status
	// QueueState is a submission's lifecycle position.
	QueueState = queue.State
	// QueueLaunch runs one admitted campaign.
	QueueLaunch = queue.Launch
	// CampaignRequest is the API payload submitting one campaign.
	CampaignRequest = api.CampaignRequest
	// CampaignView is one campaign as the API reports it.
	CampaignView = api.CampaignView
)

// Queue lifecycle states.
const (
	QueueStateQueued    = queue.StateQueued
	QueueStateRunning   = queue.StateRunning
	QueueStateDone      = queue.StateDone
	QueueStateFailed    = queue.StateFailed
	QueueStateCancelled = queue.StateCancelled
)

// NewCampaignQueue replays the journal under cfg.Dir and starts the
// admission loop; attach the result to an APIServer with SetQueue.
func NewCampaignQueue(cfg QueueConfig) (*CampaignQueue, error) { return queue.Open(cfg) }

// PaperSweep is the Appendix A parameter space: 2 sizes x 30 rates.
func PaperSweep() SweepConfig { return casestudy.PaperSweep() }

// ExtendedSweep widens the rate axis to expose both Fig. 3a plateaus.
func ExtendedSweep() SweepConfig { return casestudy.ExtendedSweep() }

// Evaluation types (internal/eval, internal/moonparse, internal/plot).
type (
	// RunData is one run joined with its metadata and parsed report.
	RunData = eval.RunData
	// Series is a named (x, y) sequence.
	Series = eval.Series
	// Point is one sample of a series.
	Point = eval.Point
	// MoonGenReport is a parsed MoonGen statistics log.
	MoonGenReport = moonparse.Report
	// Figure is a renderable chart (SVG/TeX/CSV).
	Figure = plot.Figure
)

// LoadRuns reads every run of an experiment, parsing the node's MoonGen log.
func LoadRuns(exp *ExperimentResults, nodeName, artifact string) ([]RunData, error) {
	return eval.LoadRuns(exp, nodeName, artifact)
}

// ThroughputSeries aggregates runs into per-group throughput series.
func ThroughputSeries(runs []RunData, groupBy, xVar string, xScale float64) ([]Series, error) {
	return eval.ThroughputSeries(runs, groupBy, xVar, xScale)
}

// AggregateSeries merges repeated measurements into mean ± stddev series;
// the resulting error bars render in every figure format.
func AggregateSeries(repetitions [][]Series) ([]Series, error) {
	return eval.AggregateSeries(repetitions)
}

// ParseMoonGen parses a MoonGen statistics log.
func ParseMoonGen(r io.Reader) (*MoonGenReport, error) { return moonparse.Parse(r) }

// LoadLatency reads latency-CSV artifacts from every run, keyed by loop
// combination.
func LoadLatency(exp *ExperimentResults, nodeName, artifact string) (map[string][]float64, error) {
	return eval.LoadLatency(exp, nodeName, artifact)
}

// StabilityFigure plots per-second received-rate samples over time — the
// Fig. 3b instability, visualized.
func StabilityFigure(title string, perSecond map[string][]float64) *Figure {
	return plot.Stability(title, perSecond)
}

// ThroughputFigure builds the Fig. 3-style line plot.
func ThroughputFigure(title string, series []Series) *Figure { return plot.Throughput(title, series) }

// LatencyCDFFigure builds a latency CDF from nanosecond samples.
func LatencyCDFFigure(title string, samplesNs map[string][]float64) *Figure {
	return plot.LatencyCDF(title, samplesNs)
}

// LatencyHDRFigure builds an HDR percentile plot.
func LatencyHDRFigure(title string, samplesNs map[string][]float64) *Figure {
	return plot.LatencyHDR(title, samplesNs)
}

// LatencyViolinFigure compares latency distributions as violins.
func LatencyViolinFigure(title string, samplesNs map[string][]float64) *Figure {
	return plot.LatencyViolin(title, samplesNs)
}

// LatencyHistogramFigure builds a latency histogram.
func LatencyHistogramFigure(title string, samplesNs []float64, bins int) *Figure {
	return plot.LatencyHistogram(title, samplesNs, bins)
}

// ExportFigure renders a figure to "<base>.{svg,tex,csv}" content pairs.
func ExportFigure(base string, f *Figure) map[string][]byte { return plot.ExportNamed(base, f) }

// Publication (internal/publish).
type (
	// PublishManifest describes a released bundle.
	PublishManifest = publish.Manifest
)

// Release publishes an experiment: generates its website and writes the
// artifact archive to destPath.
func Release(exp *ExperimentResults, user, name, destPath string) (PublishManifest, error) {
	return publish.Release(exp, user, name, destPath)
}

// WriteComparisonTable regenerates Table 1 of the paper.
func WriteComparisonTable(w io.Writer) error { return compare.Write(w) }

// DiffExperiments walks two experiment result directories and reports every
// path whose presence or bytes differ — the reproducibility check behind the
// partitioned-vs-scalar data-plane contract. An empty slice means the trees
// are byte-identical.
func DiffExperiments(dirA, dirB string) ([]string, error) { return compare.DiffExperiments(dirA, dirB) }

// Traffic capture types (internal/pcap, internal/packet): libpcap files and
// byte-accurate UDP/IPv4/Ethernet frame construction for replay workloads.
type (
	// PcapPacket is one captured record.
	PcapPacket = pcap.Packet
	// PcapWriter writes libpcap capture files.
	PcapWriter = pcap.Writer
	// PcapReader reads libpcap capture files.
	PcapReader = pcap.Reader
	// UDPTemplate describes a synthetic UDP frame.
	UDPTemplate = packet.UDPTemplate
	// MAC is a 48-bit Ethernet address.
	MAC = packet.MAC
	// IPv4Addr is a 32-bit IPv4 address.
	IPv4Addr = packet.IPv4Addr
)

// NewPcapWriter returns a nanosecond-resolution pcap writer.
func NewPcapWriter(w io.Writer, snapLen uint32) *PcapWriter { return pcap.NewWriter(w, snapLen) }

// NewPcapReader opens a pcap stream.
func NewPcapReader(r io.Reader) (*PcapReader, error) { return pcap.NewReader(r) }

// LineRatePPS returns the packet-rate ceiling of a link for a frame size.
func LineRatePPS(linkBitsPerSec float64, frameLen int) float64 {
	return packet.LineRatePPS(linkBitsPerSec, frameLen)
}

// Virtual-testbed service (internal/vpos): disposable vpos instances over
// HTTP — the paper's virtualtestbed.net.in.tum.de.
type (
	// VposManager owns the service's instances.
	VposManager = vpos.Manager
	// VposServer is the HTTP endpoint.
	VposServer = vpos.Server
	// VposClient drives a remote service.
	VposClient = vpos.Client
	// VposInstance is the client view of an instance.
	VposInstance = vpos.InstanceView
	// VposRunInfo summarizes an instance's last experiment execution.
	VposRunInfo = vpos.RunInfo
)

// NewVposManager creates a virtual-testbed manager rooted at dir.
func NewVposManager(dir string) (*VposManager, error) { return vpos.NewManager(dir) }

// ServeVpos exposes a manager over HTTP on a loopback port.
func ServeVpos(m *VposManager) (*VposServer, error) { return vpos.Serve(m) }

// NewVposClient returns a client for the service at addr.
func NewVposClient(addr string) *VposClient { return vpos.NewClient(addr) }

// Declarative topologies (internal/topo): virtual-testbed wiring as an
// artifact.
type (
	// TopologySpec is a parsed topology description.
	TopologySpec = topo.Spec
	// TopologyNetwork is an instantiated topology.
	TopologyNetwork = topo.Network
)

// ParseTopology reads a topology description (devices + direct links).
func ParseTopology(data []byte) (*TopologySpec, error) { return topo.Parse(data) }

// Experiment tracing (internal/trace).
type (
	// TraceRecorder records workflow events as a publishable artifact.
	TraceRecorder = trace.Recorder
	// TraceEvent is one timestamped workflow event.
	TraceEvent = trace.Event
)

// NewTraceRecorder returns an empty execution-trace recorder; plug its
// Observe method into Runner.Progress or Campaign.Progress and Archive it
// into the results.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Live observability (internal/eventlog): the structured event journal and
// in-process broker behind GET /api/v1/events and `posctl watch`. Runners
// and campaigns publish typed events into a pipeline; the pipeline appends
// them to a crash-safe JSONL journal and fans them out to subscribers whose
// ring buffers never block the publisher.
type (
	// EventPipeline stamps, journals, and broadcasts experiment events.
	EventPipeline = eventlog.Pipeline
	// ExperimentEvent is one stamped observability event.
	ExperimentEvent = eventlog.Event
	// EventSubscription is a live, non-blocking event feed.
	EventSubscription = eventlog.Subscription
	// EventJournal is the append-only on-disk event log.
	EventJournal = eventlog.Journal
	// EventStreamOptions selects what an APIClient event stream receives.
	EventStreamOptions = api.EventStreamOptions
)

// NewEventPipeline returns an empty pipeline; assign it to Runner.Events or
// Campaign.Events and hand it to APIServer.SetEvents to stream it.
func NewEventPipeline() *EventPipeline { return eventlog.NewPipeline() }

// OpenEventJournal opens (or creates) an event journal rooted at dir,
// recovering from a torn final write.
func OpenEventJournal(dir string) (*EventJournal, error) {
	return eventlog.OpenJournal(dir, 0)
}

// ReplayEvents reads every event a finished experiment journaled under
// dir (the experiment's events/ directory), in sequence order.
func ReplayEvents(dir string) ([]ExperimentEvent, error) { return eventlog.Replay(dir) }

// NewEventLogger returns a slog.Logger whose records become events on the
// pipeline — the structured-logging spine of the toolchain.
func NewEventLogger(p *EventPipeline, level slog.Leveler) *slog.Logger {
	return eventlog.NewLogger(p, level)
}

// WithEventLogger carries a structured logger in the context; library code
// retrieves it with eventlog.Logger and logs into the experiment's event
// stream.
func WithEventLogger(ctx context.Context, lg *slog.Logger) context.Context {
	return eventlog.WithLogger(ctx, lg)
}

// ErrStopEventStream, returned from an APIClient.StreamEvents callback,
// ends the stream cleanly.
var ErrStopEventStream = api.ErrStopStream

// Telemetry (internal/telemetry): the process-wide metrics registry and the
// hierarchical span trees archived as spans.json.
type (
	// TelemetrySnapshot is a point-in-time JSON view of every registered
	// metric — what GET /api/v1/metrics serves.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryMetricSnapshot is one metric family in a TelemetrySnapshot.
	TelemetryMetricSnapshot = telemetry.MetricSnapshot
	// SpanRecord is one archived span of an execution's span tree.
	SpanRecord = telemetry.SpanRecord
)

// MetricsSnapshot captures the process's metrics registry as a structured
// snapshot.
func MetricsSnapshot() TelemetrySnapshot { return telemetry.Default.Snapshot() }

// WriteMetrics writes the process's metrics in Prometheus text exposition
// format — what GET /metrics serves.
func WriteMetrics(w io.Writer) error { return telemetry.Default.WritePrometheus(w) }

// SetTelemetryEnabled toggles all metric recording and span creation in the
// process. Enabled by default; disabling makes instrumentation free.
func SetTelemetryEnabled(on bool) { telemetry.Default.SetEnabled(on) }

// ParseSpans reads a spans.json artifact back into span records.
func ParseSpans(data []byte) ([]SpanRecord, error) { return telemetry.ParseSpans(data) }

// Health layer (internal/health + telemetry runtime sampling): operator-side
// supervision — per-run host-condition attribution, a watchdog over liveness
// probes, and a flight recorder for post-mortems without a live debugger.
type (
	// HealthWatchdog periodically runs liveness probes and emits typed
	// events, metrics, and flight records on trips.
	HealthWatchdog = health.Watchdog
	// HealthProbe is one pluggable watchdog check.
	HealthProbe = health.Probe
	// HealthProbeState is one probe's current standing (GET /api/v1/health).
	HealthProbeState = health.ProbeState
	// FlightRecorder keeps a warm ring of recent events for incident dumps.
	FlightRecorder = health.Recorder
	// FlightRecord is one captured incident: trigger, recent events, metrics
	// snapshot, goroutine stacks — the flightrec.json payload.
	FlightRecord = health.FlightRecord
	// RuntimeSampler polls the Go runtime into the metrics registry.
	RuntimeSampler = telemetry.RuntimeSampler
	// RuntimeDelta is one run's host-condition record (resources.json).
	RuntimeDelta = telemetry.RuntimeDelta
	// APIHealthStatus is the GET /api/v1/health response shape.
	APIHealthStatus = api.HealthStatus
)

// NewWatchdog returns a stopped watchdog checking every interval once
// started. Assign it to Campaign.Watchdog to supervise campaign progress.
func NewWatchdog(interval time.Duration) *HealthWatchdog { return health.NewWatchdog(interval) }

// NewFlightRecorder returns a recorder keeping the last capacity events
// (a default-sized ring when capacity <= 0), snapshotting the process
// metrics registry at capture time.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return health.NewRecorder(capacity, telemetry.Default)
}

// NewRuntimeSampler returns a sampler polling the Go runtime into the
// process metrics registry every interval once started.
func NewRuntimeSampler(interval time.Duration) *RuntimeSampler {
	return telemetry.NewRuntimeSampler(telemetry.Default, interval)
}

// CampaignProgressProbe trips when the process's completed-run counter sits
// still past deadline while campaign runs are in flight.
func CampaignProgressProbe(deadline time.Duration) HealthProbe {
	return health.CampaignProgress(telemetry.Default, deadline)
}

// ShardProgressProbe trips when shard synchronization rounds stall past
// deadline while shard groups are running.
func ShardProgressProbe(deadline time.Duration) HealthProbe {
	return health.ShardProgress(telemetry.Default, deadline)
}

// QueueStarvationProbe trips when more than passes starved admission passes
// accumulate within one window.
func QueueStarvationProbe(passes float64, window time.Duration) HealthProbe {
	return health.QueueStarvation(telemetry.Default, passes, window)
}

// EventDropProbe trips when the event broker's drop counter grows by more
// than limit within one window.
func EventDropProbe(limit float64, window time.Duration) HealthProbe {
	return health.EventDrops(telemetry.Default, limit, window)
}

// DecodeFlightRecord parses a flightrec.json payload.
func DecodeFlightRecord(data []byte) (FlightRecord, error) {
	return health.DecodeFlightRecord(data)
}

// ReadRuntimeDelta parses a run's resources.json payload.
func ReadRuntimeDelta(data []byte) (RuntimeDelta, error) {
	var d RuntimeDelta
	err := json.Unmarshal(data, &d)
	return d, err
}

// ChromeTrace converts span records to Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Stitched multi-process records render one
// lane (pid) per process.
func ChromeTrace(recs []SpanRecord) ([]byte, error) { return telemetry.ChromeTrace(recs) }

// Causal tracing and the campaign timeline (internal/telemetry +
// internal/timeline): spans carry W3C-traceparent-compatible identities that
// survive the HTTP API and queue boundaries; the timeline assembler stitches
// the archived spans, journal, and run artifacts into a per-campaign
// critical-path profile — the machinery behind `posctl analyze`.
type (
	// SpanTrace is one process's hierarchical span tree (spans.json).
	SpanTrace = telemetry.Trace
	// TraceSpan is one timed region of a SpanTrace; nil-safe methods.
	TraceSpan = telemetry.Span
	// CampaignTimeline is the assembled per-campaign timeline.json: critical
	// path, per-phase attribution, run/replica statistics, stragglers.
	CampaignTimeline = timeline.Timeline
	// TimelineSummary is the critical path + phase attribution core of a
	// CampaignTimeline (also embedded in flight records).
	TimelineSummary = timeline.Summary
	// TimelineDrift is the phase-by-phase comparison of a campaign against
	// a baseline run of the same experiment.
	TimelineDrift = timeline.Drift
)

// NewSpanTrace starts a trace with a fresh trace ID; the root span carries
// name. Install it on a context with TraceContext to instrument work.
func NewSpanTrace(name string) *SpanTrace { return telemetry.NewTrace(name) }

// TraceContext installs the trace's root span as the context's current span:
// client API calls made from the returned context carry the W3C traceparent
// header, and eventlog records are stamped with trace_id/span_id.
func TraceContext(ctx context.Context, tr *SpanTrace) context.Context {
	return telemetry.ContextWithTrace(ctx, tr)
}

// FormatTraceParent renders a trace/span ID pair as a W3C traceparent value.
func FormatTraceParent(traceID, spanID string) string {
	return telemetry.FormatTraceParent(traceID, spanID)
}

// ParseTraceParent decodes a W3C traceparent value; malformed or all-zero
// input yields ok == false (callers fall back to a fresh root, never error).
func ParseTraceParent(s string) (traceID, spanID string, ok bool) {
	return telemetry.ParseTraceParent(s)
}

// WithAPITrace records one server-side span per instrumented API request on
// tr (pass to ServeAPI). Incoming traceparent headers are propagated to
// handlers regardless of this option.
func WithAPITrace(tr *SpanTrace) APIServerOption { return api.WithTrace(tr) }

// AssembleTimeline merges an experiment directory's archives — every
// spans*.json, the event journal, queue admission records, run metadata and
// attempts — into a campaign timeline.
func AssembleTimeline(dir string) (*CampaignTimeline, error) { return timeline.Assemble(dir) }

// WriteTimeline archives tl as timeline.json in dir.
func WriteTimeline(dir string, tl *CampaignTimeline) error { return timeline.Write(dir, tl) }

// ReadSpanArchives loads and stitches every span archive (spans*.json) in an
// experiment directory: the controller's spans.json plus any lanes dropped by
// other processes, joined by their hex parent linkage.
func ReadSpanArchives(dir string) ([]SpanRecord, error) { return timeline.ReadSpans(dir) }

// SummarizeSpans computes critical path and per-phase attribution from span
// records alone (what flight records embed mid-campaign).
func SummarizeSpans(recs []SpanRecord) *TimelineSummary { return timeline.Summarize(recs) }

// CompareTimelines diffs cur against base phase by phase; threshold <= 0
// uses the default (25% growth). Drift.Flagged reports whether any phase —
// or total wall clock — grew past it.
func CompareTimelines(base, cur *CampaignTimeline, threshold float64) *TimelineDrift {
	return timeline.Compare(base, cur, threshold)
}

// CheckArtifact verifies an experiment's result tree is complete enough to
// publish (the mechanical part of artifact evaluation).
func CheckArtifact(exp *ExperimentResults) (publish.CheckReport, error) { return publish.Check(exp) }

// ArtifactCheckReport is the outcome of CheckArtifact.
type ArtifactCheckReport = publish.CheckReport

// Data-plane types, exposed for users building their own topologies.
type (
	// Engine is the deterministic discrete-event clock.
	Engine = sim.Engine
	// LoadGenerator is the MoonGen-style traffic source.
	LoadGenerator = loadgen.Generator
	// LinuxRouter is the emulated software-router DuT.
	LinuxRouter = router.Router
	// LinkConfig describes a physical wire.
	LinkConfig = netem.LinkConfig
	// PerfModel yields a DuT forwarding capacity.
	PerfModel = perfmodel.Model
)

// NewEngine returns a discrete-event engine at virtual time zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewLoadGenerator returns a dual-port traffic source on the engine.
func NewLoadGenerator(e *Engine, name string, hardwareTimestamps bool) *LoadGenerator {
	return loadgen.New(e, name, hardwareTimestamps)
}

// BareMetalModel is the calibrated pos DuT model (~1.75 Mpps).
func BareMetalModel() PerfModel { return perfmodel.NewBareMetal() }

// VirtualModel is the calibrated vpos DuT model (~0.04 Mpps drop-free).
func VirtualModel(seed uint64) PerfModel { return perfmodel.NewVirtual(seed) }
