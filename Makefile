# Tier-1 verification (the seed contract): build + full test suite.
.PHONY: verify
verify:
	go build ./...
	go test ./...

# Concurrency tier: static checks plus the full suite under the race
# detector. The scheduler tests deliberately hold >=2 runs in flight, so
# this exercises the campaign/scope synchronization paths for real.
.PHONY: race
race:
	go vet ./...
	go test -race ./...

# Performance tier: the speedup benchmarks added with the campaign
# scheduler (sequential vs. 2-replica sweep, regexp vs. scanner parsing).
.PHONY: bench
bench:
	go test -run NONE -bench 'BenchmarkParallelSweep|BenchmarkMoonparse' -benchtime 3x .

# Result-pipeline tier: store ingest (indexed/deduplicated vs. legacy
# scan store), warm-cache evaluation, and the end-to-end appendix
# workflow. Headline speedups are recorded next to the code in
# BENCH_results.json via BENCH_RESULTS_OUT.
.PHONY: bench-results
bench-results:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_results.json \
	go test -run NONE -bench 'BenchmarkStoreIngest|BenchmarkEvalWarmCache|BenchmarkAppendixWorkflow' \
		-benchmem -benchtime 5x .

.PHONY: all
all: verify race
