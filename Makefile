# Tier-1 verification (the seed contract): build + full test suite.
.PHONY: verify
verify:
	go build ./...
	go test ./...

# Concurrency tier: static checks plus the full suite under the race
# detector. The scheduler tests deliberately hold >=2 runs in flight, so
# this exercises the campaign/scope synchronization paths for real.
.PHONY: race
race:
	go vet ./...
	go test -race ./...

# Fault-tolerance tier: the retry/quarantine/fault-injection paths under
# the race detector — workers re-enqueueing failed runs, quarantine
# draining, and the fault-injection hooks all synchronize across
# goroutines, so -race is the honest way to run them. internal/sim covers
# the sharded-timeline synchronizer (including the cross-shard mailbox
# hammer), internal/workpool the shared work-stealing pool, and the
# root-package differential tests hold both the parallel data plane and
# the partitioned cross-shard chain to byte-identical results while
# racing.
.PHONY: verify-race
verify-race:
	go build ./...
	go test -race ./internal/sched/ ./internal/core/ ./internal/hosttools/ \
		./internal/casestudy/ ./internal/vpos/ ./internal/api/ \
		./internal/eventlog/ ./internal/sim/ ./internal/workpool/ \
		./internal/partition/ ./internal/queue/ ./internal/health/
	go test -race -run 'TestBatchedMatchesScalar|TestShardedSweepMatchesSequential|TestCrossShard|TestHealth' .

# Performance tier: the speedup benchmarks added with the campaign
# scheduler (sequential vs. 2-replica sweep, regexp vs. scanner parsing).
.PHONY: bench
bench:
	go test -run NONE -bench 'BenchmarkParallelSweep|BenchmarkMoonparse' -benchtime 3x .

# Result-pipeline tier: store ingest (indexed/deduplicated vs. legacy
# scan store), warm-cache evaluation, and the end-to-end appendix
# workflow. Headline speedups are recorded next to the code in
# BENCH_results.json via BENCH_RESULTS_OUT.
.PHONY: bench-results
bench-results:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_results.json \
	go test -run NONE -bench 'BenchmarkStoreIngest|BenchmarkEvalWarmCache|BenchmarkAppendixWorkflow' \
		-benchmem -benchtime 5x .

# Data-plane tier: the batched zero-alloc engine against the scalar
# event-per-hop oracle — one plateau-rate run (allocs/op, allocs/train)
# and the sharded sim-bound sweep (speedup_x, one shard per core).
# Headline numbers are recorded next to the code in BENCH_dataplane.json.
.PHONY: bench-dataplane
bench-dataplane:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_dataplane.json \
	go test -run NONE -bench 'BenchmarkDataPlane$$|BenchmarkDataPlaneSweep' \
		-benchmem -benchtime 5x .

# Cross-shard tier: the 8-router/4-cluster chain partitioned one cluster
# per shard against its single-engine scalar oracle — speedup_x, the
# batched-vs-sharded overhead ratio, and allocs/train across the lookahead
# mailboxes. Headline numbers are recorded next to the code in
# BENCH_xshard.json.
.PHONY: bench-xshard
bench-xshard:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_xshard.json \
	go test -run NONE -bench BenchmarkCrossShardTopology \
		-benchmem -benchtime 20x .

# Queue tier: the multi-tenant campaign scheduler end to end — four
# tenants flooding a four-node calendar with instant-launch campaigns, so
# the measured wall clock is pure queue machinery (journal appends,
# admission passes, allocation grant/release). Throughput and mean
# submit→admit latency are recorded in BENCH_queue.json.
.PHONY: bench-queue
bench-queue:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_queue.json \
	go test -run NONE -bench BenchmarkQueueAdmission -benchtime 200x \
		./internal/queue/

# Retry-overhead tier: fault-free vs. faulty campaign wall clock. The
# overhead ratio is recorded next to the code in BENCH_sched.json.
.PHONY: bench-sched-faults
bench-sched-faults:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_sched.json \
	go test -run NONE -bench BenchmarkSchedFaultRetry -benchtime 3x .

# Telemetry-overhead tier: the instrumented 60-run vpos sweep against the
# same sweep with the registry disabled. The median ratio is recorded in
# BENCH_telemetry.json; the budget for always-on instrumentation is 5%.
.PHONY: bench-telemetry
bench-telemetry:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_telemetry.json \
	go test -run NONE -bench BenchmarkTelemetryOverhead -benchtime 3x .

# Eventlog-overhead tier: the 60-run vpos sweep with the full event
# pipeline armed (publish + JSONL journal + one live subscriber) against
# the same sweep bare. The median ratio is recorded in BENCH_eventlog.json;
# the budget is 5% — watching an experiment must not change the experiment.
.PHONY: bench-eventlog
bench-eventlog:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_eventlog.json \
	go test -run NONE -bench BenchmarkEventlogOverhead -benchtime 3x .

# Health-overhead tier: the 60-run vpos sweep with the full health stack
# armed (runtime sampler, watchdog with the four standard probes) against
# the same instrumented sweep bare. The median ratio is recorded in
# BENCH_health.json; the budget is 5% — a supervisor that distorts the
# experiment it supervises is worse than none.
.PHONY: bench-health
bench-health:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_health.json \
	go test -run NONE -bench BenchmarkHealthOverhead -benchtime 3x .

# Trace tier: the causal-tracing layer — W3C identity generation per span
# and the analyze-time critical-path stitching — priced against the 60-run
# vpos sweep's wall clock. Recorded in BENCH_trace.json; the budget is 5%
# (the bench fails past 1.05x).
.PHONY: bench-trace
bench-trace:
	BENCH_RESULTS_OUT=$(CURDIR)/BENCH_trace.json \
	go test -run NONE -bench BenchmarkTraceOverhead -benchtime 3x .

# Static hygiene: vet, a clean gofmt tree, no raw log/print logging in
# library code — internal/ packages log through the structured eventlog
# spine (log/slog into the event pipeline), never stdout/stderr directly —
# and no runtime introspection outside internal/telemetry, so resource
# attribution has exactly one owner.
.PHONY: lint
lint:
	go vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@out=$$(grep -rnE 'log\.(Print|Fatal|Panic)|fmt\.Print' internal \
		--include='*.go' | grep -v _test.go; true); \
	if [ -n "$$out" ]; then \
		echo "raw logging in internal/ (use the eventlog slog spine):"; \
		echo "$$out"; exit 1; fi
	@out=$$(grep -rnE 'runtime\.ReadMemStats|"runtime/metrics"' internal cmd \
		--include='*.go' | grep -v '^internal/telemetry/'; true); \
	if [ -n "$$out" ]; then \
		echo "runtime introspection outside internal/telemetry:"; \
		echo "$$out"; exit 1; fi
	@out=$$(grep -rnE 'mux\.HandleFunc\("' internal/api --include='*.go' \
		| grep -v _test.go \
		| grep -vE '"GET /metrics|"GET /api/v1/metrics|"GET /api/v1/events|"GET /debug/pprof'; true); \
	if [ -n "$$out" ]; then \
		echo "internal/api endpoint registered without a request span (route it through handle(), which wraps s.instrument; streaming/scrape endpoints join the allowlist in the Makefile):"; \
		echo "$$out"; exit 1; fi
	@echo "lint clean"

.PHONY: all
all: verify race
