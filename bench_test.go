package pos_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Each figure bench executes the full sweep that regenerates the
// figure's data and reports the headline numbers (plateaus, drop-free
// limits) as custom metrics, so `go test -bench` output doubles as the
// reproduction record used by EXPERIMENTS.md.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"pos"

	"pos/internal/casestudy"
	"pos/internal/compare"
	"pos/internal/core"
	"pos/internal/eval"
	"pos/internal/eventlog"
	"pos/internal/hosttools"
	"pos/internal/loadgen"
	"pos/internal/moonparse"
	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/perfmodel"
	"pos/internal/results"
	"pos/internal/router"
	"pos/internal/sched"
	"pos/internal/sim"
	"pos/internal/telemetry"
)

// recordBenchResults appends one benchmark's headline metrics to the JSON
// file named by BENCH_RESULTS_OUT (read-merge-write; benchmarks run
// sequentially in one process). `make bench-results` sets the variable to
// BENCH_results.json so the recorded speedups live next to the code that
// earned them.
func recordBenchResults(b *testing.B, bench string, metrics map[string]float64) {
	b.Helper()
	path := os.Getenv("BENCH_RESULTS_OUT")
	if path == "" {
		return
	}
	doc := make(map[string]map[string]float64)
	if data, err := os.ReadFile(path); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc[bench] = metrics
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure3aBareMetal regenerates Fig. 3a: bare-metal Linux-router
// throughput over the extended rate axis for 64 B and 1500 B frames.
// Reported metrics: the measured plateaus in Mpps (paper: ~1.75 and ~0.80).
func BenchmarkFigure3aBareMetal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := casestudy.New(casestudy.BareMetal)
		if err != nil {
			b.Fatal(err)
		}
		sweep := casestudy.ExtendedSweep()
		max := map[int]float64{}
		for _, rate := range sweep.RatesPPS {
			for _, size := range sweep.Sizes {
				p, err := topo.DirectRun(size, float64(rate), 1)
				if err != nil {
					b.Fatal(err)
				}
				if p.RxMpps > max[size] {
					max[size] = p.RxMpps
				}
			}
		}
		topo.Close()
		b.ReportMetric(max[64], "plateau64B_Mpps")
		b.ReportMetric(max[1500], "plateau1500B_Mpps")
		if max[64] < 1.70 || max[64] > 1.82 {
			b.Fatalf("64B plateau = %.3f Mpps, want ~1.75", max[64])
		}
		if max[1500] < 0.78 || max[1500] > 0.84 {
			b.Fatalf("1500B plateau = %.3f Mpps, want ~0.81", max[1500])
		}
	}
}

// BenchmarkFigure3bVirtual regenerates Fig. 3b: vpos throughput over the
// paper's 10k–300k pps axis. Reported metrics: the highest drop-free rate
// (paper: ~0.04 Mpps) and the overloaded plateaus per size.
func BenchmarkFigure3bVirtual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		sweep := casestudy.PaperSweep()
		dropFree := 0.0
		max := map[int]float64{}
		for _, rate := range sweep.RatesPPS {
			lossFree := true
			for _, size := range sweep.Sizes {
				p, err := topo.DirectRun(size, float64(rate), 1)
				if err != nil {
					b.Fatal(err)
				}
				if p.LossRatio > 0.001 {
					lossFree = false
				}
				if p.RxMpps > max[size] {
					max[size] = p.RxMpps
				}
			}
			if lossFree {
				dropFree = float64(rate) / 1e6
			}
		}
		topo.Close()
		b.ReportMetric(dropFree, "dropfree_Mpps")
		b.ReportMetric(max[64], "max64B_Mpps")
		b.ReportMetric(max[1500], "max1500B_Mpps")
		if dropFree < 0.03 || dropFree > 0.06 {
			b.Fatalf("drop-free limit = %.3f Mpps, want ~0.04", dropFree)
		}
		if max[64] > 0.09 {
			b.Fatalf("VM 64B max = %.3f Mpps, implausibly high", max[64])
		}
	}
}

// BenchmarkTable1Comparison regenerates Table 1 from the feature models.
func BenchmarkTable1Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := compare.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
		rows := compare.Table()
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAppendixWorkflow runs the full Appendix A experiment (60
// measurement runs through the complete TCP control plane) once per
// iteration — the end-to-end cost of the paper's 3-hour campaign in
// emulation.
func BenchmarkAppendixWorkflow(b *testing.B) {
	b.ReportAllocs()
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		topo, err := casestudy.New(casestudy.BareMetal)
		if err != nil {
			b.Fatal(err)
		}
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sweep := casestudy.PaperSweep()
		sweep.RuntimeSec = 1
		start := time.Now()
		sum, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(sweep), store)
		wall += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if sum.TotalRuns != 60 || sum.FailedRuns != 0 {
			b.Fatalf("summary = %+v", sum)
		}
		topo.Close()
		b.ReportMetric(float64(sum.TotalRuns), "runs")
	}
	wallMs := wall.Seconds() * 1000 / float64(b.N)
	b.ReportMetric(wallMs, "wall_ms/op")
	recordBenchResults(b, "AppendixWorkflow", map[string]float64{"wall_ms_per_campaign": wallMs, "runs": 60})
}

// ingestCampaign writes a 60-run campaign the way the runner does: per-run
// MoonGen log and latency CSV (identical across runs at the same size — the
// dedup case), a per-run unique capture, and run metadata; then the
// enumeration passes every consumer performs (results listing, eval,
// publish, check): Runs, ReadRunMeta, RunArtifacts, ArtifactPaths.
func ingestCampaign(b *testing.B, s *results.Store, moongenLog, latCSV, unique []byte) {
	b.Helper()
	e, err := s.CreateExperiment("user", "ingest", time.Now())
	if err != nil {
		b.Fatal(err)
	}
	if err := e.AddExperimentArtifact("experiment/measurement.sh", moongenLog[:200]); err != nil {
		b.Fatal(err)
	}
	for run := 0; run < 60; run++ {
		if err := e.AddRunArtifact(run, "loadgen", "moongen.log", moongenLog); err != nil {
			b.Fatal(err)
		}
		if err := e.AddRunArtifact(run, "loadgen", "latency.csv", latCSV); err != nil {
			b.Fatal(err)
		}
		if err := e.AddRunArtifact(run, "dut", "capture.out", append(unique, byte(run))); err != nil {
			b.Fatal(err)
		}
		if err := e.WriteRunMeta(results.RunMeta{Run: run, LoopVars: map[string]string{
			"pkt_sz": fmt.Sprint(64 + run%2*1436), "pkt_rate": fmt.Sprint((run/2 + 1) * 10_000),
		}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		b.Fatal(err)
	}
	// The post-campaign pipeline enumerates the tree once per consumer:
	// artifact check, evaluation, publication, results inspection.
	for pass := 0; pass < 4; pass++ {
		runs, err := e.Runs()
		if err != nil || len(runs) != 60 {
			b.Fatalf("runs = %d, %v", len(runs), err)
		}
		for _, run := range runs {
			if _, err := e.ReadRunMeta(run); err != nil {
				b.Fatal(err)
			}
			arts, err := e.RunArtifacts(run)
			if err != nil || len(arts) != 3 {
				b.Fatalf("artifacts = %v, %v", arts, err)
			}
		}
		paths, err := e.ArtifactPaths()
		if err != nil || len(paths) != 60*4+1 {
			b.Fatalf("paths = %d, %v", len(paths), err)
		}
	}
}

// BenchmarkStoreIngest measures recording-plus-enumerating a 60-run
// campaign. Legacy is the pre-index store behavior (no manifest, no dedup:
// every enumeration walks the tree and re-parses metadata); FastPath is the
// default store (write-behind manifest, content-addressed dedup). The
// Speedup sub-benchmark reports the throughput ratio.
func BenchmarkStoreIngest(b *testing.B) {
	logData := []byte(syntheticMoonGenLog(60))
	var csv strings.Builder
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&csv, "%d\n", 9000+i%30000)
	}
	latCSV := []byte(csv.String())
	unique := []byte("per-run capture data")
	legacyStore := func(b *testing.B) *results.Store {
		s, err := results.NewStore(b.TempDir(), results.NoIndex(), results.NoDedup())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	fastStore := func(b *testing.B) *results.Store {
		s, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("Legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ingestCampaign(b, legacyStore(b), logData, latCSV, unique)
		}
	})
	b.Run("FastPath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ingestCampaign(b, fastStore(b), logData, latCSV, unique)
		}
	})
	b.Run("Speedup", func(b *testing.B) {
		// Paired rounds: each legacy campaign is timed back-to-back with a
		// fast-path campaign and the median per-round ratio is reported, so
		// noise spikes on a shared machine cancel instead of skewing one
		// side's total.
		const rounds = 5
		var ratios []float64
		var tLegacy, tFast time.Duration
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				start := time.Now()
				ingestCampaign(b, legacyStore(b), logData, latCSV, unique)
				tL := time.Since(start)
				start = time.Now()
				ingestCampaign(b, fastStore(b), logData, latCSV, unique)
				tF := time.Since(start)
				ratios = append(ratios, tL.Seconds()/tF.Seconds())
				tLegacy += tL
				tFast += tF
			}
		}
		sort.Float64s(ratios)
		speedup := ratios[len(ratios)/2]
		b.ReportMetric(speedup, "speedup_x")
		b.ReportMetric(0, "ns/op")
		recordBenchResults(b, "StoreIngest", map[string]float64{
			"speedup_x":      speedup,
			"legacy_ms_op":   tLegacy.Seconds() * 1000 / float64(b.N*rounds),
			"fastpath_ms_op": tFast.Seconds() * 1000 / float64(b.N*rounds),
		})
	})
}

// BenchmarkEvalWarmCache measures the evaluation load of a 60-run campaign:
// Cold opens the tree through a store without a manifest (every load walks,
// re-reads, and re-parses 60 MoonGen logs and latency CSVs), Warm hits the
// generation-validated in-memory cache. The Speedup sub-benchmark reports
// the ratio — the cost of every plot-iteration reload the cache removes.
func BenchmarkEvalWarmCache(b *testing.B) {
	root := b.TempDir()
	seedStore, err := results.NewStore(root)
	if err != nil {
		b.Fatal(err)
	}
	logData := []byte(syntheticMoonGenLog(10))
	var csv strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&csv, "%d\n", 9000+i%30000)
	}
	ingestCampaign(b, seedStore, logData, []byte(csv.String()), []byte("capture"))
	ids, err := seedStore.ListExperiments("user", "ingest")
	if err != nil || len(ids) != 1 {
		b.Fatalf("ids = %v, %v", ids, err)
	}
	loadBoth := func(b *testing.B, e *results.Experiment) {
		b.Helper()
		runs, err := eval.LoadRuns(e, "loadgen", "moongen.log")
		if err != nil || len(runs) != 60 {
			b.Fatalf("runs = %d, %v", len(runs), err)
		}
		lat, err := eval.LoadLatency(e, "loadgen", "latency.csv")
		if err != nil || len(lat) == 0 {
			b.Fatalf("latency = %d combos, %v", len(lat), err)
		}
	}
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		s, err := results.NewStore(root, results.NoIndex())
		if err != nil {
			b.Fatal(err)
		}
		e, err := s.OpenExperiment("user", "ingest", ids[0])
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			loadBoth(b, e)
		}
	})
	b.Run("Warm", func(b *testing.B) {
		b.ReportAllocs()
		e, err := seedStore.OpenExperiment("user", "ingest", ids[0])
		if err != nil {
			b.Fatal(err)
		}
		eval.ResetCache()
		loadBoth(b, e) // warm the cache once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loadBoth(b, e)
		}
	})
	b.Run("Speedup", func(b *testing.B) {
		const rounds = 3
		coldStore, err := results.NewStore(root, results.NoIndex())
		if err != nil {
			b.Fatal(err)
		}
		coldExp, err := coldStore.OpenExperiment("user", "ingest", ids[0])
		if err != nil {
			b.Fatal(err)
		}
		warmExp, err := seedStore.OpenExperiment("user", "ingest", ids[0])
		if err != nil {
			b.Fatal(err)
		}
		eval.ResetCache()
		loadBoth(b, warmExp)
		var ratios []float64
		var tCold, tWarm time.Duration
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				start := time.Now()
				loadBoth(b, coldExp)
				tC := time.Since(start)
				start = time.Now()
				loadBoth(b, warmExp)
				tW := time.Since(start)
				ratios = append(ratios, tC.Seconds()/tW.Seconds())
				tCold += tC
				tWarm += tW
			}
		}
		sort.Float64s(ratios)
		speedup := ratios[len(ratios)/2]
		b.ReportMetric(speedup, "speedup_x")
		b.ReportMetric(0, "ns/op")
		recordBenchResults(b, "EvalWarmCache", map[string]float64{
			"speedup_x":  speedup,
			"cold_ms_op": tCold.Seconds() * 1000 / float64(b.N*rounds),
			"warm_ms_op": tWarm.Seconds() * 1000 / float64(b.N*rounds),
		})
	})
}

// BenchmarkAblationSwitching quantifies the latency cost of switched vs.
// direct topologies (Sec. 7): direct wiring, an optical L1 cross-connect
// (~15 ns), and an L2 cut-through switch (~300 ns).
func BenchmarkAblationSwitching(b *testing.B) {
	cases := []struct {
		name string
		opts []casestudy.Option
	}{
		{"DirectWiring", nil},
		{"OpticalL1", []casestudy.Option{casestudy.WithSwitch(15 * sim.Nanosecond)}},
		{"CutThroughL2", []casestudy.Option{casestudy.WithSwitch(300 * sim.Nanosecond)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo, err := casestudy.New(casestudy.BareMetal, tc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := topo.LatencySamples(64, 10_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, s := range samples {
					sum += s
				}
				topo.Close()
				b.ReportMetric(sum/float64(len(samples))/1000, "avg_latency_us")
			}
		})
	}
}

// BenchmarkAblationCleanBoot measures the cost of the strongest isolation
// mode — rebooting and re-running setup before every measurement run —
// against the paper's default of one boot per experiment.
func BenchmarkAblationCleanBoot(b *testing.B) {
	run := func(b *testing.B, rebootPerRun bool) {
		for i := 0; i < b.N; i++ {
			topo, err := casestudy.New(casestudy.BareMetal)
			if err != nil {
				b.Fatal(err)
			}
			store, err := results.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			sweep := casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000, 50_000, 100_000, 200_000}, RuntimeSec: 1}
			runner := topo.Testbed.Runner()
			runner.RebootBetweenRuns = rebootPerRun
			sum, err := runner.Run(context.Background(), topo.Experiment(sweep), store)
			if err != nil {
				b.Fatal(err)
			}
			if sum.FailedRuns != 0 {
				b.Fatal("runs failed")
			}
			topo.Close()
		}
	}
	b.Run("BootPerExperiment", func(b *testing.B) { run(b, false) })
	b.Run("BootPerRun", func(b *testing.B) { run(b, true) })
}

// BenchmarkCrossProduct measures loop-variable expansion — the paper's
// 60-run case plus a larger 3-variable space.
func BenchmarkCrossProduct(b *testing.B) {
	paper := []core.LoopVar{
		{Name: "pkt_sz", Values: []string{"64", "1500"}},
		{Name: "pkt_rate", Values: make([]string, 30)},
	}
	for i := range paper[1].Values {
		paper[1].Values[i] = "r"
	}
	big := append(append([]core.LoopVar(nil), paper...), core.LoopVar{Name: "trial", Values: make([]string, 20)})
	for i := range big[2].Values {
		big[2].Values[i] = "t"
	}
	b.Run("Paper60", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CrossProduct(paper); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Runs1200", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CrossProduct(big); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMindTheGap compares the fidelity of the three traffic-generator
// classes the paper's load-generator discussion cites (MoonGen vs. OSNT vs.
// iPerf): per-second rate stability and latency-sample spread at the same
// offered load on the same bare-metal DuT.
func BenchmarkMindTheGap(b *testing.B) {
	profiles := []pos.GeneratorProfile{pos.MoonGenProfile(), pos.OSNTProfile(), pos.IPerfProfile()}
	for _, p := range profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo, err := pos.NewCaseStudy(pos.BareMetal, pos.WithGenerator(p))
				if err != nil {
					b.Fatal(err)
				}
				topo.Router.SetForwarding(true)
				res, err := topo.Gen.Run(loadgenRunConfig(100_000, 5))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(relStddev(res.PerSecondTx[:5])*100, "rate_cv_pct")
				if res.LatencyAvailable {
					var xs []float64
					for _, d := range res.Latencies {
						xs = append(xs, float64(d))
					}
					// Absolute spread in µs: the measurement
					// noise floor of the generator class.
					b.ReportMetric(absStddev(xs)/1000, "latency_sd_us")
				}
				topo.Close()
			}
		})
	}
}

func loadgenRunConfig(rate float64, seconds float64) loadgen.RunConfig {
	return loadgen.RunConfig{
		Template: packet.UDPTemplate{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packet.IPv4Addr{10, 0, 0, 2}, DstIP: packet.IPv4Addr{10, 0, 1, 2},
			SrcPort: 1234, DstPort: 4321, FrameSize: 64,
		},
		RatePPS:  rate,
		Duration: sim.Duration(seconds * float64(sim.Second)),
	}
}

func absStddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

func relStddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	return absStddev(xs) / mean
}

// BenchmarkNDRSearch measures the RFC 2544-style non-drop-rate search on
// both platforms and reports the found NDR — the methodology extension on
// top of the paper's fixed-grid sweep.
func BenchmarkNDRSearch(b *testing.B) {
	cases := []struct {
		name   string
		flavor pos.Flavor
		max    float64
	}{
		{"BareMetal64B", pos.BareMetal, 2_500_000},
		{"Virtual1500B", pos.Virtual, 300_000},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo, err := pos.NewCaseStudy(tc.flavor, pos.WithSeed(1))
				if err != nil {
					b.Fatal(err)
				}
				size := 64
				if tc.flavor == pos.Virtual {
					size = 1500
				}
				res, err := pos.SearchNDR(pos.NDRConfig{MinPPS: 10_000, MaxPPS: tc.max, Precision: 0.005},
					func(rate float64) (float64, error) {
						p, err := topo.DirectRun(size, rate, 1)
						if err != nil {
							return 0, err
						}
						return p.LossRatio, nil
					})
				if err != nil {
					b.Fatal(err)
				}
				topo.Close()
				b.ReportMetric(res.NDRPPS/1e6, "ndr_Mpps")
				b.ReportMetric(float64(len(res.Trials)), "trials")
			}
		})
	}
}

// BenchmarkRobustnessPacketSize sweeps the packet size at fixed overload —
// the robustness concern the paper cites (small input variations flipping
// the bottleneck). Reported metric: the crossover size between the
// CPU-bound and NIC-bound regimes.
func BenchmarkRobustnessPacketSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := casestudy.New(casestudy.BareMetal)
		if err != nil {
			b.Fatal(err)
		}
		crossover := 0
		for size := 64; size <= 1500; size += 10 {
			p, err := topo.DirectRun(size, 1_800_000, 1)
			if err != nil {
				b.Fatal(err)
			}
			// The first size where the NIC, not the CPU, caps
			// throughput.
			if crossover == 0 && p.RxMpps < 1.74 {
				crossover = size
			}
		}
		topo.Close()
		b.ReportMetric(float64(crossover), "crossover_bytes")
		// Analytic crossover: LineRatePPS(10G, s) == 1.75 Mpps at
		// s ≈ 694 B.
		if crossover < 650 || crossover > 740 {
			b.Fatalf("crossover at %d B, want ~694", crossover)
		}
	}
}

// BenchmarkAblationImperfectCabling quantifies what a marginal transceiver
// does to an NDR search: with a strict zero-loss criterion even 0.01%
// random loss collapses the measured NDR, while an accept-loss criterion
// recovers the true capacity — why RFC 2544-style tests must state their
// loss tolerance.
func BenchmarkAblationImperfectCabling(b *testing.B) {
	cases := []struct {
		name       string
		loss       float64
		acceptLoss float64
	}{
		{"CleanCableStrict", 0, 0},
		{"LossyCableStrict", 1e-4, 0},
		{"LossyCableTolerant", 1e-4, 1e-3},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine := sim.NewEngine()
				gen := loadgen.New(engine, "lg", true)
				rt, err := router.New(engine, router.Config{Name: "dut", Model: perfmodel.NewBareMetal(), HardwareTimestamps: true})
				if err != nil {
					b.Fatal(err)
				}
				netem.Wire(engine, gen.TxPort(), rt.Port(0), netem.LinkConfig{LossRatio: tc.loss, Seed: 11})
				netem.Wire(engine, rt.Port(1), gen.RxPort(), netem.LinkConfig{})
				res, err := pos.SearchNDR(pos.NDRConfig{MinPPS: 10_000, MaxPPS: 2_500_000, Precision: 0.005, AcceptLoss: tc.acceptLoss},
					func(rate float64) (float64, error) {
						r, err := gen.Run(loadgenRunConfig(rate, 1))
						if err != nil {
							return 0, err
						}
						return r.LossRatio(), nil
					})
				switch {
				case tc.loss > 0 && tc.acceptLoss == 0:
					// Random loss defeats a strict search: it
					// either reports loss-at-minimum or
					// collapses far below the true 1.75 Mpps
					// capacity.
					if err == nil && res.NDRPPS > 0.5e6 {
						b.Fatalf("strict search on lossy cable converged to %.0f", res.NDRPPS)
					}
					b.ReportMetric(res.NDRPPS/1e6, "ndr_Mpps")
				case err != nil:
					b.Fatal(err)
				default:
					b.ReportMetric(res.NDRPPS/1e6, "ndr_Mpps")
					if res.NDRPPS < 1.6e6 {
						b.Fatalf("NDR = %.0f, want ~1.75M", res.NDRPPS)
					}
				}
			}
		})
	}
}

// waitHost is a core.Host whose measurement phase blocks for a fixed wall
// time — the shape of a real testbed run, where the controller mostly waits
// on remote hosts. Campaign scheduling wins exactly here: the waits of
// different runs overlap across replicas.
type waitHost struct {
	name  string
	delay time.Duration
}

func (h *waitHost) Name() string                            { return h.name }
func (h *waitHost) SetBoot(string, map[string]string) error { return nil }
func (h *waitHost) Reboot() error                           { return nil }
func (h *waitHost) DeployTools() error                      { return nil }
func (h *waitHost) Exec(ctx context.Context, script string, _ map[string]string) (string, error) {
	if strings.Contains(script, "measure") {
		select {
		case <-time.After(h.delay):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	return "ok", nil
}

func benchSweep(node string) *core.Experiment {
	rates := make([]string, 8)
	for i := range rates {
		rates[i] = fmt.Sprint((i + 1) * 10_000)
	}
	return &core.Experiment{
		Name:     "parallel-bench",
		User:     "user",
		LoopVars: []core.LoopVar{{Name: "pkt_rate", Values: rates}},
		Hosts: []core.HostSpec{{
			Role: "loadgen", Node: node, Image: "debian-buster",
			Setup: "setup", Measurement: "measure",
		}},
		Duration: time.Hour,
	}
}

func benchReplica(name, node string, delay time.Duration) sched.Replica {
	h := &waitHost{name: node, delay: delay}
	return sched.Replica{
		Name:       name,
		Runner:     &core.Runner{Hosts: map[string]core.Host{node: h}, Service: hosttools.NewService(nil)},
		Experiment: benchSweep(node),
	}
}

// BenchmarkParallelSweep compares the sequential runner against a 2-replica
// campaign on the same 8-run sweep with wall-clock-bound measurements (100 ms
// each, the controller's view of a real run). The Speedup sub-benchmark
// reports the wall-clock ratio as a custom metric — the sweep halves on two
// replicas (≈2×, the ideal for two-way sharding).
func BenchmarkParallelSweep(b *testing.B) {
	const delay = 100 * time.Millisecond
	runSequential := func(b *testing.B) time.Duration {
		rep := benchReplica("solo", "n0", delay)
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		sum, err := rep.Runner.Run(context.Background(), rep.Experiment, store)
		if err != nil || sum.FailedRuns != 0 {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
		return time.Since(start)
	}
	runParallel := func(b *testing.B) time.Duration {
		c := &sched.Campaign{Replicas: []sched.Replica{
			benchReplica("alpha", "n0", delay),
			benchReplica("beta", "n1", delay),
		}}
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		sum, err := c.Run(context.Background(), store)
		if err != nil || sum.FailedRuns != 0 {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
		return time.Since(start)
	}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSequential(b)
		}
	})
	b.Run("TwoReplicas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runParallel(b)
		}
	})
	b.Run("Speedup", func(b *testing.B) {
		var seq, par time.Duration
		for i := 0; i < b.N; i++ {
			seq += runSequential(b)
			par += runParallel(b)
		}
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
		b.ReportMetric(0, "ns/op")
	})
}

// dataplaneSweep is the sim-bound workload behind the data-plane benches: a
// bare-metal throughput sweep whose highest rates sit on the 1.75 Mpps CPU
// plateau, so the engine moves millions of simulated packets per measurement
// second with no wall-clock sleeps involved.
func dataplaneSweep() casestudy.SweepConfig {
	return casestudy.SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{100_000, 600_000, 1_200_000, 1_800_000},
		RuntimeSec: 1,
	}
}

// BenchmarkDataPlane compares one plateau-rate measurement run through the
// scalar event-per-hop engine and the batched cut-through engine. allocs/op
// is the headline: the batched run recycles events, trains and delivery
// records, so its per-run allocations stay flat regardless of packet count.
// One run is 1000 one-millisecond ticks, i.e. 1000 packet trains.
func BenchmarkDataPlane(b *testing.B) {
	run := func(b *testing.B, record bool, opts ...casestudy.Option) {
		topo, err := casestudy.New(casestudy.BareMetal, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer topo.Close()
		b.ReportAllocs()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := topo.DirectRun(64, 1_800_000, 1); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.StopTimer()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		allocsPerRun := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		const trainsPerRun = 1000
		b.ReportMetric(allocsPerRun/trainsPerRun, "allocs/train")
		if record {
			recordBenchResults(b, "BenchmarkDataPlane", map[string]float64{
				"allocs_per_run":   allocsPerRun,
				"allocs_per_train": allocsPerRun / trainsPerRun,
				"ns_per_run":       float64(elapsed.Nanoseconds()) / float64(b.N),
			})
		}
	}
	b.Run("Scalar", func(b *testing.B) { run(b, false, casestudy.WithScalarEngine()) })
	b.Run("Batched", func(b *testing.B) { run(b, true) })
}

// TestDataPlaneAllocations pins the pooling guarantee as a test: a warmed
// batched topology completes a full 1000-train measurement run in well under
// the budget of 2 allocations per packet train (the steady state is ~20
// allocations per run, dominated by result assembly, not per-train work).
func TestDataPlaneAllocations(t *testing.T) {
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	// Warm the pools, the rewrite memo and the result buffers.
	if _, err := topo.DirectRun(64, 1_800_000, 1); err != nil {
		t.Fatal(err)
	}
	const trains = 1000
	perRun := testing.AllocsPerRun(5, func() {
		if _, err := topo.DirectRun(64, 1_800_000, 1); err != nil {
			t.Fatal(err)
		}
	})
	if perTrain := perRun / trains; perTrain > 2 {
		t.Fatalf("batched run allocates %.0f times (%.2f allocs/train), budget is 2 allocs/train", perRun, perTrain)
	}
}

// BenchmarkDataPlaneSweep is the tentpole comparison: the same sim-bound
// sweep executed three ways — sequentially on the scalar engine (the pre-PR
// data plane), sequentially on the batched engine, and sharded across
// replica timelines with the batched engine. The Speedup sub-benchmark
// reports batched+sharded over scalar-sequential; `make bench-dataplane`
// records it into BENCH_dataplane.json.
func BenchmarkDataPlaneSweep(b *testing.B) {
	cfg := dataplaneSweep()
	// One shard per available core: on a multicore box the sharded run
	// splits the replicas across cores; on a single core it degenerates to
	// the batched engine alone, so the recorded speedup never claims
	// parallelism the host cannot deliver.
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	runScalar := func(b *testing.B) time.Duration {
		topo, err := casestudy.New(casestudy.BareMetal, casestudy.WithScalarEngine())
		if err != nil {
			b.Fatal(err)
		}
		defer topo.Close()
		start := time.Now()
		for _, size := range cfg.Sizes {
			for _, rate := range cfg.RatesPPS {
				if _, err := topo.DirectRun(size, float64(rate), cfg.RuntimeSec); err != nil {
					b.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}
	runSharded := func(b *testing.B) time.Duration {
		topos, err := casestudy.NewReplicas(casestudy.BareMetal, shards)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			for _, t := range topos {
				t.Close()
			}
		}()
		start := time.Now()
		if _, err := casestudy.ShardedSweep(topos, cfg, 0); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	b.Run("ScalarSequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runScalar(b)
		}
	})
	b.Run("BatchedSharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSharded(b)
		}
	})
	b.Run("Speedup", func(b *testing.B) {
		var seq, par time.Duration
		for i := 0; i < b.N; i++ {
			seq += runScalar(b)
			par += runSharded(b)
		}
		speedup := seq.Seconds() / par.Seconds()
		b.ReportMetric(speedup, "speedup_x")
		b.ReportMetric(float64(shards), "shards")
		b.ReportMetric(0, "ns/op")
		recordBenchResults(b, "BenchmarkDataPlaneSweep", map[string]float64{
			"speedup_x":         speedup,
			"shards":            float64(shards),
			"gomaxprocs":        float64(runtime.GOMAXPROCS(0)),
			"scalar_seq_sec":    seq.Seconds() / float64(b.N),
			"batched_shard_sec": par.Seconds() / float64(b.N),
		})
	})
}

// BenchmarkSchedFaultRetry measures what the fault-tolerance layer costs: the
// same 2-replica, 8-run campaign runs fault-free and with a deterministic
// plan that hangs two of one replica's measurement execs (each fault burns
// the run timeout, then costs a backoff, a clean-slate re-setup, and a
// re-run of the measurement wait).
// The Overhead sub-benchmark reports the wall-clock ratio — `make
// bench-sched-faults` records it into BENCH_sched.json.
func BenchmarkSchedFaultRetry(b *testing.B) {
	const delay = 50 * time.Millisecond
	newCampaign := func(faulty bool) *sched.Campaign {
		alpha := benchReplica("alpha", "n0", delay)
		beta := benchReplica("beta", "n1", delay)
		if faulty {
			// Exec occurrences on n1: 1 is the session setup, then one
			// per measurement, with a re-setup consuming the occurrence
			// after each failure. Occurrence 3 always hangs (beta's
			// second measurement); 5 hangs too if the shared queue hands
			// beta another run before alpha drains it. Hangs (not
			// instant failures) so each fault burns the run timeout,
			// like a wedged host in a real campaign.
			beta.Runner.InjectFaults(sim.NewFaultInjector(map[string]sim.FaultPlan{
				"n1": {HangExecs: []int{3, 5}},
			}))
		}
		return &sched.Campaign{
			Replicas:        []sched.Replica{alpha, beta},
			MaxAttempts:     3,
			RetryBackoff:    time.Millisecond,
			QuarantineAfter: 4,
			RunTimeout:      100 * time.Millisecond,
		}
	}
	run := func(b *testing.B, faulty bool) (time.Duration, int) {
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		sum, err := newCampaign(faulty).Run(context.Background(), store)
		wall := time.Since(start)
		if err != nil || sum.FailedRuns != 0 {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
		retried := 0
		for _, rec := range sum.Records {
			if rec.Attempts > 1 {
				retried++
			}
		}
		if faulty && retried == 0 {
			b.Fatal("fault plan injected no retries")
		}
		return wall, retried
	}
	b.Run("FaultFree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false)
		}
	})
	b.Run("TwoFaults", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
	b.Run("Overhead", func(b *testing.B) {
		var clean, faulty time.Duration
		retried := 0
		for i := 0; i < b.N; i++ {
			c, _ := run(b, false)
			f, r := run(b, true)
			clean += c
			faulty += f
			retried = r
		}
		overhead := faulty.Seconds() / clean.Seconds()
		b.ReportMetric(overhead, "overhead_x")
		b.ReportMetric(0, "ns/op")
		recordBenchResults(b, "SchedFaultRetry", map[string]float64{
			"overhead_x":      overhead,
			"faultfree_ms_op": clean.Seconds() * 1000 / float64(b.N),
			"faulty_ms_op":    faulty.Seconds() * 1000 / float64(b.N),
			"retried_runs":    float64(retried),
		})
	})
}

// syntheticMoonGenLog renders a realistic large run log: per-second samples
// for both devices, interleaved noise, then totals and the latency summary.
func syntheticMoonGenLog(seconds int) string {
	var sb strings.Builder
	for i := 0; i < seconds; i++ {
		fmt.Fprintf(&sb, "[Device: id=0] TX: %d.%04d Mpps, %d.%02d Mbit/s (%d.%02d Mbit/s with framing)\n",
			1, i%10000, 512+i%100, i%100, 672+i%100, i%100)
		fmt.Fprintf(&sb, "[Device: id=1] RX: %d.%04d Mpps, %d.%02d Mbit/s (%d.%02d Mbit/s with framing)\n",
			1, (i+7)%10000, 511+i%100, i%100, 671+i%100, i%100)
		if i%5 == 0 {
			fmt.Fprintf(&sb, "app log: worker %d heartbeat ok\n", i)
		}
	}
	sb.WriteString("[Device: id=0] TX: 1.0000 Mpps (StdDev 0.0002), total 60000000 packets, 3840000000 bytes\n")
	sb.WriteString("[Device: id=1] RX: 0.9995 Mpps (StdDev 0.0005), total 59970000 packets, 3838080000 bytes\n")
	sb.WriteString("[Latency] avg: 12345 ns, min: 9000 ns, max: 40000 ns, samples: 100000\n")
	return sb.String()
}

// BenchmarkMoonparse compares the regexp reference parser against the
// hand-rolled prefix scanner on a 60-second run log; the Speedup
// sub-benchmark reports the ratio as a custom metric.
func BenchmarkMoonparse(b *testing.B) {
	log := syntheticMoonGenLog(60)
	b.Run("Regexp", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(log)))
		for i := 0; i < b.N; i++ {
			if _, err := moonparse.ParseRegexp(strings.NewReader(log)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Scanner", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(log)))
		for i := 0; i < b.N; i++ {
			if _, err := moonparse.ParseString(log); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Speedup", func(b *testing.B) {
		const rounds = 50
		var tRe, tSc time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			for r := 0; r < rounds; r++ {
				if _, err := moonparse.ParseRegexp(strings.NewReader(log)); err != nil {
					b.Fatal(err)
				}
			}
			tRe += time.Since(start)
			start = time.Now()
			for r := 0; r < rounds; r++ {
				if _, err := moonparse.ParseString(log); err != nil {
					b.Fatal(err)
				}
			}
			tSc += time.Since(start)
		}
		b.ReportMetric(tRe.Seconds()/tSc.Seconds(), "speedup_x")
		b.ReportMetric(0, "ns/op")
	})
}

// BenchmarkPublicAPIRun exercises the façade the way a downstream user does.
func BenchmarkPublicAPIRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := pos.NewCaseStudy(pos.BareMetal)
		if err != nil {
			b.Fatal(err)
		}
		p, err := topo.DirectRun(64, 100_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if p.RxMpps < 0.09 {
			b.Fatalf("rx = %.4f", p.RxMpps)
		}
		topo.Close()
	}
}

// BenchmarkTelemetryOverhead prices the observability layer: the full
// Appendix A sweep (60 measurement runs) on the vpos platform, once with
// telemetry live (metric atomics on every hot path, the span tree built and
// archived as spans.json) and once with the registry disabled (metrics
// no-op, no trace is even created). Paired rounds with a median ratio, like
// the other overhead benches; `make bench-telemetry` records the ratio into
// BENCH_telemetry.json. The budget is 5% — instrumentation that costs more
// than that does not belong on by default.
func BenchmarkTelemetryOverhead(b *testing.B) {
	runSweep := func(b *testing.B) time.Duration {
		topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sweep := casestudy.PaperSweep()
		sweep.RuntimeSec = 1
		start := time.Now()
		sum, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(sweep), store)
		wall := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if sum.TotalRuns != 60 || sum.FailedRuns != 0 {
			b.Fatalf("summary = %+v", sum)
		}
		topo.Close()
		return wall
	}
	defer pos.SetTelemetryEnabled(true)
	// One unrecorded warm-up pair so first-use costs (page faults, metric
	// family registration) do not land on either side of round one.
	pos.SetTelemetryEnabled(true)
	runSweep(b)
	pos.SetTelemetryEnabled(false)
	runSweep(b)
	const rounds = 3
	var ratios []float64
	var tInstrumented, tBare time.Duration
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			pos.SetTelemetryEnabled(true)
			tI := runSweep(b)
			pos.SetTelemetryEnabled(false)
			tB := runSweep(b)
			ratios = append(ratios, tI.Seconds()/tB.Seconds())
			tInstrumented += tI
			tBare += tB
		}
	}
	pos.SetTelemetryEnabled(true)
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	b.ReportMetric(overhead, "overhead_x")
	b.ReportMetric(0, "ns/op")
	recordBenchResults(b, "TelemetryOverhead", map[string]float64{
		"overhead_x":         overhead,
		"instrumented_ms_op": tInstrumented.Seconds() * 1000 / float64(b.N*rounds),
		"bare_ms_op":         tBare.Seconds() * 1000 / float64(b.N*rounds),
		"runs":               60,
	})
}

// BenchmarkHealthOverhead prices the health layer on top of the always-on
// instrumentation: the Appendix A sweep (60 measurement runs, vpos platform)
// once bare — telemetry live, as every run ships — and once with the full
// health stack armed on top: the runtime sampler polling runtime/metrics
// every 100 ms, a watchdog ticking the four standard probes every 50 ms, and
// per-run resources.json attribution (written on both sides, it is part of
// the run path). Each timing covers several back-to-back sweeps so the
// armed stack's tickers fire many times inside the measured window and
// scheduling noise amortizes out. Paired rounds with a median ratio; `make
// bench-health` records the ratio into BENCH_health.json. The budget is 5%:
// a supervisor that distorts the experiment it supervises is worse than none.
func BenchmarkHealthOverhead(b *testing.B) {
	const sweepsPerTiming = 5
	runSweeps := func(b *testing.B, withHealth bool) time.Duration {
		var stopHealth func()
		if withHealth {
			sampler := pos.NewRuntimeSampler(100 * time.Millisecond)
			sampler.Start()
			wd := pos.NewWatchdog(50 * time.Millisecond)
			for _, p := range []pos.HealthProbe{
				pos.CampaignProgressProbe(time.Minute),
				pos.ShardProgressProbe(time.Minute),
				pos.QueueStarvationProbe(10, time.Minute),
				pos.EventDropProbe(1000, time.Minute),
			} {
				wd.Register(p, nil)
			}
			wd.Start()
			stopHealth = func() { wd.Stop(); sampler.Stop() }
		}
		sweep := casestudy.PaperSweep()
		sweep.RuntimeSec = 1
		var wall time.Duration
		for s := 0; s < sweepsPerTiming; s++ {
			topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			store, err := results.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			sum, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(sweep), store)
			wall += time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if sum.TotalRuns != 60 || sum.FailedRuns != 0 {
				b.Fatalf("summary = %+v", sum)
			}
			topo.Close()
		}
		if stopHealth != nil {
			stopHealth()
		}
		return wall
	}
	// One unrecorded warm-up pair so first-use costs land on neither side.
	runSweeps(b, true)
	runSweeps(b, false)
	const rounds = 3
	var ratios []float64
	var tHealth, tBare time.Duration
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			tH := runSweeps(b, true)
			tB := runSweeps(b, false)
			ratios = append(ratios, tH.Seconds()/tB.Seconds())
			tHealth += tH
			tBare += tB
		}
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	b.ReportMetric(overhead, "overhead_x")
	b.ReportMetric(0, "ns/op")
	recordBenchResults(b, "HealthOverhead", map[string]float64{
		"overhead_x":   overhead,
		"health_ms_op": tHealth.Seconds() * 1000 / float64(b.N*rounds*sweepsPerTiming),
		"bare_ms_op":   tBare.Seconds() * 1000 / float64(b.N*rounds*sweepsPerTiming),
		"runs":         60,
	})
}

// BenchmarkEventlogOverhead prices live observability: the Appendix A sweep
// (60 measurement runs, vpos platform) once bare and once with the full
// event pipeline armed — every progress/exec event stamped and published,
// appended to an on-disk JSONL journal, and drained by one live subscriber.
// Paired rounds with a median ratio, like BenchmarkTelemetryOverhead;
// `make bench-eventlog` records the ratio into BENCH_eventlog.json. The
// budget is 5%: watching an experiment must not change the experiment.
func BenchmarkEventlogOverhead(b *testing.B) {
	runSweep := func(b *testing.B, withEvents bool) time.Duration {
		topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		runner := topo.Testbed.Runner()
		var drained chan struct{}
		var sub *eventlog.Subscription
		var p *eventlog.Pipeline
		var j *eventlog.Journal
		if withEvents {
			p = eventlog.NewPipeline()
			if j, err = eventlog.OpenJournal(b.TempDir(), 0); err != nil {
				b.Fatal(err)
			}
			p.AttachJournal(j)
			sub = p.Subscribe(0)
			drained = make(chan struct{})
			go func() {
				defer close(drained)
				for {
					if _, ok := sub.Next(context.Background()); !ok {
						return
					}
				}
			}()
			runner.Events = p
		}
		sweep := casestudy.PaperSweep()
		sweep.RuntimeSec = 1
		start := time.Now()
		sum, err := runner.Run(context.Background(), topo.Experiment(sweep), store)
		wall := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if sum.TotalRuns != 60 || sum.FailedRuns != 0 {
			b.Fatalf("summary = %+v", sum)
		}
		if withEvents {
			sub.Close()
			<-drained
			if sub.Dropped() != 0 {
				b.Fatalf("live subscriber dropped %d events", sub.Dropped())
			}
			p.DetachJournal()
			j.Close()
		}
		topo.Close()
		return wall
	}
	// Unrecorded warm-up pair: first-use costs stay off round one.
	runSweep(b, true)
	runSweep(b, false)
	const rounds = 5
	var ratios []float64
	var tEvents, tBare time.Duration
	pair := 0
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			// Alternate which side runs first and collect garbage between
			// sides: otherwise whichever sweep runs second pays the first
			// one's GC debt and the ratio measures allocator drift, not
			// event cost.
			var tE, tB time.Duration
			if pair%2 == 0 {
				runtime.GC()
				tE = runSweep(b, true)
				runtime.GC()
				tB = runSweep(b, false)
			} else {
				runtime.GC()
				tB = runSweep(b, false)
				runtime.GC()
				tE = runSweep(b, true)
			}
			pair++
			ratios = append(ratios, tE.Seconds()/tB.Seconds())
			tEvents += tE
			tBare += tB
		}
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	b.ReportMetric(overhead, "overhead_x")
	b.ReportMetric(0, "ns/op")
	recordBenchResults(b, "EventlogOverhead", map[string]float64{
		"overhead_x":   overhead,
		"events_ms_op": tEvents.Seconds() * 1000 / float64(b.N*rounds),
		"bare_ms_op":   tBare.Seconds() * 1000 / float64(b.N*rounds),
		"runs":         60,
	})
}

// BenchmarkTraceOverhead prices the causal-tracing layer added on top of the
// span tree: W3C trace/span identity generation on every span and the
// analysis-time stitching that posctl analyze runs. A paired on/off wall
// clock cannot resolve this layer — its cost hides under full-telemetry
// variance — so the bench measures the added work directly and reports it
// against the campaign wall clock: overhead_x = (wall + identity cost +
// stitching cost) / wall for the Appendix A sweep (60 vpos runs). `make
// bench-trace` records the numbers into BENCH_trace.json; the budget is 5% —
// identities that cost more would have to be sampled, and sampled traces
// cannot stitch a complete campaign tree.
func BenchmarkTraceOverhead(b *testing.B) {
	defer pos.SetTelemetryEnabled(true)
	pos.SetTelemetryEnabled(true)
	runSweep := func(b *testing.B) (time.Duration, []pos.SpanRecord) {
		tr := pos.NewSpanTrace("campaign:bench")
		tr.SetProcess("controller")
		ctx := pos.TraceContext(context.Background(), tr)
		topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		store, err := results.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sweep := casestudy.PaperSweep()
		sweep.RuntimeSec = 1
		start := time.Now()
		sum, err := topo.Testbed.Runner().Run(ctx, topo.Experiment(sweep), store)
		wall := time.Since(start)
		if err != nil || sum.TotalRuns != 60 || sum.FailedRuns != 0 {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
		topo.Close()
		tr.Finish()
		return wall, tr.Records()
	}
	runSweep(b) // warm-up: first-use costs stay out of the measured rounds

	// ID generation in isolation: one trace-ID + span-ID pair per span is
	// the marginal cost the identities add to StartSpan.
	const pairs = 100_000
	idStart := time.Now()
	for i := 0; i < pairs; i++ {
		telemetry.NewTraceID()
		telemetry.NewSpanID()
	}
	idNS := float64(time.Since(idStart).Nanoseconds()) / pairs

	const rounds = 3
	var ratios []float64
	var wallTotal time.Duration
	var spans int
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			runtime.GC()
			wall, recs := runSweep(b)
			// The layer's cost on this campaign: an ID pair per span plus
			// the assembler's critical-path pass over the archive.
			stitchStart := time.Now()
			sum := pos.SummarizeSpans(recs)
			stitch := time.Since(stitchStart)
			if len(sum.CriticalPath) == 0 {
				b.Fatal("stitching produced no critical path")
			}
			idCost := time.Duration(float64(len(recs)) * idNS * float64(time.Nanosecond))
			ratios = append(ratios, (wall+idCost+stitch).Seconds()/wall.Seconds())
			wallTotal += wall
			spans = len(recs)
		}
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	if overhead > 1.05 {
		b.Fatalf("trace identity + stitching overhead = %.4fx, budget 1.05x", overhead)
	}

	// Stitching at scale: the critical-path pass over a 10k-span archive —
	// the cost of `posctl analyze` on a very large campaign.
	big := pos.NewSpanTrace("campaign:big")
	big.SetProcess("controller")
	for lane := 0; lane < 10; lane++ {
		ls := big.Root().StartChild(fmt.Sprintf("replica:l%d", lane))
		for run := 0; run < 500; run++ {
			rs := ls.StartChild(fmt.Sprintf("run %d", lane*500+run))
			rs.StartChild("exec:n0").End()
			rs.End()
		}
		ls.End()
	}
	big.Finish()
	bigRecs := big.Records()
	stitchStart := time.Now()
	if sum := pos.SummarizeSpans(bigRecs); len(sum.CriticalPath) == 0 {
		b.Fatal("10k-span stitching produced no critical path")
	}
	stitch10kMS := float64(time.Since(stitchStart).Nanoseconds()) / 1e6

	b.ReportMetric(overhead, "overhead_x")
	b.ReportMetric(idNS, "id_pair_ns")
	b.ReportMetric(stitch10kMS, "stitch10k_ms")
	b.ReportMetric(0, "ns/op")
	recordBenchResults(b, "TraceOverhead", map[string]float64{
		"overhead_x":   overhead,
		"id_pair_ns":   idNS,
		"stitch10k_ms": stitch10kMS,
		"spans":        float64(spans),
		"wall_ms_op":   wallTotal.Seconds() * 1000 / float64(b.N*rounds),
		"budget_x":     1.05,
	})
}
