package pos_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pos"
)

// TestPublicAPIWorkflow drives the complete pipeline exactly as the README
// documents it, using only the public façade.
func TestPublicAPIWorkflow(t *testing.T) {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := pos.NewResultsStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exp := topo.Experiment(pos.SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 300_000},
		RuntimeSec: 1,
	})
	sum, err := topo.Testbed.Runner().Run(context.Background(), exp, store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 4 || sum.FailedRuns != 0 {
		t.Fatalf("summary = %+v", sum)
	}

	ids, err := store.ListExperiments(exp.User, exp.Name)
	if err != nil || len(ids) != 1 {
		t.Fatalf("experiments = %v, %v", ids, err)
	}
	rec, err := store.OpenExperiment(exp.User, exp.Name, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	runs, err := pos.LoadRuns(rec, topo.LoadGen, "moongen.log")
	if err != nil {
		t.Fatal(err)
	}
	series, err := pos.ThroughputSeries(runs, "pkt_sz", "pkt_rate", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	fig := pos.ThroughputFigure("test", series)
	files := pos.ExportFigure("fig", fig)
	if len(files) != 3 || !strings.Contains(string(files["fig.svg"]), "<svg") {
		t.Errorf("export = %v", files)
	}
	for name, data := range files {
		if err := rec.AddExperimentArtifact("figures/"+name, data); err != nil {
			t.Fatal(err)
		}
	}
	m, err := pos.Release(rec, exp.User, exp.Name, t.TempDir()+"/bundle.tar.gz")
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 4 {
		t.Errorf("manifest = %+v", m)
	}
}

// TestReproducibility is the property the whole system exists for: two
// executions of the same experiment definition on identically seeded
// testbeds yield identical measurement results.
func TestReproducibility(t *testing.T) {
	measure := func() []float64 {
		topo, err := pos.NewCaseStudy(pos.Virtual, pos.WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		var out []float64
		for _, rate := range []float64{20_000, 100_000, 250_000} {
			for _, size := range []int{64, 1500} {
				p, err := topo.DirectRun(size, rate, 1)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, p.RxMpps)
			}
		}
		return out
	}
	a, b := measure(), measure()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %v vs %v — reproducibility broken", i, a[i], b[i])
		}
	}
}

// TestSeedChangesVirtualResults: different seeds model different physical
// conditions; overloaded vpos results must differ while drop-free results
// stay equal.
func TestSeedChangesVirtualResults(t *testing.T) {
	run := func(seed uint64, rate float64) float64 {
		topo, err := pos.NewCaseStudy(pos.Virtual, pos.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		p, err := topo.DirectRun(64, rate, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p.RxMpps
	}
	if run(1, 200_000) == run(2, 200_000) {
		t.Error("overloaded vpos identical across seeds — jitter not applied")
	}
	if run(1, 20_000) != run(2, 20_000) {
		t.Error("drop-free vpos differs across seeds — determinism broken below capacity")
	}
}

func TestComparisonTableFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := pos.WriteComparisonTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pos") {
		t.Error("table missing pos row")
	}
}

func TestMergeVarsFacade(t *testing.T) {
	m := pos.MergeVars(pos.Vars{"a": "1"}, pos.Vars{"a": "2", "b": "3"})
	if m["a"] != "2" || m["b"] != "3" {
		t.Errorf("merge = %v", m)
	}
}

func TestCrossProductFacade(t *testing.T) {
	combos, err := pos.CrossProduct([]pos.LoopVar{
		{Name: "x", Values: []string{"1", "2"}},
		{Name: "y", Values: []string{"a", "b", "c"}},
	})
	if err != nil || len(combos) != 6 {
		t.Fatalf("combos = %v, %v", combos, err)
	}
	if pos.NumRuns([]pos.LoopVar{{Name: "x", Values: []string{"1", "2"}}}) != 2 {
		t.Error("NumRuns wrong")
	}
}

func TestLineRateFacade(t *testing.T) {
	got := pos.LineRatePPS(10e9, 1500)
	if got < 0.82e6 || got > 0.83e6 {
		t.Errorf("line rate = %v", got)
	}
}

// TestExperimentDirRoundTripPublicAPI saves and reloads an experiment
// definition through the façade.
func TestExperimentDirRoundTripPublicAPI(t *testing.T) {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	exp := topo.Experiment(pos.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000}, RuntimeSec: 1})
	dir := t.TempDir() + "/exp"
	if err := pos.SaveExperimentDir(exp, dir); err != nil {
		t.Fatal(err)
	}
	got, err := pos.LoadExperimentDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != exp.Name || len(got.Hosts) != len(exp.Hosts) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestAggregateSeriesPublicAPI(t *testing.T) {
	rep := func(y float64) []pos.Series {
		return []pos.Series{{Name: "64", Points: []pos.Point{{X: 1, Y: y}}}}
	}
	agg, err := pos.AggregateSeries([][]pos.Series{rep(1), rep(3)})
	if err != nil {
		t.Fatal(err)
	}
	if agg[0].Points[0].Y != 2 || agg[0].Points[0].YErr == 0 {
		t.Errorf("agg = %+v", agg[0].Points[0])
	}
}

func TestArtifactCheckPublicAPI(t *testing.T) {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, _ := pos.NewResultsStore(t.TempDir())
	exp := topo.Experiment(pos.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000}, RuntimeSec: 1})
	if _, err := topo.Testbed.Runner().Run(context.Background(), exp, store); err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments(exp.User, exp.Name)
	rec, err := store.OpenExperiment(exp.User, exp.Name, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pos.CheckArtifact(rec)
	if err != nil || !rep.OK() {
		t.Errorf("check = %+v, %v", rep, err)
	}
}

func TestVerifyRepeatabilityPublicAPI(t *testing.T) {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, _ := pos.NewResultsStore(t.TempDir())
	exp := topo.Experiment(pos.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000}, RuntimeSec: 1})
	rep, err := pos.VerifyRepeatability(context.Background(), topo.Testbed.Runner(), exp, store,
		pos.RepeatConfig{Repetitions: 2, Node: topo.LoadGen, Artifact: "moongen.log"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Errorf("bare metal not repeatable: %+v", rep)
	}
}

func TestGeneratorProfilesPublicAPI(t *testing.T) {
	for _, p := range []pos.GeneratorProfile{pos.MoonGenProfile(), pos.OSNTProfile(), pos.IPerfProfile()} {
		topo, err := pos.NewCaseStudy(pos.BareMetal, pos.WithGenerator(p))
		if err != nil {
			t.Fatal(err)
		}
		point, err := topo.DirectRun(64, 20_000, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if point.RxMpps < 0.019 || point.RxMpps > 0.021 {
			t.Errorf("%s: rx = %v", p.Name, point.RxMpps)
		}
		topo.Close()
	}
}
