package pos_test

import (
	"context"
	"testing"
	"time"

	"pos"
	"pos/internal/compare"
	"pos/internal/telemetry"
)

// The cross-shard data plane is a pure performance optimization: a chain
// topology partitioned across shards must produce byte-identical results to
// the same chain collapsed onto a single scalar engine (WithScalarEngine) —
// same sweep points, same latency samples, same workflow artifact trees.
// These tests hold the partitioned engine to that contract.

func chainPair(t *testing.T, flavor pos.Flavor, cfg pos.ChainConfig, opts ...pos.CaseStudyOption) (sharded, scalar *pos.CaseStudy) {
	t.Helper()
	sharded, err := pos.NewCaseStudyChain(flavor, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err = pos.NewCaseStudyChain(flavor, cfg, append(opts, pos.WithScalarEngine())...)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards < 2 {
		t.Fatalf("sharded chain collapsed to %d shard(s)", sharded.Shards)
	}
	if scalar.Shards != 1 {
		t.Fatalf("scalar oracle has %d shards, want 1", scalar.Shards)
	}
	return sharded, scalar
}

// TestCrossShardMatchesScalarChain sweeps the partitioned 4-shard chain and
// its single-engine scalar oracle through identical measurement points and
// requires every field of every point to agree exactly.
func TestCrossShardMatchesScalarChain(t *testing.T) {
	cfg := pos.ChainConfig{Routers: 8, Clusters: 4, Shards: 4}
	sharded, scalar := chainPair(t, pos.BareMetal, cfg)
	defer sharded.Close()
	defer scalar.Close()
	for _, size := range []int{64, 1500} {
		for _, rate := range []float64{10_000, 150_000, 300_000, 1_000_000, 1_800_000} {
			got, err := sharded.DirectRun(size, rate, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scalar.DirectRun(size, rate, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("size=%d rate=%g: sharded %+v != scalar %+v", size, rate, got, want)
			}
		}
	}
	if sharded.Group.LateInjections() != 0 {
		t.Fatalf("lookahead violated: %d late injections", sharded.Group.LateInjections())
	}
	if sharded.Group.CrossInjections() == 0 {
		t.Fatal("no traffic crossed shard boundaries — the partition did not cut the path")
	}
}

// TestCrossShardMatchesScalarVirtualChain repeats the sweep on the seeded
// virtual platform: per-router jitter models must replay identically whether
// the routers share an engine or are spread across shards.
func TestCrossShardMatchesScalarVirtualChain(t *testing.T) {
	cfg := pos.ChainConfig{Routers: 4, Clusters: 2, Shards: 2}
	sharded, scalar := chainPair(t, pos.Virtual, cfg, pos.WithSeed(7))
	defer sharded.Close()
	defer scalar.Close()
	for _, rate := range []float64{20_000, 120_000, 250_000} {
		got, err := sharded.DirectRun(64, rate, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scalar.DirectRun(64, rate, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rate=%g: sharded %+v != scalar %+v", rate, got, want)
		}
	}
}

// TestCrossShardMatchesScalarLatencySamples compares the raw latency sample
// streams — order and value — across the partitioned multi-hop path.
func TestCrossShardMatchesScalarLatencySamples(t *testing.T) {
	cfg := pos.ChainConfig{Routers: 8, Clusters: 4, Shards: 4}
	sharded, scalar := chainPair(t, pos.BareMetal, cfg)
	defer sharded.Close()
	defer scalar.Close()
	got, err := sharded.LatencySamples(64, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scalar.LatencySamples(64, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("sample counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestCrossShardMatchesScalarWorkflowArtifacts runs the full pos workflow —
// control plane, measurement scripts, artifact uploads — against the
// partitioned chain and its scalar oracle with a pinned wall clock, then
// diffs the experiment result trees byte for byte.
func TestCrossShardMatchesScalarWorkflowArtifacts(t *testing.T) {
	sweep := pos.SweepConfig{
		Sizes:      []int{64},
		RatesPPS:   []int{10_000, 300_000},
		RuntimeSec: 1,
	}
	chain := pos.ChainConfig{Routers: 4, Clusters: 2, Shards: 2}
	epoch := time.Date(2021, 10, 12, 11, 20, 32, 230471000, time.UTC)
	telemetry.Default.SetEnabled(false)
	defer telemetry.Default.SetEnabled(true)
	runTree := func(opts ...pos.CaseStudyOption) string {
		topo, err := pos.NewCaseStudyChain(pos.Virtual, chain, append([]pos.CaseStudyOption{pos.WithSeed(3)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		store, err := pos.NewResultsStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		exp := topo.Experiment(sweep)
		runner := topo.Testbed.Runner()
		runner.Clock = func() time.Time { return epoch }
		if _, err := runner.Run(context.Background(), exp, store); err != nil {
			t.Fatal(err)
		}
		ids, err := store.ListExperiments(exp.User, exp.Name)
		if err != nil || len(ids) != 1 {
			t.Fatalf("experiments = %v, %v", ids, err)
		}
		rec, err := store.OpenExperiment(exp.User, exp.Name, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		return rec.Dir()
	}
	shardedDir := runTree()
	scalarDir := runTree(pos.WithScalarEngine())
	diffs, err := compare.DiffExperiments(shardedDir, scalarDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("artifact differs: %s", d)
	}
}
