// Linux-router case study (paper Sec. 5 / Appendix A): run the full 60-run
// sweep on both platforms — pos (bare metal) and vpos (virtual clone) —
// generate the Fig. 3 throughput plots in SVG/TeX/CSV, and publish each
// experiment as an artifact bundle with a generated website.
//
// Usage:
//
//	linuxrouter [-results DIR] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pos"
)

func main() {
	log.SetFlags(0)
	resultsDir := flag.String("results", "", "results root (default: temp dir)")
	quick := flag.Bool("quick", false, "run a reduced sweep (2x5 runs per platform)")
	flag.Parse()

	dir := *resultsDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "pos-linuxrouter-*")
		if err != nil {
			log.Fatal(err)
		}
	}
	store, err := pos.NewResultsStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	sweep := pos.PaperSweep()
	if *quick {
		sweep.RatesPPS = []int{10_000, 50_000, 100_000, 200_000, 300_000}
		sweep.RuntimeSec = 1
	}

	for _, flavor := range []pos.Flavor{pos.BareMetal, pos.Virtual} {
		if err := runPlatform(store, flavor, sweep); err != nil {
			log.Fatalf("%s: %v", flavor, err)
		}
	}
	fmt.Println("\nall artifacts under", dir)
}

func runPlatform(store *pos.ResultsStore, flavor pos.Flavor, sweep pos.SweepConfig) error {
	fmt.Printf("\n=== platform %s ===\n", flavor)
	topo, err := pos.NewCaseStudy(flavor, pos.WithSeed(1))
	if err != nil {
		return err
	}
	defer topo.Close()

	exp := topo.Experiment(sweep)
	if flavor == pos.BareMetal {
		// On hardware, also collect MoonGen's latency histograms —
		// vpos cannot (no hardware timestamps), so its scripts stay
		// throughput-only, exactly like the paper's appendix.
		exp.Hosts[0].Measurement = `echo run $RUN rate=$pkt_rate size=$pkt_sz
pos_run moongen.log moongen --rate $pkt_rate --size $pkt_sz --time $runtime
pos_run latency.csv moongen_hist
pos_sync run_done 2
`
	}
	runner := topo.Testbed.Runner()
	trace := pos.NewTraceRecorder()
	total := pos.NumRuns(exp.LoopVars)
	trace.Forward = func(ev pos.ProgressEvent) {
		if ev.Phase == "measurement" {
			// The paper's progress bar, in spirit.
			fmt.Printf("\r  [%-30s] %d/%d", bar(ev.Run+1, total, 30), ev.Run+1, total)
		}
	}
	runner.Progress = trace.Observe
	sum, err := runner.Run(context.Background(), exp, store)
	if err != nil {
		return err
	}
	fmt.Printf("\n  %d runs, %d failed\n", sum.TotalRuns, sum.FailedRuns)

	// Evaluation phase: build the Fig. 3 plot from the collected logs.
	ids, err := store.ListExperiments(exp.User, exp.Name)
	if err != nil {
		return err
	}
	rec, err := store.OpenExperiment(exp.User, exp.Name, ids[len(ids)-1])
	if err != nil {
		return err
	}
	runs, err := pos.LoadRuns(rec, topo.LoadGen, "moongen.log")
	if err != nil {
		return err
	}
	series, err := pos.ThroughputSeries(runs, "pkt_sz", "pkt_rate", 1e-6)
	if err != nil {
		return err
	}
	title := "Linux router forwarding (" + string(flavor) + ")"
	fig := pos.ThroughputFigure(title, series)
	for name, data := range pos.ExportFigure("figures/throughput", fig) {
		if err := rec.AddExperimentArtifact(name, data); err != nil {
			return err
		}
		fmt.Println("  wrote", filepath.Join(rec.Dir(), name))
	}
	// Latency plots on hardware (vpos has no latency artifacts).
	if lat, err := pos.LoadLatency(rec, topo.LoadGen, "latency.csv"); err == nil && len(lat) > 0 {
		cdf := pos.LatencyCDFFigure("Forwarding latency ("+string(flavor)+")", lat)
		for name, data := range pos.ExportFigure("figures/latency-cdf", cdf) {
			if err := rec.AddExperimentArtifact(name, data); err != nil {
				return err
			}
		}
		fmt.Printf("  wrote latency CDFs for %d combinations\n", len(lat))
	}
	// The execution trace becomes part of the artifact.
	if err := trace.Archive(rec); err != nil {
		return err
	}
	// Artifact evaluation before release.
	check, err := pos.CheckArtifact(rec)
	if err != nil {
		return err
	}
	if !check.OK() {
		return fmt.Errorf("artifact incomplete:\n%s", check.Render())
	}
	fmt.Printf("  artifact check: %d runs, publishable\n", check.RunsChecked)

	// Publication phase: website + archive.
	archive := filepath.Join(rec.Dir(), "..", exp.Name+"-"+rec.ID()+".tar.gz")
	manifest, err := pos.Release(rec, exp.User, exp.Name, archive)
	if err != nil {
		return err
	}
	fmt.Printf("  published %d files (%d runs) to %s\n", len(manifest.Files), manifest.Runs, archive)
	return nil
}

func bar(done, total, width int) string {
	n := done * width / total
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '='
		} else {
			out[i] = ' '
		}
	}
	return string(out)
}
