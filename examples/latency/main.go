// Latency analysis on the bare-metal platform: sweep load levels on the
// Linux-router DuT, collect hardware-timestamped one-way latency samples,
// and render every distribution representation the pos evaluation phase
// ships — CDF, HDR percentile curve, histogram, and violin — to SVG/TeX/CSV.
// On vpos this experiment is impossible (no hardware timestamps); the
// program demonstrates that too.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"pos"
)

func main() {
	log.SetFlags(0)
	outDir, err := os.MkdirTemp("", "pos-latency-*")
	if err != nil {
		log.Fatal(err)
	}

	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		log.Fatal(err)
	}
	defer topo.Close()

	// Three load levels: light, moderate, near saturation of the
	// 1.75 Mpps bare-metal forwarding limit.
	loads := []struct {
		label string
		rate  float64
	}{
		{"0.1 Mpps", 100_000},
		{"0.8 Mpps", 800_000},
		{"1.6 Mpps", 1_600_000},
	}
	samples := make(map[string][]float64, len(loads))
	for _, l := range loads {
		ns, err := topo.LatencySamples(64, l.rate, 1)
		if err != nil {
			log.Fatal(err)
		}
		sorted := append([]float64(nil), ns...)
		sort.Float64s(sorted)
		fmt.Printf("%s offered: %6d samples, p50 %.1f µs, p99 %.1f µs\n",
			l.label, len(ns), sorted[len(sorted)/2]/1000, sorted[len(sorted)*99/100]/1000)
		samples[l.label] = ns
	}

	figures := map[string]*pos.Figure{
		"latency-cdf":    pos.LatencyCDFFigure("Forwarding latency CDF", samples),
		"latency-hdr":    pos.LatencyHDRFigure("Forwarding latency percentiles", samples),
		"latency-violin": pos.LatencyViolinFigure("Forwarding latency by load", samples),
		"latency-hist":   pos.LatencyHistogramFigure("Latency at 0.8 Mpps", samples["0.8 Mpps"], 30),
	}
	for base, fig := range figures {
		for name, data := range pos.ExportFigure(base, fig) {
			path := filepath.Join(outDir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}

	// The vpos counterpoint: latency measurements are unavailable, while
	// throughput measurement still works.
	vtopo, err := pos.NewCaseStudy(pos.Virtual)
	if err != nil {
		log.Fatal(err)
	}
	defer vtopo.Close()
	vp, err := vtopo.DirectRun(64, 20_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vtopo.LatencySamples(64, 20_000, 1); err != nil {
		fmt.Printf("\nvpos: rx %.3f Mpps, but: %v\n", vp.RxMpps, err)
		fmt.Println("(the paper: \"in our VM, we cannot generate latency measurements\")")
	} else {
		log.Fatal("vpos unexpectedly produced latency samples")
	}
}
