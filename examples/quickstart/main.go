// Quickstart: run a miniature version of the paper's case study end to end —
// allocate the two-node testbed, boot both hosts from the pinned Debian
// Buster live image, sweep a few rate/size combinations, and print where the
// collected artifacts landed.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pos"
)

func main() {
	log.SetFlags(0)

	// Build the paper's two-node topology on the bare-metal platform.
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		log.Fatal(err)
	}
	defer topo.Close()

	// Results land in a pos-style tree: <root>/<user>/<experiment>/<ts>/.
	dir, err := os.MkdirTemp("", "pos-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	store, err := pos.NewResultsStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A small sweep: 2 packet sizes x 3 rates = 6 measurement runs.
	exp := topo.Experiment(pos.SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 100_000, 300_000},
		RuntimeSec: 1,
	})
	fmt.Printf("experiment %q: %d runs over hosts %v\n",
		exp.Name, pos.NumRuns(exp.LoopVars), exp.NodeNames())

	runner := topo.Testbed.Runner()
	runner.Progress = func(ev pos.ProgressEvent) {
		if ev.Phase == "measurement" {
			fmt.Printf("  run %2d/%d  %s\n", ev.Run+1, ev.TotalRuns, ev.Message)
		}
	}
	sum, err := runner.Run(context.Background(), exp, store)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted %d runs (%d failed)\n", sum.TotalRuns, sum.FailedRuns)
	fmt.Println("artifacts:", sum.ResultsDir)

	// Evaluation: parse the uploaded MoonGen logs and print the series.
	ids, err := store.ListExperiments(exp.User, exp.Name)
	if err != nil || len(ids) == 0 {
		log.Fatalf("no experiments recorded: %v", err)
	}
	rec, err := store.OpenExperiment(exp.User, exp.Name, ids[len(ids)-1])
	if err != nil {
		log.Fatal(err)
	}
	runs, err := pos.LoadRuns(rec, topo.LoadGen, "moongen.log")
	if err != nil {
		log.Fatal(err)
	}
	series, err := pos.ThroughputSeries(runs, "pkt_sz", "pkt_rate", 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthroughput (received Mpps over offered Mpps):")
	for _, s := range series {
		fmt.Printf("  %5s B:", s.Name)
		for _, p := range s.Points {
			fmt.Printf("  %.3f→%.3f", p.X, p.Y)
		}
		fmt.Println()
	}
}
