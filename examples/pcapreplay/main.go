// Pcap replay: the second traffic source the paper names. This program
// records a synthetic mixed-size capture to a real libpcap file, reads it
// back, and replays it through the Linux-router DuT on both platforms,
// comparing the replayed throughput with synthetic generation at the same
// rate.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pos"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "pos-pcapreplay-*")
	if err != nil {
		log.Fatal(err)
	}
	capPath := filepath.Join(dir, "mixed.pcap")

	// 1. Record: a capture alternating IMIX-ish frame sizes.
	if err := record(capPath); err != nil {
		log.Fatal(err)
	}

	// 2. Read it back with the pcap reader.
	f, err := os.Open(capPath)
	if err != nil {
		log.Fatal(err)
	}
	r, err := pos.NewPcapReader(f)
	if err != nil {
		log.Fatal(err)
	}
	packets, err := r.ReadAll()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture %s: %d packets, nanosecond timestamps: %v\n",
		capPath, len(packets), r.Nanoseconds())

	// 3. Replay through the DuT on both platforms.
	for _, flavor := range []pos.Flavor{pos.BareMetal, pos.Virtual} {
		topo, err := pos.NewCaseStudy(flavor)
		if err != nil {
			log.Fatal(err)
		}
		rate := 30_000.0
		replayed, err := topo.ReplayRun(packets, rate, 1)
		if err != nil {
			log.Fatal(err)
		}
		synthetic, err := topo.DirectRun(64, rate, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s replay  at %.0f pps: rx %.4f Mpps (loss %.2f%%)\n",
			flavor, rate, replayed.RxMpps, replayed.LossRatio*100)
		fmt.Printf("%-5s synth   at %.0f pps: rx %.4f Mpps (loss %.2f%%)\n",
			flavor, rate, synthetic.RxMpps, synthetic.LossRatio*100)
		topo.Close()
	}
}

// record writes a small mixed-size capture.
func record(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := pos.NewPcapWriter(f, 0)
	base := time.Date(2021, 12, 7, 9, 0, 0, 0, time.UTC)
	sizes := []int{64, 576, 1500} // classic IMIX mix
	for i := 0; i < 30; i++ {
		tpl := pos.UDPTemplate{
			SrcMAC: pos.MAC{0x02, 0, 0, 0, 0, 1}, DstMAC: pos.MAC{0x02, 0, 0, 0, 0, 2},
			SrcIP: pos.IPv4Addr{10, 0, 0, 2}, DstIP: pos.IPv4Addr{10, 0, 1, 2},
			SrcPort: uint16(10000 + i), DstPort: 4321,
			FrameSize: sizes[i%len(sizes)],
		}
		frame, err := tpl.Build()
		if err != nil {
			return err
		}
		err = w.WritePacket(pos.PcapPacket{
			Timestamp: base.Add(time.Duration(i) * time.Millisecond),
			Data:      frame,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
