// Multinode: a distributed experiment across 15 testbed nodes, the scale the
// paper reports using pos for ("distributed network experiments involving 15
// nodes" — a secret-sharing multiparty-computation study, Sec. 6). Every
// node runs the same scripts; barriers synchronize the computation rounds;
// each node uploads its own timing results, which the evaluation phase
// aggregates into per-payload statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"pos"
)

const parties = 15

func main() {
	log.SetFlags(0)
	tb := pos.NewTestbed()
	defer tb.Close()
	if err := tb.Images.Add(pos.DebianBusterImage()); err != nil {
		log.Fatal(err)
	}

	// 15 peers: vnode00 … vnode14, each with the MPC workload deployed on
	// boot (the analog of the binary the live image ships).
	var hosts []pos.HostSpec
	for i := 0; i < parties; i++ {
		name := fmt.Sprintf("vnode%02d", i)
		h, err := tb.AddNode(name)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		h.OnBoot(func(n *pos.Node) error {
			return n.RegisterCommand("mpc_round", mpcRound(idx))
		})
		hosts = append(hosts, pos.HostSpec{
			Role:  fmt.Sprintf("party%02d", i),
			Node:  name,
			Image: "debian-buster",
			Setup: `echo party $ROLE on $NODE ready
pos_sync setup_done ` + fmt.Sprint(parties) + `
`,
			Measurement: `pos_sync round_start ` + fmt.Sprint(parties) + `
pos_run timing.txt mpc_round $payload_bytes
pos_sync round_done ` + fmt.Sprint(parties) + `
`,
		})
	}

	exp := &pos.Experiment{
		Name: "mpc-secret-sharing",
		User: "user",
		LoopVars: []pos.LoopVar{
			{Name: "payload_bytes", Values: []string{"1024", "16384", "262144"}},
		},
		Hosts:    hosts,
		Duration: time.Hour,
	}

	dir, err := os.MkdirTemp("", "pos-multinode-*")
	if err != nil {
		log.Fatal(err)
	}
	store, err := pos.NewResultsStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	runner := tb.Runner()
	runner.Progress = func(ev pos.ProgressEvent) {
		if ev.Phase == "measurement" {
			fmt.Printf("run %d/%d: %s\n", ev.Run+1, ev.TotalRuns, ev.Message)
		}
	}
	sum, err := runner.Run(context.Background(), exp, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d runs across %d nodes complete\n\n", sum.TotalRuns, parties)

	// Evaluation: aggregate the per-party timings per payload size.
	ids, _ := store.ListExperiments(exp.User, exp.Name)
	rec, err := store.OpenExperiment(exp.User, exp.Name, ids[len(ids)-1])
	if err != nil {
		log.Fatal(err)
	}
	runs, err := rec.Runs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10s %10s %10s\n", "payload [B]", "min [ms]", "median", "max")
	for _, run := range runs {
		meta, err := rec.ReadRunMeta(run)
		if err != nil {
			log.Fatal(err)
		}
		var elapsed []float64
		for i := 0; i < parties; i++ {
			data, err := rec.ReadRunArtifact(run, fmt.Sprintf("vnode%02d", i), "timing.txt")
			if err != nil {
				log.Fatal(err)
			}
			var party int
			var ms float64
			if _, err := fmt.Sscanf(string(data), "party=%d elapsed_ms=%f", &party, &ms); err != nil {
				log.Fatalf("bad timing artifact %q: %v", data, err)
			}
			elapsed = append(elapsed, ms)
		}
		sort.Float64s(elapsed)
		fmt.Printf("%-14s %10.1f %10.1f %10.1f\n",
			meta.LoopVars["payload_bytes"], elapsed[0], elapsed[len(elapsed)/2], elapsed[len(elapsed)-1])
	}
	fmt.Println("\nartifacts:", rec.Dir())
}

// mpcRound models one secret-sharing round: pairwise share exchange and
// reconstruction, with cost growing in the payload size and the number of
// parties. Deterministic per (party, payload) so the experiment reproduces.
func mpcRound(party int) pos.NodeCommand {
	return func(_ context.Context, n *pos.Node, args []string, stdout, _ pos.NodeWriter) error {
		if len(args) != 1 {
			return fmt.Errorf("usage: mpc_round <payload-bytes>")
		}
		payload, err := strconv.Atoi(args[0])
		if err != nil || payload <= 0 {
			return fmt.Errorf("mpc_round: bad payload %q", args[0])
		}
		// Cost model: per-pair share transfer (payload/bandwidth) plus
		// polynomial evaluation per share; small per-party skew.
		const linkMBps = 100.0
		transferMS := float64(payload) / (linkMBps * 1000) * float64(parties-1)
		computeMS := 0.002 * float64(parties) * float64(payload) / 1024
		skew := 1 + 0.05*float64(party%5)/5
		elapsed := (transferMS + computeMS) * skew
		fmt.Fprintf(writer{stdout}, "party=%d elapsed_ms=%.3f\n", party, elapsed)
		return nil
	}
}

type writer struct{ w pos.NodeWriter }

func (w writer) Write(p []byte) (int, error) { return w.w.Write(p) }
