// Virtualtestbed: the Appendix A.1 user journey against the
// virtual-testbed-as-a-service endpoint. The program starts the service,
// then acts as a remote researcher: create a vpos instance over HTTP, run
// the case-study experiment inside it, evaluate the results, verify the
// artifact's completeness, and publish the bundle — without ever touching
// testbed hardware.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pos"
)

func main() {
	log.SetFlags(0)
	base, err := os.MkdirTemp("", "pos-virtualtestbed-*")
	if err != nil {
		log.Fatal(err)
	}

	// Operator side: run the service.
	mgr, err := pos.NewVposManager(base)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := pos.ServeVpos(mgr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("virtual testbed service at http://" + srv.Addr())

	// Researcher side: everything below goes over HTTP.
	c := pos.NewVposClient(srv.Addr())
	inst, err := c.Create()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created instance %s with nodes %v\n", inst.ID, inst.Nodes)

	info, err := c.Run(inst.ID, []int{64, 1500}, []int{10_000, 40_000, 150_000, 300_000}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s: %d runs (%d failed) in %v\n",
		info.Experiment, info.TotalRuns, info.FailedRuns, info.FinishedAt.Sub(info.StartedAt))

	// Evaluation happens on the instance's results tree, exactly like on
	// the hardware testbed.
	store, err := mgr.Results(inst.ID)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := store.ListExperiments("user", info.Experiment)
	if err != nil || len(ids) == 0 {
		log.Fatalf("results missing: %v", err)
	}
	rec, err := store.OpenExperiment("user", info.Experiment, ids[len(ids)-1])
	if err != nil {
		log.Fatal(err)
	}
	runs, err := pos.LoadRuns(rec, "vriga", "moongen.log")
	if err != nil {
		log.Fatal(err)
	}
	series, err := pos.ThroughputSeries(runs, "pkt_sz", "pkt_rate", 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvpos throughput (received Mpps over offered Mpps):")
	for _, s := range series {
		fmt.Printf("  %5s B:", s.Name)
		for _, p := range s.Points {
			fmt.Printf("  %.3f→%.3f", p.X, p.Y)
		}
		fmt.Println()
	}

	// Artifact evaluation before release.
	check, err := pos.CheckArtifact(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\n" + check.Render())
	if !check.OK() {
		log.Fatal("artifact incomplete")
	}
	archive := filepath.Join(base, inst.ID+"-artifacts.tar.gz")
	m, err := pos.Release(rec, "user", info.Experiment, archive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d files -> %s\n", len(m.Files), archive)

	if err := c.Destroy(inst.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance destroyed; artifacts preserved under", base)
}
