package pos_test

// End-to-end causal tracing: a queue-dispatched 2-replica campaign must
// stitch into ONE trace — the submitting posctl invocation, the controller's
// campaign span, and both replica lanes all under the submitter's trace ID —
// and the assembled timeline must attribute every wall-clock millisecond to a
// phase. The -baseline drift check must flag an injected slowdown and stay
// quiet against a re-assembly of the same archive.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pos"

	"pos/internal/eventlog"
	"pos/internal/results"
	"pos/internal/sched"
	"pos/internal/telemetry"
)

// runTracedCampaign dispatches a 2-replica campaign the way the queue does —
// pending submitter traceparent plus admission stamps on the context — and
// returns the experiment directory holding the archived spans.json.
func runTracedCampaign(t *testing.T, tp string, submitted time.Time, delay time.Duration) string {
	t.Helper()
	dir := t.TempDir()
	store, err := results.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := telemetry.ContextWithTraceParent(context.Background(), tp)
	ctx = eventlog.WithAdmission(ctx, eventlog.Admission{
		SubmissionID: "7", User: "alice",
		Submitted: submitted, Admitted: time.Now(),
	})
	c := &sched.Campaign{Replicas: []sched.Replica{
		benchReplica("alpha", "n0", delay),
		benchReplica("beta", "n1", delay),
	}}
	sum, err := c.Run(ctx, store)
	if err != nil || sum.FailedRuns != 0 {
		t.Fatalf("campaign: sum=%+v err=%v", sum, err)
	}
	archives := findArtifacts(t, dir, "spans.json")
	if len(archives) != 1 {
		t.Fatalf("spans.json archives = %v, want exactly one", archives)
	}
	return filepath.Dir(archives[0])
}

func TestQueueSubmittedCampaignStitchesOneTrace(t *testing.T) {
	pos.SetTelemetryEnabled(true)
	// The posctl side of the story: the submit command's own trace. The real
	// CLI finishes it as soon as the submit RPC returns — BEFORE the campaign
	// runs — so the posctl:submit span must not clamp the analysis interval.
	submit := pos.NewSpanTrace("posctl:submit")
	submit.SetProcess("posctl")
	tp := submit.Root().TraceParent()
	submit.Finish()
	submitted := time.Now().Add(-15 * time.Second)

	expdir := runTracedCampaign(t, tp, submitted, 2*time.Millisecond)

	// Drop the posctl lane next to the controller's archive, the way
	// `posctl submit -spans` documents it.
	data, err := submit.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(expdir, "spans-posctl.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	tl, err := pos.AssembleTimeline(expdir)
	if err != nil {
		t.Fatal(err)
	}

	// ONE trace: the controller adopted the submitter's identity, and every
	// archived span — posctl lane, campaign root, both replica lanes — is
	// under it.
	if tl.TraceID != submit.ID() {
		t.Fatalf("timeline trace = %s, want submitter's %s", tl.TraceID, submit.ID())
	}
	// The analysis anchors on the campaign span even though it sits under the
	// long-finished posctl:submit root — the campaign's wall clock, not the
	// submit RPC's, is the analyzed interval.
	if tl.Root != "campaign:parallel-bench" {
		t.Fatalf("timeline root = %q, want the campaign span", tl.Root)
	}
	recs, err := pos.ReadSpanArchives(expdir)
	if err != nil {
		t.Fatal(err)
	}
	lanes := map[string]bool{}
	for _, r := range recs {
		if r.TraceID != submit.ID() {
			t.Errorf("span %q (proc %s) trace = %q, want %q", r.Name, r.Proc, r.TraceID, submit.ID())
		}
		lanes[r.Name] = true
	}
	for _, want := range []string{"posctl:submit", "campaign:parallel-bench", "replica:alpha", "replica:beta"} {
		if !lanes[want] {
			t.Errorf("stitched archive missing span %q", want)
		}
	}
	if len(tl.Procs) != 2 || tl.Procs[0] != "controller" || tl.Procs[1] != "posctl" {
		t.Errorf("procs = %v, want [controller posctl]", tl.Procs)
	}

	// Attribution that adds up: phase totals within 2% of wall clock (they
	// are exact by construction; 2% is the acceptance margin).
	var phaseTotal float64
	for _, p := range tl.Phases {
		phaseTotal += p.MS
	}
	if tl.WallMS <= 0 || phaseTotal < tl.WallMS*0.98 || phaseTotal > tl.WallMS*1.02 {
		t.Errorf("phases sum %v ms, wall %v ms — attribution does not add up", phaseTotal, tl.WallMS)
	}

	// The queue wait folded in from the journaled admission record.
	if tl.QueueWaitMS < 14_000 || tl.QueueWaitMS > 16_000 {
		t.Errorf("queue wait = %v ms, want ~15000", tl.QueueWaitMS)
	}
	if tl.QueueUser != "alice" {
		t.Errorf("queue user = %q, want alice", tl.QueueUser)
	}

	// Both replica lanes contribute runs.
	if len(tl.Replicas) != 2 {
		t.Fatalf("replicas = %+v, want 2 lanes", tl.Replicas)
	}
	for _, r := range tl.Replicas {
		if r.Runs == 0 {
			t.Errorf("replica %s attributed no runs", r.Name)
		}
	}

	// Baseline check against the same archive: byte-identical inputs are
	// quiet at any threshold.
	again, err := pos.AssembleTimeline(expdir)
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.CompareTimelines(tl, again, 0); d.Flagged {
		t.Errorf("drift flagged between identical assemblies: %+v", d)
	}
}

func TestBaselineDriftFlagsInjectedSlowdown(t *testing.T) {
	pos.SetTelemetryEnabled(true)
	run := func(delay time.Duration) *pos.CampaignTimeline {
		tr := pos.NewSpanTrace("posctl:submit")
		expdir := runTracedCampaign(t, tr.Root().TraceParent(), time.Now(), delay)
		tl, err := pos.AssembleTimeline(expdir)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	base := run(2 * time.Millisecond)
	// The injected slowdown: every measurement takes 15x longer — the shape
	// of a DuT misconfiguration that posctl analyze -baseline must catch.
	slow := run(30 * time.Millisecond)

	d := pos.CompareTimelines(base, slow, 0.25)
	if !d.Flagged {
		t.Fatalf("15x measurement slowdown not flagged: %+v", d)
	}
	found := false
	for _, p := range d.Phases {
		if p.Phase == "measurement" && p.Flagged {
			found = true
			if p.Ratio < 2 {
				t.Errorf("measurement ratio = %v, want well above threshold", p.Ratio)
			}
		}
	}
	if !found {
		t.Errorf("slowdown not attributed to the measurement phase: %+v", d.Phases)
	}
}
