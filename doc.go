// Package pos is a Go reproduction of "The pos Framework: A Methodology and
// Toolchain for Reproducible Network Experiments" (Gallenmüller, Scholz,
// Stubbe, Carle — CoNEXT 2021).
//
// pos ("plain orchestrating service") makes network experiments reproducible
// by construction: experiments are pure data — per-host setup and
// measurement scripts strictly separated from global/local/loop variable
// files — executed by a testbed controller that allocates nodes on a shared
// calendar, resets them out of band, boots them from versioned live images,
// expands loop variables into a full cross product of measurement runs, and
// collects every artifact (scripts, variables, outputs, metadata) into a
// self-describing results tree ready for evaluation and publication.
//
// # Architecture
//
// The public API of this package fronts three layers:
//
//   - The methodology (internal/core): variables, cross-product expansion,
//     and the setup → measurement → evaluation workflow engine.
//   - The testbed (internal/testbed and friends): emulated experiment hosts
//     with IPMI-like out-of-band management and SSH-like script execution
//     over real TCP, live-boot images, an allocation calendar, host-side
//     utility tools (variables, barriers, result upload), and a central
//     results store.
//   - The data plane (internal/sim, netem, loadgen, router): a
//     deterministic discrete-event emulation of the paper's hardware — a
//     MoonGen-style load generator and a Linux-router DuT on directly wired
//     10 Gbit/s links — with calibrated bare-metal and virtualized
//     performance models reproducing Fig. 3 of the paper.
//
// Evaluation (internal/eval, internal/plot) parses MoonGen-format logs into
// throughput/latency series and renders line, histogram, CDF, HDR, and
// violin figures to SVG, TeX, and CSV. Publication (internal/publish)
// bundles all artifacts into an archive plus a generated website.
//
// # Quick start
//
//	topo, _ := pos.NewCaseStudy(pos.BareMetal)
//	defer topo.Close()
//	store, _ := pos.NewResultsStore("results")
//	sum, _ := topo.Testbed.Runner().Run(context.Background(),
//	        topo.Experiment(pos.PaperSweep()), store)
//	fmt.Println(sum.TotalRuns, "runs in", sum.ResultsDir)
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record of
// every table and figure.
package pos
