package pos_test

import (
	"context"
	"fmt"
	"os"

	"pos"
)

// ExampleCrossProduct shows the loop-variable expansion at the heart of the
// measurement phase: every combination becomes one run.
func ExampleCrossProduct() {
	combos, _ := pos.CrossProduct([]pos.LoopVar{
		{Name: "pkt_sz", Values: []string{"64", "1500"}},
		{Name: "pkt_rate", Values: []string{"10000", "20000"}},
	})
	for _, c := range combos {
		fmt.Println(c.Key())
	}
	// Output:
	// pkt_rate=10000,pkt_sz=64
	// pkt_rate=20000,pkt_sz=64
	// pkt_rate=10000,pkt_sz=1500
	// pkt_rate=20000,pkt_sz=1500
}

// ExampleMergeVars shows pos variable precedence: global < local < loop.
func ExampleMergeVars() {
	global := pos.Vars{"port": "eno1", "runtime": "2"}
	local := pos.Vars{"port": "eno2"}
	loop := pos.Vars{"pkt_sz": "64"}
	merged := pos.MergeVars(global, local, loop)
	fmt.Println(merged["port"], merged["runtime"], merged["pkt_sz"])
	// Output: eno2 2 64
}

// ExampleNewCaseStudy runs one measurement point of the paper's case study
// on the bare-metal platform.
func ExampleNewCaseStudy() {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()
	point, err := topo.DirectRun(64, 100_000, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("offered 0.100 Mpps, received %.3f Mpps, loss %.0f%%\n",
		point.RxMpps, point.LossRatio*100)
	// Output: offered 0.100 Mpps, received 0.100 Mpps, loss 0%
}

// ExampleSearchNDR finds the highest drop-free rate of the bare-metal DuT.
func ExampleSearchNDR() {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()
	res, err := pos.SearchNDR(
		pos.NDRConfig{MinPPS: 10_000, MaxPPS: 2_500_000, Precision: 0.01},
		func(rate float64) (float64, error) {
			p, err := topo.DirectRun(64, rate, 1)
			if err != nil {
				return 0, err
			}
			return p.LossRatio, nil
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("NDR %.2f Mpps\n", res.NDRPPS/1e6)
	// Output: NDR 1.74 Mpps
}

// ExampleWriteComparisonTable regenerates the paper's Table 1.
func ExampleWriteComparisonTable() {
	_ = pos.WriteComparisonTable(os.Stdout)
	// The table lists Chameleon, CloudLab, Grid'5000, OMF, NEPI, SNDZoo,
	// and pos against requirements R1-R5; only pos supports all five.
}

// Example_workflow runs a miniature experiment end to end — the programmatic
// equivalent of the quickstart example.
func Example_workflow() {
	topo, err := pos.NewCaseStudy(pos.BareMetal)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()
	dir, err := os.MkdirTemp("", "pos-example-*")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	store, err := pos.NewResultsStore(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	exp := topo.Experiment(pos.SweepConfig{
		Sizes: []int{64}, RatesPPS: []int{10_000, 20_000}, RuntimeSec: 1,
	})
	sum, err := topo.Testbed.Runner().Run(context.Background(), exp, store)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d runs, %d failed\n", sum.TotalRuns, sum.FailedRuns)
	// Output: 2 runs, 0 failed
}
