package pos_test

// End-to-end health-layer tests: a campaign whose measurements hang past the
// stall deadline must trip the watchdog and leave a flightrec.json next to
// the experiment's other artifacts, and every run — stalled campaign or
// healthy one — must archive its resources.json runtime attribution.

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pos"

	"pos/internal/results"
	"pos/internal/sched"
	"pos/internal/sim"
)

// findArtifacts walks an experiment store root and returns every file with
// the given base name — run layout details stay out of the assertions.
func findArtifacts(t *testing.T, root, name string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && d.Name() == name {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// slowSweep is a two-run sweep on a replica whose every measurement takes
// delay of wall clock — long enough for a short stall deadline to expire.
func slowReplica(name, node string, delay time.Duration) sched.Replica {
	rep := benchReplica(name, node, delay)
	rep.Experiment.LoopVars[0].Values = rep.Experiment.LoopVars[0].Values[:2]
	return rep
}

func TestHealthWatchdogTripDumpsFlightRecord(t *testing.T) {
	pos.SetTelemetryEnabled(true)
	dir := t.TempDir()
	store, err := results.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	wd := pos.NewWatchdog(10 * time.Millisecond)
	wd.Start()
	defer wd.Stop()

	// A deterministic fault plan wedges the replica's first measurement
	// (exec occurrence 1 is the session setup) until the 600 ms run timeout
	// cancels it. The campaign's dispatch counter freezes for far longer
	// than the 100 ms stall deadline, so the probe must trip and dump the
	// flight record while the hang is still in progress — and the campaign
	// must still complete once the retry succeeds.
	rep := slowReplica("alpha", "n0", 2*time.Millisecond)
	rep.Runner.InjectFaults(sim.NewFaultInjector(map[string]sim.FaultPlan{
		"n0": {HangExecs: []int{2}},
	}))
	c := &sched.Campaign{
		Replicas:      []sched.Replica{rep},
		MaxAttempts:   2,
		RunTimeout:    600 * time.Millisecond,
		StallDeadline: 100 * time.Millisecond,
		Watchdog:      wd,
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil || sum.FailedRuns != 0 {
		t.Fatalf("campaign: sum=%+v err=%v", sum, err)
	}
	retried := 0
	for _, rec := range sum.Records {
		if rec.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("fault plan injected no hang")
	}

	recs := findArtifacts(t, dir, "flightrec.json")
	if len(recs) != 1 {
		t.Fatalf("flightrec.json files = %v, want exactly one", recs)
	}
	data, err := os.ReadFile(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	fr, err := pos.DecodeFlightRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Trigger != "watchdog" {
		t.Errorf("trigger = %q, want watchdog", fr.Trigger)
	}
	if fr.Probe != "campaign:parallel-bench" {
		t.Errorf("probe = %q", fr.Probe)
	}
	if fr.Detail == "" || fr.At.IsZero() {
		t.Errorf("record header incomplete: %+v", fr)
	}
	if len(fr.Events) == 0 {
		t.Error("flight record carries no recent events")
	}
	if len(fr.Metrics.Metrics) == 0 {
		t.Error("flight record carries no metrics snapshot")
	}
	if !strings.Contains(fr.Goroutines, "goroutine ") {
		t.Error("flight record carries no goroutine dump")
	}
	// The record leads with the answer: a mid-flight critical path and
	// per-phase attribution computed from the still-open span tree.
	analysis, ok := fr.Analysis.(map[string]any)
	if !ok {
		t.Fatalf("flight record analysis = %T, want timeline summary", fr.Analysis)
	}
	if phases, ok := analysis["phases"].([]any); !ok || len(phases) == 0 {
		t.Errorf("flight record analysis has no phase attribution: %v", analysis["phases"])
	}
	if cp, ok := analysis["critical_path"].([]any); !ok || len(cp) == 0 {
		t.Errorf("flight record analysis has no critical path: %v", analysis["critical_path"])
	}

	// The campaign probe is unregistered once the campaign ends.
	if st := wd.Status(); len(st) != 0 {
		t.Errorf("probes left registered after campaign: %+v", st)
	}

	// Every run still archived its runtime attribution.
	assertRunResources(t, dir, sum.TotalRuns)
}

func TestHealthyCampaignArchivesResourcesWithoutTrips(t *testing.T) {
	pos.SetTelemetryEnabled(true)
	dir := t.TempDir()
	store, err := results.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	wd := pos.NewWatchdog(10 * time.Millisecond)
	wd.Start()
	defer wd.Stop()

	c := &sched.Campaign{
		Replicas: []sched.Replica{
			slowReplica("alpha", "n0", 2*time.Millisecond),
			slowReplica("beta", "n1", 2*time.Millisecond),
		},
		Watchdog:      wd,
		StallDeadline: 10 * time.Second,
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil || sum.FailedRuns != 0 {
		t.Fatalf("campaign: sum=%+v err=%v", sum, err)
	}
	if recs := findArtifacts(t, dir, "flightrec.json"); len(recs) != 0 {
		t.Fatalf("healthy campaign dumped flight records: %v", recs)
	}
	assertRunResources(t, dir, sum.TotalRuns)
}

// assertRunResources checks that want runs archived a parseable resources.json
// attributing non-trivial wall clock to the run.
func assertRunResources(t *testing.T, root string, want int) {
	t.Helper()
	paths := findArtifacts(t, root, "resources.json")
	if len(paths) != want {
		t.Fatalf("resources.json files = %d, want %d (%v)", len(paths), want, paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := pos.ReadRuntimeDelta(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if d.WallSeconds <= 0 {
			t.Errorf("%s: wall_seconds = %g, want > 0", p, d.WallSeconds)
		}
		if d.StartedAt.IsZero() || d.FinishedAt.Before(d.StartedAt) {
			t.Errorf("%s: bad window %v..%v", p, d.StartedAt, d.FinishedAt)
		}
		if d.GoroutinesEnd == 0 {
			t.Errorf("%s: goroutine count missing", p)
		}
	}
}
