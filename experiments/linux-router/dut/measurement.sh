# The DuT is passive during a run; collect its counters afterwards.
pos_sync run_done 2
pos_run router.stats router_stats --reset
