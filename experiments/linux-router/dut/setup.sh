# DuT setup: enable IPv4 forwarding, then meet the LoadGen.
echo enabling ip_forward on $NODE
router_enable
pos_set_var global dut_ready 1
pos_sync setup_done 2
