# One measurement run: rate and size come from the loop variables.
echo run $RUN rate=$pkt_rate size=$pkt_sz
pos_run moongen.log moongen --rate $pkt_rate --size $pkt_sz --time $runtime
pos_sync run_done 2
