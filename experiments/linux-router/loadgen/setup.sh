# LoadGen setup: announce readiness and wait for the DuT.
echo configuring MoonGen on $NODE as $ROLE
pos_set_var global loadgen_ready 1
pos_sync setup_done 2
