package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"path/filepath"

	"pos/internal/core"
	"pos/internal/eventlog"
	"pos/internal/hosttools"
	"pos/internal/results"
	"pos/internal/sim"
	"pos/internal/telemetry"
)

// fakeHost is an in-memory core.Host; measurement behaviour is scripted per
// test through the hooks.
type fakeHost struct {
	name string
	svc  *hosttools.Service

	mu      sync.Mutex
	execs   []map[string]string
	reboots int
	// onMeasure runs during each measurement Exec (outside the lock).
	onMeasure func(ctx context.Context, env map[string]string) error
}

func (f *fakeHost) Name() string                                  { return f.name }
func (f *fakeHost) SetBoot(img string, p map[string]string) error { return nil }
func (f *fakeHost) DeployTools() error                            { return nil }

func (f *fakeHost) Reboot() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reboots++
	return nil
}

func (f *fakeHost) Exec(ctx context.Context, script string, env map[string]string) (string, error) {
	cp := make(map[string]string, len(env))
	for k, v := range env {
		cp[k] = v
	}
	f.mu.Lock()
	f.execs = append(f.execs, cp)
	hook := f.onMeasure
	f.mu.Unlock()
	if strings.Contains(script, "measure") && hook != nil {
		if err := hook(ctx, cp); err != nil {
			return "interrupted", err
		}
	}
	return "output of " + script, nil
}

// sweepFor is the campaign's experiment definition bound to one node.
func sweepFor(node string) *core.Experiment {
	return &core.Experiment{
		Name:       "sweep",
		User:       "user",
		GlobalVars: core.Vars{"dut_mac": "02:00:00:00:00:02"},
		LoopVars: []core.LoopVar{
			{Name: "pkt_sz", Values: []string{"64", "1500"}},
			{Name: "pkt_rate", Values: []string{"10000", "20000", "30000"}},
		},
		Hosts: []core.HostSpec{{
			Role: "loadgen", Node: node, Image: "debian-buster",
			Setup: "setup", Measurement: "measure",
		}},
		Duration: time.Hour,
	}
}

// newReplica builds one replica testbed: a single fake host on the shared
// service. Sharing one Service across replicas is the hard case — per-run
// state must stay scoped even though every scope lives on the same endpoint.
func newReplica(name, node string, svc *hosttools.Service) (Replica, *fakeHost) {
	h := &fakeHost{name: node, svc: svc}
	return Replica{
		Name:       name,
		Runner:     &core.Runner{Hosts: map[string]core.Host{node: h}, Service: svc},
		Experiment: sweepFor(node),
	}, h
}

func storeAt(t *testing.T) *results.Store {
	t.Helper()
	s, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignShardsRunsAcrossReplicas(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)

	// Gate: the first measurement on each replica waits for the other, so
	// the test proves two runs genuinely in flight at once (the -race run
	// then exercises the concurrent scope paths). An atomic high-water
	// mark double-checks it.
	var gate sync.WaitGroup
	gate.Add(2)
	var inFlight, maxInFlight atomic.Int32
	var onceA, onceB sync.Once
	measure := func(once *sync.Once) func(ctx context.Context, env map[string]string) error {
		return func(ctx context.Context, env map[string]string) error {
			n := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if n <= m || maxInFlight.CompareAndSwap(m, n) {
					break
				}
			}
			defer inFlight.Add(-1)
			once.Do(func() { gate.Done(); gate.Wait() })
			// Upload through the shared service mid-run: must land in
			// exactly this run's directory.
			return svc.Upload(env["NODE"], "moongen.log", []byte("run "+env["RUN"]))
		}
	}
	hostA.onMeasure = measure(&onceA)
	hostB.onMeasure = measure(&onceB)

	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 6 || sum.FailedRuns != 0 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if got := maxInFlight.Load(); got < 2 {
		t.Errorf("max concurrent runs = %d, want >= 2", got)
	}
	// Deterministic run numbering: records in cross-product order no
	// matter which replica executed which run.
	for i, rec := range sum.Records {
		if rec.Run != i {
			t.Errorf("record %d has run %d", i, rec.Run)
		}
	}
	if sum.Records[0].Combo["pkt_sz"] != "64" || sum.Records[0].Combo["pkt_rate"] != "10000" {
		t.Errorf("run 0 combo = %v", sum.Records[0].Combo)
	}
	// Both replicas pulled work from the queue.
	if len(hostA.execs) < 2 || len(hostB.execs) < 2 {
		t.Errorf("execs alpha=%d beta=%d — work not shared", len(hostA.execs), len(hostB.execs))
	}

	exp, err := store.OpenExperiment("user", "sweep", idFromDir(t, sum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	// Per-run uploads routed to the right run directory despite the
	// shared service: each run holds exactly its own RUN number, uploaded
	// by whichever node executed it.
	for run := 0; run < 6; run++ {
		var data []byte
		var err error
		for _, node := range []string{"nodeA", "nodeB"} {
			if data, err = exp.ReadRunArtifact(run, node, "moongen.log"); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("run %d upload missing: %v", run, err)
		}
		if string(data) != fmt.Sprintf("run %d", run) {
			t.Errorf("run %d upload = %q", run, data)
		}
		if _, err := exp.ReadRunMeta(run); err != nil {
			t.Errorf("run %d metadata: %v", run, err)
		}
	}
	// Definition archived once; setup outputs namespaced per replica; the
	// campaign manifest records the sharding.
	for _, a := range []string{
		"experiment/loop-variables.json",
		"setup/alpha/nodeA.out",
		"setup/beta/nodeB.out",
		"experiment/campaign.json",
	} {
		if _, err := exp.ReadExperimentArtifact(a); err != nil {
			t.Errorf("missing artifact %s: %v", a, err)
		}
	}
}

func idFromDir(t *testing.T, dir string) string {
	t.Helper()
	i := strings.LastIndex(dir, "/")
	return dir[i+1:]
}

// TestCampaignMetadataMatchesSequential pins the clock and compares every
// run's metadata.json byte for byte between the sequential runner and a
// 2-replica campaign: sharding must not be observable in the results.
func TestCampaignMetadataMatchesSequential(t *testing.T) {
	clock := func() time.Time { return time.Date(2021, 12, 7, 10, 0, 0, 0, time.UTC) }

	// Sequential reference.
	seqHost := &fakeHost{name: "nodeA"}
	seqRunner := &core.Runner{
		Hosts:   map[string]core.Host{"nodeA": seqHost},
		Service: hosttools.NewService(nil),
		Clock:   clock,
	}
	seqStore := storeAt(t)
	seqSum, err := seqRunner.Run(context.Background(), sweepFor("nodeA"), seqStore)
	if err != nil {
		t.Fatal(err)
	}

	// 2-replica campaign.
	svc := hosttools.NewService(nil)
	repA, _ := newReplica("alpha", "nodeA", svc)
	repB, _ := newReplica("beta", "nodeB", svc)
	repA.Runner.Clock = clock
	repB.Runner.Clock = clock
	parStore := storeAt(t)
	parSum, err := (&Campaign{Replicas: []Replica{repA, repB}}).Run(context.Background(), parStore)
	if err != nil {
		t.Fatal(err)
	}

	seqExp, err := seqStore.OpenExperiment("user", "sweep", idFromDir(t, seqSum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	parExp, err := parStore.OpenExperiment("user", "sweep", idFromDir(t, parSum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		want, err := seqExp.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		got, err := parExp.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("run %d metadata diverges:\nsequential: %s\ncampaign:   %s", run, want, got)
		}
	}
	// The archived definitions match too.
	for _, a := range []string{"experiment/loop-variables.json", "experiment/global-vars.json"} {
		want, _ := seqExp.ReadExperimentArtifact(a)
		got, err := parExp.ReadExperimentArtifact(a)
		if err != nil || string(want) != string(got) {
			t.Errorf("artifact %s diverges (%v)", a, err)
		}
	}
}

// TestCampaignRunTimeoutContinues: a hung run is cut off by the campaign's
// per-run timeout and recorded as failed; with ContinueOnRunFailure the
// sweep still completes every other run.
func TestCampaignRunTimeoutContinues(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	hang := func(ctx context.Context, env map[string]string) error {
		if env["pkt_rate"] == "20000" && env["pkt_sz"] == "64" {
			<-ctx.Done() // wedged measurement: only the timeout frees it
			return ctx.Err()
		}
		return nil
	}
	hostA.onMeasure = hang
	hostB.onMeasure = hang

	store := storeAt(t)
	c := &Campaign{
		Replicas:             []Replica{repA, repB},
		RunTimeout:           50 * time.Millisecond,
		ContinueOnRunFailure: true,
	}
	start := time.Now()
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatalf("continue-on-failure returned error: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("hung run not bounded by campaign timeout")
	}
	if sum.FailedRuns != 1 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	// The timed-out run (index 1: pkt_sz=64, pkt_rate=20000) is the
	// failed one, and its failure is in the run metadata.
	if !sum.Records[1].Failed {
		t.Errorf("records = %+v", sum.Records)
	}
	exp, _ := store.OpenExperiment("user", "sweep", idFromDir(t, sum.ResultsDir))
	meta, err := exp.ReadRunMeta(1)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Failed || meta.Error == "" {
		t.Errorf("meta = %+v", meta)
	}
}

// TestCampaignFailFast: without ContinueOnRunFailure the first failure
// cancels everything in flight and the campaign reports that run.
func TestCampaignFailFast(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	fail := func(ctx context.Context, env map[string]string) error {
		if env["RUN"] == "2" {
			return errors.New("loadgen crashed")
		}
		return nil
	}
	hostA.onMeasure = fail
	hostB.onMeasure = fail

	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err == nil || !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("err = %v", err)
	}
	if sum.FailedRuns == 0 {
		t.Errorf("summary = %+v", sum)
	}
	// The sweep stopped early: not all 6 runs executed.
	if len(sum.Records) == 6 && sum.FailedRuns == 1 {
		t.Errorf("fail-fast executed the full sweep: %+v", sum)
	}
}

// TestCampaignCancellation: cancelling the campaign context stops the whole
// sweep promptly, including runs blocked in measurement.
func TestCampaignCancellation(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	ctx, cancel := context.WithCancel(context.Background())
	var measured atomic.Int32
	block := func(c context.Context, env map[string]string) error {
		if measured.Add(1) == 2 {
			cancel() // second run in flight cancels the campaign
		}
		<-c.Done()
		return c.Err()
	}
	hostA.onMeasure = block
	hostB.onMeasure = block

	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}, ContinueOnRunFailure: true}
	done := make(chan struct{})
	var sum *core.Summary
	var err error
	go func() {
		sum, err = c.Run(ctx, store)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not stop after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum == nil || len(sum.Records) > 2 {
		t.Errorf("summary = %+v", sum)
	}
	// The cut-down runs are casualties of the cancellation, not failures
	// of their own: they land in CancelledRuns.
	if sum.FailedRuns != 0 {
		t.Errorf("FailedRuns = %d after cancellation, want 0", sum.FailedRuns)
	}
	if sum.CancelledRuns != len(sum.Records) {
		t.Errorf("CancelledRuns = %d, records = %d", sum.CancelledRuns, len(sum.Records))
	}
	for _, rec := range sum.Records {
		if !rec.Cancelled {
			t.Errorf("record %d not marked cancelled: %+v", rec.Run, rec)
		}
	}
}

func TestCampaignParallelBound(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	var inFlight, maxInFlight atomic.Int32
	track := func(ctx context.Context, env map[string]string) error {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	}
	hostA.onMeasure = track
	hostB.onMeasure = track

	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}, Parallel: 1}
	if _, err := c.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got > 1 {
		t.Errorf("max concurrent runs = %d with Parallel=1", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	svc := hosttools.NewService(nil)
	mk := func(name, node string) Replica {
		r, _ := newReplica(name, node, svc)
		return r
	}
	store := storeAt(t)
	ctx := context.Background()

	cases := map[string]*Campaign{
		"no replicas": {},
		"duplicate replica names": {
			Replicas: []Replica{mk("alpha", "n1"), mk("alpha", "n2")},
		},
		"nested replica name": {
			Replicas: []Replica{{Name: "a/b", Runner: mk("x", "n1").Runner, Experiment: sweepFor("n1")}},
		},
		"overlapping nodes on shared service": {
			Replicas: []Replica{mk("alpha", "shared"), mk("beta", "shared")},
		},
	}
	divergent := mk("beta", "n2")
	divergent.Experiment.LoopVars = []core.LoopVar{{Name: "other", Values: []string{"1"}}}
	cases["divergent loop variables"] = &Campaign{Replicas: []Replica{mk("alpha", "n1"), divergent}}

	otherName := mk("beta", "n3")
	otherName.Experiment.Name = "different"
	cases["divergent experiment name"] = &Campaign{Replicas: []Replica{mk("alpha", "n1"), otherName}}

	otherImage := mk("beta", "n4")
	otherImage.Experiment.Hosts[0].Image = "debian-bullseye"
	cases["divergent image"] = &Campaign{Replicas: []Replica{mk("alpha", "n1"), otherImage}}

	otherGlobal := mk("beta", "n5")
	otherGlobal.Experiment.GlobalVars = core.Vars{"dut_mac": "02:00:00:00:00:99"}
	cases["divergent global vars"] = &Campaign{Replicas: []Replica{mk("alpha", "n1"), otherGlobal}}

	for name, c := range cases {
		if _, err := c.Run(ctx, store); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCampaignSingleReplica degenerates to the sequential sweep.
func TestCampaignSingleReplica(t *testing.T) {
	svc := hosttools.NewService(nil)
	rep, _ := newReplica("solo", "nodeA", svc)
	store := storeAt(t)
	sum, err := (&Campaign{Replicas: []Replica{rep}}).Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 6 || len(sum.Records) != 6 || sum.FailedRuns != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// intsFrom returns [from..to] — occurrence lists for fault plans.
func intsFrom(from, to int) []int {
	var out []int
	for i := from; i <= to; i++ {
		out = append(out, i)
	}
	return out
}

// TestCampaignRetriesWithCleanSlateResetup: a run that fails twice succeeds
// on its third attempt, each retry preceded by a clean-slate reboot and
// re-setup and by an exponentially growing backoff. The attempt history
// lands in experiment/attempts.json; the summary reports no failed runs.
func TestCampaignRetriesWithCleanSlateResetup(t *testing.T) {
	svc := hosttools.NewService(nil)
	rep, host := newReplica("solo", "nodeA", svc)
	var fails atomic.Int32
	host.onMeasure = func(ctx context.Context, env map[string]string) error {
		if env["RUN"] == "3" && fails.Add(1) <= 2 {
			return errors.New("generator wedged")
		}
		return nil
	}

	var mu sync.Mutex
	var sleeps []time.Duration
	store := storeAt(t)
	c := &Campaign{
		Replicas:     []Replica{rep},
		MaxAttempts:  3,
		RetryBackoff: 10 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
		},
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FailedRuns != 0 || sum.CancelledRuns != 0 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	for _, rec := range sum.Records {
		want := 1
		if rec.Run == 3 {
			want = 3
		}
		if rec.Attempts != want {
			t.Errorf("run %d attempts = %d, want %d", rec.Run, rec.Attempts, want)
		}
	}
	// One boot from Prepare; one clean-slate re-setup before each of the
	// two retries of run 3; and one before run 4, dispatched while the
	// replica was still dirty from run 3's first failure.
	host.mu.Lock()
	reboots := host.reboots
	host.mu.Unlock()
	if reboots != 4 {
		t.Errorf("reboots = %d, want 4 (prepare + 3 clean-slate re-setups)", reboots)
	}
	// Exponential backoff: 10ms before attempt 2, 20ms before attempt 3.
	mu.Lock()
	gotSleeps := append([]time.Duration(nil), sleeps...)
	mu.Unlock()
	if len(gotSleeps) != 2 || gotSleeps[0] != 10*time.Millisecond || gotSleeps[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v", gotSleeps)
	}

	exp, err := store.OpenExperiment("user", "sweep", idFromDir(t, sum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := exp.ReadExperimentArtifact("experiment/attempts.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc attemptsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.MaxAttempts != 3 || len(doc.Quarantined) != 0 {
		t.Errorf("attempts doc = %+v", doc)
	}
	if len(doc.Runs) != 6 {
		t.Fatalf("attempt history covers %d runs, want 6", len(doc.Runs))
	}
	for _, ra := range doc.Runs {
		if ra.Run != 3 {
			if len(ra.Attempts) != 1 || ra.Attempts[0].Failed {
				t.Errorf("run %d history = %+v", ra.Run, ra.Attempts)
			}
			continue
		}
		if len(ra.Attempts) != 3 {
			t.Fatalf("run 3 history = %+v", ra.Attempts)
		}
		for i, a := range ra.Attempts {
			if a.Attempt != i+1 || a.Replica != "solo" || a.Phase != phaseRun {
				t.Errorf("run 3 attempt %d = %+v", i, a)
			}
			if failed := i < 2; a.Failed != failed {
				t.Errorf("run 3 attempt %d failed = %v", i, a.Failed)
			}
		}
		if ra.Attempts[0].Error == "" || !strings.Contains(ra.Attempts[0].Error, "generator wedged") {
			t.Errorf("attempt error = %q", ra.Attempts[0].Error)
		}
		if ra.Attempts[1].BackoffMS != 10 || ra.Attempts[2].BackoffMS != 20 {
			t.Errorf("backoff history = %+v", ra.Attempts)
		}
	}
}

// TestCampaignQuarantinesFailingReplica: one of three replicas fails every
// measurement; after QuarantineAfter consecutive failures it is drained and
// the survivors complete the full sweep without a single failed run.
func TestCampaignQuarantinesFailingReplica(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	repC, hostC := newReplica("gamma", "nodeC", svc)
	hostB.onMeasure = func(ctx context.Context, env map[string]string) error {
		return errors.New("NIC dead")
	}
	// The healthy replicas hold their first runs until beta is drained, so
	// beta deterministically accumulates its consecutive failures instead
	// of racing the queue against instant successes.
	quarantined := make(chan struct{})
	wait := func(ctx context.Context, env map[string]string) error {
		select {
		case <-quarantined:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("quarantine event never fired")
		}
	}
	hostA.onMeasure = wait
	hostC.onMeasure = wait

	store := storeAt(t)
	var once sync.Once
	c := &Campaign{
		Replicas:        []Replica{repA, repB, repC},
		MaxAttempts:     4,
		QuarantineAfter: 2,
		Progress: func(ev core.ProgressEvent) {
			if strings.Contains(ev.Message, "quarantined") {
				once.Do(func() { close(quarantined) })
			}
		},
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FailedRuns != 0 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Quarantined) != 1 || sum.Quarantined[0] != "beta" {
		t.Fatalf("quarantined = %v", sum.Quarantined)
	}
	retried := 0
	for _, rec := range sum.Records {
		if rec.Failed {
			t.Errorf("run %d failed: %s", rec.Run, rec.Error)
		}
		if rec.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("no run records a retry despite beta failing")
	}
	exp, err := store.OpenExperiment("user", "sweep", idFromDir(t, sum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		if _, err := exp.ReadRunMeta(run); err != nil {
			t.Errorf("run %d metadata: %v", run, err)
		}
	}
	raw, err := exp.ReadExperimentArtifact("experiment/attempts.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc attemptsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Quarantined) != 1 || doc.Quarantined[0] != "beta" || doc.QuarantineAfter != 2 {
		t.Errorf("attempts doc = %+v", doc)
	}
}

// TestCampaignAllReplicasQuarantined: when every replica is drained the
// campaign stops with an explicit error instead of hanging on an empty
// worker pool.
func TestCampaignAllReplicasQuarantined(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	die := func(ctx context.Context, env map[string]string) error {
		return errors.New("power loss")
	}
	hostA.onMeasure = die
	hostB.onMeasure = die

	store := storeAt(t)
	c := &Campaign{
		Replicas:        []Replica{repA, repB},
		MaxAttempts:     10,
		QuarantineAfter: 2,
	}
	done := make(chan struct{})
	var sum *core.Summary
	var err error
	go func() {
		sum, err = c.Run(context.Background(), store)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign hung with every replica quarantined")
	}
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want all-quarantined error", err)
	}
	if len(sum.Quarantined) != 2 {
		t.Errorf("quarantined = %v", sum.Quarantined)
	}
}

// TestCampaignFaultInjectionMetadataByteIdentical is the acceptance case: a
// 3-replica campaign with one replica injected (via the deterministic fault
// plan) to fail every exec after setup completes the full sweep on the
// survivors, quarantines the faulty replica, and still produces per-run
// metadata.json byte-identical to a fault-free sequential execution.
func TestCampaignFaultInjectionMetadataByteIdentical(t *testing.T) {
	clock := func() time.Time { return time.Date(2021, 12, 7, 10, 0, 0, 0, time.UTC) }

	// Fault-free sequential reference.
	seqHost := &fakeHost{name: "nodeA"}
	seqRunner := &core.Runner{
		Hosts:   map[string]core.Host{"nodeA": seqHost},
		Service: hosttools.NewService(nil),
		Clock:   clock,
	}
	seqStore := storeAt(t)
	seqSum, err := seqRunner.Run(context.Background(), sweepFor("nodeA"), seqStore)
	if err != nil {
		t.Fatal(err)
	}

	// Campaign with beta's node failing every exec after its setup script
	// (occurrence 1): measurements and clean-slate re-setups alike.
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, _ := newReplica("beta", "nodeB", svc)
	repC, hostC := newReplica("gamma", "nodeC", svc)
	repA.Runner.Clock = clock
	repB.Runner.Clock = clock
	repC.Runner.Clock = clock
	repB.Runner.InjectFaults(sim.NewFaultInjector(map[string]sim.FaultPlan{
		"nodeB": {FailExecs: intsFrom(2, 40)},
	}))

	// Hold the survivors' first runs until beta is drained (see
	// TestCampaignQuarantinesFailingReplica).
	quarantined := make(chan struct{})
	wait := func(ctx context.Context, env map[string]string) error {
		select {
		case <-quarantined:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("quarantine event never fired")
		}
	}
	hostA.onMeasure = wait
	hostC.onMeasure = wait

	parStore := storeAt(t)
	var once sync.Once
	c := &Campaign{
		Replicas:        []Replica{repA, repB, repC},
		MaxAttempts:     4,
		QuarantineAfter: 2,
		Progress: func(ev core.ProgressEvent) {
			if strings.Contains(ev.Message, "quarantined") {
				once.Do(func() { close(quarantined) })
			}
		},
	}
	parSum, err := c.Run(context.Background(), parStore)
	if err != nil {
		t.Fatal(err)
	}
	if parSum.FailedRuns != 0 || len(parSum.Records) != 6 {
		t.Fatalf("summary = %+v", parSum)
	}
	if len(parSum.Quarantined) != 1 || parSum.Quarantined[0] != "beta" {
		t.Fatalf("quarantined = %v", parSum.Quarantined)
	}

	seqExp, err := seqStore.OpenExperiment("user", "sweep", idFromDir(t, seqSum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	parExp, err := parStore.OpenExperiment("user", "sweep", idFromDir(t, parSum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		want, err := seqExp.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		got, err := parExp.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("run %d metadata diverges under faults:\nsequential: %s\ncampaign:   %s", run, want, got)
		}
	}
}

// TestCampaignFailFastAccounting: under fail-fast, the run that failed is
// the only FailedRun; a sibling run cut down mid-measurement by the
// cancellation is accounted as cancelled, not failed.
func TestCampaignFailFastAccounting(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	var gate sync.WaitGroup
	gate.Add(2) // both runs in flight before the failure fires
	hook := func(ctx context.Context, env map[string]string) error {
		gate.Done()
		if env["RUN"] == "0" {
			gate.Wait()
			return errors.New("loadgen crashed")
		}
		<-ctx.Done()
		return ctx.Err()
	}
	hostA.onMeasure = hook
	hostB.onMeasure = hook

	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err == nil || !strings.Contains(err.Error(), "run 0") {
		t.Fatalf("err = %v", err)
	}
	if sum.FailedRuns != 1 {
		t.Errorf("FailedRuns = %d, want 1 (the culprit only)", sum.FailedRuns)
	}
	if sum.CancelledRuns != 1 {
		t.Errorf("CancelledRuns = %d, want 1 (the collateral run)", sum.CancelledRuns)
	}
	var culprit, casualty *core.RunRecord
	for i := range sum.Records {
		rec := &sum.Records[i]
		switch rec.Run {
		case 0:
			culprit = rec
		case 1:
			casualty = rec
		}
	}
	if culprit == nil || !culprit.Failed || culprit.Cancelled {
		t.Errorf("culprit record = %+v", culprit)
	}
	if casualty == nil || !casualty.Cancelled {
		t.Errorf("casualty record = %+v", casualty)
	}
}

func TestCampaignArchivesSpansWithReplicaLanes(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, _ := newReplica("alpha", "nodeA", svc)
	repB, _ := newReplica("beta", "nodeB", svc)
	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := store.OpenExperiment("user", "sweep", filepath.Base(sum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	data, err := exp.ReadExperimentArtifact("spans.json")
	if err != nil {
		t.Fatalf("spans.json not archived: %v", err)
	}
	recs, err := telemetry.ParseSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, rec := range recs {
		byName[rec.Name]++
	}
	if byName["campaign:sweep"] != 1 {
		t.Errorf("campaign root span missing: %v", byName)
	}
	for _, want := range []string{"prepare:alpha", "prepare:beta", "replica:alpha", "replica:beta"} {
		if byName[want] != 1 {
			t.Errorf("span %q count = %d, want 1 (%v)", want, byName[want], byName)
		}
	}
	runSpans := 0
	for name, n := range byName {
		if strings.HasPrefix(name, "run ") {
			runSpans += n
		}
	}
	if runSpans != 6 {
		t.Errorf("run spans = %d, want 6 (%v)", runSpans, byName)
	}
	// Round-trip through the Chrome converter: every replica gets a lane.
	chrome, err := telemetry.ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var events []telemetry.ChromeEvent
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	laneOf := map[string]int{}
	for _, ev := range events {
		if strings.HasPrefix(ev.Name, "replica:") {
			laneOf[ev.Name] = ev.Tid
		}
	}
	if len(laneOf) != 2 || laneOf["replica:alpha"] == laneOf["replica:beta"] {
		t.Errorf("replica lanes = %v, want distinct", laneOf)
	}
}

func TestCampaignRetryEventsCarryError(t *testing.T) {
	svc := hosttools.NewService(nil)
	rep, h := newReplica("alpha", "nodeA", svc)
	var failed atomic.Bool
	h.onMeasure = func(ctx context.Context, env map[string]string) error {
		if env["pkt_sz"] == "1500" && env["pkt_rate"] == "20000" && !failed.Swap(true) {
			return errors.New("loadgen wedged")
		}
		return nil
	}
	store := storeAt(t)
	var mu sync.Mutex
	var withError []core.ProgressEvent
	c := &Campaign{
		Replicas:    []Replica{rep},
		MaxAttempts: 2,
		Progress: func(ev core.ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Error != "" {
				withError = append(withError, ev)
			}
		},
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FailedRuns != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(withError) == 0 {
		t.Fatal("no progress events carried the failure error")
	}
	requeued := false
	for _, ev := range withError {
		if !strings.Contains(ev.Error, "loadgen wedged") {
			t.Errorf("event error = %q, want the measurement failure", ev.Error)
		}
		if strings.Contains(ev.Message, "requeueing") {
			requeued = true
		}
	}
	if !requeued {
		t.Error("retry event with Error not observed")
	}
}

// TestCampaignProgressSerialized: the Progress contract says callbacks are
// serialized through one mutex, including runner-level events forwarded from
// concurrently executing replicas. The callback therefore mutates shared
// state WITHOUT its own lock — under -race this fails if any event path
// bypasses the campaign mutex.
func TestCampaignProgressSerialized(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, _ := newReplica("alpha", "nodeA", svc)
	repB, _ := newReplica("beta", "nodeB", svc)
	store := storeAt(t)
	counts := map[string]int{} // deliberately unsynchronized
	var total int
	c := &Campaign{
		Replicas: []Replica{repA, repB},
		Progress: func(ev core.ProgressEvent) {
			counts[ev.Host]++
			total++
		},
	}
	if _, err := c.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no progress events observed")
	}
	if counts["nodeA"] == 0 || counts["nodeB"] == 0 {
		t.Errorf("runner-level events not forwarded from both replicas: %v", counts)
	}
}

// TestCampaignArchivesSpansOnFailure: an aborted campaign's span trace is
// precisely the one worth post-morteming, so spans.json must land in the
// results tree on the failure exit path too.
func TestCampaignArchivesSpansOnFailure(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, hostA := newReplica("alpha", "nodeA", svc)
	repB, hostB := newReplica("beta", "nodeB", svc)
	fail := func(ctx context.Context, env map[string]string) error {
		return errors.New("loadgen crashed")
	}
	hostA.onMeasure = fail
	hostB.onMeasure = fail
	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err == nil {
		t.Fatal("campaign succeeded, want fail-fast abort")
	}
	if sum == nil || sum.ResultsDir == "" {
		t.Fatalf("aborted campaign returned no summary/results dir: %+v", sum)
	}
	exp, err := store.OpenExperiment("user", "sweep", filepath.Base(sum.ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	data, err := exp.ReadExperimentArtifact("spans.json")
	if err != nil {
		t.Fatalf("spans.json not archived on abort: %v", err)
	}
	recs, err := telemetry.ParseSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("spans.json empty on abort")
	}
}

// TestCampaignJournalsEvents: every campaign journals its events under the
// experiment directory — even without a caller-attached pipeline — and the
// replayed sequence is complete and ordered.
func TestCampaignJournalsEvents(t *testing.T) {
	svc := hosttools.NewService(nil)
	repA, _ := newReplica("alpha", "nodeA", svc)
	repB, _ := newReplica("beta", "nodeB", svc)
	store := storeAt(t)
	c := &Campaign{Replicas: []Replica{repA, repB}}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if c.Events != nil {
		t.Error("private pipeline leaked out of Run")
	}
	evs, err := eventlog.Replay(filepath.Join(sum.ResultsDir, "events"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no journaled events")
	}
	if got := evs[0].Message; !strings.Contains(got, "campaign started") {
		t.Errorf("first event = %q, want campaign start", got)
	}
	if got := evs[len(evs)-1].Message; !strings.Contains(got, "campaign finished") {
		t.Errorf("last event = %q, want campaign finish", got)
	}
	var last uint64
	replicas := map[string]bool{}
	runs := map[int]bool{}
	for _, ev := range evs {
		if ev.Seq <= last {
			t.Fatalf("sequence not strictly increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		if ev.Replica != "" {
			replicas[ev.Replica] = true
		}
		if ev.Typ == eventlog.TypeProgress && ev.TotalRuns > 0 {
			runs[ev.Run] = true
		}
	}
	if !replicas["alpha"] || !replicas["beta"] {
		t.Errorf("journal missing replica events: %v", replicas)
	}
	if len(runs) != 6 {
		t.Errorf("journaled run starts = %d, want 6 (%v)", len(runs), runs)
	}
}
