// Package sched schedules a measurement campaign across replica testbeds.
//
// The paper executes the cross product of loop variables as one sequential
// sweep on one testbed. For large parameter spaces the sweep's wall-clock
// time is the sum of every run — MACI's observation is that independent runs
// dispatched onto multiple testbed instances in parallel are the single
// biggest wall-clock win. This package implements that: a campaign holds N
// replica testbeds (disjoint host-sets with identical images and variables,
// like the paper's pos/vpos dual setup), shards the combinations across them
// through a shared work queue, and records everything into ONE results
// experiment with exactly the run numbering and per-run metadata the
// sequential sweep would produce.
//
// Reproducibility invariants, enforced before any node is touched:
//
//   - every replica declares the same experiment name, user, global
//     variables, loop variables, and role→image mapping — a campaign over
//     diverging replicas would not be one experiment;
//   - replica host-sets sharing one hosttools service must be disjoint,
//     so per-run scopes can never collide;
//   - run numbering is the deterministic cross-product order regardless of
//     which replica executes which run.
package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pos/internal/core"
	"pos/internal/hosttools"
	"pos/internal/results"
)

// Replica is one testbed instance participating in a campaign: a runner over
// its host-set and the logical experiment bound to this replica's nodes.
type Replica struct {
	// Name namespaces the replica's setup artifacts ("replica0" style
	// default). It must be flat (no path separators).
	Name string
	// Runner drives this replica's hosts.
	Runner *core.Runner
	// Experiment is the campaign's experiment definition bound to this
	// replica's node names. Everything except the node binding must be
	// identical across replicas.
	Experiment *core.Experiment
}

// Campaign shards one experiment's measurement runs across replicas.
type Campaign struct {
	// Replicas are the participating testbed instances (at least one).
	Replicas []Replica
	// Parallel bounds the number of runs in flight at once. Zero or
	// anything above len(Replicas) means one run per replica.
	Parallel int
	// RunTimeout, when positive, bounds each dispatched run in addition
	// to any per-runner RunTimeout.
	RunTimeout time.Duration
	// ContinueOnRunFailure keeps the campaign sweeping after a failed
	// run; the default is fail-fast — cancel everything in flight.
	ContinueOnRunFailure bool
	// Progress, when non-nil, observes campaign-level measurement events
	// (Host carries the executing replica's name). Serialized.
	Progress func(core.ProgressEvent)

	progressMu sync.Mutex
}

func (c *Campaign) progress(ev core.ProgressEvent) {
	if c.Progress != nil {
		c.progressMu.Lock()
		defer c.progressMu.Unlock()
		c.Progress(ev)
	}
}

func (c *Campaign) now() time.Time {
	if clock := c.Replicas[0].Runner.Clock; clock != nil {
		return clock()
	}
	return time.Now()
}

// validate checks the campaign's reproducibility invariants.
func (c *Campaign) validate() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("sched: campaign needs at least one replica")
	}
	names := make(map[string]bool, len(c.Replicas))
	for i := range c.Replicas {
		rep := &c.Replicas[i]
		if rep.Runner == nil || rep.Experiment == nil {
			return fmt.Errorf("sched: replica %d needs a runner and an experiment", i)
		}
		if rep.Name == "" {
			rep.Name = fmt.Sprintf("replica%d", i)
		}
		if strings.ContainsAny(rep.Name, "/\\") {
			return fmt.Errorf("sched: replica name %q must be flat", rep.Name)
		}
		if names[rep.Name] {
			return fmt.Errorf("sched: duplicate replica name %q", rep.Name)
		}
		names[rep.Name] = true
		if err := rep.Experiment.Validate(); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
	}
	first := c.Replicas[0].Experiment
	firstLoop, err := core.MarshalLoopVars(first.LoopVars)
	if err != nil {
		return err
	}
	for _, rep := range c.Replicas[1:] {
		e := rep.Experiment
		if e.Name != first.Name || e.User != first.User {
			return fmt.Errorf("sched: replica %s runs %s/%s, campaign runs %s/%s — one campaign is one experiment",
				rep.Name, e.User, e.Name, first.User, first.Name)
		}
		loop, err := core.MarshalLoopVars(e.LoopVars)
		if err != nil {
			return err
		}
		if string(loop) != string(firstLoop) {
			return fmt.Errorf("sched: replica %s sweeps different loop variables — sharding would not reproduce the sequential sweep", rep.Name)
		}
		if err := sameVars(first.GlobalVars, e.GlobalVars); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
		if err := sameImages(first, e); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
	}
	return c.validateDisjointHosts()
}

func sameVars(a, b core.Vars) error {
	if len(a) != len(b) {
		return fmt.Errorf("global variables differ (%d vs %d keys)", len(b), len(a))
	}
	for k, v := range a {
		if b[k] != v {
			return fmt.Errorf("global variable %s=%q differs from %q", k, b[k], v)
		}
	}
	return nil
}

// sameImages requires the identical role→image mapping on every replica —
// the paper's condition for sharding to preserve reproducibility.
func sameImages(a, b *core.Experiment) error {
	imgs := func(e *core.Experiment) map[string]string {
		m := make(map[string]string, len(e.Hosts))
		for _, h := range e.Hosts {
			m[h.Role] = h.Image
		}
		return m
	}
	ia, ib := imgs(a), imgs(b)
	if len(ia) != len(ib) {
		return fmt.Errorf("role sets differ")
	}
	for role, img := range ia {
		got, ok := ib[role]
		if !ok {
			return fmt.Errorf("role %q missing", role)
		}
		if got != img {
			return fmt.Errorf("role %q boots image %q, campaign boots %q", role, got, img)
		}
	}
	return nil
}

// validateDisjointHosts rejects replicas that share a node on a shared
// hosttools service: their per-run scopes would fight over the binding.
func (c *Campaign) validateDisjointHosts() error {
	seen := make(map[*hosttools.Service]map[string]string)
	for _, rep := range c.Replicas {
		svc := rep.Runner.Service
		if svc == nil {
			return fmt.Errorf("sched: replica %s: runner needs a hosttools service", rep.Name)
		}
		nodes := seen[svc]
		if nodes == nil {
			nodes = make(map[string]string)
			seen[svc] = nodes
		}
		for _, n := range rep.Experiment.NodeNames() {
			if prev, ok := nodes[n]; ok {
				return fmt.Errorf("sched: node %q claimed by replicas %s and %s on the same service — replica host-sets must be disjoint", n, prev, rep.Name)
			}
			nodes[n] = rep.Name
		}
	}
	return nil
}

// manifest is the campaign's experiment-level artifact: how the sweep was
// sharded. It complements — never alters — the per-run metadata, which stays
// byte-identical to a sequential execution.
type manifest struct {
	Replicas  []string       `json:"replicas"`
	Parallel  int            `json:"parallel"`
	TotalRuns int            `json:"total_runs"`
	Schedule  map[string]int `json:"runs_per_replica,omitempty"`
}

// Run executes the campaign: prepare every replica (boot + setup, in
// parallel), then drain the run queue concurrently. It returns a summary
// equivalent to the sequential runner's — deterministic run numbering, one
// record per executed run in run order.
func (c *Campaign) Run(ctx context.Context, store *results.Store) (*core.Summary, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	logical := c.Replicas[0].Experiment
	combos, err := core.CrossProduct(logical.LoopVars)
	if err != nil {
		return nil, err
	}
	parallel := c.Parallel
	if parallel <= 0 || parallel > len(c.Replicas) {
		parallel = len(c.Replicas)
	}

	started := c.now()
	exp, err := store.CreateExperiment(logical.User, logical.Name, started)
	if err != nil {
		return nil, err
	}
	// Best-effort drain on every exit path; the success path checks the
	// flush error explicitly below.
	defer exp.Sync()
	if err := core.ArchiveDefinition(logical, exp); err != nil {
		return nil, err
	}

	// Setup phase on every replica concurrently; a campaign with a broken
	// replica must fail before the first measurement run.
	sessions := make([]*core.Session, len(c.Replicas))
	prepErrs := make([]error, len(c.Replicas))
	var wg sync.WaitGroup
	for i := range c.Replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := c.Replicas[i]
			sessions[i], prepErrs[i] = rep.Runner.PrepareShared(ctx, rep.Experiment, exp, rep.Name)
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, sess := range sessions {
			if sess != nil {
				sess.Close()
			}
		}
	}()
	for i, err := range prepErrs {
		if err != nil {
			return nil, fmt.Errorf("sched: replica %s: %w", c.Replicas[i].Name, err)
		}
	}

	sum := &core.Summary{
		Experiment: logical.Name,
		ResultsDir: exp.Dir(),
		TotalRuns:  len(combos),
		Started:    started,
	}

	// Shared work queue: replicas pull the next run index as they free
	// up, so a slow run on one replica never stalls the others. The
	// semaphore bounds runs in flight when Parallel < len(Replicas).
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	queue := make(chan int)
	go func() {
		defer close(queue)
		for i := range combos {
			select {
			case queue <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var (
		mu        sync.Mutex
		records   = make([]*core.RunRecord, len(combos))
		perWorker = make([]int, len(c.Replicas))
		firstFail = -1
	)
	sem := make(chan struct{}, parallel)
	for wi, sess := range sessions {
		wg.Add(1)
		go func(wi int, sess *core.Session) {
			defer wg.Done()
			for {
				var runIdx int
				var ok bool
				select {
				case <-runCtx.Done():
					return
				case runIdx, ok = <-queue:
					if !ok {
						return
					}
				}
				select {
				case <-runCtx.Done():
					return
				case sem <- struct{}{}:
				}
				rctx := runCtx
				var rcancel context.CancelFunc
				if c.RunTimeout > 0 {
					rctx, rcancel = context.WithTimeout(runCtx, c.RunTimeout)
				}
				c.progress(core.ProgressEvent{
					Phase: core.PhaseMeasurement, Run: runIdx, TotalRuns: len(combos),
					Host: c.Replicas[wi].Name, Message: combos[runIdx].Key(),
				})
				rec, _ := sess.RunOne(rctx, runIdx, len(combos), combos[runIdx])
				if rcancel != nil {
					rcancel()
				}
				<-sem
				mu.Lock()
				records[runIdx] = &rec
				perWorker[wi]++
				fail := rec.Failed && !c.ContinueOnRunFailure
				if fail && (firstFail == -1 || runIdx < firstFail) {
					firstFail = runIdx
				}
				mu.Unlock()
				if fail {
					cancel()
					return
				}
			}
		}(wi, sess)
	}
	wg.Wait()

	// Assemble the summary in deterministic run order.
	schedule := make(map[string]int, len(c.Replicas))
	for wi, n := range perWorker {
		if n > 0 {
			schedule[c.Replicas[wi].Name] = n
		}
	}
	for _, rec := range records {
		if rec == nil {
			continue // never dispatched (cancelled or failed-fast)
		}
		sum.Records = append(sum.Records, *rec)
		if rec.Failed {
			sum.FailedRuns++
		}
	}
	sum.Finished = c.now()

	names := make([]string, len(c.Replicas))
	for i, rep := range c.Replicas {
		names[i] = rep.Name
	}
	sort.Strings(names)
	m, err := json.MarshalIndent(manifest{
		Replicas: names, Parallel: parallel, TotalRuns: len(combos), Schedule: schedule,
	}, "", "  ")
	if err != nil {
		return sum, fmt.Errorf("sched: %w", err)
	}
	if err := exp.AddExperimentArtifact("experiment/campaign.json", append(m, '\n')); err != nil {
		return sum, err
	}
	// Drain the write-behind manifest: the campaign's results directory
	// must be complete and reopenable once Run returns.
	if err := exp.Sync(); err != nil {
		return sum, err
	}

	if err := ctx.Err(); err != nil {
		return sum, err
	}
	mu.Lock()
	failIdx := firstFail
	mu.Unlock()
	if failIdx >= 0 {
		rec := records[failIdx]
		return sum, fmt.Errorf("sched: run %d (%s) failed: %s", failIdx, rec.Combo.Key(), rec.Error)
	}
	return sum, nil
}
