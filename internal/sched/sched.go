// Package sched schedules a measurement campaign across replica testbeds.
//
// The paper executes the cross product of loop variables as one sequential
// sweep on one testbed. For large parameter spaces the sweep's wall-clock
// time is the sum of every run — MACI's observation is that independent runs
// dispatched onto multiple testbed instances in parallel are the single
// biggest wall-clock win. This package implements that: a campaign holds N
// replica testbeds (disjoint host-sets with identical images and variables,
// like the paper's pos/vpos dual setup), shards the combinations across them
// through a shared work queue, and records everything into ONE results
// experiment with exactly the run numbering and per-run metadata the
// sequential sweep would produce.
//
// Reproducibility invariants, enforced before any node is touched:
//
//   - every replica declares the same experiment name, user, global
//     variables, loop variables, and role→image mapping — a campaign over
//     diverging replicas would not be one experiment;
//   - replica host-sets sharing one hosttools service must be disjoint,
//     so per-run scopes can never collide;
//   - run numbering is the deterministic cross-product order regardless of
//     which replica executes which run.
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pos/internal/core"
	"pos/internal/eventlog"
	"pos/internal/health"
	"pos/internal/hosttools"
	"pos/internal/results"
	"pos/internal/telemetry"
	"pos/internal/timeline"
	"pos/internal/workpool"
)

// Replica is one testbed instance participating in a campaign: a runner over
// its host-set and the logical experiment bound to this replica's nodes.
type Replica struct {
	// Name namespaces the replica's setup artifacts ("replica0" style
	// default). It must be flat (no path separators).
	Name string
	// Runner drives this replica's hosts.
	Runner *core.Runner
	// Experiment is the campaign's experiment definition bound to this
	// replica's node names. Everything except the node binding must be
	// identical across replicas.
	Experiment *core.Experiment
}

// Campaign shards one experiment's measurement runs across replicas.
type Campaign struct {
	// Replicas are the participating testbed instances (at least one).
	Replicas []Replica
	// Parallel bounds the number of runs in flight at once. Zero or
	// anything above len(Replicas) means one run per replica.
	Parallel int
	// RunTimeout, when positive, bounds each dispatched run in addition
	// to any per-runner RunTimeout.
	RunTimeout time.Duration
	// ContinueOnRunFailure keeps the campaign sweeping after a failed
	// run; the default is fail-fast — cancel everything in flight. With
	// retries enabled, fail-fast only triggers once a run has exhausted
	// its attempts.
	ContinueOnRunFailure bool
	// MaxAttempts bounds how many times a failed run is dispatched,
	// counting the first attempt. Zero or one disables retries. Every
	// retry is preceded by a clean-slate reboot-and-re-setup of the
	// executing replica's hosts, so a retry runs on exactly the state a
	// fresh experiment would see; a failed re-setup consumes the attempt
	// like a failed run.
	MaxAttempts int
	// RetryBackoff is the pause before a run's second attempt; it
	// doubles with each further attempt. Zero retries immediately.
	RetryBackoff time.Duration
	// QuarantineAfter drains a replica from the campaign after this many
	// consecutive failed dispatches on it: the replica stops pulling
	// work, its failed run is redistributed to the surviving replicas,
	// and the campaign degrades gracefully instead of burning the whole
	// sweep on one broken testbed. Zero disables quarantine. When every
	// replica is quarantined the campaign aborts.
	QuarantineAfter int
	// Progress, when non-nil, observes campaign-level measurement events
	// (Host carries the executing replica's name) plus every replica
	// runner's own workflow events. All callbacks — campaign-level and
	// runner-level from concurrently dispatching replicas — are serialized
	// through one mutex, so the observer never needs its own locking.
	Progress func(core.ProgressEvent)
	// Events, when non-nil, receives the campaign's live event stream. The
	// campaign journals it under <results>/events/ for replay, forwards it
	// to the replicas' runners, and publishes replica heartbeats on it.
	Events *eventlog.Pipeline
	// HeartbeatInterval is the period of per-replica liveness events on
	// the Events pipeline (and the pos_replica_up gauge). Zero disables
	// heartbeat probes; the gauge still tracks worker start/exit.
	HeartbeatInterval time.Duration
	// Sleep, when non-nil, replaces the context-aware timer wait used
	// for retry backoff (tests pin it).
	Sleep func(ctx context.Context, d time.Duration)
	// Watchdog, when non-nil, supervises the campaign: a stall probe over
	// the campaign's own dispatch-completion counter is registered for the
	// campaign's duration, and a probe trip (or a campaign failure) dumps a
	// flight record — recent events, metrics snapshot, goroutine stacks —
	// as the experiment artifact flightrec.json.
	Watchdog *health.Watchdog
	// StallDeadline is how long the campaign may complete no dispatch
	// before its watchdog probe trips. Zero derives 2×RunTimeout, falling
	// back to 5 minutes when no run timeout is configured.
	StallDeadline time.Duration

	progressMu sync.Mutex
}

func (c *Campaign) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// backoffFor returns the pause that precedes the given attempt (attempt 2
// waits RetryBackoff, each further attempt doubles it).
func (c *Campaign) backoffFor(attempt int) time.Duration {
	if attempt <= 1 || c.RetryBackoff <= 0 {
		return 0
	}
	shift := attempt - 2
	if shift > 16 {
		shift = 16 // cap: backoff growth, not overflow
	}
	return c.RetryBackoff << shift
}

func (c *Campaign) progress(ev core.ProgressEvent) {
	if c.Progress != nil {
		c.progressMu.Lock()
		defer c.progressMu.Unlock()
		c.Progress(ev)
	}
}

// event reports one campaign-level event to the Progress observer and, when
// an event pipeline is attached, publishes it on the live stream with the
// dispatch attempt recorded (0 for events outside the retry machinery).
func (c *Campaign) event(ev core.ProgressEvent, attempt int) {
	c.progress(ev)
	if c.Events == nil {
		return
	}
	run := eventlog.NoRun
	if ev.TotalRuns > 0 {
		run = ev.Run
	}
	c.Events.Publish(eventlog.Event{
		Typ: eventlog.TypeProgress, Phase: ev.Phase,
		Run: run, TotalRuns: ev.TotalRuns, Attempt: attempt,
		Replica: ev.Host, Message: ev.Message, Error: ev.Error,
	})
}

// wireReplicas funnels every replica runner's workflow events through the
// campaign: runner-level Progress callbacks (boot, setup, per-run events,
// fired from concurrently dispatching replicas) are forwarded to
// c.Progress under the campaign's single progress mutex, and runners
// without their own pipeline inherit c.Events. The returned function
// restores the runners' original wiring.
func (c *Campaign) wireReplicas() func() {
	prevProgress := make([]func(core.ProgressEvent), len(c.Replicas))
	prevEvents := make([]*eventlog.Pipeline, len(c.Replicas))
	for i := range c.Replicas {
		r := c.Replicas[i].Runner
		prevProgress[i], prevEvents[i] = r.Progress, r.Events
		prev := r.Progress
		r.Progress = func(ev core.ProgressEvent) {
			c.progressMu.Lock()
			defer c.progressMu.Unlock()
			if prev != nil {
				prev(ev)
			}
			if c.Progress != nil {
				c.Progress(ev)
			}
		}
		if r.Events == nil {
			r.Events = c.Events
		}
	}
	return func() {
		for i := range c.Replicas {
			c.Replicas[i].Runner.Progress = prevProgress[i]
			c.Replicas[i].Runner.Events = prevEvents[i]
		}
	}
}

// heartbeat publishes periodic liveness events for one replica until ctx
// ends, then a final down event. The pos_replica_up gauge itself follows the
// worker lifecycle (see worker), so a hung worker shows up as a stale
// heartbeat while the gauge still reads 1 — exactly the signal that
// distinguishes "slow" from "gone".
func (c *Campaign) heartbeat(ctx context.Context, name string) {
	t := time.NewTicker(c.HeartbeatInterval)
	defer t.Stop()
	beat := func(msg string) {
		c.Events.Publish(eventlog.Event{
			Typ: eventlog.TypeHeartbeat, Replica: name, Run: eventlog.NoRun, Message: msg,
		})
	}
	beat("up")
	for {
		select {
		case <-ctx.Done():
			beat("down")
			return
		case <-t.C:
			beat("up")
		}
	}
}

func (c *Campaign) now() time.Time {
	if clock := c.Replicas[0].Runner.Clock; clock != nil {
		return clock()
	}
	return time.Now()
}

// validate checks the campaign's reproducibility invariants.
func (c *Campaign) validate() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("sched: campaign needs at least one replica")
	}
	names := make(map[string]bool, len(c.Replicas))
	for i := range c.Replicas {
		rep := &c.Replicas[i]
		if rep.Runner == nil || rep.Experiment == nil {
			return fmt.Errorf("sched: replica %d needs a runner and an experiment", i)
		}
		if rep.Name == "" {
			rep.Name = fmt.Sprintf("replica%d", i)
		}
		if strings.ContainsAny(rep.Name, "/\\") {
			return fmt.Errorf("sched: replica name %q must be flat", rep.Name)
		}
		if names[rep.Name] {
			return fmt.Errorf("sched: duplicate replica name %q", rep.Name)
		}
		names[rep.Name] = true
		if err := rep.Experiment.Validate(); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
	}
	first := c.Replicas[0].Experiment
	firstLoop, err := core.MarshalLoopVars(first.LoopVars)
	if err != nil {
		return err
	}
	for _, rep := range c.Replicas[1:] {
		e := rep.Experiment
		if e.Name != first.Name || e.User != first.User {
			return fmt.Errorf("sched: replica %s runs %s/%s, campaign runs %s/%s — one campaign is one experiment",
				rep.Name, e.User, e.Name, first.User, first.Name)
		}
		loop, err := core.MarshalLoopVars(e.LoopVars)
		if err != nil {
			return err
		}
		if string(loop) != string(firstLoop) {
			return fmt.Errorf("sched: replica %s sweeps different loop variables — sharding would not reproduce the sequential sweep", rep.Name)
		}
		if err := sameVars(first.GlobalVars, e.GlobalVars); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
		if err := sameImages(first, e); err != nil {
			return fmt.Errorf("sched: replica %s: %w", rep.Name, err)
		}
	}
	return c.validateDisjointHosts()
}

func sameVars(a, b core.Vars) error {
	if len(a) != len(b) {
		return fmt.Errorf("global variables differ (%d vs %d keys)", len(b), len(a))
	}
	for k, v := range a {
		if b[k] != v {
			return fmt.Errorf("global variable %s=%q differs from %q", k, b[k], v)
		}
	}
	return nil
}

// sameImages requires the identical role→image mapping on every replica —
// the paper's condition for sharding to preserve reproducibility.
func sameImages(a, b *core.Experiment) error {
	imgs := func(e *core.Experiment) map[string]string {
		m := make(map[string]string, len(e.Hosts))
		for _, h := range e.Hosts {
			m[h.Role] = h.Image
		}
		return m
	}
	ia, ib := imgs(a), imgs(b)
	if len(ia) != len(ib) {
		return fmt.Errorf("role sets differ")
	}
	for role, img := range ia {
		got, ok := ib[role]
		if !ok {
			return fmt.Errorf("role %q missing", role)
		}
		if got != img {
			return fmt.Errorf("role %q boots image %q, campaign boots %q", role, got, img)
		}
	}
	return nil
}

// validateDisjointHosts rejects replicas that share a node on a shared
// hosttools service: their per-run scopes would fight over the binding.
func (c *Campaign) validateDisjointHosts() error {
	seen := make(map[*hosttools.Service]map[string]string)
	for _, rep := range c.Replicas {
		svc := rep.Runner.Service
		if svc == nil {
			return fmt.Errorf("sched: replica %s: runner needs a hosttools service", rep.Name)
		}
		nodes := seen[svc]
		if nodes == nil {
			nodes = make(map[string]string)
			seen[svc] = nodes
		}
		for _, n := range rep.Experiment.NodeNames() {
			if prev, ok := nodes[n]; ok {
				return fmt.Errorf("sched: node %q claimed by replicas %s and %s on the same service — replica host-sets must be disjoint", n, prev, rep.Name)
			}
			nodes[n] = rep.Name
		}
	}
	return nil
}

// manifest is the campaign's experiment-level artifact: how the sweep was
// sharded. It complements — never alters — the per-run metadata, which stays
// byte-identical to a sequential execution.
type manifest struct {
	Replicas  []string       `json:"replicas"`
	Parallel  int            `json:"parallel"`
	TotalRuns int            `json:"total_runs"`
	Schedule  map[string]int `json:"runs_per_replica,omitempty"`
}

// Attempt phases recorded in the attempt history.
const (
	// phaseRun is a dispatched measurement run.
	phaseRun = "run"
	// phaseResetup is the clean-slate reboot-and-re-setup that precedes
	// a retry (or follows a failure on the same replica).
	phaseResetup = "re-setup"
)

// attempt is one entry of a run's dispatch history.
type attempt struct {
	Attempt   int    `json:"attempt"`
	Replica   string `json:"replica"`
	Phase     string `json:"phase"`
	Failed    bool   `json:"failed,omitempty"`
	Error     string `json:"error,omitempty"`
	BackoffMS int64  `json:"backoff_ms,omitempty"`
}

// runAttempts groups one run's attempts for attempts.json.
type runAttempts struct {
	Run      int       `json:"run"`
	Attempts []attempt `json:"attempts"`
}

// attemptsDoc is the experiment/attempts.json artifact: the campaign's
// complete fault-tolerance history. It lives next to campaign.json at the
// experiment level — per-run metadata.json never records attempts, so a
// retried sweep stays byte-identical to a fault-free sequential one.
type attemptsDoc struct {
	MaxAttempts     int           `json:"max_attempts"`
	QuarantineAfter int           `json:"quarantine_after,omitempty"`
	Quarantined     []string      `json:"quarantined,omitempty"`
	Runs            []runAttempts `json:"runs"`
}

// workItem is one dispatch of a run: the run index plus which attempt this
// dispatch is.
type workItem struct {
	run     int
	attempt int
}

// campaignState is the mutable bookkeeping shared by the campaign workers.
type campaignState struct {
	// progress counts completed dispatch attempts (success, failure, or
	// cancellation alike) — the campaign's liveness signal. The watchdog's
	// stall probe reads it from its own goroutine, hence atomic.
	progress atomic.Uint64

	mu          sync.Mutex
	records     []*core.RunRecord
	attempts    [][]attempt
	perWorker   []int
	outstanding int // runs not yet terminally resolved
	firstFail   int // lowest run index that failed terminally (fail-fast)
	active      int // workers still pulling from the queue
	quarantined []string
	queue       chan workItem
}

// resolve marks one run terminally finished. Closing the queue when the
// last run resolves releases the idle workers; no sends can follow, because
// only a worker holding an unresolved item ever re-enqueues.
func (st *campaignState) resolve(run int, rec *core.RunRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.records[run] = rec
	st.outstanding--
	if st.outstanding == 0 {
		close(st.queue)
	}
}

// record appends one attempt to a run's history.
func (st *campaignState) record(run int, a attempt) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.attempts[run] = append(st.attempts[run], a)
}

// Run executes the campaign: prepare every replica (boot + setup, in
// parallel), then drain the run queue concurrently. It returns a summary
// equivalent to the sequential runner's — deterministic run numbering, one
// record per executed run in run order.
func (c *Campaign) Run(ctx context.Context, store *results.Store) (sum *core.Summary, err error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	logical := c.Replicas[0].Experiment
	combos, err := core.CrossProduct(logical.LoopVars)
	if err != nil {
		return nil, err
	}
	parallel := c.Parallel
	if parallel <= 0 || parallel > len(c.Replicas) {
		parallel = len(c.Replicas)
	}

	started := c.now()
	// A campaign roots its own span trace (replica lanes, per-run children)
	// unless the caller brought one; owned traces land in spans.json. A
	// queue-dispatched campaign carries its submitter's traceparent in the
	// context — the trace adopts that identity so this process's spans
	// stitch under the posctl invocation that submitted it.
	var tr *telemetry.Trace
	if telemetry.SpanFromContext(ctx) == nil && telemetry.Default.Enabled() {
		tr = telemetry.NewLinkedTrace("campaign:"+logical.Name, telemetry.PendingTraceParent(ctx))
		tr.SetProcess("controller")
		tr.SetClock(c.now)
		ctx = telemetry.ContextWithTrace(ctx, tr)
	}
	exp, err := store.CreateExperiment(logical.User, logical.Name, started)
	if err != nil {
		return nil, err
	}
	// Best-effort drain on every exit path; the success path checks the
	// flush error explicitly below.
	defer exp.Sync()
	// Span traces archive on EVERY exit path — a failed or aborted
	// campaign is precisely the one whose timeline gets post-mortemed.
	// Registered after the Sync defer, so the artifact drains to disk.
	if tr != nil {
		defer func() {
			tr.Finish()
			if data, err := tr.RenderJSON(); err == nil {
				exp.AddExperimentArtifact("spans.json", data)
			}
		}()
	}
	// The event journal lives directly under the experiment directory
	// (like .posindex, it is controller state, not a run artifact): every
	// published event is replayable after the campaign via posctl events.
	// A campaign without an attached pipeline still journals — a private
	// pipeline with no subscribers costs only the appends.
	if c.Events == nil {
		c.Events = eventlog.NewPipeline()
		defer func() { c.Events = nil }()
	}
	{
		if j, jerr := eventlog.OpenJournal(filepath.Join(exp.Dir(), "events"), 0); jerr == nil {
			c.Events.AttachJournal(j)
			defer func() {
				c.Events.DetachJournal()
				j.Close()
			}()
		}
		c.Events.Publish(eventlog.Event{
			Typ: eventlog.TypeLog, Level: "INFO", Run: eventlog.NoRun,
			Message: fmt.Sprintf("campaign started: %s, %d replicas", logical.Name, len(c.Replicas)),
		})
		// A queue-dispatched campaign journals its own admission record here,
		// after the journal attached: the queue controller's events predate
		// the journal and never reach the archive, and without this record
		// the timeline assembler cannot attribute queue wait.
		if adm, ok := eventlog.AdmissionFromContext(ctx); ok {
			attrs := map[string]string{
				"submission_id": adm.SubmissionID,
				"submitted":     adm.Submitted.UTC().Format(time.RFC3339Nano),
				"admitted":      adm.Admitted.UTC().Format(time.RFC3339Nano),
				"wait_ms":       strconv.FormatInt(adm.Wait().Milliseconds(), 10),
			}
			if adm.User != "" {
				attrs["queue_user"] = adm.User
			}
			c.Events.Publish(eventlog.Event{
				Typ: eventlog.TypeQueue, Level: "INFO", Run: eventlog.NoRun,
				Message: "queue admission", Attrs: attrs,
			})
		}
		defer func() {
			// A preempted campaign (queue cancel, controller shutdown) must
			// not journal itself as "finished" — the journal is the record
			// an operator replays to see what actually happened.
			msg := "campaign finished: " + logical.Name
			if ctx.Err() != nil {
				msg = "campaign cancelled: " + logical.Name
			}
			c.Events.Publish(eventlog.Event{
				Typ: eventlog.TypeLog, Level: "INFO", Run: eventlog.NoRun,
				Message: msg,
			})
		}()
	}
	// Flight recorder: tail the campaign's own event stream into a warm
	// ring so a watchdog trip or failure can dump the last thing the
	// campaign did without consulting the journal. First evidence wins —
	// a watchdog trip mid-campaign must not be overwritten by the failure
	// record of the abort it caused.
	flightRec := health.NewRecorder(0, telemetry.Default)
	defer flightRec.Attach(c.Events)()
	var flightOnce sync.Once
	dumpFlight := func(trigger, probe, detail string) {
		flightOnce.Do(func() {
			fr := flightRec.Capture(trigger, probe, detail)
			// Post-mortems start with the answer, not raw events: snapshot
			// the in-flight trace (open spans closed at "now") and attach
			// its critical path and per-phase attribution to the record.
			ftr := tr
			if ftr == nil {
				ftr = telemetry.TraceFromContext(ctx)
			}
			if ftr != nil {
				fr.Analysis = timeline.Summarize(ftr.RecordsAt(c.now()))
			}
			if data, encErr := fr.Encode(); encErr == nil {
				exp.AddExperimentArtifact("flightrec.json", data)
			}
		})
	}
	// A genuinely failed campaign (not a caller cancellation) leaves its
	// post-mortem behind even when no watchdog is attached.
	defer func() {
		if err != nil && ctx.Err() == nil {
			dumpFlight(health.TriggerCampaignFailure, "", err.Error())
		}
	}()

	// Serialize runner-level events from all replicas through the campaign
	// progress mutex before any replica starts booting.
	defer c.wireReplicas()()
	if err := core.ArchiveDefinition(logical, exp); err != nil {
		return nil, err
	}

	// Setup phase on every replica concurrently; a campaign with a broken
	// replica must fail before the first measurement run.
	sessions := make([]*core.Session, len(c.Replicas))
	prepErrs := make([]error, len(c.Replicas))
	var wg sync.WaitGroup
	for i := range c.Replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := c.Replicas[i]
			pctx, ps := telemetry.StartSpan(ctx, "prepare:"+rep.Name, "replica", rep.Name)
			sessions[i], prepErrs[i] = rep.Runner.PrepareShared(pctx, rep.Experiment, exp, rep.Name)
			ps.SetError(prepErrs[i])
			ps.End()
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, sess := range sessions {
			if sess != nil {
				sess.Close()
			}
		}
	}()
	for i, err := range prepErrs {
		if err != nil {
			return nil, fmt.Errorf("sched: replica %s: %w", c.Replicas[i].Name, err)
		}
	}

	sum = &core.Summary{
		Experiment: logical.Name,
		ResultsDir: exp.Dir(),
		TotalRuns:  len(combos),
		Started:    started,
	}

	maxAttempts := c.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}

	// Shared work queue: replicas pull the next dispatch as they free up,
	// so a slow run on one replica never stalls the others. The queue is
	// buffered for every possible dispatch (each run is enqueued at most
	// MaxAttempts times), so re-enqueueing a retry never blocks a worker.
	// The semaphore bounds runs in flight when Parallel < len(Replicas).
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &campaignState{
		records:   make([]*core.RunRecord, len(combos)),
		attempts:  make([][]attempt, len(combos)),
		perWorker: make([]int, len(c.Replicas)),

		outstanding: len(combos),
		firstFail:   -1,
		active:      len(sessions),
		queue:       make(chan workItem, len(combos)*maxAttempts),
	}
	for i := range combos {
		st.queue <- workItem{run: i, attempt: 1}
	}
	queueDepth.Add(float64(len(combos)))

	// Watchdog supervision for exactly the campaign's lifetime: the stall
	// probe watches this campaign's dispatch-completion counter, and a trip
	// captures the flight record while the stall is still in progress.
	if c.Watchdog != nil {
		deadline := c.StallDeadline
		if deadline <= 0 {
			if c.RunTimeout > 0 {
				deadline = 2 * c.RunTimeout
			} else {
				deadline = 5 * time.Minute
			}
		}
		probe := health.NewStallProbe("campaign:"+logical.Name,
			func() float64 { return float64(st.progress.Load()) }, nil, deadline)
		unregister := c.Watchdog.Register(probe, func(ps health.ProbeState) {
			dumpFlight(health.TriggerWatchdog, ps.Name, ps.Detail)
		})
		defer unregister()
	}

	// Liveness probes: one heartbeat goroutine per replica for the
	// campaign's duration.
	if c.Events != nil && c.HeartbeatInterval > 0 {
		hbCtx, hbCancel := context.WithCancel(context.Background())
		var hbWg sync.WaitGroup
		defer hbWg.Wait()
		defer hbCancel()
		for i := range c.Replicas {
			hbWg.Add(1)
			go func(name string) {
				defer hbWg.Done()
				c.heartbeat(hbCtx, name)
			}(c.Replicas[i].Name)
		}
	}

	sem := make(chan struct{}, parallel)
	for wi, sess := range sessions {
		wg.Add(1)
		go func(wi int, sess *core.Session) {
			defer wg.Done()
			c.worker(runCtx, cancel, wi, sess, st, sem, combos, maxAttempts)
		}(wi, sess)
	}
	wg.Wait()

	// Assemble the summary in deterministic run order.
	st.mu.Lock()
	schedule := make(map[string]int, len(c.Replicas))
	for wi, n := range st.perWorker {
		if n > 0 {
			schedule[c.Replicas[wi].Name] = n
		}
	}
	sort.Strings(st.quarantined)
	sum.Quarantined = append([]string(nil), st.quarantined...)
	allQuarantined := st.active == 0
	failIdx := st.firstFail
	history := make([]runAttempts, 0, len(combos))
	for run, atts := range st.attempts {
		if len(atts) > 0 {
			history = append(history, runAttempts{Run: run, Attempts: atts})
		}
	}
	for _, rec := range st.records {
		if rec == nil {
			continue // never dispatched (cancelled or failed-fast)
		}
		sum.Records = append(sum.Records, *rec)
		switch {
		case rec.Cancelled:
			sum.CancelledRuns++
		case rec.Failed:
			sum.FailedRuns++
		}
	}
	st.mu.Unlock()
	sum.Finished = c.now()

	names := make([]string, len(c.Replicas))
	for i, rep := range c.Replicas {
		names[i] = rep.Name
	}
	sort.Strings(names)
	// Cancelled or failed-fast campaigns leave undispatched items behind;
	// the queue gauge must not drift across campaigns.
	queueDepth.Add(-float64(drainQueue(st)))

	m, err := json.MarshalIndent(manifest{
		Replicas: names, Parallel: parallel, TotalRuns: len(combos), Schedule: schedule,
	}, "", "  ")
	if err != nil {
		return sum, fmt.Errorf("sched: %w", err)
	}
	if err := exp.AddExperimentArtifact("experiment/campaign.json", append(m, '\n')); err != nil {
		return sum, err
	}
	hist, err := json.MarshalIndent(attemptsDoc{
		MaxAttempts:     maxAttempts,
		QuarantineAfter: c.QuarantineAfter,
		Quarantined:     sum.Quarantined,
		Runs:            history,
	}, "", "  ")
	if err != nil {
		return sum, fmt.Errorf("sched: %w", err)
	}
	if err := exp.AddExperimentArtifact("experiment/attempts.json", append(hist, '\n')); err != nil {
		return sum, err
	}
	// Drain the write-behind manifest: the campaign's results directory
	// must be complete and reopenable once Run returns.
	if err := exp.Sync(); err != nil {
		return sum, err
	}

	if err := ctx.Err(); err != nil {
		return sum, err
	}
	if allQuarantined {
		return sum, fmt.Errorf("sched: all %d replicas quarantined after %d consecutive failures each — %d of %d runs incomplete",
			len(c.Replicas), c.QuarantineAfter, countNil(st.records), len(combos))
	}
	if failIdx >= 0 {
		rec := st.records[failIdx]
		return sum, fmt.Errorf("sched: run %d (%s) failed after %d attempt(s): %s", failIdx, rec.Combo.Key(), rec.Attempts, rec.Error)
	}
	return sum, nil
}

// drainQueue empties whatever the workers left behind (closed or abandoned
// queue) and reports the count, so the shared depth gauge returns to level.
func drainQueue(st *campaignState) int {
	n := 0
	for {
		select {
		case _, ok := <-st.queue:
			if !ok {
				return n
			}
			n++
		default:
			return n
		}
	}
}

func countNil(recs []*core.RunRecord) int {
	n := 0
	for _, r := range recs {
		if r == nil {
			n++
		}
	}
	return n
}

// worker is one replica's dispatch loop: pull a run, back off if it is a
// retry, re-establish the clean slate when needed, execute, and either
// resolve the run or hand it back to the queue. A worker that fails
// QuarantineAfter consecutive dispatches drains itself from the campaign.
func (c *Campaign) worker(runCtx context.Context, cancel context.CancelFunc, wi int, sess *core.Session, st *campaignState, sem chan struct{}, combos []core.Combination, maxAttempts int) {
	name := c.Replicas[wi].Name
	// The worker's lane span groups everything this replica executes — one
	// flamegraph row per replica in the Chrome trace rendering.
	runCtx, lane := telemetry.StartSpan(runCtx, "replica:"+name, "replica", name)
	defer lane.End()
	// The up gauge follows the worker: a quarantined or finished replica
	// reads 0 even while its heartbeat goroutine keeps ticking.
	up := replicaUp.With(name)
	up.Set(1)
	defer up.Set(0)
	dirty := false // a failed run leaves the replica's state suspect
	consec := 0
	for {
		var item workItem
		var ok bool
		select {
		case <-runCtx.Done():
			return
		case item, ok = <-st.queue:
			if !ok {
				return
			}
		}
		queueDepth.Dec()

		// Backoff before a retry happens outside the parallelism
		// bound: a waiting run must not block a healthy replica's slot.
		backoff := c.backoffFor(item.attempt)
		if backoff > 0 {
			c.event(core.ProgressEvent{
				Phase: core.PhaseMeasurement, Run: item.run, TotalRuns: len(combos),
				Host: name, Message: fmt.Sprintf("backing off %v before attempt %d", backoff, item.attempt),
			}, item.attempt)
			c.sleep(runCtx, backoff)
		}
		select {
		case <-runCtx.Done():
			return
		case sem <- struct{}{}:
		}

		inflightRuns.Inc()
		var rec core.RunRecord
		var err error
		// Dispatches execute on the process-wide workpool — the same
		// bounded worker budget that runs shard rounds — so campaign
		// parallelism and data-plane parallelism share one pool instead
		// of stacking goroutines. Do runs inline when no worker is idle,
		// so a dispatch never deadlocks behind its own pool.
		workpool.Default().Do(func() {
			rec, err = c.dispatch(runCtx, sess, st, wi, item, combos, dirty, backoff)
		})
		inflightRuns.Dec()
		st.progress.Add(1)
		<-sem

		// Collateral damage: the run failed only because the campaign
		// was being torn down around it. Resolve it as cancelled — it
		// neither consumes attempts nor counts against the replica.
		if rec.Failed && runCtx.Err() != nil && errors.Is(err, context.Canceled) {
			dispatchesCancelled.Inc()
			rec.Cancelled = true
			st.mu.Lock()
			st.perWorker[wi]++
			st.mu.Unlock()
			st.resolve(item.run, &rec)
			return
		}

		st.mu.Lock()
		st.perWorker[wi]++
		st.mu.Unlock()

		if !rec.Failed {
			dispatchesOK.Inc()
			dirty = false
			consec = 0
			st.resolve(item.run, &rec)
			continue
		}

		// Genuine failure: the replica is suspect until re-set-up.
		dispatchesFailed.Inc()
		dirty = true
		consec++
		terminal := item.attempt >= maxAttempts
		if !terminal {
			c.event(core.ProgressEvent{
				Phase: core.PhaseMeasurement, Run: item.run, TotalRuns: len(combos),
				Host: name, Message: fmt.Sprintf("attempt %d failed, requeueing: %s", item.attempt, rec.Error),
				Error: rec.Error,
			}, item.attempt)
			retriesTotal.Inc()
			st.queue <- workItem{run: item.run, attempt: item.attempt + 1}
			queueDepth.Inc()
		} else {
			st.resolve(item.run, &rec)
		}

		if c.QuarantineAfter > 0 && consec >= c.QuarantineAfter {
			c.event(core.ProgressEvent{
				Phase: core.PhaseMeasurement, Run: item.run, TotalRuns: len(combos),
				Host: name, Message: fmt.Sprintf("replica quarantined after %d consecutive failures", consec),
				Error: rec.Error,
			}, item.attempt)
			quarantinesTotal.Inc()
			lane.SetAttr("quarantined", "true")
			st.mu.Lock()
			st.quarantined = append(st.quarantined, name)
			st.active--
			lastWorker := st.active == 0
			st.mu.Unlock()
			if lastWorker {
				cancel() // nobody left to drain the queue
			}
			return
		}
		if terminal && !c.ContinueOnRunFailure {
			st.mu.Lock()
			if st.firstFail == -1 || item.run < st.firstFail {
				st.firstFail = item.run
			}
			st.mu.Unlock()
			cancel()
			return
		}
	}
}

// dispatch executes one work item on a session: clean-slate re-setup when
// the item is a retry (or the replica just failed), then the measurement
// run. It returns the run record with the campaign-level bookkeeping
// (attempt count, collateral-cancellation marker) filled in, plus the raw
// error for cancellation analysis.
func (c *Campaign) dispatch(runCtx context.Context, sess *core.Session, st *campaignState, wi int, item workItem, combos []core.Combination, dirty bool, backoff time.Duration) (core.RunRecord, error) {
	name := c.Replicas[wi].Name
	rctx := runCtx
	var rcancel context.CancelFunc
	if c.RunTimeout > 0 {
		rctx, rcancel = context.WithTimeout(runCtx, c.RunTimeout)
		defer rcancel()
	}

	// The paper's recovery discipline: a run is only re-executed from a
	// freshly booted, freshly set-up testbed, so the retry cannot be
	// contaminated by whatever the failure left behind.
	if item.attempt > 1 || dirty {
		if err := sess.Recover(rctx); err != nil {
			rec := core.RunRecord{
				Run: item.run, Combo: combos[item.run], Failed: true,
				Error:    fmt.Sprintf("re-setup: %s", err),
				Attempts: item.attempt,
			}
			st.record(item.run, attempt{
				Attempt: item.attempt, Replica: name, Phase: phaseResetup,
				Failed: true, Error: err.Error(), BackoffMS: backoff.Milliseconds(),
			})
			c.event(core.ProgressEvent{
				Phase: core.PhaseSetup, Run: item.run, TotalRuns: len(combos),
				Host: name, Message: "clean-slate re-setup failed", Error: err.Error(),
			}, item.attempt)
			return rec, err
		}
	}

	// The run-start event is emitted by RunOne itself and forwarded through
	// the campaign's serialized progress wiring (wireReplicas), so dispatch
	// does not duplicate it.
	rec, err := sess.RunOne(rctx, item.run, len(combos), combos[item.run])
	if err != nil && !rec.Failed {
		// Recording errors (artifact or metadata writes) that RunOne
		// reports without marking the record would otherwise count the
		// run as successful with its results missing.
		rec.Failed, rec.Error = true, err.Error()
	}
	rec.Attempts = item.attempt
	st.record(item.run, attempt{
		Attempt: item.attempt, Replica: name, Phase: phaseRun,
		Failed: rec.Failed, Error: rec.Error, BackoffMS: backoff.Milliseconds(),
	})
	return rec, err
}
