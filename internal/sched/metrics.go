package sched

import "pos/internal/telemetry"

// Campaign scheduler telemetry: queue pressure, concurrency, and the
// fault-tolerance machinery (retries, quarantines). Gauges aggregate across
// concurrent campaigns in one process.
var (
	queueDepth = telemetry.Default.Gauge("pos_sched_queue_depth",
		"Dispatches waiting in campaign work queues.")
	inflightRuns = telemetry.Default.Gauge("pos_sched_inflight_runs",
		"Measurement runs currently executing across replicas.")
	retriesTotal = telemetry.Default.Counter("pos_sched_retries_total",
		"Failed dispatches re-enqueued for another attempt.")
	quarantinesTotal = telemetry.Default.Counter("pos_sched_quarantines_total",
		"Replicas drained after consecutive failed dispatches.")
	dispatchesTotal = telemetry.Default.CounterVec("pos_sched_dispatches_total",
		"Work-item dispatches, by outcome.", "outcome")
	dispatchesOK        = dispatchesTotal.With("ok")
	dispatchesFailed    = dispatchesTotal.With("failed")
	dispatchesCancelled = dispatchesTotal.With("cancelled")
	replicaUp           = telemetry.Default.GaugeVec("pos_replica_up",
		"1 while a replica's campaign worker is pulling work, 0 once it finished or was quarantined.", "replica")
)
