package hosttools

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"pos/internal/image"
	"pos/internal/node"
)

type memUploads struct {
	mu   sync.Mutex
	got  map[string][]byte // key: node/artifact
	errs int
}

func (m *memUploads) Upload(nodeName, artifact string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.got == nil {
		m.got = make(map[string][]byte)
	}
	m.got[nodeName+"/"+artifact] = append([]byte(nil), data...)
	return nil
}

func newHost(t *testing.T, name string, svc *Service) *node.Node {
	t.Helper()
	store := image.NewStore()
	if err := store.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	n := node.New(name, store)
	n.BootDelay = 0
	if err := n.SetBoot("debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := Install(n, svc); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestVarsAcrossScopesAndHosts(t *testing.T) {
	svc := NewService(nil)
	dut := newHost(t, "dut", svc)
	lg := newHost(t, "loadgen", svc)

	// DuT publishes a global var; LoadGen reads it.
	if _, err := dut.Exec(context.Background(), "pos_set_var global dut_mac 02:00:00:00:00:02", nil); err != nil {
		t.Fatal(err)
	}
	out, err := lg.Exec(context.Background(), "pos_get_var global dut_mac", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "02:00:00:00:00:02") {
		t.Errorf("output = %q", out)
	}

	// Local scope resolves to the calling node's name.
	if _, err := dut.Exec(context.Background(), "pos_set_var local port eno1", nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := svc.GetVar("dut", "port"); !ok || v != "eno1" {
		t.Errorf("local var = %q ok=%v", v, ok)
	}
	// The other host's local scope stays empty.
	if _, err := lg.Exec(context.Background(), "pos_get_var local port", nil); err == nil {
		t.Error("read of another host's local var succeeded")
	}
}

func TestGetUnsetVarFails(t *testing.T) {
	svc := NewService(nil)
	h := newHost(t, "h", svc)
	if _, err := h.Exec(context.Background(), "pos_get_var loop nope", nil); err == nil {
		t.Error("unset var read succeeded")
	}
}

func TestClearScope(t *testing.T) {
	svc := NewService(nil)
	svc.SetVar(ScopeLoop, "pkt_sz", "64")
	svc.ClearScope(ScopeLoop)
	if _, ok := svc.GetVar(ScopeLoop, "pkt_sz"); ok {
		t.Error("var survived ClearScope")
	}
}

func TestBarrierSynchronizesHosts(t *testing.T) {
	svc := NewService(nil)
	dut := newHost(t, "dut", svc)
	lg := newHost(t, "loadgen", svc)

	var order []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		record("dut-before")
		if _, err := dut.Exec(context.Background(), "pos_sync setup_done 2", nil); err != nil {
			t.Errorf("dut barrier: %v", err)
		}
		record("dut-after")
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		record("lg-before")
		if _, err := lg.Exec(context.Background(), "pos_sync setup_done 2", nil); err != nil {
			t.Errorf("lg barrier: %v", err)
		}
		record("lg-after")
	}()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// Both "after"s must come after both "before"s.
	pos := map[string]int{}
	for i, s := range order {
		pos[s] = i
	}
	if pos["dut-after"] < pos["lg-before"] {
		t.Errorf("barrier did not hold: %v", order)
	}
}

func TestBarrierReusable(t *testing.T) {
	svc := NewService(nil)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = svc.Barrier(context.Background(), "measure", 2)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d waiter %d: %v", round, i, err)
			}
		}
	}
}

func TestBarrierTimeout(t *testing.T) {
	svc := NewService(nil)
	svc.BarrierTimeout = 20 * time.Millisecond
	start := time.Now()
	err := svc.Barrier(context.Background(), "lonely", 2)
	if err != ErrBarrierTimeout {
		t.Errorf("err = %v, want timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout too slow")
	}
}

// TestBarrierTimeoutWithdrawsArrival: a waiter that times out must not stay
// counted, or the next wave at the same barrier releases with fewer real
// participants than parties — the ghost-arrival leak.
func TestBarrierTimeoutWithdrawsArrival(t *testing.T) {
	svc := NewService(nil)
	svc.BarrierTimeout = 20 * time.Millisecond

	// First wave: a lone waiter times out, leaving (pre-fix) a ghost
	// arrival behind.
	if err := svc.Barrier(context.Background(), "wave", 2); err != ErrBarrierTimeout {
		t.Fatalf("lone waiter: err = %v, want timeout", err)
	}

	// Second wave, still alone: with the ghost counted, this waiter would
	// release instantly as the "second" participant. It must time out.
	if err := svc.Barrier(context.Background(), "wave", 2); err != ErrBarrierTimeout {
		t.Fatalf("post-timeout lone waiter released by ghost arrival: err = %v", err)
	}

	// Third wave with two real participants still works.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = svc.Barrier(context.Background(), "wave", 2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
}

func TestUploadHookScreensUploads(t *testing.T) {
	up := &memUploads{}
	svc := NewService(up)
	calls := 0
	svc.SetUploadHook(func(nodeName, artifact string) error {
		calls++
		if calls == 1 {
			return ErrBarrierTimeout // any error: upload refused
		}
		return nil
	})
	if err := svc.Upload("n1", "a.log", []byte("x")); err == nil {
		t.Fatal("hooked upload not refused")
	}
	if err := svc.Upload("n1", "a.log", []byte("y")); err != nil {
		t.Fatalf("second upload: %v", err)
	}
	if string(up.got["n1/a.log"]) != "y" {
		t.Errorf("uploads = %v", up.got)
	}
	svc.SetUploadHook(nil)
	if err := svc.Upload("n1", "b.log", []byte("z")); err != nil {
		t.Fatalf("after hook removal: %v", err)
	}
}

func TestBarrierPartyMismatch(t *testing.T) {
	svc := NewService(nil)
	svc.BarrierTimeout = 10 * time.Millisecond
	go svc.Barrier(context.Background(), "b", 2)
	time.Sleep(5 * time.Millisecond)
	if err := svc.Barrier(context.Background(), "b", 3); err == nil || err == ErrBarrierTimeout {
		t.Errorf("party mismatch: err = %v, want explicit mismatch error", err)
	}
	if err := svc.Barrier(context.Background(), "x", 0); err == nil {
		t.Error("accepted parties=0")
	}
}

func TestUploadFromScript(t *testing.T) {
	up := &memUploads{}
	svc := NewService(up)
	h := newHost(t, "dut", svc)
	if _, err := h.Exec(context.Background(), "pos_upload notes measurement went fine", nil); err != nil {
		t.Fatal(err)
	}
	if got := string(up.got["dut/notes"]); got != "measurement went fine" {
		t.Errorf("upload = %q", got)
	}
}

func TestUploadFile(t *testing.T) {
	up := &memUploads{}
	svc := NewService(up)
	h := newHost(t, "dut", svc)
	script := `
write /tmp/out.log line one
pos_upload_file out.log /tmp/out.log
`
	if _, err := h.Exec(context.Background(), script, nil); err != nil {
		t.Fatal(err)
	}
	if got := string(up.got["dut/out.log"]); got != "line one" {
		t.Errorf("upload = %q", got)
	}
	if _, err := h.Exec(context.Background(), "pos_upload_file x /missing", nil); err == nil {
		t.Error("upload of missing file succeeded")
	}
}

func TestUploadWithoutUploaderFails(t *testing.T) {
	svc := NewService(nil)
	h := newHost(t, "dut", svc)
	if _, err := h.Exec(context.Background(), "pos_upload x y", nil); err == nil {
		t.Error("upload without uploader succeeded")
	}
}

func TestPosRunCapturesAndUploads(t *testing.T) {
	up := &memUploads{}
	svc := NewService(up)
	h := newHost(t, "loadgen", svc)
	err := h.RegisterCommand("moongen", func(_ context.Context, _ *node.Node, args []string, stdout, _ node.ErrWriter) error {
		stdout.Write([]byte("[Device: id=0] TX: 1.0 Mpps\n"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Exec(context.Background(), "pos_run moongen.log moongen --rate 1000", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Output is both echoed to the script log and uploaded.
	if !strings.Contains(out, "TX: 1.0 Mpps") {
		t.Errorf("script output = %q", out)
	}
	if got := string(up.got["loadgen/moongen.log"]); !strings.Contains(got, "TX: 1.0 Mpps") {
		t.Errorf("uploaded = %q", got)
	}
}

func TestPosRunUnknownCommand(t *testing.T) {
	svc := NewService(&memUploads{})
	h := newHost(t, "h", svc)
	if _, err := h.Exec(context.Background(), "pos_run log nosuch", nil); err == nil {
		t.Error("pos_run of unknown command succeeded")
	}
}

func TestPosRunUploadsEvenOnFailure(t *testing.T) {
	up := &memUploads{}
	svc := NewService(up)
	h := newHost(t, "h", svc)
	h.RegisterCommand("flaky", func(_ context.Context, _ *node.Node, _ []string, stdout, _ node.ErrWriter) error {
		stdout.Write([]byte("partial output\n"))
		return context.DeadlineExceeded
	})
	if _, err := h.Exec(context.Background(), "pos_run flaky.log flaky", nil); err == nil {
		t.Fatal("failing command not reported")
	}
	if got := string(up.got["h/flaky.log"]); !strings.Contains(got, "partial output") {
		t.Errorf("failure output not uploaded: %q", got)
	}
}

func TestToolsGoneAfterReboot(t *testing.T) {
	svc := NewService(nil)
	h := newHost(t, "h", svc)
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Exec(context.Background(), "pos_get_var global x", nil); err == nil {
		t.Error("pos tools survived a reboot — live-boot must wipe them")
	}
	// Reinstall works.
	if err := Install(h, svc); err != nil {
		t.Fatal(err)
	}
}
