package hosttools

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestBufferedUploaderDeliversInOrder(t *testing.T) {
	var mu sync.Mutex
	var got []string
	sink := UploaderFunc(func(node, artifact string, data []byte) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, fmt.Sprintf("%s/%s=%s", node, artifact, data))
		return nil
	})
	b := NewBufferedUploader(sink, 4)
	for i := 0; i < 20; i++ {
		if err := b.Upload("n", fmt.Sprintf("a%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("delivered %d uploads", len(got))
	}
	for i, s := range got {
		if want := fmt.Sprintf("n/a%02d=%d", i, i); s != want {
			t.Errorf("upload %d = %s, want %s", i, s, want)
		}
	}
}

func TestBufferedUploaderStickyError(t *testing.T) {
	boom := errors.New("disk full")
	calls := 0
	var mu sync.Mutex
	sink := UploaderFunc(func(node, artifact string, data []byte) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return boom
	})
	b := NewBufferedUploader(sink, 2)
	if err := b.Upload("n", "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush = %v", err)
	}
	// The error is sticky: later uploads fail immediately, the sink is
	// not called again.
	if err := b.Upload("n", "b", []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("post-error upload = %v", err)
	}
	if err := b.Flush(); !errors.Is(err, boom) {
		t.Fatalf("second flush = %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("sink called %d times", calls)
	}
}

func TestBufferedUploaderConcurrentProducers(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]bool)
	sink := UploaderFunc(func(node, artifact string, data []byte) error {
		mu.Lock()
		defer mu.Unlock()
		seen[node+"/"+artifact] = true
		return nil
	})
	b := NewBufferedUploader(sink, 3) // small queue: exercises backpressure
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if err := b.Upload(fmt.Sprintf("n%d", w), fmt.Sprintf("a%d", i), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 8*30 {
		t.Errorf("delivered %d distinct uploads, want %d", len(seen), 8*30)
	}
}
