package hosttools

import "pos/internal/telemetry"

var (
	barrierWaitSeconds = telemetry.Default.Histogram("pos_hosttools_barrier_wait_seconds",
		"Time callers spend blocked in pos_sync barriers.", telemetry.DurationBuckets())
	barrierTimeouts = telemetry.Default.Counter("pos_hosttools_barrier_timeouts_total",
		"Barrier waits that gave up before all parties arrived.")
	uploadsTotal = telemetry.Default.Counter("pos_hosttools_uploads_total",
		"Result artifacts accepted from nodes via pos_upload.")
	uploadBytes = telemetry.Default.Counter("pos_hosttools_upload_bytes_total",
		"Result artifact bytes accepted from nodes.")
	uploadsRefused = telemetry.Default.Counter("pos_hosttools_uploads_refused_total",
		"Uploads rejected: closed scope, missing uploader, or upload hook veto.")
)
