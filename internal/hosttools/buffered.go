package hosttools

import (
	"fmt"
	"sync"
)

// Flusher is an Uploader with a drain point: callers that batch uploads
// flush at run boundaries to make everything durable before recording
// metadata.
type Flusher interface {
	Uploader
	Flush() error
}

// BufferedUploader decouples upload producers (measurement scripts pushing
// captures through pos_upload) from the storage sink: uploads enqueue onto
// a bounded queue drained in order by one background goroutine, so a slow
// disk no longer stalls the measurement hosts. The queue bound applies
// backpressure instead of growing without limit; the first sink error is
// sticky and reported by every subsequent Upload and Flush, so a broken
// sink fails the run rather than silently dropping artifacts.
type BufferedUploader struct {
	sink  Uploader
	depth int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []bufferedUpload
	draining bool
	err      error
}

type bufferedUpload struct {
	node     string
	artifact string
	data     []byte
}

// NewBufferedUploader wraps sink with a queue of at most depth pending
// uploads. depth < 1 is treated as 1.
func NewBufferedUploader(sink Uploader, depth int) *BufferedUploader {
	if depth < 1 {
		depth = 1
	}
	b := &BufferedUploader{sink: sink, depth: depth}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Upload enqueues one artifact, blocking while the queue is full. The data
// slice is captured as-is; callers must not mutate it afterwards (the
// service hands each upload its own buffer).
func (b *BufferedUploader) Upload(nodeName, artifact string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	for len(b.queue) >= b.depth {
		b.cond.Wait()
		if b.err != nil {
			return b.err
		}
	}
	b.queue = append(b.queue, bufferedUpload{node: nodeName, artifact: artifact, data: data})
	if !b.draining {
		b.draining = true
		go b.drain()
	}
	return nil
}

// drain pushes queued uploads to the sink in order and exits when the
// queue empties; Upload restarts it on demand, so an idle uploader holds
// no goroutine.
func (b *BufferedUploader) drain() {
	b.mu.Lock()
	for len(b.queue) > 0 && b.err == nil {
		up := b.queue[0]
		b.queue = b.queue[1:]
		b.mu.Unlock()
		err := b.sink.Upload(up.node, up.artifact, up.data)
		b.mu.Lock()
		if err != nil && b.err == nil {
			b.err = fmt.Errorf("hosttools: buffered upload %s/%s: %w", up.node, up.artifact, err)
		}
		b.cond.Broadcast() // wake blocked producers and Flush waiters
	}
	b.queue = nil
	b.draining = false
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Flush blocks until every enqueued upload has reached the sink and
// returns the sticky error, if any.
func (b *BufferedUploader) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.draining || len(b.queue) > 0 {
		b.cond.Wait()
	}
	return b.err
}
