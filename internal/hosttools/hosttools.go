// Package hosttools provides the pos utility tools that the controller
// deploys onto every experiment host right after boot (Sec. 4.4): commands to
// read and communicate variables, to synchronize hosts with barriers, and to
// run commands with their output captured and uploaded to the controller as
// results. The controller-side state (variable store, barriers, uploads)
// lives in Service; Install registers the host-side commands on a node.
package hosttools

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"pos/internal/eventlog"
	"pos/internal/node"
)

// Variable scopes, mirroring the pos variable kinds.
const (
	// ScopeGlobal variables are visible to every experiment host.
	ScopeGlobal = "global"
	// ScopeLoop variables hold the current measurement run's loop values.
	ScopeLoop = "loop"
	// Local scope is the node's own name.
)

// Uploader receives captured results on the controller.
type Uploader interface {
	// Upload stores one result artifact produced on a node.
	Upload(nodeName, artifact string, data []byte) error
}

// UploaderFunc adapts a function to Uploader.
type UploaderFunc func(nodeName, artifact string, data []byte) error

// Upload implements Uploader.
func (f UploaderFunc) Upload(n, a string, d []byte) error { return f(n, a, d) }

// ErrBarrierTimeout is returned when a barrier does not fill in time.
var ErrBarrierTimeout = errors.New("hosttools: barrier timed out")

// DefaultBarrierTimeout bounds barrier waits so a crashed host cannot hang
// an experiment forever.
const DefaultBarrierTimeout = 30 * time.Second

// Service is the controller-side endpoint the host tools talk to.
type Service struct {
	mu       sync.Mutex
	vars     map[string]map[string]string
	barriers map[string]*barrier
	uploader Uploader
	binding  map[string]*Scope
	// uploadHook, when set, screens every upload before routing.
	uploadHook func(nodeName, artifact string) error
	// logger receives operational warnings (barrier timeouts, refused
	// uploads); defaults to discard.
	logger *slog.Logger
	// BarrierTimeout overrides DefaultBarrierTimeout when positive.
	BarrierTimeout time.Duration
}

// SetLogger installs the structured logger for operational warnings —
// barrier timeouts and refused uploads are exactly the events an operator
// watching a live campaign wants surfaced. nil restores the discard default.
func (s *Service) SetLogger(lg *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = lg
}

func (s *Service) log() *slog.Logger {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logger == nil {
		return eventlog.Discard()
	}
	return s.logger
}

// NewService returns an empty service. uploader may be nil, in which case
// uploads fail with a descriptive error.
func NewService(uploader Uploader) *Service {
	return &Service{
		vars:     make(map[string]map[string]string),
		barriers: make(map[string]*barrier),
		uploader: uploader,
		binding:  make(map[string]*Scope),
	}
}

// SetUploadHook installs a screen consulted before every upload is routed;
// a non-nil error refuses the upload. The fault injector uses it to drop
// the Nth upload of a node deterministically (a lost result file); nil
// removes the hook.
func (s *Service) SetUploadHook(hook func(nodeName, artifact string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.uploadHook = hook
}

// SetUploader replaces the service-level upload sink. Nodes bound to a Scope
// bypass it; it only catches uploads from unbound nodes (including stragglers
// whose run scope has already closed).
func (s *Service) SetUploader(u Uploader) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.uploader = u
}

// Scope is a per-run (or per-session) view of the service: its own loop
// variables, its own upload sink, and a private barrier namespace. Nodes are
// bound to at most one scope at a time; while bound, their loop-variable
// reads/writes, uploads, and barriers resolve against the scope instead of
// the service-wide state. Two scopes over disjoint node sets make two
// measurement runs safe to execute concurrently — the per-run handle the
// campaign scheduler dispatches onto replica testbeds.
type Scope struct {
	svc      *Service
	id       string
	loop     map[string]string
	uploader Uploader
}

// NewScope creates a scope. id namespaces the scope's barriers and appears
// in error messages; uploader may be nil, in which case uploads from bound
// nodes fail descriptively.
func (s *Service) NewScope(id string, uploader Uploader) *Scope {
	return &Scope{svc: s, id: id, loop: make(map[string]string), uploader: uploader}
}

// SetVar stores a loop variable visible only to nodes bound to this scope.
func (sc *Scope) SetVar(key, value string) {
	sc.svc.mu.Lock()
	defer sc.svc.mu.Unlock()
	sc.loop[key] = value
}

// LoopVars snapshots the scope's loop variables.
func (sc *Scope) LoopVars() map[string]string {
	sc.svc.mu.Lock()
	defer sc.svc.mu.Unlock()
	out := make(map[string]string, len(sc.loop))
	for k, v := range sc.loop {
		out[k] = v
	}
	return out
}

// Bind attaches nodes to the scope, displacing any previous binding.
func (sc *Scope) Bind(nodes ...string) {
	sc.svc.mu.Lock()
	defer sc.svc.mu.Unlock()
	for _, n := range nodes {
		sc.svc.binding[n] = sc
	}
}

// Close detaches every node still bound to this scope. A node rebound to a
// newer scope is left alone, so a late Close cannot steal a successor's
// binding.
func (sc *Scope) Close() {
	sc.svc.mu.Lock()
	defer sc.svc.mu.Unlock()
	for n, bound := range sc.svc.binding {
		if bound == sc {
			delete(sc.svc.binding, n)
		}
	}
}

// scopeOf returns the scope a node is bound to, or nil.
func (s *Service) scopeOf(node string) *Scope {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.binding[node]
}

// LookupVar reads a variable the way a command running on nodeName would:
// the loop scope resolves against the node's bound Scope when one exists.
func (s *Service) LookupVar(nodeName, scope, key string) (string, bool) {
	if scope == ScopeLoop {
		if sc := s.scopeOf(nodeName); sc != nil {
			s.mu.Lock()
			defer s.mu.Unlock()
			v, ok := sc.loop[key]
			return v, ok
		}
	}
	return s.GetVar(scope, key)
}

// storeVar writes a variable the way a command running on nodeName would.
func (s *Service) storeVar(nodeName, scope, key, value string) {
	if scope == ScopeLoop {
		if sc := s.scopeOf(nodeName); sc != nil {
			sc.SetVar(key, value)
			return
		}
	}
	s.SetVar(scope, key, value)
}

// SetVar stores a variable in a scope ("global", "loop", or a node name).
func (s *Service) SetVar(scope, key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.vars[scope]
	if !ok {
		m = make(map[string]string)
		s.vars[scope] = m
	}
	m[key] = value
}

// GetVar reads a variable from a scope.
func (s *Service) GetVar(scope, key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vars[scope][key]
	return v, ok
}

// Vars snapshots one scope.
func (s *Service) Vars(scope string) map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.vars[scope]))
	for k, v := range s.vars[scope] {
		out[k] = v
	}
	return out
}

// ClearScope drops every variable in a scope (used between measurement runs
// for the loop scope).
func (s *Service) ClearScope(scope string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.vars, scope)
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu      sync.Mutex
	need    int
	arrived int
	gen     int
	release chan struct{}
}

func newBarrier(need int) *barrier {
	return &barrier{need: need, release: make(chan struct{})}
}

func (b *barrier) wait(ctx context.Context) error {
	b.mu.Lock()
	b.arrived++
	if b.arrived >= b.need {
		b.arrived = 0
		b.gen++
		close(b.release)
		b.release = make(chan struct{})
		b.mu.Unlock()
		return nil
	}
	gen := b.gen
	ch := b.release
	b.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		// Withdraw the arrival so the next wave is not released short:
		// a timed-out waiter that stayed counted would be a ghost
		// participant filling someone else's barrier. Generation-aware —
		// if the barrier released between the timeout firing and the
		// lock, the wait actually succeeded and there is nothing to
		// withdraw.
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.gen != gen {
			return nil
		}
		b.arrived--
		return ErrBarrierTimeout
	}
}

// BarrierAs is Barrier from a node's point of view: a node bound to a Scope
// synchronizes within the scope's private namespace, so two concurrent runs
// using the same barrier names (e.g. "run_done") cannot cross-release each
// other.
func (s *Service) BarrierAs(ctx context.Context, nodeName, name string, parties int) error {
	if sc := s.scopeOf(nodeName); sc != nil {
		name = sc.id + "\x00" + name
	}
	return s.Barrier(ctx, name, parties)
}

// Barrier blocks until parties callers (including this one) have reached the
// named barrier, or until the timeout elapses. All callers must agree on the
// party count; a mismatch is reported as an error.
func (s *Service) Barrier(ctx context.Context, name string, parties int) error {
	if parties < 1 {
		return fmt.Errorf("hosttools: barrier %q: parties must be >= 1", name)
	}
	s.mu.Lock()
	b, ok := s.barriers[name]
	if !ok {
		b = newBarrier(parties)
		s.barriers[name] = b
	}
	timeout := s.BarrierTimeout
	s.mu.Unlock()
	if b.need != parties {
		return fmt.Errorf("hosttools: barrier %q: party count mismatch (%d vs %d)", name, parties, b.need)
	}
	if timeout <= 0 {
		timeout = DefaultBarrierTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	err := b.wait(ctx)
	barrierWaitSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		barrierTimeouts.Inc()
		s.log().Warn("barrier wait failed",
			"barrier", name, "parties", parties, "err", err.Error())
	}
	return err
}

// Upload forwards a result artifact to the uploading node's scope when it is
// bound to one, else to the service-level uploader. Routing by the node's
// current binding is what keeps a straggling upload out of a *different*
// run's directory: once its run scope closes, the straggler is refused (or
// caught by the service-level sink) instead of landing wherever the most
// recently installed uploader points.
func (s *Service) Upload(nodeName, artifact string, data []byte) error {
	s.mu.Lock()
	u := s.uploader
	hook := s.uploadHook
	scopeID := ""
	if sc := s.binding[nodeName]; sc != nil {
		u = sc.uploader
		scopeID = sc.id
	}
	s.mu.Unlock()
	if hook != nil {
		if err := hook(nodeName, artifact); err != nil {
			uploadsRefused.Inc()
			s.log().Warn("upload refused by hook",
				"node", nodeName, "artifact", artifact, "err", err.Error())
			return err
		}
	}
	if u == nil {
		uploadsRefused.Inc()
		var err error
		if scopeID != "" {
			err = fmt.Errorf("hosttools: scope %s accepts no uploads (artifact %s from %s)", scopeID, artifact, nodeName)
		} else {
			err = fmt.Errorf("hosttools: no uploader configured (artifact %s from %s)", artifact, nodeName)
		}
		s.log().Warn("upload refused",
			"node", nodeName, "artifact", artifact, "err", err.Error())
		return err
	}
	if err := u.Upload(nodeName, artifact, data); err != nil {
		uploadsRefused.Inc()
		s.log().Warn("upload failed",
			"node", nodeName, "artifact", artifact, "err", err.Error())
		return err
	}
	uploadsTotal.Inc()
	uploadBytes.Add(float64(len(data)))
	return nil
}

// Install deploys the pos utility commands onto a running node. It must be
// re-run after every boot, as live-booting wipes deployed tools.
func Install(n *node.Node, svc *Service) error {
	cmds := map[string]node.Command{
		// pos_set_var <scope> <key> <value>
		"pos_set_var": func(_ context.Context, host *node.Node, args []string, stdout, _ node.ErrWriter) error {
			if len(args) != 3 {
				return fmt.Errorf("usage: pos_set_var <scope> <key> <value>")
			}
			scope := resolveScope(args[0], host.Name)
			svc.storeVar(host.Name, scope, args[1], args[2])
			return nil
		},
		// pos_get_var <scope> <key> — prints the value
		"pos_get_var": func(_ context.Context, host *node.Node, args []string, stdout, _ node.ErrWriter) error {
			if len(args) != 2 {
				return fmt.Errorf("usage: pos_get_var <scope> <key>")
			}
			scope := resolveScope(args[0], host.Name)
			v, ok := svc.LookupVar(host.Name, scope, args[1])
			if !ok {
				return fmt.Errorf("variable %s/%s not set", scope, args[1])
			}
			fmt.Fprintln(writer{stdout}, v)
			return nil
		},
		// pos_sync <name> <parties> — barrier across hosts
		"pos_sync": func(ctx context.Context, host *node.Node, args []string, stdout, _ node.ErrWriter) error {
			if len(args) != 2 {
				return fmt.Errorf("usage: pos_sync <name> <parties>")
			}
			parties, err := strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("pos_sync: bad party count %q", args[1])
			}
			if err := svc.BarrierAs(ctx, host.Name, args[0], parties); err != nil {
				return err
			}
			fmt.Fprintf(writer{stdout}, "synced %s\n", args[0])
			return nil
		},
		// pos_upload <artifact> <content...> — upload a result
		"pos_upload": func(_ context.Context, host *node.Node, args []string, _, _ node.ErrWriter) error {
			if len(args) < 1 {
				return fmt.Errorf("usage: pos_upload <artifact> [content...]")
			}
			return svc.Upload(host.Name, args[0], []byte(strings.Join(args[1:], " ")))
		},
		// pos_upload_file <artifact> <path> — upload a node file as result
		"pos_upload_file": func(_ context.Context, host *node.Node, args []string, _, _ node.ErrWriter) error {
			if len(args) != 2 {
				return fmt.Errorf("usage: pos_upload_file <artifact> <path>")
			}
			data, err := host.ReadFile(args[1])
			if err != nil {
				return err
			}
			return svc.Upload(host.Name, args[0], data)
		},
		// pos_run <artifact> <command> [args...] — run a command, echo its
		// output, and upload the capture as a result artifact.
		"pos_run": func(ctx context.Context, host *node.Node, args []string, stdout, stderr node.ErrWriter) error {
			if len(args) < 2 {
				return fmt.Errorf("usage: pos_run <artifact> <command> [args...]")
			}
			inner, ok := host.LookupCommand(args[1])
			if !ok {
				return fmt.Errorf("pos_run: %s: command not found", args[1])
			}
			var capture strings.Builder
			tee := teeWriter{a: &capture, b: stdout}
			runErr := inner(ctx, host, args[2:], tee, tee)
			if upErr := svc.Upload(host.Name, args[0], []byte(capture.String())); upErr != nil {
				return upErr
			}
			return runErr
		},
	}
	for name, cmd := range cmds {
		if err := n.RegisterCommand(name, cmd); err != nil {
			return err
		}
	}
	return nil
}

// resolveScope maps the script-facing scope word to a store scope.
func resolveScope(word, nodeName string) string {
	switch word {
	case ScopeGlobal, ScopeLoop:
		return word
	case "local":
		return nodeName
	default:
		return word
	}
}

// writer adapts node.ErrWriter to io.Writer for fmt.
type writer struct{ w node.ErrWriter }

func (w writer) Write(p []byte) (int, error) { return w.w.Write(p) }

// teeWriter duplicates writes to two sinks.
type teeWriter struct {
	a *strings.Builder
	b node.ErrWriter
}

func (t teeWriter) Write(p []byte) (int, error) {
	t.a.Write(p)
	return t.b.Write(p)
}
