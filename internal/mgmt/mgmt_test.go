package mgmt

import (
	"testing"

	"pos/internal/image"
	"pos/internal/node"
)

func setup(t *testing.T) (*node.Node, *Client) {
	t.Helper()
	store := image.NewStore()
	if err := store.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	n := node.New("vtartu", store)
	n.BootDelay = 0
	srv, err := Serve(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return n, c
}

func TestStatusOfPoweredOffNode(t *testing.T) {
	_, c := setup(t)
	state, boots, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if state != string(node.StateOff) || boots != 0 {
		t.Errorf("status = %s/%d", state, boots)
	}
}

func TestBootCycleOverBMC(t *testing.T) {
	n, c := setup(t)
	if err := c.SetBoot("debian-buster", map[string]string{"nr_hugepages": "512"}); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	state, boots, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if state != string(node.StateRunning) || boots != 1 {
		t.Errorf("status = %s/%d", state, boots)
	}
	if v, _ := n.Getenv("BOOT_nr_hugepages"); v != "512" {
		t.Errorf("boot param not applied: %q", v)
	}
	if err := c.PowerOff(); err != nil {
		t.Fatal(err)
	}
	state, _, _ = c.Status()
	if state != string(node.StateOff) {
		t.Errorf("state = %s after PowerOff", state)
	}
}

func TestSetBootRejectsUnknownImage(t *testing.T) {
	_, c := setup(t)
	if err := c.SetBoot("nonexistent-image", nil); err == nil {
		t.Error("SetBoot accepted unknown image over BMC")
	}
}

func TestPowerOnWithoutImageFails(t *testing.T) {
	_, c := setup(t)
	if err := c.PowerOn(); err == nil {
		t.Error("PowerOn without image succeeded")
	}
}

func TestOutOfBandRecoveryOfWedgedNode(t *testing.T) {
	// The core R3 scenario: OS crashes, in-band access is gone, the BMC
	// still answers and a reset recovers the node.
	n, c := setup(t)
	if err := c.SetBoot("debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	n.Wedge()
	state, _, err := c.Status()
	if err != nil {
		t.Fatalf("BMC unreachable on wedged node: %v", err)
	}
	if state != string(node.StateWedged) {
		t.Fatalf("state = %s, want wedged", state)
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("out-of-band reset failed: %v", err)
	}
	state, boots, _ := c.Status()
	if state != string(node.StateRunning) || boots != 2 {
		t.Errorf("after reset: %s/%d", state, boots)
	}
}

func TestResetAfterInjectedFailureRetries(t *testing.T) {
	n, c := setup(t)
	if err := c.SetBoot("debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	n.InjectBootFailures(1)
	if err := c.PowerOn(); err == nil {
		t.Fatal("injected failure did not surface over BMC")
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	state, _, _ := c.Status()
	if state != string(node.StateRunning) {
		t.Errorf("state = %s", state)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	_, c := setup(t)
	if _, err := c.call(Request{Op: "explode"}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to dead port succeeded")
	}
}
