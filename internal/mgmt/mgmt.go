// Package mgmt implements the testbed's initialization interface — the role
// IPMI plays in the paper's hardware testbed. It is an out-of-band channel:
// a small TCP protocol, served by the node's emulated BMC, that can power a
// node on or off, reset it, select its boot image, and report its state even
// when the node's OS is wedged. This is what makes the testbed recoverable
// from arbitrary misconfiguration (requirement R3).
package mgmt

import (
	"encoding/json"
	"fmt"
	"net"

	"pos/internal/node"
	"pos/internal/wire"
)

// Ops understood by the BMC.
const (
	OpStatus   = "status"
	OpPowerOn  = "power_on"
	OpPowerOff = "power_off"
	OpReset    = "reset"
	OpSetBoot  = "set_boot"
)

// Request is one BMC command.
type Request struct {
	Op string `json:"op"`
	// Image and Params apply to set_boot.
	Image  string            `json:"image,omitempty"`
	Params map[string]string `json:"params,omitempty"`
}

// Response is the BMC's answer.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// State and Boots are filled for status (and after power ops).
	State string `json:"state,omitempty"`
	Boots int    `json:"boots,omitempty"`
}

// Server is an emulated baseboard management controller for one node.
type Server struct {
	node *node.Node
	ln   net.Listener
}

// Serve starts the BMC on a loopback TCP port and returns it. Close the
// server to release the port.
func Serve(n *node.Node) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mgmt %s: %w", n.Name, err)
	}
	s := &Server{node: n, ln: ln}
	go wire.Serve(ln, s.handle)
	return s, nil
}

// Addr returns the BMC's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the BMC.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) handle(raw json.RawMessage) any {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return Response{Error: "bad request: " + err.Error()}
	}
	resp := Response{OK: true}
	switch req.Op {
	case OpStatus:
		// nothing extra
	case OpPowerOn:
		if err := s.node.PowerOn(); err != nil {
			resp = Response{Error: err.Error()}
		}
	case OpPowerOff:
		s.node.PowerOff()
	case OpReset:
		if err := s.node.Reset(); err != nil {
			resp = Response{Error: err.Error()}
		}
	case OpSetBoot:
		if err := s.node.SetBoot(req.Image, req.Params); err != nil {
			resp = Response{Error: err.Error()}
		}
	default:
		resp = Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	resp.State = string(s.node.State())
	resp.Boots = s.node.BootCount()
	return resp
}

// Client talks to one node's BMC.
type Client struct {
	conn *wire.Conn
}

// Dial connects to a BMC.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %s: %w", addr, err)
	}
	return &Client{conn: wire.NewConn(nc)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req Request) (Response, error) {
	var resp Response
	if err := c.conn.Call(req, &resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("mgmt: %s: %s", req.Op, resp.Error)
	}
	return resp, nil
}

// Status reports the node's lifecycle state and boot count.
func (c *Client) Status() (state string, boots int, err error) {
	resp, err := c.call(Request{Op: OpStatus})
	return resp.State, resp.Boots, err
}

// PowerOn boots the node from its configured image.
func (c *Client) PowerOn() error {
	_, err := c.call(Request{Op: OpPowerOn})
	return err
}

// PowerOff cuts power unconditionally.
func (c *Client) PowerOff() error {
	_, err := c.call(Request{Op: OpPowerOff})
	return err
}

// Reset power-cycles the node.
func (c *Client) Reset() error {
	_, err := c.call(Request{Op: OpReset})
	return err
}

// SetBoot selects the boot image and kernel parameters.
func (c *Client) SetBoot(imageRef string, params map[string]string) error {
	_, err := c.call(Request{Op: OpSetBoot, Image: imageRef, Params: params})
	return err
}
