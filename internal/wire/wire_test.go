package wire

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
)

type echoMsg struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, func(raw json.RawMessage) any {
		var m echoMsg
		if err := json.Unmarshal(raw, &m); err != nil {
			return echoMsg{N: -1}
		}
		m.N++
		return m
	})
	return ln.Addr().String()
}

func dial(t *testing.T, addr string) *Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return NewConn(nc)
}

func TestCallRoundTrip(t *testing.T) {
	c := dial(t, startEcho(t))
	var resp echoMsg
	if err := c.Call(echoMsg{N: 41, S: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 42 || resp.S != "hello" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestMultipleCallsOneConnection(t *testing.T) {
	c := dial(t, startEcho(t))
	for i := 0; i < 50; i++ {
		var resp echoMsg
		if err := c.Call(echoMsg{N: i}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.N != i+1 {
			t.Fatalf("call %d: resp.N = %d", i, resp.N)
		}
	}
}

func TestConcurrentCallers(t *testing.T) {
	c := dial(t, startEcho(t))
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoMsg
			if err := c.Call(echoMsg{N: i}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.N != i+1 {
				errs <- &json.UnsupportedValueError{}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent call: %v", err)
	}
}

func TestLargeMessage(t *testing.T) {
	c := dial(t, startEcho(t))
	big := strings.Repeat("x", 1<<20)
	var resp echoMsg
	if err := c.Call(echoMsg{S: big}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.S != big {
		t.Error("large payload corrupted")
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	c := dial(t, startEcho(t))
	big := strings.Repeat("x", MaxMessageBytes+1)
	if err := c.Send(echoMsg{S: big}); err != ErrMessageTooLarge {
		t.Errorf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestRecvBadJSON(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a)
	go b.Write([]byte("this is not json\n"))
	var v echoMsg
	if err := conn.Recv(&v); err == nil {
		t.Error("Recv accepted invalid JSON")
	}
}

func TestRecvClosedConnection(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(a)
	b.Close()
	var v echoMsg
	if err := conn.Recv(&v); err == nil {
		t.Error("Recv succeeded on closed connection")
	}
}

func TestServeStopsOnListenerClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, func(json.RawMessage) any { return nil }) }()
	ln.Close()
	if err := <-done; err == nil {
		t.Error("Serve returned nil after listener close")
	}
}
