// Package wire implements the newline-delimited JSON framing shared by the
// testbed's control protocols (the IPMI-like initialization interface in
// internal/mgmt and the SSH-like configuration interface in internal/shell).
// One JSON object per line, request/response in lockstep on a single TCP
// connection.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxMessageBytes bounds a single framed message (16 MiB) so a corrupt peer
// cannot make the reader buffer unboundedly.
const MaxMessageBytes = 16 << 20

// ErrMessageTooLarge is returned for frames exceeding MaxMessageBytes.
var ErrMessageTooLarge = errors.New("wire: message exceeds size limit")

// Conn wraps a stream with JSON-line framing. It is safe for one reader and
// one writer goroutine; Call serializes full round trips.
type Conn struct {
	raw net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
	rmu sync.Mutex
	// callMu serializes request/response exchanges.
	callMu sync.Mutex
}

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{raw: c, r: bufio.NewReaderSize(c, 64*1024)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline bounds both directions.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Send marshals v and writes one frame.
func (c *Conn) Send(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(data) > MaxMessageBytes {
		return ErrMessageTooLarge
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	data = append(data, '\n')
	_, err = c.raw.Write(data)
	return err
}

// Recv reads one frame into v.
func (c *Conn) Recv(v any) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	line, err := readLine(c.r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Call performs one request/response round trip.
func (c *Conn) Call(req, resp any) error {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	if err := c.Send(req); err != nil {
		return err
	}
	return c.Recv(resp)
}

func readLine(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > MaxMessageBytes {
			return nil, ErrMessageTooLarge
		}
		if err == nil {
			return buf[:len(buf)-1], nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF && len(buf) > 0 {
			return buf, io.ErrUnexpectedEOF
		}
		return nil, err
	}
}

// Handler processes one decoded request and returns the response object.
type Handler func(req json.RawMessage) (resp any)

// Serve accepts connections on l and runs each through loop until the
// listener closes. It returns when Accept fails (listener closed).
func Serve(l net.Listener, h Handler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, h)
	}
}

func serveConn(nc net.Conn, h Handler) {
	c := NewConn(nc)
	defer c.Close()
	for {
		var raw json.RawMessage
		if err := c.Recv(&raw); err != nil {
			return
		}
		if err := c.Send(h(raw)); err != nil {
			return
		}
	}
}
