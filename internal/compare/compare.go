// Package compare models Table 1 of the paper: the evaluation of testbeds
// and methodologies against the five requirements of Sec. 3 — heterogeneity
// (R1), isolation (R2), recoverability (R3), automation (R4), and
// publishability (R5). The support levels are derived from a small feature
// model per system rather than hard-coded cells, so the table is regenerated
// the way the paper's analysis produced it.
package compare

import (
	"fmt"
	"io"
	"strings"
)

// Support is the level of support for one requirement.
type Support int

// Support levels, matching the paper's legend.
const (
	// NotApplicable marks requirements outside a system's scope (a pure
	// methodology has no testbed properties and vice versa).
	NotApplicable Support = iota
	// None is explicit non-support (✗).
	None
	// Partial is partial support (○).
	Partial
	// Full is full support (✓).
	Full
)

// Symbol renders the paper's legend: ✓ full, ○ partial, ✗ none, n.a.
func (s Support) Symbol() string {
	switch s {
	case Full:
		return "✓"
	case Partial:
		return "○"
	case None:
		return "✗"
	default:
		return "n.a."
	}
}

// Requirement identifies one of R1–R5.
type Requirement int

// The five requirements of Sec. 3.
const (
	Heterogeneity  Requirement = iota // R1
	Isolation                         // R2
	Recoverability                    // R3
	Automation                        // R4
	Publishability                    // R5
)

// Label returns the requirement's short name and number.
func (r Requirement) Label() string {
	switch r {
	case Heterogeneity:
		return "Heterog. (R1)"
	case Isolation:
		return "Isolat. (R2)"
	case Recoverability:
		return "Recover. (R3)"
	case Automation:
		return "Autom. (R4)"
	case Publishability:
		return "Publish. (R5)"
	}
	return "?"
}

// Requirements in table order.
var Requirements = []Requirement{Heterogeneity, Isolation, Recoverability, Automation, Publishability}

// Features describes what a system actually provides; support levels are
// derived from these.
type Features struct {
	Name string
	// IsTestbed / IsMethodology scope which requirement groups apply.
	IsTestbed     bool
	IsMethodology bool

	// Testbed features (R1–R3).
	SupportsDiverseHardware bool // heterogeneous devices: servers, NICs, switches
	SwitchedTopology        bool // experiment traffic crosses shared switches
	DirectWiring            bool // point-to-point, non-switched experiment links
	OutOfBandControl        bool // power/console control independent of the node OS
	CleanSlateBoot          bool // nodes restored to a well-defined image per experiment

	// Methodology features (R4–R5).
	ScriptedExperiments  bool // full experiment definitions are executable artifacts
	EvaluationInWorkflow bool // result evaluation is part of the experiment workflow
	AutoPlots            bool // out-of-the-box plot generation
	ArtifactBundling     bool // one-step export/publication of all artifacts
	ArtifactWebsite      bool // generated site documenting the artifacts
}

// Evaluate derives the R1–R5 support levels from the feature set.
func Evaluate(f Features) map[Requirement]Support {
	out := map[Requirement]Support{
		Heterogeneity:  NotApplicable,
		Isolation:      NotApplicable,
		Recoverability: NotApplicable,
		Automation:     NotApplicable,
		Publishability: NotApplicable,
	}
	if f.IsTestbed {
		if f.SupportsDiverseHardware {
			out[Heterogeneity] = Full
		} else {
			out[Heterogeneity] = Partial
		}
		switch {
		case f.DirectWiring:
			out[Isolation] = Full
		case f.SwitchedTopology:
			out[Isolation] = Partial
		default:
			out[Isolation] = None
		}
		if f.OutOfBandControl && f.CleanSlateBoot {
			out[Recoverability] = Full
		} else if f.OutOfBandControl || f.CleanSlateBoot {
			out[Recoverability] = Partial
		} else {
			out[Recoverability] = None
		}
	}
	if f.IsMethodology {
		if f.ScriptedExperiments {
			out[Automation] = Full
		} else {
			out[Automation] = None
		}
		switch {
		case f.EvaluationInWorkflow && f.AutoPlots && f.ArtifactBundling && f.ArtifactWebsite:
			out[Publishability] = Full
		case f.EvaluationInWorkflow || f.ArtifactBundling:
			out[Publishability] = Partial
		default:
			out[Publishability] = None
		}
	}
	return out
}

// Systems returns the feature models of every system in Table 1, in the
// paper's row order.
func Systems() []Features {
	return []Features{
		{
			Name: "Chameleon", IsTestbed: true,
			SupportsDiverseHardware: true, SwitchedTopology: true,
			OutOfBandControl: true, CleanSlateBoot: true,
		},
		{
			Name: "CloudLab", IsTestbed: true,
			SupportsDiverseHardware: true, SwitchedTopology: true,
			OutOfBandControl: true, CleanSlateBoot: true,
		},
		{
			Name: "Grid'5000", IsTestbed: true,
			SupportsDiverseHardware: true, SwitchedTopology: true,
			OutOfBandControl: true, CleanSlateBoot: true,
		},
		{
			Name: "OMF", IsMethodology: true,
			ScriptedExperiments: true,
			// Evaluation is not part of OMF's workflow.
		},
		{
			Name: "NEPI", IsMethodology: true,
			ScriptedExperiments: true,
		},
		{
			Name: "SNDZoo", IsMethodology: true,
			ScriptedExperiments: true, EvaluationInWorkflow: true,
			ArtifactBundling: true,
			// No auto-generated plots or artifact website.
		},
		{
			Name: "pos", IsTestbed: true, IsMethodology: true,
			SupportsDiverseHardware: true, DirectWiring: true,
			OutOfBandControl: true, CleanSlateBoot: true,
			ScriptedExperiments: true, EvaluationInWorkflow: true,
			AutoPlots: true, ArtifactBundling: true, ArtifactWebsite: true,
		},
	}
}

// Row is one rendered table row.
type Row struct {
	Name    string
	Support map[Requirement]Support
}

// Table evaluates all systems.
func Table() []Row {
	systems := Systems()
	rows := make([]Row, len(systems))
	for i, f := range systems {
		rows[i] = Row{Name: f.Name, Support: Evaluate(f)}
	}
	return rows
}

// Write renders the table in the paper's layout.
func Write(w io.Writer) error {
	rows := Table()
	header := make([]string, 0, len(Requirements)+1)
	header = append(header, fmt.Sprintf("%-12s", ""))
	for _, r := range Requirements {
		header = append(header, fmt.Sprintf("%-14s", r.Label()))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, " ")); err != nil {
		return err
	}
	for _, row := range rows {
		cells := make([]string, 0, len(Requirements)+1)
		cells = append(cells, fmt.Sprintf("%-12s", row.Name))
		for _, r := range Requirements {
			cells = append(cells, fmt.Sprintf("%-14s", row.Support[r].Symbol()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "✓ fully supported   ○ partially supported   ✗ not supported   n.a. out of scope")
	return err
}
