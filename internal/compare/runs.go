package compare

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// DiffExperiments walks two experiment result directories and reports every
// path whose bytes differ, exists only on one side, or differs in kind
// (file vs directory). An empty slice means the trees are byte-identical —
// the reproducibility bar the paper sets for rerun experiments, and the one
// the differential tests hold the batched data plane to against the scalar
// oracle.
func DiffExperiments(dirA, dirB string) ([]string, error) {
	filesA, err := listFiles(dirA)
	if err != nil {
		return nil, err
	}
	filesB, err := listFiles(dirB)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(filesA)+len(filesB))
	var diffs []string
	for rel := range filesA {
		seen[rel] = true
		if !filesB[rel] {
			diffs = append(diffs, fmt.Sprintf("%s: only in %s", rel, dirA))
			continue
		}
		a, err := os.ReadFile(filepath.Join(dirA, rel))
		if err != nil {
			return nil, err
		}
		b, err := os.ReadFile(filepath.Join(dirB, rel))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(a, b) {
			diffs = append(diffs, fmt.Sprintf("%s: %d vs %d bytes, contents differ", rel, len(a), len(b)))
		}
	}
	for rel := range filesB {
		if !seen[rel] {
			diffs = append(diffs, fmt.Sprintf("%s: only in %s", rel, dirB))
		}
	}
	sort.Strings(diffs)
	return diffs, nil
}

// listFiles returns the set of regular-file paths under root, relative to it.
func listFiles(root string) (map[string]bool, error) {
	out := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
