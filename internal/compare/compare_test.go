package compare

import (
	"bytes"
	"strings"
	"testing"
)

// wantTable1 is the exact matrix of the paper's Table 1.
var wantTable1 = map[string]map[Requirement]Support{
	"Chameleon": {Heterogeneity: Full, Isolation: Partial, Recoverability: Full, Automation: NotApplicable, Publishability: NotApplicable},
	"CloudLab":  {Heterogeneity: Full, Isolation: Partial, Recoverability: Full, Automation: NotApplicable, Publishability: NotApplicable},
	"Grid'5000": {Heterogeneity: Full, Isolation: Partial, Recoverability: Full, Automation: NotApplicable, Publishability: NotApplicable},
	"OMF":       {Heterogeneity: NotApplicable, Isolation: NotApplicable, Recoverability: NotApplicable, Automation: Full, Publishability: None},
	"NEPI":      {Heterogeneity: NotApplicable, Isolation: NotApplicable, Recoverability: NotApplicable, Automation: Full, Publishability: None},
	"SNDZoo":    {Heterogeneity: NotApplicable, Isolation: NotApplicable, Recoverability: NotApplicable, Automation: Full, Publishability: Partial},
	"pos":       {Heterogeneity: Full, Isolation: Full, Recoverability: Full, Automation: Full, Publishability: Full},
}

func TestTableMatchesPaper(t *testing.T) {
	rows := Table()
	if len(rows) != len(wantTable1) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantTable1))
	}
	for _, row := range rows {
		want, ok := wantTable1[row.Name]
		if !ok {
			t.Errorf("unexpected system %q", row.Name)
			continue
		}
		for _, r := range Requirements {
			if row.Support[r] != want[r] {
				t.Errorf("%s / %s = %s, want %s", row.Name, r.Label(), row.Support[r].Symbol(), want[r].Symbol())
			}
		}
	}
}

func TestRowOrderMatchesPaper(t *testing.T) {
	rows := Table()
	wantOrder := []string{"Chameleon", "CloudLab", "Grid'5000", "OMF", "NEPI", "SNDZoo", "pos"}
	for i, name := range wantOrder {
		if rows[i].Name != name {
			t.Errorf("row %d = %s, want %s", i, rows[i].Name, name)
		}
	}
}

func TestOnlyPosFullyCoversEverything(t *testing.T) {
	for _, row := range Table() {
		all := true
		for _, r := range Requirements {
			if row.Support[r] != Full {
				all = false
			}
		}
		if all != (row.Name == "pos") {
			t.Errorf("%s full coverage = %v", row.Name, all)
		}
	}
}

func TestSymbols(t *testing.T) {
	cases := map[Support]string{Full: "✓", Partial: "○", None: "✗", NotApplicable: "n.a."}
	for s, want := range cases {
		if got := s.Symbol(); got != want {
			t.Errorf("Symbol(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestEvaluateDerivations(t *testing.T) {
	// Out-of-band control without clean-slate boots is only partial
	// recoverability.
	f := Features{IsTestbed: true, OutOfBandControl: true}
	if got := Evaluate(f)[Recoverability]; got != Partial {
		t.Errorf("recoverability = %s", got.Symbol())
	}
	// No isolation mechanism at all.
	if got := Evaluate(Features{IsTestbed: true})[Isolation]; got != None {
		t.Errorf("isolation = %s", got.Symbol())
	}
	// A methodology without scripted experiments has no automation.
	if got := Evaluate(Features{IsMethodology: true})[Automation]; got != None {
		t.Errorf("automation = %s", got.Symbol())
	}
	// Pure methodology: testbed requirements stay n.a.
	if got := Evaluate(Features{IsMethodology: true})[Isolation]; got != NotApplicable {
		t.Errorf("isolation for methodology = %s", got.Symbol())
	}
}

func TestWriteRendersLegendAndRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Chameleon", "pos", "Heterog. (R1)", "Publish. (R5)", "fully supported"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 7 rows + legend
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRequirementLabels(t *testing.T) {
	if Requirement(99).Label() != "?" {
		t.Error("unknown requirement label")
	}
	for _, r := range Requirements {
		if r.Label() == "?" {
			t.Errorf("requirement %d unlabeled", r)
		}
	}
}
