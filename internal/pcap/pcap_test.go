package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	base := time.Date(2020, 10, 12, 11, 20, 32, 230471, time.UTC)
	want := []Packet{
		{Timestamp: base, Data: []byte{1, 2, 3, 4}},
		{Timestamp: base.Add(time.Microsecond), Data: bytes.Repeat([]byte{0xab}, 1500)},
		{Timestamp: base.Add(time.Second), Data: []byte{}},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	if !r.Nanoseconds() {
		t.Error("expected nanosecond resolution")
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Timestamp.Equal(want[i].Timestamp) {
			t.Errorf("packet %d: ts = %v, want %v", i, got[i].Timestamp, want[i].Timestamp)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("packet %d: %d bytes, want %d", i, len(got[i].Data), len(want[i].Data))
		}
		if got[i].OrigLen != len(want[i].Data) {
			t.Errorf("packet %d: origLen = %d, want %d", i, got[i].OrigLen, len(want[i].Data))
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10)
	data := bytes.Repeat([]byte{7}, 100)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(0, 0), Data: data}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 10 {
		t.Errorf("captured %d bytes, want 10", len(p.Data))
	}
	if p.OrigLen != 100 {
		t.Errorf("origLen = %d, want 100", p.OrigLen)
	}
}

func TestEmptyCaptureAfterFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("ReadPacket = %v, want EOF", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	data := make([]byte, 24)
	binary.LittleEndian.PutUint32(data, 0xdeadbeef)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("NewReader accepted bad magic")
	}
}

func TestBadVersionRejected(t *testing.T) {
	data := make([]byte, 24)
	binary.LittleEndian.PutUint32(data[0:], MagicNanoseconds)
	binary.LittleEndian.PutUint16(data[4:], 1)
	binary.LittleEndian.PutUint16(data[6:], 0)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("NewReader accepted version 1.0")
	}
}

func TestTruncatedHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("NewReader accepted 3-byte file")
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: []byte{1, 2, 3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Error("ReadPacket accepted truncated record")
	}
}

func TestBigEndianCapture(t *testing.T) {
	// Hand-build a big-endian (swapped) microsecond capture.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 100) // sec
	binary.BigEndian.PutUint32(rec[4:], 250) // usec
	binary.BigEndian.PutUint32(rec[8:], 3)   // caplen
	binary.BigEndian.PutUint32(rec[12:], 3)  // origlen
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket: %v", err)
	}
	want := time.Unix(100, 250_000).UTC()
	if !p.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", p.Timestamp, want)
	}
	if !bytes.Equal(p.Data, []byte{9, 8, 7}) {
		t.Errorf("data = %v", p.Data)
	}
}

// Property: writing arbitrary packets and reading them back preserves data
// and nanosecond timestamps.
func TestRoundTripProperty(t *testing.T) {
	prop := func(payloads [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		for i, p := range payloads {
			var sec uint32
			if i < len(secs) {
				sec = secs[i]
			}
			if len(p) > 65535 {
				p = p[:65535]
			}
			err := w.WritePacket(Packet{Timestamp: time.Unix(int64(sec), int64(i)), Data: p})
			if err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(payloads) {
			return false
		}
		for i := range payloads {
			p := payloads[i]
			if len(p) > 65535 {
				p = p[:65535]
			}
			if !bytes.Equal(got[i].Data, p) {
				return false
			}
			if got[i].Timestamp.Nanosecond() != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	data := bytes.Repeat([]byte{0x55}, 64)
	ts := time.Unix(0, 0)
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if buf.Len() > 1<<20 {
			buf.Reset()
			w = NewWriter(&buf, 0)
		}
		if err := w.WritePacket(Packet{Timestamp: ts, Data: data}); err != nil {
			b.Fatal(err)
		}
	}
}
