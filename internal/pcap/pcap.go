// Package pcap reads and writes libpcap capture files (the classic
// tcpdump format, magic 0xa1b2c3d4 with microsecond timestamps and
// 0xa1b23c4d with nanosecond timestamps). The emulated load generator can
// replay recorded traffic from these files — one of the two traffic sources
// the pos paper names — and capture points in the emulated testbed can dump
// traffic for offline inspection with standard tools.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for the classic pcap format.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkTypeEthernet is the DLT value for Ethernet captures.
const LinkTypeEthernet = 1

const (
	versionMajor = 2
	versionMinor = 4
	headerLen    = 24
	recordLen    = 16
)

// Packet is one captured record.
type Packet struct {
	// Timestamp of the capture.
	Timestamp time.Time
	// Data is the captured bytes (possibly truncated to SnapLen).
	Data []byte
	// OrigLen is the original length on the wire.
	OrigLen int
}

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrTruncated  = errors.New("pcap: truncated file")
	ErrBadVersion = errors.New("pcap: unsupported version")
)

// Writer writes a pcap file.
type Writer struct {
	w       io.Writer
	snapLen uint32
	nanos   bool
	wrote   bool
}

// NewWriter returns a Writer emitting nanosecond-resolution captures with
// the given snap length (0 means 65535).
func NewWriter(w io.Writer, snapLen uint32) *Writer {
	if snapLen == 0 {
		snapLen = 65535
	}
	return &Writer{w: w, snapLen: snapLen, nanos: true}
}

// writeHeader emits the global file header.
func (w *Writer) writeHeader() error {
	var hdr [headerLen]byte
	magic := uint32(MagicMicroseconds)
	if w.nanos {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record. The first call also emits the file header.
func (w *Writer) WritePacket(p Packet) error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wrote = true
	}
	data := p.Data
	if uint32(len(data)) > w.snapLen {
		data = data[:w.snapLen]
	}
	origLen := p.OrigLen
	if origLen == 0 {
		origLen = len(p.Data)
	}
	var rec [recordLen]byte
	sec := p.Timestamp.Unix()
	var sub int64
	if w.nanos {
		sub = int64(p.Timestamp.Nanosecond())
	} else {
		sub = int64(p.Timestamp.Nanosecond() / 1000)
	}
	binary.LittleEndian.PutUint32(rec[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(sub))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(origLen))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Flush ensures the header has been written even for empty captures.
func (w *Writer) Flush() error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wrote = true
	}
	return nil
}

// Reader reads a pcap file.
type Reader struct {
	r        io.Reader
	nanos    bool
	swapped  bool
	snapLen  uint32
	linkType uint32
}

// NewReader parses the global header and returns a Reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	rd := &Reader{r: r}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case MagicMicroseconds:
	case MagicNanoseconds:
		rd.nanos = true
	case swap32(MagicMicroseconds):
		rd.swapped = true
	case swap32(MagicNanoseconds):
		rd.swapped = true
		rd.nanos = true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	order := rd.order()
	major := order.Uint16(hdr[4:6])
	minor := order.Uint16(hdr[6:8])
	if major != versionMajor || minor != versionMinor {
		return nil, fmt.Errorf("%w: %d.%d", ErrBadVersion, major, minor)
	}
	rd.snapLen = order.Uint32(hdr[16:20])
	rd.linkType = order.Uint32(hdr[20:24])
	return rd, nil
}

func (r *Reader) order() binary.ByteOrder {
	if r.swapped {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

func swap32(v uint32) uint32 {
	return v<<24 | (v&0xff00)<<8 | (v>>8)&0xff00 | v>>24
}

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// LinkType returns the capture's data-link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Nanoseconds reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nanoseconds() bool { return r.nanos }

// ReadPacket returns the next record, or io.EOF at the end of the file.
func (r *Reader) ReadPacket() (Packet, error) {
	var rec [recordLen]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	order := r.order()
	sec := order.Uint32(rec[0:4])
	sub := order.Uint32(rec[4:8])
	capLen := order.Uint32(rec[8:12])
	origLen := order.Uint32(rec[12:16])
	if capLen > r.snapLen && r.snapLen > 0 {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	nanos := int64(sub)
	if !r.nanos {
		nanos *= 1000
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}

// ReadAll drains the remaining records.
func (r *Reader) ReadAll() ([]Packet, error) {
	var pkts []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}
