package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pos/internal/casestudy"
	"pos/internal/core"
	"pos/internal/results"
)

func TestObserveAndRender(t *testing.T) {
	r := NewRecorder()
	base := time.Date(2021, 12, 7, 9, 0, 0, 0, time.UTC)
	tick := 0
	r.Clock = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}
	r.Observe(core.ProgressEvent{Phase: core.PhaseSetup, Message: "booting hosts"})
	r.Observe(core.ProgressEvent{Phase: core.PhaseSetup, Host: "vriga", Message: "running setup script"})
	r.Observe(core.ProgressEvent{Phase: core.PhaseMeasurement, Run: 0, TotalRuns: 2, Message: "pkt_sz=64"})
	r.Observe(core.ProgressEvent{Phase: core.PhaseMeasurement, Run: 1, TotalRuns: 2, Message: "pkt_sz=1500"})
	if r.Len() != 4 {
		t.Fatalf("events = %d", r.Len())
	}
	text := string(r.RenderText())
	for _, want := range []string{"booting hosts", "[vriga]", "run 1/2", "run 2/2", "pkt_sz=1500", "1s"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	jsonl, err := r.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSON(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 || events[2].Run != 0 || events[2].Total != 2 {
		t.Errorf("parsed = %+v", events)
	}
	if !events[0].At.Equal(base.Add(time.Second)) {
		t.Errorf("first timestamp = %v", events[0].At)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if got := string(r.RenderText()); !strings.Contains(got, "no events") {
		t.Errorf("text = %q", got)
	}
	jsonl, err := r.RenderJSON()
	if err != nil || len(jsonl) != 0 {
		t.Errorf("json = %q, %v", jsonl, err)
	}
	events, err := ParseJSON(nil)
	if err != nil || events != nil {
		t.Errorf("parse empty = %v, %v", events, err)
	}
}

func TestForwardChains(t *testing.T) {
	r := NewRecorder()
	var forwarded []string
	r.Forward = func(ev core.ProgressEvent) { forwarded = append(forwarded, ev.Message) }
	r.Observe(core.ProgressEvent{Phase: "setup", Message: "a"})
	r.Observe(core.ProgressEvent{Phase: "setup", Message: "b"})
	if len(forwarded) != 2 || forwarded[1] != "b" {
		t.Errorf("forwarded = %v", forwarded)
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{broken\n")); err == nil {
		t.Error("accepted broken trace")
	}
}

func TestArchiveIntoExperiment(t *testing.T) {
	// Full integration: record a real workflow and archive the trace.
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	runner := topo.Testbed.Runner()
	runner.Progress = rec.Observe
	sweep := casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000, 20_000}, RuntimeSec: 1}
	sum, err := runner.Run(context.Background(), topo.Experiment(sweep), store)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments("user", "linux-router-pos")
	exp, err := store.OpenExperiment("user", "linux-router-pos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Archive(exp); err != nil {
		t.Fatal(err)
	}
	logText, err := exp.ReadExperimentArtifact("experiment.log")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logText), "run 2/2") {
		t.Errorf("log = %q", logText)
	}
	jsonl, err := exp.ReadExperimentArtifact("experiment-trace.json")
	if err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSON(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var measured int
	for _, ev := range events {
		if ev.Phase == core.PhaseMeasurement {
			measured++
		}
	}
	if measured != sum.TotalRuns {
		t.Errorf("measurement events = %d, want %d", measured, sum.TotalRuns)
	}
}

func TestEventErrorRoundTrips(t *testing.T) {
	r := NewRecorder()
	r.Observe(core.ProgressEvent{
		Phase: core.PhaseMeasurement, Run: 3, TotalRuns: 6, Host: "alpha",
		Message: "attempt 1 failed, requeueing: loadgen wedged",
		Error:   "loadgen wedged",
	})
	r.Observe(core.ProgressEvent{Phase: core.PhaseMeasurement, Run: 3, TotalRuns: 6, Host: "alpha", Message: "ok"})
	jsonl, err := r.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSON(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Error != "loadgen wedged" || events[1].Error != "" {
		t.Errorf("events = %+v", events)
	}
	if !strings.Contains(string(r.RenderText()), "!! loadgen wedged") {
		t.Error("text rendering drops the error")
	}
}

// TestRecorderConcurrent hammers Observe from concurrent replicas while
// renderers read; meaningful under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var fwd atomic.Int64
	r.Forward = func(core.ProgressEvent) { fwd.Add(1) }
	const replicas, events = 8, 300
	var wg sync.WaitGroup
	for rep := 0; rep < replicas; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			host := fmt.Sprintf("replica%d", rep)
			for i := 0; i < events; i++ {
				ev := core.ProgressEvent{Phase: core.PhaseMeasurement, Run: i, TotalRuns: events, Host: host}
				if i%7 == 0 {
					ev.Error = "transient fault"
				}
				r.Observe(ev)
				if i%50 == 0 {
					r.Events()
					if _, err := r.RenderJSON(); err != nil {
						t.Error(err)
					}
					r.RenderText()
				}
			}
		}(rep)
	}
	wg.Wait()
	if r.Len() != replicas*events {
		t.Errorf("recorded %d events, want %d", r.Len(), replicas*events)
	}
	if fwd.Load() != replicas*events {
		t.Errorf("forwarded %d events, want %d", fwd.Load(), replicas*events)
	}
	withErr := 0
	for _, ev := range r.Events() {
		if ev.Error != "" {
			withErr++
		}
	}
	if want := replicas * ((events + 6) / 7); withErr != want {
		t.Errorf("events with error = %d, want %d", withErr, want)
	}
}
