// Package trace records the timeline of an experiment execution as a
// structured artifact. The pos methodology archives what was *measured*;
// this recorder additionally archives what the controller *did* and when —
// boots, setup scripts, every measurement run with its parameters and
// duration — so a published experiment carries its own execution log
// (experiment.log / experiment-trace.json) next to its results.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"pos/internal/core"
	"pos/internal/results"
)

// Event is one timestamped workflow event.
type Event struct {
	At    time.Time `json:"at"`
	Phase string    `json:"phase"`
	Run   int       `json:"run,omitempty"`
	Total int       `json:"total,omitempty"`
	Host  string    `json:"host,omitempty"`
	Msg   string    `json:"msg,omitempty"`
	// Error carries the failure text of failure and retry events, so the
	// archived timeline records a campaign's attempt history, not just its
	// happy path.
	Error string `json:"error,omitempty"`
}

// Recorder collects workflow events; plug its Observe method into
// core.Runner.Progress or sched.Campaign.Progress (same signature).
type Recorder struct {
	// Clock supplies timestamps; nil defaults to time.Now.
	Clock func() time.Time
	// Forward, when non-nil, receives every event after recording —
	// chaining an existing Progress callback (e.g. a progress bar).
	Forward func(core.ProgressEvent)

	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

// Observe implements the core.Runner.Progress signature.
func (r *Recorder) Observe(ev core.ProgressEvent) {
	r.mu.Lock()
	r.events = append(r.events, Event{
		At:    r.now(),
		Phase: ev.Phase,
		Run:   ev.Run,
		Total: ev.TotalRuns,
		Host:  ev.Host,
		Msg:   ev.Message,
		Error: ev.Error,
	})
	fwd := r.Forward
	r.mu.Unlock()
	if fwd != nil {
		fwd(ev)
	}
}

// Events returns a snapshot of the recorded timeline.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// RenderJSON emits the timeline as JSON lines, one event per line.
func (r *Recorder) RenderJSON() ([]byte, error) {
	var b strings.Builder
	for _, ev := range r.Events() {
		data, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// RenderText emits a human-readable execution log with per-event offsets
// from the first event.
func (r *Recorder) RenderText() []byte {
	events := r.Events()
	var b strings.Builder
	if len(events) == 0 {
		b.WriteString("(no events recorded)\n")
		return []byte(b.String())
	}
	epoch := events[0].At
	for _, ev := range events {
		fmt.Fprintf(&b, "%12s  %-12s", ev.At.Sub(epoch).Round(time.Microsecond), ev.Phase)
		if ev.Phase == core.PhaseMeasurement {
			fmt.Fprintf(&b, " run %d/%d", ev.Run+1, ev.Total)
		}
		if ev.Host != "" {
			fmt.Fprintf(&b, " [%s]", ev.Host)
		}
		if ev.Msg != "" {
			fmt.Fprintf(&b, "  %s", ev.Msg)
		}
		if ev.Error != "" {
			fmt.Fprintf(&b, "  !! %s", ev.Error)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Archive writes both renderings into the experiment's artifacts.
func (r *Recorder) Archive(exp *results.Experiment) error {
	jsonl, err := r.RenderJSON()
	if err != nil {
		return err
	}
	if err := exp.AddExperimentArtifact("experiment-trace.json", jsonl); err != nil {
		return err
	}
	return exp.AddExperimentArtifact("experiment.log", r.RenderText())
}

// ParseJSON reads a JSON-lines trace back.
func ParseJSON(data []byte) ([]Event, error) {
	var out []Event
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
