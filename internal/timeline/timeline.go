// Package timeline assembles a campaign's archived observability artifacts —
// spans.json (one per process, stitched by trace ID), the event journal,
// queue admission records, per-run metadata and resources — into one causal
// timeline, and answers the question the raw artifacts cannot: where did the
// time go, and did it go somewhere different than last time?
//
// The core computation is the campaign critical path: a walk over the span
// tree that partitions the campaign's wall-clock interval into contiguous
// segments, each attributed to the innermost span running at that moment.
// Because the segments partition the interval exactly, per-phase totals sum
// to the campaign wall clock by construction — performance attribution that
// always adds up is what makes the -baseline drift check trustworthy.
package timeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pos/internal/eventlog"
	"pos/internal/telemetry"
)

// Canonical phase labels, in report order. Every critical-path segment is
// classified into exactly one.
const (
	PhaseQueueWait   = "queue-wait"
	PhaseBoot        = "boot"
	PhaseSetup       = "setup"
	PhaseMeasurement = "measurement"
	PhaseRetry       = "retry"
	PhaseEval        = "eval"
	PhasePublish     = "publish"
	PhaseIdle        = "idle"
	PhaseOther       = "other"
)

// phaseOrder fixes the report ordering (and the drift comparison ordering).
var phaseOrder = []string{
	PhaseQueueWait, PhaseBoot, PhaseSetup, PhaseMeasurement,
	PhaseRetry, PhaseEval, PhasePublish, PhaseIdle, PhaseOther,
}

// Segment is one contiguous slice of the campaign's wall-clock interval,
// attributed to the innermost span running during it. Offsets are relative
// to the timeline start so two runs of the same experiment diff cleanly.
type Segment struct {
	Span    string  `json:"span"`
	Phase   string  `json:"phase"`
	Proc    string  `json:"proc,omitempty"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// PhaseTotal is one phase's share of the campaign wall clock.
type PhaseTotal struct {
	Phase    string  `json:"phase"`
	MS       float64 `json:"ms"`
	Fraction float64 `json:"fraction"`
}

// Summary is the distilled answer — critical path plus per-phase
// attribution. It stands alone so a flight record can embed it mid-campaign
// without the run/replica statistics that need the finished archive.
type Summary struct {
	TraceID      string       `json:"trace_id,omitempty"`
	Root         string       `json:"root,omitempty"`
	Start        time.Time    `json:"start"`
	End          time.Time    `json:"end"`
	WallMS       float64      `json:"wall_ms"`
	Phases       []PhaseTotal `json:"phases"`
	CriticalPath []Segment    `json:"critical_path"`
}

// RunStat is one measurement run's contribution.
type RunStat struct {
	Run      int     `json:"run"`
	Replica  string  `json:"replica,omitempty"`
	DurMS    float64 `json:"dur_ms"`
	Failed   bool    `json:"failed,omitempty"`
	Attempts int     `json:"attempts,omitempty"` // >1 means retried
}

// ReplicaStat aggregates one replica lane: how long the lane existed, how
// much of it was spent executing runs, and the idle remainder (dispatch
// gaps, backoff, waiting for the shared queue to drain).
type ReplicaStat struct {
	Name         string  `json:"name"`
	Runs         int     `json:"runs"`
	LaneMS       float64 `json:"lane_ms"`
	BusyMS       float64 `json:"busy_ms"`
	IdleFraction float64 `json:"idle_fraction"`
}

// Straggler flags an outlier: the slowest run or replica measured against
// the median of its peers.
type Straggler struct {
	Kind     string  `json:"kind"` // "run" | "replica"
	Name     string  `json:"name"`
	DurMS    float64 `json:"dur_ms"`
	MedianMS float64 `json:"median_ms"`
	Ratio    float64 `json:"ratio"`
}

// Timeline is the per-campaign timeline.json artifact.
type Timeline struct {
	Summary
	QueueWaitMS float64       `json:"queue_wait_ms,omitempty"`
	QueueUser   string        `json:"queue_user,omitempty"`
	Procs       []string      `json:"procs,omitempty"`
	Spans       int           `json:"spans"`
	Events      int           `json:"events"`
	Runs        []RunStat     `json:"runs,omitempty"`
	Replicas    []ReplicaStat `json:"replicas,omitempty"`
	Stragglers  []Straggler   `json:"stragglers,omitempty"`
}

// ArtifactName is the assembled artifact written next to spans.json.
const ArtifactName = "timeline.json"

// classify maps a span name to its phase. Retries are handled by the tree
// walk (duplicate "run N" spans and re-setup), not here.
func classify(name string) string {
	switch {
	case name == PhaseQueueWait:
		return PhaseQueueWait
	case strings.HasPrefix(name, "boot"):
		return PhaseBoot
	case name == "re-setup":
		return PhaseRetry
	case strings.HasPrefix(name, "setup"), strings.HasPrefix(name, "prepare:"):
		return PhaseSetup
	case strings.HasPrefix(name, "run "), strings.HasPrefix(name, "exec:"):
		return PhaseMeasurement
	case strings.HasPrefix(name, "eval"):
		return PhaseEval
	case strings.HasPrefix(name, "publish"):
		return PhasePublish
	case strings.HasPrefix(name, "replica:"):
		// A replica lane's own time — not inside any run — is dispatch and
		// queue-drain idle.
		return PhaseIdle
	default:
		return PhaseOther
	}
}

// node is one span in the reconstructed tree.
type node struct {
	rec      telemetry.SpanRecord
	children []*node
	retry    bool // a later attempt of an already-seen "run N" span
}

// buildTree reconstructs the span forest from records, preferring the hex
// parent linkage (cross-process safe) and falling back to the int linkage
// for archives predating trace identities. It returns the roots.
func buildTree(recs []telemetry.SpanRecord) []*node {
	nodes := make([]*node, len(recs))
	bySpanID := make(map[string]*node, len(recs))
	for i, r := range recs {
		nodes[i] = &node{rec: r}
		if r.SpanID != "" {
			bySpanID[r.SpanID] = nodes[i]
		}
	}
	// Legacy linkage is only unambiguous within one process's archive.
	byIntID := make(map[string]map[int]*node)
	for i, r := range recs {
		m := byIntID[r.Proc]
		if m == nil {
			m = make(map[int]*node)
			byIntID[r.Proc] = m
		}
		m[r.ID] = nodes[i]
	}
	var roots []*node
	for i, r := range recs {
		var parent *node
		if r.ParentSpanID != "" {
			parent = bySpanID[r.ParentSpanID]
		}
		if parent == nil && r.SpanID == "" && r.Parent != 0 {
			parent = byIntID[r.Proc][r.Parent]
		}
		if parent == nil || parent == nodes[i] {
			roots = append(roots, nodes[i])
			continue
		}
		parent.children = append(parent.children, nodes[i])
	}
	for _, n := range nodes {
		sort.SliceStable(n.children, func(a, b int) bool {
			return n.children[a].rec.Start.Before(n.children[b].rec.Start)
		})
	}
	markRetries(nodes)
	return roots
}

// markRetries flags the second and later occurrences of each "run N" span
// name as retries — the campaign opens one span per attempt, so duplicates
// are exactly the re-dispatches.
func markRetries(nodes []*node) {
	byName := make(map[string][]*node)
	for _, n := range nodes {
		if strings.HasPrefix(n.rec.Name, "run ") {
			byName[n.rec.Name] = append(byName[n.rec.Name], n)
		}
	}
	for _, group := range byName {
		sort.SliceStable(group, func(a, b int) bool {
			return group[a].rec.Start.Before(group[b].rec.Start)
		})
		for _, n := range group[1:] {
			n.retry = true
		}
	}
}

// phaseOf resolves a node's phase, honoring the retry flag.
func phaseOf(n *node) string {
	if n.retry {
		return PhaseRetry
	}
	return classify(n.rec.Name)
}

// cover partitions [from, to] into segments: child intervals claim their
// slice (recursively), and every gap between them is the span's own time.
// The returned segments are contiguous and exactly cover [from, to].
func cover(n *node, from, to time.Time, out []Segment, epoch time.Time) []Segment {
	self := func(a, b time.Time) []Segment {
		if !b.After(a) {
			return out
		}
		return append(out, Segment{
			Span:    n.rec.Name,
			Phase:   phaseOf(n),
			Proc:    n.rec.Proc,
			StartMS: ms(a.Sub(epoch)),
			DurMS:   ms(b.Sub(a)),
		})
	}
	cursor := from
	for _, c := range n.children {
		cs, ce := c.rec.Start, c.rec.End
		if ce.After(to) {
			ce = to
		}
		if !ce.After(cursor) {
			continue // entirely inside already-covered time
		}
		if cs.Before(cursor) {
			cs = cursor
		}
		if cs.After(to) {
			break
		}
		out = self(cursor, cs)
		out = cover(c, cs, ce, out, epoch)
		cursor = ce
		if !cursor.Before(to) {
			break
		}
	}
	out = self(cursor, to)
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// pickAnchor chooses the node the analysis anchors on: a campaign span if
// present anywhere in the forest, else an experiment span, else the longest
// forest root. The scan covers ALL nodes, not just roots — in the documented
// `posctl submit -spans` flow the campaign span is a child of a posctl:submit
// span that ended at submission time, so anchoring on the forest root would
// clamp the whole analysis to the submit RPC's interval and discard the
// campaign entirely.
func pickAnchor(roots []*node) *node {
	score := func(n *node) int {
		switch {
		case strings.HasPrefix(n.rec.Name, "campaign:"):
			return 2
		case strings.HasPrefix(n.rec.Name, "experiment:"):
			return 1
		default:
			return 0
		}
	}
	var best *node
	consider := func(n *node, s int) {
		if best == nil {
			best = n
			return
		}
		sb := score(best)
		if s > sb || (s == sb && n.rec.End.Sub(n.rec.Start) > best.rec.End.Sub(best.rec.Start)) {
			best = n
		}
	}
	var walk func(n *node)
	walk = func(n *node) {
		if s := score(n); s > 0 {
			consider(n, s)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if best != nil {
		return best
	}
	// No campaign/experiment span anywhere: fall back to the longest root.
	for _, r := range roots {
		consider(r, 0)
	}
	return best
}

// subtreeEnd returns the latest End across a node's subtree — a mid-campaign
// snapshot or a cut-short archive can stamp a parent's End before a child's.
func subtreeEnd(n *node) time.Time {
	end := n.rec.End
	for _, c := range n.children {
		if ce := subtreeEnd(c); ce.After(end) {
			end = ce
		}
	}
	return end
}

// Summarize computes the critical path and per-phase attribution from span
// records alone — the form a flight recorder uses mid-campaign, when the
// journal is still being written and run directories are incomplete.
func Summarize(recs []telemetry.SpanRecord) *Summary {
	roots := buildTree(recs)
	root := pickAnchor(roots)
	if root == nil {
		return &Summary{}
	}
	start, end := root.rec.Start, subtreeEnd(root)
	segs := cover(root, start, end, nil, start)
	sum := &Summary{
		TraceID:      root.rec.TraceID,
		Root:         root.rec.Name,
		Start:        start,
		End:          end,
		WallMS:       ms(end.Sub(start)),
		CriticalPath: segs,
	}
	sum.Phases = phaseTotals(segs, sum.WallMS)
	return sum
}

// phaseTotals folds segments into ordered per-phase totals.
func phaseTotals(segs []Segment, wallMS float64) []PhaseTotal {
	acc := make(map[string]float64)
	for _, s := range segs {
		acc[s.Phase] += s.DurMS
	}
	var out []PhaseTotal
	for _, p := range phaseOrder {
		if v, ok := acc[p]; ok {
			frac := 0.0
			if wallMS > 0 {
				frac = v / wallMS
			}
			out = append(out, PhaseTotal{Phase: p, MS: v, Fraction: frac})
		}
	}
	return out
}

// ReadSpans loads and stitches every span archive in an experiment directory:
// spans.json plus any spans-<proc>.json dropped by other processes (posctl,
// a federated peer). Records keep their per-archive identities; the hex
// parent linkage joins them.
func ReadSpans(dir string) ([]telemetry.SpanRecord, error) {
	names, err := filepath.Glob(filepath.Join(dir, "spans*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var recs []telemetry.SpanRecord
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		part, err := telemetry.ParseSpans(data)
		if err != nil {
			return nil, fmt.Errorf("timeline: %s: %w", filepath.Base(name), err)
		}
		recs = append(recs, part...)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("timeline: no span archives in %s (was telemetry disabled?)", dir)
	}
	return recs, nil
}

// runMeta is the slice of results.RunMeta the assembler needs; decoded
// structurally so the timeline package does not depend on the results
// store's locking machinery just to read finished artifacts.
type runMeta struct {
	Run        int       `json:"run"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	Failed     bool      `json:"failed"`
}

// attemptsDoc mirrors the campaign's experiment/attempts.json.
type attemptsDoc struct {
	Runs []struct {
		Run      int               `json:"run"`
		Attempts []json.RawMessage `json:"attempts"`
	} `json:"runs"`
}

// Assemble merges an experiment directory's archives into a Timeline.
func Assemble(dir string) (*Timeline, error) {
	recs, err := ReadSpans(dir)
	if err != nil {
		return nil, err
	}
	tl := &Timeline{Summary: *Summarize(recs), Spans: len(recs)}
	procs := map[string]bool{}
	for _, r := range recs {
		if r.Proc != "" && !procs[r.Proc] {
			procs[r.Proc] = true
			tl.Procs = append(tl.Procs, r.Proc)
		}
	}
	sort.Strings(tl.Procs)

	// Journal: campaign event count, and the queue admission record that
	// extends the timeline leftward to submission time.
	if events, err := eventlog.Replay(filepath.Join(dir, "events")); err == nil {
		tl.Events = len(events)
		applyAdmission(tl, events)
	}

	// Per-run statistics from the archived run directories.
	tl.Runs = readRuns(dir, recs)
	attempts := readAttempts(dir)
	for i := range tl.Runs {
		if n := attempts[tl.Runs[i].Run]; n > 0 {
			tl.Runs[i].Attempts = n
		}
	}
	tl.Replicas = replicaStats(recs)
	tl.Stragglers = findStragglers(tl.Runs, tl.Replicas)
	return tl, nil
}

// applyAdmission folds a journaled queue-admission event into the timeline:
// the campaign's observable interval starts at submission, and the
// submit→start gap becomes the queue-wait phase. Segment offsets shift so
// they stay relative to the (new) timeline start.
func applyAdmission(tl *Timeline, events []eventlog.Event) {
	for _, ev := range events {
		if ev.Typ != eventlog.TypeQueue || ev.Attrs["submitted"] == "" {
			continue
		}
		submitted, err := time.Parse(time.RFC3339Nano, ev.Attrs["submitted"])
		if err != nil || !submitted.Before(tl.Start) {
			continue // a later queue event may still carry a usable stamp
		}
		wait := tl.Start.Sub(submitted)
		tl.QueueWaitMS = ms(wait)
		tl.QueueUser = ev.Attrs["queue_user"]
		for i := range tl.CriticalPath {
			tl.CriticalPath[i].StartMS += tl.QueueWaitMS
		}
		tl.CriticalPath = append([]Segment{{
			Span: PhaseQueueWait, Phase: PhaseQueueWait,
			StartMS: 0, DurMS: tl.QueueWaitMS,
		}}, tl.CriticalPath...)
		tl.Start = submitted
		tl.WallMS = ms(tl.End.Sub(tl.Start))
		tl.Phases = phaseTotals(tl.CriticalPath, tl.WallMS)
		return
	}
}

// readRuns scans run_NNNN/metadata.json directories; the replica attribution
// comes from the span records ("run N" spans carry a replica attr).
func readRuns(dir string, recs []telemetry.SpanRecord) []RunStat {
	replicaOf := make(map[string]string)
	for _, r := range recs {
		if strings.HasPrefix(r.Name, "run ") && r.Attrs["replica"] != "" {
			replicaOf[r.Name] = r.Attrs["replica"]
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []RunStat
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "run_") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name(), "metadata.json"))
		if err != nil {
			continue
		}
		var m runMeta
		if json.Unmarshal(data, &m) != nil || m.FinishedAt.Before(m.StartedAt) {
			continue
		}
		out = append(out, RunStat{
			Run:     m.Run,
			Replica: replicaOf[fmt.Sprintf("run %d", m.Run)],
			DurMS:   ms(m.FinishedAt.Sub(m.StartedAt)),
			Failed:  m.Failed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// readAttempts maps run → attempt count from experiment/attempts.json.
func readAttempts(dir string) map[int]int {
	data, err := os.ReadFile(filepath.Join(dir, "experiment", "attempts.json"))
	if err != nil {
		return nil
	}
	var doc attemptsDoc
	if json.Unmarshal(data, &doc) != nil {
		return nil
	}
	out := make(map[int]int, len(doc.Runs))
	for _, r := range doc.Runs {
		out[r.Run] = len(r.Attempts)
	}
	return out
}

// replicaStats computes per-lane busy/idle time from "replica:<name>" lane
// spans: busy is the union of the lane's child intervals, idle the rest.
func replicaStats(recs []telemetry.SpanRecord) []ReplicaStat {
	roots := buildTree(recs)
	var lanes []*node
	var collect func(n *node)
	collect = func(n *node) {
		if strings.HasPrefix(n.rec.Name, "replica:") {
			lanes = append(lanes, n)
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	for _, r := range roots {
		collect(r)
	}
	var out []ReplicaStat
	for _, lane := range lanes {
		st := ReplicaStat{
			Name:   strings.TrimPrefix(lane.rec.Name, "replica:"),
			LaneMS: ms(lane.rec.End.Sub(lane.rec.Start)),
		}
		type iv struct{ a, b time.Time }
		var ivs []iv
		for _, c := range lane.children {
			if strings.HasPrefix(c.rec.Name, "run ") {
				st.Runs++
			}
			ivs = append(ivs, iv{c.rec.Start, c.rec.End})
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
		var busy time.Duration
		var curA, curB time.Time
		for _, v := range ivs {
			if curB.IsZero() || v.a.After(curB) {
				busy += curB.Sub(curA)
				curA, curB = v.a, v.b
				continue
			}
			if v.b.After(curB) {
				curB = v.b
			}
		}
		busy += curB.Sub(curA)
		st.BusyMS = ms(busy)
		if st.LaneMS > 0 {
			st.IdleFraction = 1 - st.BusyMS/st.LaneMS
			if st.IdleFraction < 0 {
				st.IdleFraction = 0
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// stragglerRatio is how far past the median a run or replica must be to be
// flagged; stragglerFloorMS suppresses flags in the noise band.
const (
	stragglerRatio   = 1.5
	stragglerFloorMS = 10.0
)

func findStragglers(runs []RunStat, replicas []ReplicaStat) []Straggler {
	var out []Straggler
	if len(runs) >= 3 {
		durs := make([]float64, len(runs))
		slowest := 0
		for i, r := range runs {
			durs[i] = r.DurMS
			if r.DurMS > runs[slowest].DurMS {
				slowest = i
			}
		}
		med := median(durs)
		if sl := runs[slowest]; med > 0 && sl.DurMS > med*stragglerRatio && sl.DurMS-med > stragglerFloorMS {
			out = append(out, Straggler{
				Kind: "run", Name: fmt.Sprintf("run %d", sl.Run),
				DurMS: sl.DurMS, MedianMS: med, Ratio: sl.DurMS / med,
			})
		}
	}
	if len(replicas) >= 2 {
		busys := make([]float64, len(replicas))
		slowest := 0
		for i, r := range replicas {
			busys[i] = r.BusyMS
			if r.BusyMS > replicas[slowest].BusyMS {
				slowest = i
			}
		}
		med := median(busys)
		if sl := replicas[slowest]; med > 0 && sl.BusyMS > med*stragglerRatio && sl.BusyMS-med > stragglerFloorMS {
			out = append(out, Straggler{
				Kind: "replica", Name: sl.Name,
				DurMS: sl.BusyMS, MedianMS: med, Ratio: sl.BusyMS / med,
			})
		}
	}
	return out
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Write archives the timeline as timeline.json in dir (indented, trailing
// newline — the same diff-friendly convention as the other artifacts).
func Write(dir string, tl *Timeline) error {
	data, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ArtifactName), append(data, '\n'), 0o644)
}

// Load reads a previously written timeline.json.
func Load(dir string) (*Timeline, error) {
	data, err := os.ReadFile(filepath.Join(dir, ArtifactName))
	if err != nil {
		return nil, err
	}
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return nil, err
	}
	return &tl, nil
}
