package timeline

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pos/internal/eventlog"
	"pos/internal/telemetry"
)

var epoch = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// rec builds a synthetic stitched span record; offsets are seconds from epoch.
func rec(id int, spanID, parentSpanID, proc, name string, from, to float64) telemetry.SpanRecord {
	return telemetry.SpanRecord{
		ID:           id,
		TraceID:      "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:       spanID,
		ParentSpanID: parentSpanID,
		Proc:         proc,
		Name:         name,
		Start:        epoch.Add(time.Duration(from * float64(time.Second))),
		End:          epoch.Add(time.Duration(to * float64(time.Second))),
	}
}

// campaignRecords is a 2-replica campaign shaped like the real controller
// emits it: a controller-side campaign root, boot, replica lanes with runs
// (one retried), eval and publish.
func campaignRecords() []telemetry.SpanRecord {
	return []telemetry.SpanRecord{
		rec(1, "aaaaaaaaaaaaaaa1", "", "controller", "campaign:x", 0, 100),
		rec(2, "aaaaaaaaaaaaaaa2", "aaaaaaaaaaaaaaa1", "controller", "boot", 0, 10),
		rec(3, "aaaaaaaaaaaaaaa3", "aaaaaaaaaaaaaaa1", "controller", "replica:a", 10, 90),
		rec(4, "aaaaaaaaaaaaaaa4", "aaaaaaaaaaaaaaa3", "controller", "setup", 10, 20),
		rec(5, "aaaaaaaaaaaaaaa5", "aaaaaaaaaaaaaaa3", "controller", "run 1", 20, 45),
		rec(6, "aaaaaaaaaaaaaaa6", "aaaaaaaaaaaaaaa3", "controller", "run 2", 50, 70),
		// Second attempt of run 2: a retry on the same lane.
		rec(7, "aaaaaaaaaaaaaaa7", "aaaaaaaaaaaaaaa3", "controller", "run 2", 72, 90),
		rec(8, "aaaaaaaaaaaaaaa8", "aaaaaaaaaaaaaaa1", "controller", "eval", 90, 96),
		rec(9, "aaaaaaaaaaaaaaa9", "aaaaaaaaaaaaaaa1", "controller", "publish", 96, 100),
	}
}

func phaseMS(sum *Summary) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range sum.Phases {
		out[p.Phase] = p.MS
	}
	return out
}

// TestCriticalPathPartitionsWallClock: the acceptance criterion — per-phase
// totals sum to the campaign wall clock (exactly, not within 2%).
func TestCriticalPathPartitionsWallClock(t *testing.T) {
	sum := Summarize(campaignRecords())
	if sum.WallMS != 100_000 {
		t.Fatalf("wall = %v ms, want 100000", sum.WallMS)
	}
	var segTotal, phaseTotal float64
	for _, s := range sum.CriticalPath {
		segTotal += s.DurMS
	}
	for _, p := range sum.Phases {
		phaseTotal += p.MS
	}
	if math.Abs(segTotal-sum.WallMS) > 1e-6 || math.Abs(phaseTotal-sum.WallMS) > 1e-6 {
		t.Errorf("segments sum %v, phases sum %v, wall %v — must partition exactly",
			segTotal, phaseTotal, sum.WallMS)
	}
	// Contiguity: each segment starts where the previous ended.
	cursor := 0.0
	for _, s := range sum.CriticalPath {
		if math.Abs(s.StartMS-cursor) > 1e-6 {
			t.Fatalf("segment %q starts at %v, cursor %v — gap or overlap", s.Span, s.StartMS, cursor)
		}
		cursor += s.DurMS
	}
}

func TestPhaseAttribution(t *testing.T) {
	sum := Summarize(campaignRecords())
	if sum.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || sum.Root != "campaign:x" {
		t.Fatalf("root identity = %q/%q", sum.TraceID, sum.Root)
	}
	got := phaseMS(sum)
	want := map[string]float64{
		PhaseBoot:        10_000, // boot 0-10
		PhaseSetup:       10_000, // setup 10-20
		PhaseMeasurement: 45_000, // run 1 (25s) + run 2 first attempt (20s)
		PhaseRetry:       18_000, // run 2 second attempt 72-90
		PhaseIdle:        7_000,  // replica:a self time 45-50 and 70-72
		PhaseEval:        6_000,
		PhasePublish:     4_000,
	}
	for phase, ms := range want {
		if math.Abs(got[phase]-ms) > 1e-6 {
			t.Errorf("phase %s = %v ms, want %v", phase, got[phase], ms)
		}
	}
	if got[PhaseOther] != 0 {
		t.Errorf("unclassified time %v ms, want 0", got[PhaseOther])
	}
}

// TestAnchorBelowSubmitRoot reproduces the documented `posctl submit -spans`
// flow: the posctl:submit span ends at submission time, and the campaign span
// — its child via the remote parent linkage — starts long after that End. The
// analysis must anchor on the campaign span, not clamp to the submit RPC's
// 100ms interval.
func TestAnchorBelowSubmitRoot(t *testing.T) {
	recs := []telemetry.SpanRecord{
		// posctl's lane: submitted at -20s, the RPC took 100ms.
		rec(1, "bbbbbbbbbbbbbbb1", "", "posctl", "posctl:submit", -20, -19.9),
	}
	for _, r := range campaignRecords() {
		if r.ParentSpanID == "" {
			r.ParentSpanID = "bbbbbbbbbbbbbbb1" // controller root joins posctl's tree
		}
		recs = append(recs, r)
	}
	sum := Summarize(recs)
	if sum.Root != "campaign:x" {
		t.Fatalf("anchor = %q, want the campaign span below the submit root", sum.Root)
	}
	if sum.WallMS != 100_000 {
		t.Fatalf("wall = %v ms, want the campaign's 100000, not the submit RPC's", sum.WallMS)
	}
	var phaseTotal float64
	for _, p := range sum.Phases {
		phaseTotal += p.MS
	}
	if math.Abs(phaseTotal-sum.WallMS) > 1e-6 {
		t.Errorf("phases sum %v != wall %v", phaseTotal, sum.WallMS)
	}
}

// TestSubtreeEndExtendsTruncatedAnchor: a cut-short archive can stamp the
// anchor's End before a still-open child's — the child's tail must not be
// discarded.
func TestSubtreeEndExtendsTruncatedAnchor(t *testing.T) {
	recs := []telemetry.SpanRecord{
		rec(1, "aaaaaaaaaaaaaaa1", "", "controller", "campaign:x", 0, 50),
		rec(2, "aaaaaaaaaaaaaaa2", "aaaaaaaaaaaaaaa1", "controller", "run 1", 10, 80),
	}
	sum := Summarize(recs)
	if sum.WallMS != 80_000 {
		t.Fatalf("wall = %v ms, want 80000 (extended to the subtree's max End)", sum.WallMS)
	}
	if got := phaseMS(sum)[PhaseMeasurement]; got != 70_000 {
		t.Errorf("measurement = %v ms, want 70000", got)
	}
}

// TestAdmissionScanSkipsBadEvents: a queue event with an unparsable or late
// "submitted" stamp must not end the scan — a later valid admission record
// still attributes the queue wait.
func TestAdmissionScanSkipsBadEvents(t *testing.T) {
	tl := &Timeline{Summary: *Summarize(campaignRecords())}
	events := []eventlog.Event{
		{Typ: eventlog.TypeQueue, Attrs: map[string]string{"submitted": "not-a-time"}},
		{Typ: eventlog.TypeQueue, Attrs: map[string]string{
			"submitted": epoch.Add(time.Second).Format(time.RFC3339Nano), // after start: ignored
		}},
		{Typ: eventlog.TypeQueue, Attrs: map[string]string{
			"submitted":  epoch.Add(-5 * time.Second).Format(time.RFC3339Nano),
			"queue_user": "bob",
		}},
	}
	applyAdmission(tl, events)
	if tl.QueueWaitMS != 5_000 || tl.QueueUser != "bob" {
		t.Errorf("queue wait = %v ms user %q, want 5000/bob from the later valid event",
			tl.QueueWaitMS, tl.QueueUser)
	}
}

// TestLegacyIntLinkage: archives predating trace identities still assemble
// via the per-process int parent linkage.
func TestLegacyIntLinkage(t *testing.T) {
	recs := []telemetry.SpanRecord{
		{ID: 1, Name: "experiment:x", Start: epoch, End: epoch.Add(10 * time.Second)},
		{ID: 2, Parent: 1, Name: "run 1", Start: epoch, End: epoch.Add(8 * time.Second)},
	}
	sum := Summarize(recs)
	if sum.Root != "experiment:x" || sum.WallMS != 10_000 {
		t.Fatalf("legacy root = %q wall = %v", sum.Root, sum.WallMS)
	}
	if got := phaseMS(sum)[PhaseMeasurement]; got != 8_000 {
		t.Errorf("legacy measurement = %v ms, want 8000", got)
	}
}

func TestAssembleMergesArchives(t *testing.T) {
	dir := t.TempDir()
	writeSpanArchive(t, filepath.Join(dir, "spans.json"), campaignRecords())
	// A second process's archive (posctl's submit lane) stitches in by trace ID.
	writeSpanArchive(t, filepath.Join(dir, "spans-posctl.json"), []telemetry.SpanRecord{
		rec(1, "bbbbbbbbbbbbbbb1", "", "posctl", "posctl:submit", -30, -29.9),
	})

	// Journaled queue admission: submitted 20s before the campaign started.
	j, err := eventlog.OpenJournal(filepath.Join(dir, "events"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ev := eventlog.Event{
		Seq: 1, Typ: eventlog.TypeQueue, At: epoch, Run: eventlog.NoRun,
		Message: "queue admission",
		Attrs: map[string]string{
			"submitted":  epoch.Add(-20 * time.Second).Format(time.RFC3339Nano),
			"admitted":   epoch.Format(time.RFC3339Nano),
			"queue_user": "alice",
		},
	}
	if err := j.Append(ev); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Archived run directories.
	for run, durSec := range map[int]int{1: 25, 2: 20} {
		rd := filepath.Join(dir, fmt.Sprintf("run_%04d", run))
		if err := os.MkdirAll(rd, 0o755); err != nil {
			t.Fatal(err)
		}
		meta := map[string]any{
			"run": run, "started_at": epoch, "finished_at": epoch.Add(time.Duration(durSec) * time.Second),
		}
		data, _ := json.Marshal(meta)
		if err := os.WriteFile(filepath.Join(rd, "metadata.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tl, err := Assemble(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Spans != 10 {
		t.Errorf("stitched spans = %d, want 10 (both archives)", tl.Spans)
	}
	if len(tl.Procs) != 2 || tl.Procs[0] != "controller" || tl.Procs[1] != "posctl" {
		t.Errorf("procs = %v, want [controller posctl]", tl.Procs)
	}

	// Admission folded in: timeline extends leftward, still partitions exactly.
	if tl.QueueWaitMS != 20_000 || tl.QueueUser != "alice" {
		t.Errorf("queue wait = %v ms user %q, want 20000/alice", tl.QueueWaitMS, tl.QueueUser)
	}
	if tl.WallMS != 120_000 {
		t.Errorf("wall with queue wait = %v ms, want 120000", tl.WallMS)
	}
	var phaseTotal float64
	for _, p := range tl.Phases {
		phaseTotal += p.MS
	}
	if math.Abs(phaseTotal-tl.WallMS) > 1e-6 {
		t.Errorf("phases sum %v != wall %v after admission fold", phaseTotal, tl.WallMS)
	}
	if tl.CriticalPath[0].Phase != PhaseQueueWait || tl.CriticalPath[0].StartMS != 0 {
		t.Errorf("first segment = %+v, want queue-wait at offset 0", tl.CriticalPath[0])
	}

	if len(tl.Runs) != 2 || tl.Runs[0].Run != 1 || tl.Runs[0].DurMS != 25_000 {
		t.Errorf("runs = %+v", tl.Runs)
	}
	if len(tl.Replicas) != 1 || tl.Replicas[0].Name != "a" {
		t.Fatalf("replicas = %+v", tl.Replicas)
	}
	// Lane a: 80s long, busy = setup+runs = 10+25+20+18 = 73s → idle 7/80.
	if got := tl.Replicas[0].IdleFraction; math.Abs(got-7.0/80.0) > 1e-9 {
		t.Errorf("replica idle fraction = %v, want %v", got, 7.0/80.0)
	}

	// Round trip through the artifact.
	if err := Write(dir, tl); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.WallMS != tl.WallMS || back.TraceID != tl.TraceID || len(back.CriticalPath) != len(tl.CriticalPath) {
		t.Error("timeline.json round trip lost data")
	}
}

func writeSpanArchive(t *testing.T, path string, recs []telemetry.SpanRecord) {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFindStragglers(t *testing.T) {
	runs := []RunStat{
		{Run: 1, DurMS: 1000}, {Run: 2, DurMS: 1100}, {Run: 3, DurMS: 1050},
		{Run: 4, DurMS: 4000}, // 4x the median
	}
	replicas := []ReplicaStat{
		{Name: "a", BusyMS: 2000}, {Name: "b", BusyMS: 9000},
	}
	out := findStragglers(runs, replicas)
	if len(out) != 2 {
		t.Fatalf("stragglers = %+v, want run 4 and replica b", out)
	}
	if out[0].Kind != "run" || out[0].Name != "run 4" || out[0].Ratio < 3 {
		t.Errorf("run straggler = %+v", out[0])
	}
	if out[1].Kind != "replica" || out[1].Name != "b" {
		t.Errorf("replica straggler = %+v", out[1])
	}
	// A tight distribution flags nothing.
	if got := findStragglers(runs[:3], replicas[:1]); len(got) != 0 {
		t.Errorf("tight distribution flagged %+v", got)
	}
}

func TestCompareDrift(t *testing.T) {
	base := Summarize(campaignRecords())
	baseTL := &Timeline{Summary: *base}

	// Identical timelines: quiet by construction.
	d := Compare(baseTL, baseTL, 0)
	if d.Flagged {
		t.Fatalf("identical timelines flagged: %+v", d)
	}
	if d.Threshold != DefaultDriftThreshold {
		t.Errorf("threshold default = %v, want %v", d.Threshold, DefaultDriftThreshold)
	}

	// Inject a slowdown: setup stretches 10s → 30s (everything after shifts).
	slow := campaignRecords()
	for i := range slow {
		shift := func(ts time.Time) time.Time {
			if ts.After(epoch.Add(19 * time.Second)) {
				return ts.Add(20 * time.Second)
			}
			return ts
		}
		slow[i].Start, slow[i].End = shift(slow[i].Start), shift(slow[i].End)
	}
	curTL := &Timeline{Summary: *Summarize(slow)}
	d = Compare(baseTL, curTL, 0)
	if !d.Flagged {
		t.Fatalf("3x setup slowdown not flagged: %+v", d)
	}
	var setup *PhaseDrift
	for i := range d.Phases {
		if d.Phases[i].Phase == PhaseSetup {
			setup = &d.Phases[i]
		}
	}
	if setup == nil || !setup.Flagged || math.Abs(setup.Ratio-3) > 1e-6 {
		t.Errorf("setup drift = %+v, want flagged at ratio 3", setup)
	}
	// Unchanged phases stay quiet.
	for _, p := range d.Phases {
		if p.Phase != PhaseSetup && p.Flagged {
			t.Errorf("phase %s flagged without drift: %+v", p.Phase, p)
		}
	}
}

// TestCompareNewPhase: retries the baseline never had are drift even though
// the ratio is undefined.
func TestCompareNewPhase(t *testing.T) {
	base := &Timeline{Summary: Summary{WallMS: 1000, Phases: []PhaseTotal{{Phase: PhaseMeasurement, MS: 1000}}}}
	cur := &Timeline{Summary: Summary{WallMS: 1500, Phases: []PhaseTotal{
		{Phase: PhaseMeasurement, MS: 1000}, {Phase: PhaseRetry, MS: 500},
	}}}
	d := Compare(base, cur, 0.25)
	if !d.Flagged {
		t.Fatalf("new retry phase not flagged: %+v", d)
	}
}

func TestReadSpansMissing(t *testing.T) {
	if _, err := ReadSpans(t.TempDir()); err == nil {
		t.Fatal("empty dir: want an explanatory error, got nil")
	}
}
