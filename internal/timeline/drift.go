package timeline

// Drift is the phase-by-phase comparison of a campaign against a baseline
// run of the same experiment — the check that turns reproducibility of
// *performance* into a property a CI job can assert.

// PhaseDrift compares one phase across the two campaigns.
type PhaseDrift struct {
	Phase   string  `json:"phase"`
	BaseMS  float64 `json:"base_ms"`
	CurMS   float64 `json:"cur_ms"`
	DeltaMS float64 `json:"delta_ms"`
	// Ratio is cur/base (0 when the phase is new — flagged via DeltaMS).
	Ratio   float64 `json:"ratio,omitempty"`
	Flagged bool    `json:"flagged,omitempty"`
}

// Drift is the full comparison result.
type Drift struct {
	Threshold float64      `json:"threshold"`
	BaseWall  float64      `json:"base_wall_ms"`
	CurWall   float64      `json:"cur_wall_ms"`
	WallRatio float64      `json:"wall_ratio"`
	Phases    []PhaseDrift `json:"phases"`
	Flagged   bool         `json:"flagged"`
}

// DefaultDriftThreshold flags a phase that grew by more than 25% over
// baseline. Chosen well above scheduler jitter on a loaded controller but
// below any slowdown worth a human's attention.
const DefaultDriftThreshold = 0.25

// driftFloorMS suppresses flags on phases whose absolute growth is within
// clock-resolution noise — a 3ms phase tripling is not a finding.
const driftFloorMS = 10.0

// Compare diffs cur against base phase by phase. A phase is flagged when it
// grew past threshold (fractional) AND past the absolute noise floor; the
// whole drift is flagged when any phase is, or when total wall clock grew
// past threshold. A campaign compared against a byte-identical re-run (or
// itself) yields Flagged == false by construction: every ratio is exactly 1.
func Compare(base, cur *Timeline, threshold float64) *Drift {
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	d := &Drift{Threshold: threshold, BaseWall: base.WallMS, CurWall: cur.WallMS}
	if base.WallMS > 0 {
		d.WallRatio = cur.WallMS / base.WallMS
	}
	baseBy := make(map[string]float64, len(base.Phases))
	for _, p := range base.Phases {
		baseBy[p.Phase] = p.MS
	}
	curBy := make(map[string]float64, len(cur.Phases))
	for _, p := range cur.Phases {
		curBy[p.Phase] = p.MS
	}
	for _, phase := range phaseOrder {
		b, inBase := baseBy[phase]
		c, inCur := curBy[phase]
		if !inBase && !inCur {
			continue
		}
		pd := PhaseDrift{Phase: phase, BaseMS: b, CurMS: c, DeltaMS: c - b}
		if b > 0 {
			pd.Ratio = c / b
			pd.Flagged = pd.Ratio > 1+threshold && pd.DeltaMS > driftFloorMS
		} else {
			// A phase the baseline never had (e.g. retries appearing) is a
			// drift whenever it is above the noise floor.
			pd.Flagged = c > driftFloorMS
		}
		if pd.Flagged {
			d.Flagged = true
		}
		d.Phases = append(d.Phases, pd)
	}
	if d.BaseWall > 0 && d.WallRatio > 1+threshold && d.CurWall-d.BaseWall > driftFloorMS {
		d.Flagged = true
	}
	return d
}
