package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"pos/internal/calendar"
	"pos/internal/eventlog"
)

// recordBenchResults appends one benchmark's headline metrics to the JSON
// file named by BENCH_RESULTS_OUT (read-merge-write, same contract as the
// root bench harness). `make bench-queue` points it at BENCH_queue.json.
func recordBenchResults(b *testing.B, bench string, metrics map[string]float64) {
	b.Helper()
	path := os.Getenv("BENCH_RESULTS_OUT")
	if path == "" {
		return
	}
	doc := make(map[string]map[string]float64)
	if data, err := os.ReadFile(path); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc[bench] = metrics
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueAdmission measures the scheduler end to end: 4 tenants
// flooding a 4-node calendar with single-node campaigns whose launch is
// instant, so the wall clock is pure queue machinery — journal appends,
// admission passes, allocation grant/release. Reported metrics: scheduler
// throughput (campaigns/s) and mean submit→admit latency.
func BenchmarkQueueAdmission(b *testing.B) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	cal := calendar.New(nodes)
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error { return nil }
	c, err := Open(Config{
		Dir:           b.TempDir(),
		Calendar:      cal,
		Launch:        launch,
		SweepInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	b.ResetTimer()
	start := time.Now()
	ids := make([]int, 0, b.N)
	for i := 0; i < b.N; i++ {
		st, err := c.Submit(Submission{
			User:    fmt.Sprintf("user%d", i%4),
			Nodes:   []string{nodes[i%len(nodes)]},
			Minutes: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	var totalWait time.Duration
	for _, id := range ids {
		for {
			st, err := c.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			if st.State == StateDone {
				totalWait += st.Admitted.Sub(st.Submitted)
				break
			}
			if st.State == StateFailed || st.State == StateCancelled {
				b.Fatalf("campaign %d ended %s: %s", id, st.State, st.Error)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	throughput := float64(b.N) / elapsed.Seconds()
	meanWaitMS := totalWait.Seconds() * 1000 / float64(b.N)
	b.ReportMetric(throughput, "campaigns/s")
	b.ReportMetric(meanWaitMS, "ms_submit_to_admit")
	recordBenchResults(b, "QueueAdmission", map[string]float64{
		"campaigns":        float64(b.N),
		"throughput_per_s": throughput,
		"mean_wait_ms":     meanWaitMS,
		"nodes":            float64(len(nodes)),
		"tenants":          4,
	})
}
