package queue

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The queue journal is a single append-only JSONL file recording every
// submission-state transition. It follows the event-journal discipline
// (internal/eventlog): whole-line single-syscall appends so a crash can tear
// at most the final line, and torn-tail truncation on open. Replaying the
// file rebuilds the queue exactly: a submission with no terminal record is
// still owed work, whether it was queued or mid-flight when the controller
// died.

// Journal operations. "admit" without a later terminal op means the
// controller died while the campaign ran — recovery re-queues it.
const (
	opSubmit  = "submit"
	opAdmit   = "admit"
	opDone    = "done"
	opFail    = "fail"
	opCancel  = "cancel"
	opRequeue = "requeue"
)

// record is one journal line.
type record struct {
	At time.Time `json:"at"`
	Op string    `json:"op"`
	// ID names the submission for every op after submit.
	ID int `json:"id,omitempty"`
	// Sub is the full submission, present on submit only.
	Sub *Submission `json:"sub,omitempty"`
	// Error carries the failure reason on fail records.
	Error string `json:"error,omitempty"`
}

// journal is the append side. Appends are serialized by the controller's
// state mutex ordering, but the journal keeps its own lock so Sync/Close are
// independently safe.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal reads back the full history at path (recovering a torn tail)
// and opens the file for appending.
func openJournal(path string) (*journal, []record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("queue: journal dir: %w", err)
	}
	recs, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("queue: open journal: %w", err)
	}
	return &journal{f: f, path: path}, recs, nil
}

// replayJournal parses the journal, truncating a torn final line in place
// (the crash contract: only the tail may be damaged). An undecodable final
// line is likewise dropped; an undecodable interior line is corruption and
// an error.
func replayJournal(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("queue: read journal: %w", err)
	}
	if n := len(data); n > 0 && data[n-1] != '\n' {
		cut := bytes.LastIndexByte(data, '\n') + 1
		if err := os.Truncate(path, int64(cut)); err != nil {
			return nil, fmt.Errorf("queue: recover torn journal tail: %w", err)
		}
		data = data[:cut]
	}
	var recs []record
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-2 { // last non-empty line before trailing ""
				break
			}
			return nil, fmt.Errorf("queue: corrupt journal line %d: %w", i+1, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// append writes one record as a single whole-line syscall.
func (j *journal) append(r record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("queue: encode record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("queue: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("queue: append record: %w", err)
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (j *journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
