// Package queue is the controller's durable campaign queue: the piece that
// turns the API server from a single-shot CLI companion into the long-lived
// multi-tenant service the paper describes (Sec. 4.4). Experimenters submit
// campaigns; the queue admits one only when the allocation calendar grants
// its node set, holds the allocation for the campaign's lifetime, and
// releases it on completion, failure, or cancel. Admission is
// FIFO-within-priority with fair-share round-robin across users, so one
// tenant flooding the queue cannot starve the others — the GPLMT/LabWiki
// lesson from PAPERS.md. Every state transition is journaled as JSONL under
// the results store, so a controller restart rebuilds the queue and resumes
// still-owed submissions without losing a single one.
package queue

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"pos/internal/calendar"
	"pos/internal/eventlog"
	"pos/internal/telemetry"
)

// State is a submission's lifecycle position.
type State string

const (
	// StateQueued: submitted, waiting for the calendar to grant its nodes.
	StateQueued State = "queued"
	// StateRunning: allocation held, campaign launched.
	StateRunning State = "running"
	// StateDone: campaign finished cleanly; allocation released.
	StateDone State = "done"
	// StateFailed: campaign (or its admission) failed terminally.
	StateFailed State = "failed"
	// StateCancelled: withdrawn by its user, queued or mid-run.
	StateCancelled State = "cancelled"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Submission is one tenant's request to run a campaign.
type Submission struct {
	// ID is assigned by the controller and stable across restarts.
	ID int `json:"id"`
	// User owns the submission; the calendar allocation is made in their name.
	User string `json:"user"`
	// Name labels the campaign (and its experiment tree in the store).
	Name string `json:"name"`
	// ExpDir optionally points the launcher at an experiment-file directory.
	ExpDir string `json:"exp_dir,omitempty"`
	// Spec carries launcher-interpreted parameters (sweep sizes, rates, ...).
	Spec map[string]string `json:"spec,omitempty"`
	// Nodes is the node set the campaign needs, allocated atomically.
	Nodes []string `json:"nodes"`
	// Minutes is the requested allocation length.
	Minutes int `json:"minutes"`
	// Priority orders admission; higher admits first. Default 0.
	Priority int `json:"priority,omitempty"`
	// TraceParent carries the submitter's W3C trace identity through queue
	// wait and admission, so the launched campaign stitches into the
	// submitter's causal tree. Optional; journaled with the submission so a
	// recovered queue keeps the linkage.
	TraceParent string `json:"traceparent,omitempty"`
	// Submitted is stamped by the controller.
	Submitted time.Time `json:"submitted"`
}

// Status is a submission plus its current lifecycle state.
type Status struct {
	Submission
	State State `json:"state"`
	// Position is the 1-based place among queued submissions (0 otherwise).
	Position int `json:"position,omitempty"`
	// AllocationID is the held calendar allocation while running.
	AllocationID int       `json:"allocation_id,omitempty"`
	Admitted     time.Time `json:"admitted"`
	Finished     time.Time `json:"finished"`
	Error        string    `json:"error,omitempty"`
}

// Launch runs one admitted campaign. It must honor ctx — cancellation is how
// the controller preempts — and should publish its progress on events, which
// the controller forwards into the shared stream tagged with the campaign id.
type Launch func(ctx context.Context, sub Submission, events *eventlog.Pipeline) error

// Config wires a Controller.
type Config struct {
	// Dir holds the queue journal (queue.jsonl). Typically the results
	// store's control dir (Store.ControlDir("queue")).
	Dir string
	// Calendar grants admission; required.
	Calendar *calendar.Calendar
	// Launch runs admitted campaigns; required.
	Launch Launch
	// Events, when set, receives queue lifecycle events and forwarded
	// campaign events for live observers (posctl watch).
	Events *eventlog.Pipeline
	// SweepInterval bounds how long an admission opportunity can sit
	// unnoticed (expired allocations are also swept each tick). Default 1s.
	SweepInterval time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Controller errors.
var (
	ErrNotFound  = errors.New("queue: campaign not found")
	ErrWrongUser = errors.New("queue: campaign belongs to another user")
	ErrFinished  = errors.New("queue: campaign already finished")
	ErrClosed    = errors.New("queue: controller closed")
)

// entry is the controller's mutable view of one submission.
type entry struct {
	sub      Submission
	state    State
	allocID  int
	admitted time.Time
	finished time.Time
	err      string
	// cancel preempts the running launch; set while running.
	cancel context.CancelFunc
	// userCancel marks a user-requested preemption, distinguishing it from
	// shutdown (which must NOT journal a terminal record — the submission is
	// still owed and recovery re-queues it).
	userCancel bool
}

// Controller is the multi-tenant campaign queue: durable submissions,
// fair-share admission against the calendar, and launch supervision.
type Controller struct {
	cfg Config
	jl  *journal

	mu        sync.Mutex
	entries   map[int]*entry
	order     []int // submission order, all states
	nextID    int
	admitSeq  uint64
	lastAdmit map[string]uint64 // user -> admitSeq of their latest admission
	closing   bool

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	runs     sync.WaitGroup
}

// Open replays the journal under cfg.Dir and starts the admission loop.
// Submissions that were queued — or running — when the previous controller
// stopped come back queued.
func Open(cfg Config) (*Controller, error) {
	if cfg.Dir == "" {
		return nil, errors.New("queue: Config.Dir required")
	}
	if cfg.Calendar == nil {
		return nil, errors.New("queue: Config.Calendar required")
	}
	if cfg.Launch == nil {
		return nil, errors.New("queue: Config.Launch required")
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Second
	}
	jl, recs, err := openJournal(journalPath(cfg.Dir))
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		jl:        jl,
		entries:   make(map[int]*entry),
		nextID:    1,
		lastAdmit: make(map[string]uint64),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	if err := c.recover(recs); err != nil {
		jl.Close()
		return nil, err
	}
	go c.loop()
	return c, nil
}

// journalPath is the queue journal location under a control dir.
func journalPath(dir string) string { return filepath.Join(dir, "queue.jsonl") }

// recover rebuilds in-memory state from journal records and re-queues
// submissions the previous controller had admitted but never finished.
func (c *Controller) recover(recs []record) error {
	for _, r := range recs {
		switch r.Op {
		case opSubmit:
			if r.Sub == nil {
				return fmt.Errorf("queue: submit record without submission")
			}
			sub := *r.Sub
			c.entries[sub.ID] = &entry{sub: sub, state: StateQueued}
			c.order = append(c.order, sub.ID)
			if sub.ID >= c.nextID {
				c.nextID = sub.ID + 1
			}
		case opAdmit:
			if e := c.entries[r.ID]; e != nil {
				e.state = StateRunning
				e.admitted = r.At
			}
		case opRequeue:
			if e := c.entries[r.ID]; e != nil {
				e.state = StateQueued
				e.admitted = time.Time{}
			}
		case opDone, opFail, opCancel:
			if e := c.entries[r.ID]; e != nil {
				switch r.Op {
				case opDone:
					e.state = StateDone
				case opFail:
					e.state = StateFailed
					e.err = r.Error
				case opCancel:
					e.state = StateCancelled
				}
				e.finished = r.At
			}
		}
	}
	// Admitted-but-unfinished submissions: the campaign died with its
	// controller. Journal the requeue so the next recovery agrees.
	queued := 0
	for _, id := range c.order {
		e := c.entries[id]
		if e.state == StateRunning {
			e.state = StateQueued
			e.admitted = time.Time{}
			if err := c.jl.append(record{At: c.now(), Op: opRequeue, ID: id}); err != nil {
				return err
			}
			requeuesTotal.Inc()
		}
		if e.state == StateQueued {
			queued++
		}
	}
	queueDepth.Add(float64(queued))
	return nil
}

func (c *Controller) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return time.Now()
}

// kick nudges the admission loop without blocking.
func (c *Controller) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Submit validates, journals, and enqueues one submission, returning its
// assigned ID and queue position.
func (c *Controller) Submit(sub Submission) (Status, error) {
	if sub.User == "" {
		return Status{}, errors.New("queue: submission needs a user")
	}
	if len(sub.Nodes) == 0 {
		return Status{}, errors.New("queue: submission needs at least one node")
	}
	if sub.Minutes <= 0 {
		return Status{}, errors.New("queue: submission needs minutes > 0")
	}
	if sub.Name == "" {
		sub.Name = "campaign"
	}
	sub.Nodes = append([]string(nil), sub.Nodes...)

	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return Status{}, ErrClosed
	}
	sub.ID = c.nextID
	c.nextID++
	sub.Submitted = c.now()
	e := &entry{sub: sub, state: StateQueued}
	if err := c.jl.append(record{At: sub.Submitted, Op: opSubmit, Sub: &sub}); err != nil {
		c.mu.Unlock()
		return Status{}, err
	}
	c.entries[sub.ID] = e
	c.order = append(c.order, sub.ID)
	st := c.statusLocked(e)
	c.mu.Unlock()

	queueDepth.Inc()
	submissionsTotal.Inc()
	c.event(sub, StateQueued, "submitted", "")
	c.kick()
	return st, nil
}

// Cancel withdraws a submission. A queued one is removed immediately; a
// running one is preempted through its context and reaches StateCancelled
// once the launch returns. user must own the submission ("" skips the check,
// for operator tooling).
func (c *Controller) Cancel(user string, id int) (Status, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return Status{}, ErrNotFound
	}
	if user != "" && e.sub.User != user {
		c.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrWrongUser, e.sub.User)
	}
	switch e.state {
	case StateQueued:
		e.state = StateCancelled
		e.finished = c.now()
		if err := c.jl.append(record{At: e.finished, Op: opCancel, ID: id}); err != nil {
			c.mu.Unlock()
			return Status{}, err
		}
		queueDepth.Dec()
		completions("cancelled").Inc()
		st := c.statusLocked(e)
		sub := e.sub
		c.mu.Unlock()
		c.event(sub, StateCancelled, "cancelled while queued", "")
		c.kick()
		return st, nil
	case StateRunning:
		e.userCancel = true
		cancel := e.cancel
		st := c.statusLocked(e)
		sub := e.sub
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		c.event(sub, StateRunning, "preempting", "")
		return st, nil
	default:
		c.mu.Unlock()
		return Status{}, ErrFinished
	}
}

// Get returns one submission's status.
func (c *Controller) Get(id int) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return c.statusLocked(e), nil
}

// List returns every known submission in submission order, queued positions
// filled in.
func (c *Controller) List() []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Status, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.entries[id]))
	}
	return out
}

// statusLocked snapshots e; c.mu must be held.
func (c *Controller) statusLocked(e *entry) Status {
	st := Status{
		Submission:   e.sub,
		State:        e.state,
		AllocationID: e.allocID,
		Admitted:     e.admitted,
		Finished:     e.finished,
		Error:        e.err,
	}
	if e.state == StateQueued {
		pos := 0
		for _, id := range c.order {
			if c.entries[id].state == StateQueued {
				pos++
			}
			if id == e.sub.ID {
				break
			}
		}
		st.Position = pos
	}
	return st
}

// loop is the admission scheduler: it runs a pass whenever kicked (submit,
// finish, cancel) and on every sweep tick, which also retires expired
// calendar allocations so dead reservations never pile up (the Expire leak).
func (c *Controller) loop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.wake:
		case <-t.C:
		}
		c.pass()
	}
}

// pass sweeps expired allocations, then admits every queued submission the
// calendar will currently grant, fair-share order.
func (c *Controller) pass() {
	now := c.now()
	if n := c.cfg.Calendar.Expire(now); n > 0 {
		expiredTotal.Add(float64(n))
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closing {
		return
	}
	blocked := make(map[string]bool) // users whose head conflicted this pass
	admitted := 0
	for {
		e := c.nextCandidateLocked(blocked)
		if e == nil {
			break
		}
		if c.admitLocked(e, blocked, now) {
			admitted++
		}
	}
	// A pass that admitted nothing while tenants were waiting and no
	// campaign held an allocation is a starvation symptom — capacity is
	// free but the calendar still refuses every head. The health layer's
	// queue-starvation probe trips when these accumulate.
	if admitted == 0 {
		queued, running := 0, 0
		for _, e := range c.entries {
			switch e.state {
			case StateQueued:
				queued++
			case StateRunning:
				running++
			}
		}
		if queued > 0 && running == 0 {
			starvedPasses.Inc()
		}
	}
}

// nextCandidateLocked picks the queued head to try next: per user, only the
// oldest submission in the user's highest priority tier is eligible (strict
// FIFO within a tenant); across users, higher priority wins, then the
// least-recently-admitted user (fair share), then submission order.
func (c *Controller) nextCandidateLocked(blocked map[string]bool) *entry {
	heads := make(map[string]*entry)
	for _, id := range c.order {
		e := c.entries[id]
		if e.state != StateQueued || blocked[e.sub.User] {
			continue
		}
		h, ok := heads[e.sub.User]
		if !ok || e.sub.Priority > h.sub.Priority {
			heads[e.sub.User] = e
		}
	}
	var best *entry
	for _, e := range heads {
		if best == nil || headLess(e, best, c.lastAdmit) {
			best = e
		}
	}
	return best
}

// headLess orders two users' head submissions for admission.
func headLess(a, b *entry, lastAdmit map[string]uint64) bool {
	if a.sub.Priority != b.sub.Priority {
		return a.sub.Priority > b.sub.Priority
	}
	la, lb := lastAdmit[a.sub.User], lastAdmit[b.sub.User]
	if la != lb {
		return la < lb
	}
	return a.sub.ID < b.sub.ID
}

// admitLocked tries to allocate e's nodes now, reporting whether the
// submission was admitted. A conflict parks the user for this pass (their
// later submissions must not jump the FIFO); any other calendar error is
// terminal for the submission. On success the campaign launches in its own
// goroutine.
func (c *Controller) admitLocked(e *entry, blocked map[string]bool, now time.Time) bool {
	sub := e.sub
	end := now.Add(time.Duration(sub.Minutes) * time.Minute)
	alloc, err := c.cfg.Calendar.Allocate(sub.User, sub.Nodes, now, end)
	if errors.Is(err, calendar.ErrConflict) {
		blocked[sub.User] = true
		return false
	}
	if err != nil {
		// Unknown node, duplicate request, ... — retrying cannot help.
		e.state = StateFailed
		e.err = err.Error()
		e.finished = now
		c.jl.append(record{At: now, Op: opFail, ID: sub.ID, Error: e.err})
		queueDepth.Dec()
		admissions("rejected").Inc()
		c.event(sub, StateFailed, "admission rejected", e.err)
		return false
	}

	e.state = StateRunning
	e.allocID = alloc.ID
	e.admitted = now
	c.admitSeq++
	c.lastAdmit[sub.User] = c.admitSeq
	c.jl.append(record{At: now, Op: opAdmit, ID: sub.ID})
	queueDepth.Dec()
	admissions("admitted").Inc()
	waitSeconds.Observe(now.Sub(sub.Submitted).Seconds())
	runningPerUser(sub.User).Inc()

	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	c.runs.Add(1)
	go func() {
		defer c.runs.Done()
		defer cancel()
		c.event(sub, StateRunning, fmt.Sprintf("admitted on %s (allocation #%d)",
			joinNodes(sub.Nodes), alloc.ID), "")
		c.run(ctx, e)
	}()
	return true
}

// run drives one admitted campaign: a private event pipeline forwarded into
// the shared stream tagged with the campaign id, then finish bookkeeping.
func (c *Controller) run(ctx context.Context, e *entry) {
	events := eventlog.NewPipeline()
	var stopForward func()
	if c.cfg.Events != nil {
		id := strconv.Itoa(e.sub.ID)
		user := e.sub.User
		stopForward = events.ForwardTo(c.cfg.Events, func(ev eventlog.Event) eventlog.Event {
			attrs := make(map[string]string, len(ev.Attrs)+2)
			for k, v := range ev.Attrs {
				attrs[k] = v
			}
			attrs["campaign"] = id
			attrs["queue_user"] = user
			ev.Attrs = attrs
			return ev
		})
	}
	// Hand the launcher the submitter's trace identity and the admission
	// stamps by context: the campaign roots its trace from the traceparent
	// and publishes the queue-wait event itself, after its journal attaches —
	// anything published on `events` before Launch attaches a journal never
	// reaches the archive.
	ctx = telemetry.ContextWithTraceParent(ctx, e.sub.TraceParent)
	ctx = eventlog.WithAdmission(ctx, eventlog.Admission{
		SubmissionID: strconv.Itoa(e.sub.ID),
		User:         e.sub.User,
		Submitted:    e.sub.Submitted,
		// e.admitted was stamped under c.mu before this goroutine started
		// (the go statement orders it); nothing rewrites it while running.
		Admitted: e.admitted,
	})
	err := c.cfg.Launch(ctx, e.sub, events)
	if stopForward != nil {
		stopForward()
	}
	c.finish(e, ctx, err)
}

// finish releases the allocation and records the terminal state. During
// shutdown the submission stays unterminated in the journal — the next Open
// re-queues it; a user cancel journals its terminal record normally.
func (c *Controller) finish(e *entry, ctx context.Context, err error) {
	now := c.now()
	c.mu.Lock()
	if e.allocID != 0 {
		if relErr := c.cfg.Calendar.Release(e.sub.User, e.allocID); relErr != nil &&
			!errors.Is(relErr, calendar.ErrNotFound) {
			// Nothing to do beyond noting it; ErrNotFound just means the
			// allocation already expired and was swept.
			e.err = relErr.Error()
		}
		e.allocID = 0
	}
	runningPerUser(e.sub.User).Dec()
	if c.closing && !e.userCancel && ctx.Err() != nil {
		// Preempted by shutdown: still owed. Leave the admit record as the
		// journal tail so recovery re-queues the submission.
		c.mu.Unlock()
		return
	}
	cancelled := e.userCancel || (ctx.Err() != nil && errors.Is(err, context.Canceled))
	sub := e.sub
	var st State
	switch {
	case cancelled:
		e.state = StateCancelled
		c.jl.append(record{At: now, Op: opCancel, ID: sub.ID})
		completions("cancelled").Inc()
		st = StateCancelled
	case err != nil:
		e.state = StateFailed
		e.err = err.Error()
		c.jl.append(record{At: now, Op: opFail, ID: sub.ID, Error: e.err})
		completions("failed").Inc()
		st = StateFailed
	default:
		e.state = StateDone
		c.jl.append(record{At: now, Op: opDone, ID: sub.ID})
		completions("done").Inc()
		st = StateDone
	}
	e.finished = now
	e.cancel = nil
	c.mu.Unlock()

	msg := "finished"
	if st != StateDone {
		msg = string(st)
	}
	var errText string
	if err != nil && st == StateFailed {
		errText = err.Error()
	}
	c.event(sub, st, msg, errText)
	c.kick()
}

// Close stops the admission loop, preempts running campaigns (without
// journaling terminal records — they are re-queued on the next Open), waits
// for them, and closes the journal.
func (c *Controller) Close() error {
	c.mu.Lock()
	alreadyClosing := c.closing
	c.closing = true
	var cancels []context.CancelFunc
	queued := 0
	for _, e := range c.entries {
		if e.cancel != nil {
			cancels = append(cancels, e.cancel)
		}
		if e.state == StateQueued {
			queued++
		}
	}
	c.mu.Unlock()
	if alreadyClosing {
		return ErrClosed
	}
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.loopDone
	for _, cancel := range cancels {
		cancel()
	}
	c.runs.Wait()
	queueDepth.Add(-float64(queued))
	if err := c.jl.Sync(); err != nil {
		c.jl.Close()
		return err
	}
	return c.jl.Close()
}

// event publishes one queue lifecycle event on the shared pipeline.
func (c *Controller) event(sub Submission, st State, msg, errText string) {
	if c.cfg.Events == nil {
		return
	}
	c.cfg.Events.Publish(eventlog.Event{
		Typ:     eventlog.TypeQueue,
		Run:     eventlog.NoRun,
		Message: fmt.Sprintf("campaign #%d %s/%s: %s", sub.ID, sub.User, sub.Name, msg),
		Error:   errText,
		Attrs: map[string]string{
			"campaign": strconv.Itoa(sub.ID),
			"user":     sub.User,
			"state":    string(st),
		},
	})
}

func joinNodes(nodes []string) string {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	out := ""
	for i, n := range sorted {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
