package queue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pos/internal/calendar"
	"pos/internal/eventlog"
)

// open builds a controller over nodes with a fast sweep, failing the test on
// error. launch may be nil for a trivial instant-success launcher.
func open(t *testing.T, dir string, cal *calendar.Calendar, launch Launch, events *eventlog.Pipeline) *Controller {
	t.Helper()
	if launch == nil {
		launch = func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error { return nil }
	}
	c, err := Open(Config{
		Dir:           dir,
		Calendar:      cal,
		Launch:        launch,
		Events:        events,
		SweepInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

// waitState polls until submission id reaches want (or the deadline).
func waitState(t *testing.T, c *Controller, id int, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := c.Get(id)
	t.Fatalf("submission %d stuck in %s, want %s", id, st.State, want)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	c := open(t, t.TempDir(), cal, nil, nil)
	defer c.Close()
	cases := []Submission{
		{Nodes: []string{"n1"}, Minutes: 5},    // no user
		{User: "alice", Minutes: 5},            // no nodes
		{User: "alice", Nodes: []string{"n1"}}, // no minutes
	}
	for i, sub := range cases {
		if _, err := c.Submit(sub); err == nil {
			t.Errorf("case %d: Submit accepted invalid submission", i)
		}
	}
}

func TestSubmitRunsAndReleasesAllocation(t *testing.T) {
	cal := calendar.New([]string{"n1", "n2"})
	var gotSub Submission
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		gotSub = sub
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()
	st, err := c.Submit(Submission{User: "alice", Name: "sweep", Nodes: []string{"n1", "n2"}, Minutes: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != 1 || st.State != StateQueued || st.Position != 1 {
		t.Fatalf("fresh submission = %+v", st)
	}
	final := waitState(t, c, st.ID, StateDone)
	if final.Admitted.IsZero() || final.Finished.IsZero() {
		t.Errorf("done submission missing timestamps: %+v", final)
	}
	if gotSub.ID != st.ID || gotSub.User != "alice" {
		t.Errorf("launcher saw %+v", gotSub)
	}
	if n := cal.Size(); n != 0 {
		t.Errorf("allocation leaked: calendar holds %d after completion", n)
	}
}

func TestLaunchFailureMarksFailed(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		return errors.New("boom")
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()
	st, err := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, c, st.ID, StateFailed)
	if final.Error != "boom" {
		t.Errorf("failed submission error = %q", final.Error)
	}
	if n := cal.Size(); n != 0 {
		t.Errorf("allocation leaked after failure: %d", n)
	}
}

func TestUnknownNodeRejectedTerminally(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	c := open(t, t.TempDir(), cal, nil, nil)
	defer c.Close()
	st, err := c.Submit(Submission{User: "alice", Nodes: []string{"ghost"}, Minutes: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, c, st.ID, StateFailed)
	if !strings.Contains(final.Error, "unknown node") {
		t.Errorf("rejection error = %q", final.Error)
	}
}

func TestCancelQueued(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	block := make(chan struct{})
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()
	defer close(block)
	first, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	waitState(t, c, first.ID, StateRunning)
	second, _ := c.Submit(Submission{User: "bob", Nodes: []string{"n1"}, Minutes: 5})

	if _, err := c.Cancel("mallory", second.ID); !errors.Is(err, ErrWrongUser) {
		t.Errorf("cross-user cancel error = %v, want ErrWrongUser", err)
	}
	if _, err := c.Cancel("bob", 999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing-id cancel error = %v, want ErrNotFound", err)
	}
	st, err := c.Cancel("bob", second.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st.State != StateCancelled {
		t.Errorf("cancelled queued submission state = %s", st.State)
	}
	if _, err := c.Cancel("bob", second.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel error = %v, want ErrFinished", err)
	}
}

func TestCancelPreemptsRunning(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	started := make(chan struct{})
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()
	st, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	<-started
	if _, err := c.Cancel("alice", st.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	final := waitState(t, c, st.ID, StateCancelled)
	if final.Finished.IsZero() {
		t.Errorf("cancelled submission missing finish time: %+v", final)
	}
	if n := cal.Size(); n != 0 {
		t.Errorf("allocation leaked after preemption: %d", n)
	}
}

func TestQueueEventsPublished(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	events := eventlog.NewPipeline()
	sub := events.Subscribe(64)
	defer sub.Close()
	launch := func(ctx context.Context, s Submission, ev *eventlog.Pipeline) error {
		// The private pipeline must reach the shared stream, campaign-tagged.
		ev.Publish(eventlog.Event{Typ: eventlog.TypeLog, Run: eventlog.NoRun, Message: "from launcher"})
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, events)
	defer c.Close()
	st, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	waitState(t, c, st.ID, StateDone)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var states []string
	sawForwarded := false
	for len(states) < 3 || !sawForwarded {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("event stream ended early: states=%v forwarded=%v", states, sawForwarded)
		}
		if ev.Typ == eventlog.TypeQueue {
			states = append(states, ev.Attrs["state"])
		}
		if ev.Message == "from launcher" {
			if ev.Attrs["campaign"] != "1" {
				t.Errorf("forwarded event missing campaign tag: %+v", ev.Attrs)
			}
			sawForwarded = true
		}
	}
	want := []string{"queued", "running", "done"}
	for i, w := range want {
		if states[i] != w {
			t.Fatalf("queue event states = %v, want %v", states, want)
		}
	}
}

// TestFairShareOrdering holds one node, floods it from two users, and checks
// that admissions alternate instead of draining alice's backlog first.
func TestFairShareOrdering(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	gate := make(chan struct{})
	var mu sync.Mutex
	var admitted []string
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		mu.Lock()
		admitted = append(admitted, fmt.Sprintf("%s#%d", sub.User, sub.ID))
		mu.Unlock()
		<-gate // hold the node until every submission is in
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()

	var ids []int
	for i := 0; i < 3; i++ {
		st, err := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 3; i++ {
		st, err := c.Submit(Submission{User: "bob", Nodes: []string{"n1"}, Minutes: 5})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	close(gate)
	for _, id := range ids {
		waitState(t, c, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	// alice submitted 1,2,3 and bob 4,5,6; fair share must interleave the
	// two tenants rather than run alice's FIFO to exhaustion.
	want := []string{"alice#1", "bob#4", "alice#2", "bob#5", "alice#3", "bob#6"}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", admitted, want)
		}
	}
}

// TestPriorityBeatsFairShare: a higher-priority submission jumps every tier
// below it, regardless of who was admitted last.
func TestPriorityBeatsFairShare(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	gate := make(chan struct{})
	var mu sync.Mutex
	var admitted []int
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		mu.Lock()
		admitted = append(admitted, sub.ID)
		mu.Unlock()
		<-gate
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()

	first, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	waitState(t, c, first.ID, StateRunning) // first now holds the node
	low, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	high, _ := c.Submit(Submission{User: "bob", Nodes: []string{"n1"}, Minutes: 5, Priority: 10})
	close(gate)
	for _, id := range []int{first.ID, low.ID, high.ID} {
		waitState(t, c, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	// Priority 10 must beat the earlier-submitted priority 0 once the node
	// frees up.
	want := []int{first.ID, high.ID, low.ID}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", admitted, want)
		}
	}
}

// TestConcurrentSubmissionHammer races N users x M submissions over a small
// calendar under -race and asserts the admission invariant: no two running
// campaigns ever hold the same node.
func TestConcurrentSubmissionHammer(t *testing.T) {
	const users, perUser = 4, 8
	nodes := []string{"n1", "n2", "n3"}
	cal := calendar.New(nodes)

	var mu sync.Mutex
	busy := make(map[string]int)
	overlaps := 0
	launch := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		mu.Lock()
		for _, n := range sub.Nodes {
			busy[n]++
			if busy[n] > 1 {
				overlaps++
			}
		}
		mu.Unlock()
		time.Sleep(time.Duration(sub.ID%3) * time.Millisecond)
		mu.Lock()
		for _, n := range sub.Nodes {
			busy[n]--
		}
		mu.Unlock()
		return nil
	}
	c := open(t, t.TempDir(), cal, launch, nil)
	defer c.Close()

	var wg sync.WaitGroup
	ids := make(chan int, users*perUser)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", u)
			for i := 0; i < perUser; i++ {
				// Each submission wants 1 or 2 nodes, deterministically.
				want := []string{nodes[(u+i)%len(nodes)]}
				if i%2 == 0 {
					want = append(want, nodes[(u+i+1)%len(nodes)])
				}
				st, err := c.Submit(Submission{User: user, Nodes: want, Minutes: 5})
				if err != nil {
					t.Errorf("Submit(%s): %v", user, err)
					return
				}
				ids <- st.ID
			}
		}(u)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		waitState(t, c, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	if overlaps != 0 {
		t.Fatalf("%d node overlaps among admitted campaigns", overlaps)
	}
}

// TestRestartRecovery: a controller dies with work queued and running; the
// next Open over the same journal loses nothing — running work is re-queued,
// terminal work stays terminal, and IDs keep counting from where they were.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cal := calendar.New([]string{"n1"})
	started := make(chan struct{}, 8)
	blockers := func(ctx context.Context, sub Submission, ev *eventlog.Pipeline) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	}
	c1 := open(t, dir, cal, blockers, nil)
	var ids []int
	for i := 0; i < 5; i++ {
		user := "alice"
		if i%2 == 1 {
			user = "bob"
		}
		st, err := c1.Submit(Submission{User: user, Nodes: []string{"n1"}, Minutes: 5})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	<-started // one campaign holds the node, four are queued
	cancelled, err := c1.Cancel("bob", ids[1])
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The allocation the dead controller held is gone with it.
	cal2 := calendar.New([]string{"n1"})
	c2 := open(t, dir, cal2, nil, nil)
	defer c2.Close()
	for _, id := range ids {
		if id == cancelled.ID {
			st, err := c2.Get(id)
			if err != nil || st.State != StateCancelled {
				t.Fatalf("cancelled submission after restart: %+v, %v", st, err)
			}
			continue
		}
		waitState(t, c2, id, StateDone)
	}
	st, err := c2.Submit(Submission{User: "carol", Nodes: []string{"n1"}, Minutes: 5})
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if want := ids[len(ids)-1] + 1; st.ID != want {
		t.Errorf("post-restart ID = %d, want %d (IDs must keep counting)", st.ID, want)
	}
}

func TestJournalTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	cal := calendar.New([]string{"n1"})
	c1 := open(t, dir, cal, nil, nil)
	st, _ := c1.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	waitState(t, c1, st.ID, StateDone)
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash mid-append: a torn half-record at the tail.
	path := journalPath(dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"at":"2026-01-01T00:00:00Z","op":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := open(t, dir, calendar.New([]string{"n1"}), nil, nil)
	defer c2.Close()
	got, err := c2.Get(st.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("after torn-tail recovery: %+v, %v", got, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		t.Error("torn tail not truncated")
	}
}

func TestJournalSurvivesInDir(t *testing.T) {
	dir := t.TempDir()
	cal := calendar.New([]string{"n1"})
	c := open(t, dir, cal, nil, nil)
	st, _ := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5})
	waitState(t, c, st.ID, StateDone)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "queue.jsonl")); err != nil {
		t.Fatalf("journal file: %v", err)
	}
}

func TestSubmitAfterCloseRefused(t *testing.T) {
	cal := calendar.New([]string{"n1"})
	c := open(t, t.TempDir(), cal, nil, nil)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Submit(Submission{User: "alice", Nodes: []string{"n1"}, Minutes: 5}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}
