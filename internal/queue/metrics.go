package queue

import "pos/internal/telemetry"

// Campaign-queue telemetry: tenant-visible queue pressure, admission
// outcomes, and per-user concurrency. Gauges aggregate across controllers in
// one process (tests open several; production runs one).
var (
	queueDepth = telemetry.Default.Gauge("pos_queue_depth",
		"Submissions waiting for the calendar to grant their node set.")
	submissionsTotal = telemetry.Default.Counter("pos_queue_submissions_total",
		"Campaign submissions accepted into the queue.")
	requeuesTotal = telemetry.Default.Counter("pos_queue_requeues_total",
		"Admitted-but-unfinished submissions re-queued by controller recovery.")
	expiredTotal = telemetry.Default.Counter("pos_queue_allocations_expired_total",
		"Ended calendar allocations retired by the controller's janitor sweep.")
	starvedPasses = telemetry.Default.Counter("pos_queue_starved_passes_total",
		"Admission passes that admitted nothing while submissions were queued and no campaign held an allocation — the health watchdog's starvation signal.")
	waitSeconds = telemetry.Default.Histogram("pos_queue_wait_seconds",
		"Submit-to-admit latency.", telemetry.DurationBuckets())
	admissionsTotal = telemetry.Default.CounterVec("pos_queue_admissions_total",
		"Admission decisions, by outcome (admitted, rejected).", "outcome")
	completionsTotal = telemetry.Default.CounterVec("pos_queue_completions_total",
		"Campaign completions, by outcome (done, failed, cancelled).", "outcome")
	runningCampaigns = telemetry.Default.GaugeVec("pos_queue_running_campaigns",
		"Campaigns currently holding an allocation, by user.", "user")
)

func admissions(outcome string) *telemetry.Counter  { return admissionsTotal.With(outcome) }
func completions(outcome string) *telemetry.Counter { return completionsTotal.With(outcome) }
func runningPerUser(user string) *telemetry.Gauge   { return runningCampaigns.With(user) }
