// Package workpool provides the bounded work-stealing worker pool shared by
// the simulation data plane and the campaign control plane. Data-plane shard
// rounds (sim.ShardGroup, and through it casestudy.ShardedSweep) and the
// campaign dispatcher's CPU-bound run execution (internal/sched) all draw
// from one process-wide pool sized to GOMAXPROCS, so the two planes stop
// oversubscribing cores when a campaign and a sharded data plane run side by
// side.
//
// The pool is deliberately deadlock-free by construction: Go never blocks
// the submitter, and Do hands work to an idle worker only when one is
// actually parked — otherwise it runs the task inline on the calling
// goroutine. A saturated pool therefore degrades to today's behaviour
// (callers do their own work) instead of queueing behind itself. The bound
// is soft in the same way: inline execution can momentarily exceed the
// worker count, but pooled work — the steady state — never does.
package workpool

import (
	"runtime"
	"sync"

	"pos/internal/telemetry"
)

// Task is one unit of pooled work.
type Task func()

// Pool is a bounded set of workers with per-worker deques. Owners pop their
// own deque LIFO (fresh tasks are cache-hot); idle workers steal FIFO from
// the other deques (old tasks are the fairest to migrate).
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	deques   [][]Task
	handoffs []*handoff
	rr       int
	sleeping int
	closed   bool
	wg       sync.WaitGroup

	submitted uint64
	stolen    uint64
	inline    uint64
	handedOff uint64
}

// handoff is a Do submission accepted by a parked worker; done closes when
// the task finished so the submitter can return.
type handoff struct {
	t    Task
	done chan struct{}
}

// Stats is a snapshot of the pool's activity counters.
type Stats struct {
	Workers   int
	Submitted uint64 // tasks accepted by Go
	Stolen    uint64 // tasks executed by a worker other than the deque owner
	Inline    uint64 // Do tasks run on the caller because no worker was idle
	HandedOff uint64 // Do tasks run by a parked worker
}

// New starts a pool with n workers (at least 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{deques: make([][]Task, n)}
	p.cond = sync.NewCond(&p.mu)
	poolWorkers.Add(float64(n))
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, sized to GOMAXPROCS at first use.
// It is never closed; every subsystem that wants to share cores with the
// rest of the process schedules through it.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// Size reports the number of workers.
func (p *Pool) Size() int { return len(p.deques) }

// Idle reports how many workers are parked with no pending handoff claiming
// them — the number of Do calls that would currently hand off instead of
// running inline.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sleeping - len(p.handoffs)
}

// Stats returns a snapshot of the activity counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:   len(p.deques),
		Submitted: p.submitted,
		Stolen:    p.stolen,
		Inline:    p.inline,
		HandedOff: p.handedOff,
	}
}

// Go submits t for asynchronous execution and returns immediately. Tasks are
// spread round-robin across worker deques; a parked worker is woken if one
// exists. After Close, the task still runs — on its own goroutine — so no
// submitted work is ever lost.
func (p *Pool) Go(t Task) {
	if t == nil {
		panic("workpool: nil task")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go t()
		return
	}
	p.submitted++
	poolTasks.Inc()
	i := p.rr % len(p.deques)
	p.rr++
	p.deques[i] = append(p.deques[i], t)
	if p.sleeping > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Do runs t to completion before returning. When a worker is parked idle the
// task is handed to it (so pooled accounting sees it and the caller's
// goroutine stays available to its own scheduler); otherwise t runs inline
// on the caller. Do therefore never waits for pool capacity and cannot
// deadlock, whatever the pool's load.
func (p *Pool) Do(t Task) {
	if t == nil {
		panic("workpool: nil task")
	}
	p.mu.Lock()
	// A parked worker beyond those already claimed by pending handoffs can
	// take this task immediately; anything else means inline is faster and
	// safer than queueing.
	if !p.closed && p.sleeping > len(p.handoffs) {
		h := &handoff{t: t, done: make(chan struct{})}
		p.handoffs = append(p.handoffs, h)
		p.handedOff++
		poolHandoffs.Inc()
		p.cond.Signal()
		p.mu.Unlock()
		<-h.done
		return
	}
	p.inline++
	poolInline.Inc()
	p.mu.Unlock()
	t()
}

// Close wakes all workers and waits for them to drain their deques and
// exit. Only private pools (tests, scoped subsystems) call it; the Default
// pool lives for the process lifetime.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	poolWorkers.Add(-float64(len(p.deques)))
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if t := p.take(id); t != nil {
			p.mu.Unlock()
			t()
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.sleeping++
		p.cond.Wait()
		p.sleeping--
	}
}

// take picks the worker's next task under p.mu: pending handoffs first
// (their submitters are blocked), then the worker's own deque tail, then a
// steal from another worker's deque head.
func (p *Pool) take(id int) Task {
	if n := len(p.handoffs); n > 0 {
		h := p.handoffs[0]
		copy(p.handoffs, p.handoffs[1:])
		p.handoffs[n-1] = nil
		p.handoffs = p.handoffs[:n-1]
		return func() {
			h.t()
			close(h.done)
		}
	}
	if dq := p.deques[id]; len(dq) > 0 {
		t := dq[len(dq)-1]
		dq[len(dq)-1] = nil
		p.deques[id] = dq[:len(dq)-1]
		return t
	}
	for off := 1; off < len(p.deques); off++ {
		v := (id + off) % len(p.deques)
		if dq := p.deques[v]; len(dq) > 0 {
			t := dq[0]
			copy(dq, dq[1:])
			dq[len(dq)-1] = nil
			p.deques[v] = dq[:len(dq)-1]
			p.stolen++
			poolSteals.Inc()
			return t
		}
	}
	return nil
}

// Telemetry: pool shape and flow, exposed at /metrics via the process-wide
// registry.
var (
	poolWorkers = telemetry.Default.Gauge("pos_workpool_workers",
		"Workers currently owned by live pools.")
	poolTasks = telemetry.Default.Counter("pos_workpool_tasks_total",
		"Tasks submitted asynchronously via Go.")
	poolSteals = telemetry.Default.Counter("pos_workpool_steals_total",
		"Tasks executed by a worker other than its deque's owner.")
	poolInline = telemetry.Default.Counter("pos_workpool_inline_total",
		"Do tasks run inline on the caller because no worker was parked.")
	poolHandoffs = telemetry.Default.Counter("pos_workpool_handoffs_total",
		"Do tasks handed to a parked worker.")
)
