package workpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGoRunsAllTasks(t *testing.T) {
	p := New(4)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	const n = 1000
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.Go(func() {
			ran.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d tasks", got, n)
	}
	if st := p.Stats(); st.Submitted != n {
		t.Fatalf("submitted = %d, want %d", st.Submitted, n)
	}
}

func TestCloseDrainsPendingTasks(t *testing.T) {
	p := New(2)
	var ran atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		p.Go(func() { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("after Close ran %d of %d tasks", got, n)
	}
}

func TestGoAfterCloseStillRuns(t *testing.T) {
	p := New(1)
	p.Close()
	done := make(chan struct{})
	p.Go(func() { close(done) })
	<-done
}

// TestDoInlineWhenSaturated pins the deadlock-freedom contract: with every
// worker blocked, Do must run on the caller instead of waiting for capacity.
func TestDoInlineWhenSaturated(t *testing.T) {
	p := New(2)
	defer p.Close()
	gate := make(chan struct{})
	var started sync.WaitGroup
	started.Add(p.Size())
	for i := 0; i < p.Size(); i++ {
		p.Go(func() {
			started.Done()
			<-gate
		})
	}
	started.Wait() // all workers now parked inside tasks
	ran := false
	p.Do(func() { ran = true })
	close(gate)
	if !ran {
		t.Fatal("Do did not run the task")
	}
	if st := p.Stats(); st.Inline == 0 {
		t.Fatalf("expected an inline execution, stats = %+v", st)
	}
}

func TestDoHandsOffToIdleWorker(t *testing.T) {
	p := New(2)
	defer p.Close()
	// Wait for the workers to park (on one core they only run when this
	// goroutine yields), then Do must hand off instead of running inline.
	for i := 0; p.Idle() < p.Size(); i++ {
		if i > 10_000 {
			t.Fatalf("workers never parked, idle = %d", p.Idle())
		}
		time.Sleep(100 * time.Microsecond)
	}
	p.Do(func() {})
	if st := p.Stats(); st.HandedOff == 0 {
		t.Fatalf("no Do was handed to an idle worker, stats = %+v", st)
	}
}

func TestStealsMoveWorkAcrossDeques(t *testing.T) {
	p := New(4)
	defer p.Close()
	// A burst far larger than the worker count spreads across all deques;
	// workers finishing early must steal from the laggards. The assertion
	// is only on completion (steal counts depend on scheduling).
	var wg sync.WaitGroup
	const n = 4000
	wg.Add(n)
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		p.Go(func() {
			ran.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d", got, n)
	}
}

// TestWorkpoolHammer is the -race stress for the shared pool: concurrent
// submitters mixing Go and Do, tasks that themselves submit nested work, and
// a final drain. Run it with `make verify-race`.
func TestWorkpoolHammer(t *testing.T) {
	p := New(4)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	const submitters = 8
	const perSubmitter = 200
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				switch (seed + i) % 3 {
				case 0:
					wg.Add(1)
					p.Go(func() {
						ran.Add(1)
						wg.Done()
					})
				case 1:
					p.Do(func() { ran.Add(1) })
				default:
					// Nested submission from inside a pooled task.
					wg.Add(1)
					p.Go(func() {
						wg.Add(1)
						p.Go(func() {
							ran.Add(1)
							wg.Done()
						})
						ran.Add(1)
						wg.Done()
					})
				}
			}
		}(s)
	}
	wg.Wait()
	want := int64(0)
	for s := 0; s < submitters; s++ {
		for i := 0; i < perSubmitter; i++ {
			if (s+i)%3 == 2 {
				want += 2
			} else {
				want++
			}
		}
	}
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
}

func TestDefaultPoolIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned distinct pools")
	}
	done := make(chan struct{})
	Default().Go(func() { close(done) })
	<-done
}
