package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Trace is one hierarchical span tree — a campaign or experiment execution.
// It is exported per experiment as a spans.json artifact next to
// experiment-trace.json, and convertible to Chrome trace-event format.
type Trace struct {
	mu           sync.Mutex
	clock        func() time.Time
	next         int
	spans        []*Span
	root         *Span
	traceID      string
	remoteParent string // span ID of the remote parent of the root ("" for a fresh root)
	proc         string // process lane for stitched Chrome rendering
}

// Span is one timed region of a trace (campaign → run → phase → exec). All
// methods are safe on a nil receiver, so un-traced code paths pay nothing.
type Span struct {
	tr *Trace

	// The fields below are guarded by tr.mu.
	id     int
	spanID string // 16-hex distributed identity, stable across processes
	parent int    // 0 for the root
	name   string
	start  time.Time
	end    time.Time
	attrs  map[string]string
}

// SpanRecord is the serialized form of a span in spans.json. The hex
// TraceID/SpanID/ParentSpanID triple is the cross-process identity (W3C
// traceparent compatible); the int ID/Parent pair remains the compact
// in-file structure older artifacts carry.
type SpanRecord struct {
	ID           int               `json:"id"`
	Parent       int               `json:"parent,omitempty"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Proc         string            `json:"proc,omitempty"`
	Name         string            `json:"name"`
	Start        time.Time         `json:"start"`
	End          time.Time         `json:"end"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// NewTrace starts a trace whose root span carries the given name, under a
// fresh trace ID.
func NewTrace(name string) *Trace {
	t := &Trace{clock: time.Now, next: 1, traceID: NewTraceID()}
	t.root = t.start(0, name, nil)
	return t
}

// NewLinkedTrace starts a trace that joins a remote causal tree: the trace
// adopts the traceparent's trace ID and parents its root span under the
// remote span, so this process's spans.json stitches into the submitter's
// trace. An empty or malformed traceparent falls back to a fresh root —
// linking is best effort, never an error.
func NewLinkedTrace(name, traceparent string) *Trace {
	tid, parent, ok := ParseTraceParent(traceparent)
	if !ok {
		return NewTrace(name)
	}
	t := &Trace{clock: time.Now, next: 1, traceID: tid, remoteParent: parent}
	t.root = t.start(0, name, nil)
	return t
}

// ID returns the trace's 32-hex-digit trace ID.
func (t *Trace) ID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// SetProcess labels every span record of this trace with a process lane
// ("posctl", "controller", ...). The stitched Chrome rendering maps each
// distinct process to its own pid row.
func (t *Trace) SetProcess(proc string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.proc = proc
}

// SetClock overrides the timestamp source (tests, simulated time). Call
// before spans are started; the root span's start is rewritten.
func (t *Trace) SetClock(clock func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
	t.root.start = clock()
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

func (t *Trace) start(parent int, name string, attrs []string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: t.next, spanID: NewSpanID(), parent: parent, name: name, start: t.clock()}
	t.next++
	for i := 0; i+1 < len(attrs); i += 2 {
		if s.attrs == nil {
			s.attrs = make(map[string]string)
		}
		s.attrs[attrs[i]] = attrs[i+1]
	}
	t.spans = append(t.spans, s)
	return s
}

// Finish ends the root span (and any spans still open, so a trace cut short
// by a failure still renders with sane durations).
func (t *Trace) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	for _, s := range t.spans {
		if s.end.IsZero() {
			s.end = now
		}
	}
}

// StartChild opens a child span directly on a parent span, for call sites
// that don't thread a context. Nil-safe.
func (s *Span) StartChild(name string, attrs ...string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.id, name, attrs)
}

// End closes the span. Nil-safe; ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		s.end = s.tr.clock()
	}
}

// SetAttr attaches a key/value to the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// SetError marks the span failed with the error's text. Nil-safe, nil-error-safe.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// TraceID returns the span's 32-hex trace ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.traceID
}

// SpanID returns the span's 16-hex span ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// TraceParent renders the span's identity as a W3C traceparent header value
// ("" on a nil span) — what an outgoing request carries so the peer's spans
// stitch under this one.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	tid := s.tr.traceID
	s.tr.mu.Unlock()
	return FormatTraceParent(tid, s.spanID)
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span as the current parent
// for StartSpan.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// ContextWithTrace installs the trace's root span into the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return ContextWithSpan(ctx, t.root)
}

// SpanFromContext returns the current span, or nil if the context is untraced.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceFromContext returns the trace the context's span belongs to, if any.
func TraceFromContext(ctx context.Context) *Trace {
	if s := SpanFromContext(ctx); s != nil {
		return s.tr
	}
	return nil
}

// StartSpan opens a child of the context's current span and returns a context
// carrying the child. On an untraced context it returns (ctx, nil) — the nil
// span's methods are no-ops, so instrumented code needs no branches.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.start(parent.id, name, attrs)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Records returns the trace's spans as serializable records, ordered by id
// (creation order). Open spans report their start time as end.
func (t *Trace) Records() []SpanRecord {
	return t.records(time.Time{})
}

// RecordsAt snapshots the trace with still-open spans closed at now — the
// live view a flight record captures mid-campaign. The spans themselves are
// not mutated; a later Finish still stamps the real end times.
func (t *Trace) RecordsAt(now time.Time) []SpanRecord {
	return t.records(now)
}

func (t *Trace) records(openEnd time.Time) []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	byID := make(map[int]*Span, len(t.spans))
	for _, s := range t.spans {
		byID[s.id] = s
	}
	out := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		end := s.end
		if end.IsZero() {
			if !openEnd.IsZero() && openEnd.After(s.start) {
				end = openEnd
			} else {
				end = s.start
			}
		}
		var attrs map[string]string
		if len(s.attrs) > 0 {
			attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		parentSpan := t.remoteParent
		if p, ok := byID[s.parent]; ok {
			parentSpan = p.spanID
		}
		out = append(out, SpanRecord{
			ID: s.id, Parent: s.parent, Name: s.name,
			TraceID: t.traceID, SpanID: s.spanID, ParentSpanID: parentSpan,
			Proc:  t.proc,
			Start: s.start, End: end, Attrs: attrs,
		})
	}
	return out
}

// RenderJSON serializes the trace for the spans.json artifact: one JSON
// object per line, ordered by span id, diff-friendly like the other archived
// artifacts.
func (t *Trace) RenderJSON() ([]byte, error) {
	var buf []byte
	for _, rec := range t.Records() {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf, nil
}

// ParseSpans decodes a spans.json artifact produced by RenderJSON.
func ParseSpans(data []byte) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("telemetry: parse spans: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ChromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing or Perfetto.
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since trace start
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace converts span records to a Chrome trace-event JSON array.
// Lanes (tid) are assigned per depth-1 subtree — each replica or top-level
// phase gets its own row in the flamegraph; the root is lane 0. Stitched
// records spanning multiple processes get one pid per distinct Proc (the int
// span IDs only identify spans within one process's archive, so lanes are
// computed per process group).
func ChromeTrace(recs []SpanRecord) ([]byte, error) {
	if len(recs) == 0 {
		return []byte("[]"), nil
	}
	type laneKey struct {
		proc string
		id   int
	}
	byID := make(map[laneKey]SpanRecord, len(recs))
	for _, r := range recs {
		byID[laneKey{r.Proc, r.ID}] = r
	}
	// lane(proc, id): 0 for the process root, else the id of the span's
	// ancestor that is a direct child of that root — one flamegraph row per
	// replica / phase, scoped to the process. A visited set bounds the walk:
	// a corrupt archive whose int Parent fields form a cycle (never reaching
	// Parent==0) must not hang the converter, so a cycling span becomes its
	// own lane.
	lane := func(proc string, id int) int {
		seen := make(map[int]bool)
		for {
			if seen[id] {
				return id
			}
			seen[id] = true
			r, ok := byID[laneKey{proc, id}]
			if !ok {
				return id
			}
			if r.Parent == 0 {
				return 0
			}
			if p, ok := byID[laneKey{proc, r.Parent}]; !ok || p.Parent == 0 {
				return id
			}
			id = r.Parent
		}
	}
	// One pid per distinct process label, in order of first appearance; a
	// single-process trace keeps the historical pid 1.
	pids := map[string]int{}
	for _, r := range recs {
		if _, ok := pids[r.Proc]; !ok {
			pids[r.Proc] = 1 + len(pids)
		}
	}
	epoch := recs[0].Start
	for _, r := range recs {
		if r.Start.Before(epoch) {
			epoch = r.Start
		}
	}
	events := make([]ChromeEvent, 0, len(recs))
	for _, r := range recs {
		args := r.Attrs
		if r.Proc != "" {
			args = make(map[string]string, len(r.Attrs)+1)
			for k, v := range r.Attrs {
				args[k] = v
			}
			args["proc"] = r.Proc
		}
		events = append(events, ChromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(r.End.Sub(r.Start)) / float64(time.Microsecond),
			Pid:  pids[r.Proc],
			Tid:  lane(r.Proc, r.ID),
			Args: args,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return json.MarshalIndent(events, "", "  ")
}
