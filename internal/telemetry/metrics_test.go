package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 6.5 {
		t.Errorf("gauge = %v, want 6.5", got)
	}
	// Re-registering the same name returns the same series.
	if r.Counter("jobs_total", "Jobs.").Value() != 3.5 {
		t.Error("re-registered counter lost its value")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", h.Sum())
	}
	snap := r.Snapshot()
	buckets := snap.Metrics[0].Values[0].Buckets
	wantCum := []uint64{2, 3, 4, 5} // le=0.1, 1, 10, +Inf (0.1 is inclusive)
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "Requests.", "endpoint", "code")
	v.With("exec", "200").Add(3)
	v.With("exec", "500").Inc()
	v.With("nodes", "200").Inc()
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || len(snap.Metrics[0].Values) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	found := false
	for _, val := range snap.Metrics[0].Values {
		if val.Labels["endpoint"] == "exec" && val.Labels["code"] == "200" {
			found = true
			if val.Value != 3 {
				t.Errorf("exec/200 = %v, want 3", val.Value)
			}
		}
	}
	if !found {
		t.Error("exec/200 series missing from snapshot")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{1})
	g := r.Gauge("g", "")
	r.SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	g.Set(9)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Errorf("disabled registry recorded: c=%v h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %v, want 1", c.Value())
	}
}

// Sample lines: name{labels} value — what a Prometheus scraper must accept.
var (
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|[+]Inf|NaN)$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
)

func TestPrometheusExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pos_runs_total", "Total runs.").Add(42)
	r.Gauge("pos_queue_depth", "Depth.").Set(3)
	rv := r.CounterVec("pos_req_total", "Requests.", "endpoint", "code")
	rv.With("exec", "200").Add(7)
	rv.With(`we"ird`, "5\n00").Inc() // label values needing escaping
	h := r.HistogramVec("pos_phase_seconds", "Phases.", []float64{0.1, 1}, "phase")
	h.With("boot").Observe(0.05)
	h.With("boot").Observe(0.5)
	h.With("boot").Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	types := map[string]string{}
	samples := map[string]float64{}
	var lastName string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: bad HELP line %q", i, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Fatalf("line %d: bad TYPE line %q", i, line)
			}
			parts := strings.Fields(line)
			name := parts[2]
			if name <= lastName {
				t.Errorf("line %d: families not sorted: %q after %q", i, name, lastName)
			}
			lastName = name
			types[name] = parts[3]
		default:
			if !sampleRe.MatchString(line) {
				t.Fatalf("line %d: bad sample line %q", i, line)
			}
			key := line[:strings.LastIndex(line, " ")]
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("line %d: bad value in %q: %v", i, line, err)
			}
			samples[key] = v
		}
	}
	if types["pos_runs_total"] != "counter" || types["pos_phase_seconds"] != "histogram" {
		t.Errorf("types = %v", types)
	}
	if samples["pos_runs_total"] != 42 {
		t.Errorf("pos_runs_total = %v", samples["pos_runs_total"])
	}
	if samples[`pos_req_total{endpoint="exec",code="200"}`] != 7 {
		t.Errorf("labelled sample missing: %v", samples)
	}
	if samples[`pos_req_total{endpoint="we\"ird",code="5\n00"}`] != 1 {
		t.Errorf("escaped labels missing: %v", samples)
	}
	// Histogram invariants: cumulative buckets, +Inf == count.
	b1 := samples[`pos_phase_seconds_bucket{phase="boot",le="0.1"}`]
	b2 := samples[`pos_phase_seconds_bucket{phase="boot",le="1"}`]
	binf := samples[`pos_phase_seconds_bucket{phase="boot",le="+Inf"}`]
	cnt := samples[`pos_phase_seconds_count{phase="boot"}`]
	if b1 != 1 || b2 != 2 || binf != 3 || cnt != 3 {
		t.Errorf("histogram buckets: le0.1=%v le1=%v inf=%v count=%v", b1, b2, binf, cnt)
	}
	if b1 > b2 || b2 > binf {
		t.Error("buckets not cumulative")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(5)
	r.Histogram("b_seconds", "B.", []float64{1, 2}).Observe(1.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 2 || snap.Metrics[0].Values[0].Value != 5 {
		t.Fatalf("round-trip = %+v", snap)
	}
	h := snap.Metrics[1].Values[0]
	if h.Count != 1 || !math.IsInf(h.Buckets[2].LE, 1) || h.Buckets[2].Count != 1 {
		t.Errorf("histogram round-trip = %+v", h)
	}
}

// TestRegistryConcurrent hammers every metric kind plus exposition from
// concurrent goroutines; run under -race it proves the hot paths are safe
// for many replicas recording at once.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DurationBuckets())
	cv := r.CounterVec("cv_total", "", "worker")

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := cv.With(fmt.Sprintf("w%d", w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Dec()
				h.Observe(float64(i) / 1000)
				lc.Inc()
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %v, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %v, want 0", g.Value())
	}
	for w := 0; w < workers; w++ {
		if v := cv.With(fmt.Sprintf("w%d", w)).Value(); v != iters {
			t.Errorf("cv[w%d] = %v, want %d", w, v, iters)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "Q.", []float64{1, 2, 4})
	// 10 samples in [0,1), 80 in [1,2), 10 in [2,4): the median falls
	// mid-way through the second bucket, p99 near the top of the third.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 80; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	histValue := func(name string) ValueSnapshot {
		for _, m := range r.Snapshot().Metrics {
			if m.Name == name {
				return m.Values[0]
			}
		}
		t.Fatalf("metric %s missing from snapshot", name)
		return ValueSnapshot{}
	}
	v := histValue("q_seconds")
	if v.Quantiles == nil {
		t.Fatal("histogram snapshot carries no quantiles")
	}
	p50, p90, p99 := v.Quantiles["p50"], v.Quantiles["p90"], v.Quantiles["p99"]
	if p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1,2)", p50)
	}
	if p90 < 1.9 || p90 > 2.1 {
		t.Errorf("p90 = %g, want ~2 (bucket edge)", p90)
	}
	if p99 < 2 || p99 > 4 {
		t.Errorf("p99 = %g, want within (2,4)", p99)
	}
	if p50 > p90 || p90 > p99 {
		t.Errorf("quantiles not monotonic: p50 %g p90 %g p99 %g", p50, p90, p99)
	}

	// Observations above every finite bound clamp to the highest bound.
	h2 := r.Histogram("q2_seconds", "Q2.", []float64{1})
	h2.Observe(100)
	if got := histValue("q2_seconds").Quantiles["p99"]; got != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 1", got)
	}

	// An empty histogram exposes no quantiles at all.
	r.Histogram("q3_seconds", "Q3.", []float64{1})
	if v3 := histValue("q3_seconds"); v3.Quantiles != nil {
		t.Errorf("empty histogram quantiles = %v, want none", v3.Quantiles)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r, time.Hour) // never self-ticks in this test
	s.Sample()
	garbage := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		garbage = append(garbage, make([]byte, 1<<16))
	}
	_ = garbage
	s.Sample()
	if v, ok := r.Total("pos_runtime_goroutines"); !ok || v < 1 {
		t.Fatalf("goroutines gauge = %g/%v", v, ok)
	}
	if v, ok := r.Total("pos_runtime_heap_bytes"); !ok || v <= 0 {
		t.Fatalf("heap gauge = %g/%v", v, ok)
	}
	if v, ok := r.Total("pos_runtime_samples_total"); !ok || v != 2 {
		t.Fatalf("samples counter = %g/%v, want 2", v, ok)
	}
	if v, ok := r.Total("pos_runtime_alloc_bytes_total"); !ok || v < 1<<20 {
		t.Fatalf("alloc counter = %g/%v, want at least the 4MiB of garbage", v, ok)
	}
	// Start/Stop cycle is idempotent and restartable.
	s.Start()
	s.Start()
	s.Stop()
	s.Stop()
	s.Start()
	s.Stop()
}

func TestRuntimeDelta(t *testing.T) {
	start := ReadRuntimeStats()
	garbage := make([][]byte, 0, 128)
	for i := 0; i < 128; i++ {
		garbage = append(garbage, make([]byte, 1<<16))
	}
	_ = garbage
	d := start.DeltaTo(ReadRuntimeStats())
	if d.StartedAt.IsZero() || d.FinishedAt.Before(d.StartedAt) {
		t.Fatalf("delta window = %+v", d)
	}
	if d.AllocBytes < 1<<20 {
		t.Fatalf("AllocBytes = %d, want at least the garbage allocated between samples", d.AllocBytes)
	}
	if d.GoroutinesStart == 0 || d.GoroutinesEnd == 0 {
		t.Fatalf("goroutine counts = %d/%d", d.GoroutinesStart, d.GoroutinesEnd)
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back RuntimeDelta
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AllocBytes != d.AllocBytes || back.WallSeconds != d.WallSeconds {
		t.Fatal("RuntimeDelta did not round-trip")
	}
}
