package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// This file is the toolchain's only window onto the Go runtime's own
// telemetry (runtime/metrics): a point-in-time RuntimeStats reading, the
// per-run RuntimeDelta the runner archives as resources.json, and a
// RuntimeSampler that polls the runtime into the metrics registry on an
// interval. Everything else reads runtime conditions through here — the
// lint tier bans direct runtime/metrics use outside this package, so the
// set of sampled signals stays in one place.

// Runtime metric names sampled from runtime/metrics. All of them exist
// since Go 1.17; metrics.Read reports a bad Kind instead of failing if one
// ever disappears, and readRuntimeSamples skips it.
const (
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

var runtimeSampleNames = []string{
	rmHeapBytes, rmAllocBytes, rmGCCycles, rmGoroutines, rmGCPauses, rmSchedLat,
}

// HistogramState is a raw runtime histogram reading: len(Buckets) ==
// len(Counts)+1, boundaries may include infinities at either end.
type HistogramState struct {
	Buckets []float64
	Counts  []uint64
}

func (h HistogramState) clone() HistogramState {
	return HistogramState{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
	}
}

// sub returns the per-bucket count growth from start to h. Shape changes
// (different runtime version mid-process cannot happen; defensive anyway)
// yield h's counts unchanged.
func (h HistogramState) sub(start HistogramState) HistogramState {
	out := h.clone()
	if len(start.Counts) != len(out.Counts) {
		return out
	}
	for i := range out.Counts {
		if start.Counts[i] <= out.Counts[i] {
			out.Counts[i] -= start.Counts[i]
		} else {
			out.Counts[i] = 0
		}
	}
	return out
}

func (h HistogramState) total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// bucketValue picks the representative sample value for bucket i: the
// midpoint of its boundaries, clamped to the finite edge when one side is
// infinite.
func (h HistogramState) bucketValue(i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	switch {
	case isInf(lo) && isInf(hi):
		return 0
	case isInf(lo):
		return hi
	case isInf(hi):
		return lo
	default:
		return (lo + hi) / 2
	}
}

func isInf(v float64) bool { return math.IsInf(v, 0) }

// approxSum estimates the summed sample value (counts × representative
// bucket values).
func (h HistogramState) approxSum() float64 {
	var sum float64
	for i, c := range h.Counts {
		if c > 0 {
			sum += float64(c) * h.bucketValue(i)
		}
	}
	return sum
}

// maxValue returns the upper edge of the highest non-empty bucket (clamped
// finite), or zero when empty.
func (h HistogramState) maxValue() float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			hi := h.Buckets[i+1]
			if isInf(hi) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return 0
}

// quantile estimates the q-quantile over the histogram's counts, linearly
// interpolated inside the containing bucket.
func (h HistogramState) quantile(q float64) float64 {
	total := h.total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if isInf(hi) {
			hi = lo
		}
		if isInf(lo) {
			lo = hi
		}
		frac := 1 - (cum-rank)/float64(c)
		return lo + (hi-lo)*frac
	}
	return h.maxValue()
}

// RuntimeStats is one point-in-time reading of the Go runtime's own
// telemetry — the raw material of per-run resource attribution.
type RuntimeStats struct {
	At         time.Time
	HeapBytes  uint64 // live heap object bytes
	AllocBytes uint64 // cumulative allocated bytes
	GCCycles   uint64 // cumulative completed GC cycles
	Goroutines uint64
	GCPauses   HistogramState // cumulative stop-the-world pause distribution
	SchedLat   HistogramState // cumulative goroutine scheduling latency
}

// ReadRuntimeStats samples the runtime now.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	st := RuntimeStats{At: time.Now()}
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v := s.Value.Uint64()
			switch s.Name {
			case rmHeapBytes:
				st.HeapBytes = v
			case rmAllocBytes:
				st.AllocBytes = v
			case rmGCCycles:
				st.GCCycles = v
			case rmGoroutines:
				st.Goroutines = v
			}
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			hs := HistogramState{
				Buckets: append([]float64(nil), h.Buckets...),
				Counts:  append([]uint64(nil), h.Counts...),
			}
			switch s.Name {
			case rmGCPauses:
				st.GCPauses = hs
			case rmSchedLat:
				st.SchedLat = hs
			}
		}
	}
	return st
}

// RuntimeDelta is the host-condition record of one measurement run: what
// the Go runtime did between the run's start and finish. It is archived
// verbatim as the run's resources.json — a result without it cannot tell a
// genuine latency plateau from a GC pause that landed mid-measurement.
type RuntimeDelta struct {
	StartedAt         time.Time `json:"started_at"`
	FinishedAt        time.Time `json:"finished_at"`
	WallSeconds       float64   `json:"wall_seconds"`
	HeapBytesStart    uint64    `json:"heap_bytes_start"`
	HeapBytesEnd      uint64    `json:"heap_bytes_end"`
	AllocBytes        uint64    `json:"alloc_bytes"`
	GCCycles          uint64    `json:"gc_cycles"`
	GCPauseSeconds    float64   `json:"gc_pause_seconds"`
	GCPauseMaxSeconds float64   `json:"gc_pause_max_seconds"`
	GoroutinesStart   uint64    `json:"goroutines_start"`
	GoroutinesEnd     uint64    `json:"goroutines_end"`
	SchedLatencyP50   float64   `json:"sched_latency_p50_seconds"`
	SchedLatencyP99   float64   `json:"sched_latency_p99_seconds"`
}

// DeltaTo computes the runtime activity between s and end.
func (s RuntimeStats) DeltaTo(end RuntimeStats) RuntimeDelta {
	pauses := end.GCPauses.sub(s.GCPauses)
	sched := end.SchedLat.sub(s.SchedLat)
	d := RuntimeDelta{
		StartedAt:         s.At,
		FinishedAt:        end.At,
		WallSeconds:       end.At.Sub(s.At).Seconds(),
		HeapBytesStart:    s.HeapBytes,
		HeapBytesEnd:      end.HeapBytes,
		GoroutinesStart:   s.Goroutines,
		GoroutinesEnd:     end.Goroutines,
		GCPauseSeconds:    pauses.approxSum(),
		GCPauseMaxSeconds: pauses.maxValue(),
		SchedLatencyP50:   sched.quantile(0.50),
		SchedLatencyP99:   sched.quantile(0.99),
	}
	if end.AllocBytes >= s.AllocBytes {
		d.AllocBytes = end.AllocBytes - s.AllocBytes
	}
	if end.GCCycles >= s.GCCycles {
		d.GCCycles = end.GCCycles - s.GCCycles
	}
	return d
}

// runtimeBuckets are the fixed bounds (seconds) for the sampler's GC-pause
// and scheduling-latency histograms: 1µs .. 1s in decade steps with a 2.5/5
// split where pauses actually land.
func runtimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1}
}

// RuntimeSampler polls the Go runtime into a metrics registry on an
// interval, so heap, GC, and scheduler pressure show up next to the
// toolchain's own metrics in /metrics, /api/v1/metrics, and posctl top.
// Cumulative runtime signals are converted to registry counters/histograms
// by delta against the previous poll.
type RuntimeSampler struct {
	interval time.Duration

	heapBytes  *Gauge
	goroutines *Gauge
	allocBytes *Counter
	gcCycles   *Counter
	samples    *Counter
	gcPause    *Histogram
	schedLat   *Histogram

	mu   sync.Mutex
	last RuntimeStats
	has  bool
	stop chan struct{}
	done chan struct{}
}

// NewRuntimeSampler registers the pos_runtime_* metrics on reg and returns
// a sampler polling every interval once started (minimum 100ms; zero
// defaults to 2s).
func NewRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &RuntimeSampler{
		interval: interval,
		heapBytes: reg.Gauge("pos_runtime_heap_bytes",
			"Live heap object bytes at the last runtime sample."),
		goroutines: reg.Gauge("pos_runtime_goroutines",
			"Goroutines at the last runtime sample."),
		allocBytes: reg.Counter("pos_runtime_alloc_bytes_total",
			"Heap bytes allocated since sampling started."),
		gcCycles: reg.Counter("pos_runtime_gc_cycles_total",
			"GC cycles completed since sampling started."),
		samples: reg.Counter("pos_runtime_samples_total",
			"Runtime samples taken."),
		gcPause: reg.Histogram("pos_runtime_gc_pause_seconds",
			"Stop-the-world GC pause durations observed between samples.", runtimeBuckets()),
		schedLat: reg.Histogram("pos_runtime_sched_latency_seconds",
			"Goroutine scheduling latencies observed between samples.", runtimeBuckets()),
	}
}

// Sample takes one poll immediately: gauges are set to the current reading,
// cumulative signals feed the counters/histograms by delta against the
// previous poll. Safe to call concurrently with a running sampler.
func (s *RuntimeSampler) Sample() {
	cur := ReadRuntimeStats()
	s.mu.Lock()
	prev, has := s.last, s.has
	s.last, s.has = cur, true
	s.mu.Unlock()

	s.heapBytes.Set(float64(cur.HeapBytes))
	s.goroutines.Set(float64(cur.Goroutines))
	s.samples.Inc()
	if !has {
		return
	}
	if cur.AllocBytes >= prev.AllocBytes {
		s.allocBytes.Add(float64(cur.AllocBytes - prev.AllocBytes))
	}
	if cur.GCCycles >= prev.GCCycles {
		s.gcCycles.Add(float64(cur.GCCycles - prev.GCCycles))
	}
	observeHist(s.gcPause, cur.GCPauses.sub(prev.GCPauses))
	observeHist(s.schedLat, cur.SchedLat.sub(prev.SchedLat))
}

// observeHist bulk-replays a runtime histogram delta into a registry
// histogram, one ObserveN per non-empty bucket at its representative value.
func observeHist(h *Histogram, delta HistogramState) {
	for i, c := range delta.Counts {
		if c > 0 {
			h.ObserveN(delta.bucketValue(i), c)
		}
	}
}

// Start begins periodic sampling (idempotent while running). The first
// sample is taken synchronously so gauges are populated on return.
func (s *RuntimeSampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()

	s.Sample()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts periodic sampling and waits for the poll goroutine to exit.
// The sampler can be started again afterwards.
func (s *RuntimeSampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
