package telemetry

import (
	"context"
	"encoding/json"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id lengths = %d/%d, want 32/16", len(tid), len(sid))
	}
	tp := FormatTraceParent(tid, sid)
	gotT, gotS, ok := ParseTraceParent(tp)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q = (%q, %q, %v)", tp, gotT, gotS, ok)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := ParseTraceParent(valid); !ok {
		t.Fatalf("valid header rejected: %s", valid)
	}
	// Future versions may carry extra fields; the leading ones still parse.
	if _, _, ok := ParseTraceParent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version header with extra field rejected")
	}
	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // version 00 is exactly 4 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // version ff reserved
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // all-zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",         // short trace id
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",        // short version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",        // short flags
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceParent(s); ok {
			t.Errorf("accepted malformed traceparent %q", s)
		}
	}
}

func TestNewLinkedTraceAdoptsIdentity(t *testing.T) {
	parent := NewTrace("posctl:submit")
	tp := parent.Root().TraceParent()

	linked := NewLinkedTrace("campaign:x", tp)
	if linked.ID() != parent.ID() {
		t.Fatalf("linked trace id = %s, want submitter's %s", linked.ID(), parent.ID())
	}
	linked.Root().StartChild("boot").End()
	linked.Finish()
	recs := linked.Records()
	if recs[0].ParentSpanID != parent.Root().SpanID() {
		t.Errorf("linked root's parent span = %q, want remote %q",
			recs[0].ParentSpanID, parent.Root().SpanID())
	}
	if recs[1].ParentSpanID != recs[0].SpanID {
		t.Errorf("child's parent span = %q, want local root %q", recs[1].ParentSpanID, recs[0].SpanID)
	}
	for _, r := range recs {
		if r.TraceID != parent.ID() {
			t.Errorf("span %q trace id = %q, want %q", r.Name, r.TraceID, parent.ID())
		}
	}
}

func TestNewLinkedTraceMalformedFallsBackToFreshRoot(t *testing.T) {
	for _, tp := range []string{"", "garbage", "00-zz-yy-01"} {
		tr := NewLinkedTrace("campaign:x", tp)
		if tr == nil || tr.ID() == "" || tr.ID() == zeroTraceID {
			t.Fatalf("traceparent %q: no fresh root trace", tp)
		}
		if got := tr.Records()[0].ParentSpanID; got != "" {
			t.Errorf("traceparent %q: fresh root has parent %q", tp, got)
		}
	}
}

func TestSpanIDsUniqueAndRecorded(t *testing.T) {
	SetIDSeed(42)
	tr := NewTrace("root")
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tr.Root().StartChild("c").End()
	}
	tr.Finish()
	for _, r := range tr.Records() {
		if len(r.SpanID) != 16 || seen[r.SpanID] {
			t.Fatalf("span id %q duplicate or malformed", r.SpanID)
		}
		seen[r.SpanID] = true
	}
}

func TestContextTraceParentCarriage(t *testing.T) {
	ctx := context.Background()
	if got := TraceParentFromContext(ctx); got != "" {
		t.Fatalf("untraced context traceparent = %q", got)
	}
	// Malformed values are dropped at install time.
	if ctx2 := ContextWithTraceParent(ctx, "junk"); PendingTraceParent(ctx2) != "" {
		t.Error("malformed traceparent survived ContextWithTraceParent")
	}
	tr := NewTrace("root")
	tp := tr.Root().TraceParent()
	ctx = ContextWithTraceParent(ctx, tp)
	if got := PendingTraceParent(ctx); got != tp {
		t.Fatalf("pending traceparent = %q, want %q", got, tp)
	}
	// An active span takes precedence over a pending remote parent.
	sctx, span := StartSpan(ContextWithTrace(ctx, tr), "child")
	if got := TraceParentFromContext(sctx); got != span.TraceParent() {
		t.Fatalf("active-span traceparent = %q, want %q", got, span.TraceParent())
	}
}

func TestChromeTraceStitchedLanePerProc(t *testing.T) {
	posctl := NewTrace("posctl:submit")
	posctl.SetProcess("posctl")
	posctl.Finish()
	camp := NewLinkedTrace("campaign:x", posctl.Root().TraceParent())
	camp.SetProcess("controller")
	camp.Root().StartChild("replica:a").End()
	camp.Finish()

	recs := append(posctl.Records(), camp.Records()...)
	data, err := ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	pids := map[string]map[int]bool{}
	for _, ev := range events {
		proc := ev.Args["proc"]
		if pids[proc] == nil {
			pids[proc] = map[int]bool{}
		}
		pids[proc][ev.Pid] = true
	}
	if len(pids["posctl"]) != 1 || len(pids["controller"]) != 1 {
		t.Fatalf("per-proc pids = %v, want one pid per proc", pids)
	}
	for p := range pids["posctl"] {
		if pids["controller"][p] {
			t.Fatalf("posctl and controller share pid %d", p)
		}
	}
}

func TestRecordsAtClosesOpenSpans(t *testing.T) {
	tr := NewTrace("campaign:x")
	child := tr.Root().StartChild("run 1")
	now := tr.Records()[0].Start.Add(1e9) // +1s
	recs := tr.RecordsAt(now)
	for _, r := range recs {
		if !r.End.Equal(now) {
			t.Errorf("span %q end = %v, want snapshot time %v", r.Name, r.End, now)
		}
	}
	child.End()
	tr.Finish()
	// The snapshot must not have mutated the real spans: the child ended
	// well before the +1s synthetic snapshot time.
	if final := tr.Records(); final[1].End.Equal(now) {
		t.Error("RecordsAt leaked its synthetic end time into the span")
	}
}
