// Package telemetry is the controller's observability layer: a lock-cheap
// metrics registry (atomic counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition, and hierarchical spans carried through
// context.Context so a campaign can be rendered as a flamegraph after the
// fact. The package is a leaf — every other internal package may import it —
// and all hot-path operations are a couple of atomic instructions so
// instrumentation can stay on permanently.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds as reported in exposition output.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds a process's metric families. The zero value is not usable;
// call NewRegistry, or use the package-level Default registry shared by the
// instrumented subsystems.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	disabled atomic.Bool
}

// Default is the process-wide registry the instrumented packages (api, core,
// sched, results, eval, hosttools) record into. Using a shared registry keeps
// hot paths free of constructor plumbing, mirroring expvar.
var Default = NewRegistry()

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetEnabled toggles recording. While disabled, Inc/Add/Set/Observe are
// no-ops (a single atomic load), which is what the instrumented-vs-bare
// overhead benchmark compares. Registration and exposition keep working.
func (r *Registry) SetEnabled(on bool) { r.disabled.Store(!on) }

// Enabled reports whether the registry records samples.
func (r *Registry) Enabled() bool { return !r.disabled.Load() }

// family is one named metric with its children (one per label-value tuple;
// unlabelled metrics have a single child under the empty key).
type family struct {
	reg    *Registry
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	fam    *family
	values []string // label values, aligned with fam.labels

	val     atomic.Uint64 // counter/gauge payload as float64 bits
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		reg:      r,
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		bounds:   bounds,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{fam: f, values: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		c.buckets = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = c
	return c
}

func (c *child) on() bool { return !c.fam.reg.disabled.Load() }

// addFloat CAS-adds delta into a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if delta < 0 || !c.c.on() {
		return
	}
	addFloat(&c.c.val, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.c.val.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if !g.c.on() {
		return
	}
	g.c.val.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if !g.c.on() {
		return
	}
	addFloat(&g.c.val, delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.val.Load()) }

// Histogram counts observations into fixed buckets.
type Histogram struct{ c *child }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if !h.c.on() {
		return
	}
	c := h.c
	i := sort.SearchFloat64s(c.fam.bounds, v) // first bound >= v: le-bucket
	c.buckets[i].Add(1)
	c.count.Add(1)
	addFloat(&c.sum, v)
}

// ObserveN records n identical samples in one shot — the bulk form used by
// hot paths that aggregate locally (e.g. a precomputed emission schedule)
// and flush once instead of paying three atomics per sample.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 || !h.c.on() {
		return
	}
	c := h.c
	i := sort.SearchFloat64s(c.fam.bounds, v) // first bound >= v: le-bucket
	c.buckets[i].Add(n)
	c.count.Add(n)
	addFloat(&c.sum, v*float64(n))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.c.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.c.sum.Load()) }

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter { return &Counter{c: v.f.child(values)} }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{c: v.f.child(values)} }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return &Histogram{c: v.f.child(values)} }

// Counter registers (or returns the existing) unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{c: r.register(name, help, TypeCounter, nil, nil).child(nil)}
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// Gauge registers (or returns the existing) unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{c: r.register(name, help, TypeGauge, nil, nil).child(nil)}
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// Histogram registers an unlabelled histogram with the given bucket upper
// bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{c: r.register(name, help, TypeHistogram, nil, checkBounds(bounds)).child(nil)}
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, checkBounds(bounds))}
}

func checkBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return append([]float64(nil), bounds...)
}

// DurationBuckets are the default bounds (seconds) for phase/latency
// histograms: 1ms .. ~100s in roughly 1-2.5-5 steps.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
}

// Snapshot is the registry's JSON view, served by the api as
// GET /api/v1/metrics.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one metric family in a Snapshot.
type MetricSnapshot struct {
	Name   string          `json:"name"`
	Type   string          `json:"type"`
	Help   string          `json:"help,omitempty"`
	Values []ValueSnapshot `json:"values"`
}

// ValueSnapshot is one labelled series of a metric family.
type ValueSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
	// Quantiles are estimated p50/p90/p99 values for histogram series
	// (keys "p50", "p90", "p99"), present when the series has
	// observations. They are snapshot-side estimates from the fixed
	// buckets; the Prometheus text exposition is unchanged.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON encodes the +Inf bound as the string "+Inf" (JSON has no Inf).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return err
		}
		b.LE = v
	}
	b.Count = raw.Count
	return nil
}

// sortedFamilies snapshots the family list ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].values, "\x1f") < strings.Join(kids[j].values, "\x1f")
	})
	return kids
}

// Snapshot captures all families and series. Concurrent-safe; values are read
// atomically per series (not as one consistent cut, which exposition formats
// never promise anyway).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		m := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, c := range f.sortedChildren() {
			v := ValueSnapshot{}
			if len(f.labels) > 0 {
				v.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					v.Labels[l] = c.values[i]
				}
			}
			if f.typ == TypeHistogram {
				v.Count = c.count.Load()
				v.Sum = math.Float64frombits(c.sum.Load())
				cum := uint64(0)
				for i, bound := range f.bounds {
					cum += c.buckets[i].Load()
					v.Buckets = append(v.Buckets, BucketSnapshot{LE: bound, Count: cum})
				}
				cum += c.buckets[len(f.bounds)].Load()
				v.Buckets = append(v.Buckets, BucketSnapshot{LE: math.Inf(1), Count: cum})
				if cum > 0 {
					v.Quantiles = map[string]float64{
						"p50": Quantile(v.Buckets, 0.50),
						"p90": Quantile(v.Buckets, 0.90),
						"p99": Quantile(v.Buckets, 0.99),
					}
				}
			} else {
				v.Value = math.Float64frombits(c.val.Load())
			}
			m.Values = append(m.Values, v)
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Quantile estimates the q-quantile (0..1) from cumulative histogram
// buckets, interpolating linearly within the containing bucket — the same
// estimate Prometheus's histogram_quantile computes. The lowest bucket
// interpolates from zero; a quantile landing in the +Inf bucket returns the
// highest finite bound, because fixed buckets cannot resolve past their last
// edge. Zero observations yield zero.
func Quantile(buckets []BucketSnapshot, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Count) < rank {
			continue
		}
		lower, lowerCount := 0.0, uint64(0)
		if i > 0 {
			lower, lowerCount = buckets[i-1].LE, buckets[i-1].Count
		}
		if math.IsInf(b.LE, 1) {
			return lower
		}
		inBucket := b.Count - lowerCount
		if inBucket == 0 {
			return b.LE
		}
		frac := (rank - float64(lowerCount)) / float64(inBucket)
		return lower + (b.LE-lower)*frac
	}
	return buckets[len(buckets)-1].LE
}

// Total sums a family's series — counter/gauge values, or observation counts
// for histograms — and reports whether the family is registered. The health
// watchdog's probes read progress signals this way by metric name, without
// holding references into other packages' metric variables.
func (r *Registry) Total(name string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	var total float64
	f.mu.Lock()
	for _, c := range f.children {
		if f.typ == TypeHistogram {
			total += float64(c.count.Load())
		} else {
			total += math.Float64frombits(c.val.Load())
		}
	}
	f.mu.Unlock()
	return total, true
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func formatLabels(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(name, value string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(value))
		b.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE comments followed by sample lines, metric
// families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, c := range f.sortedChildren() {
			if err := c.writePrometheus(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *child) writePrometheus(w io.Writer) error {
	f := c.fam
	switch f.typ {
	case TypeHistogram:
		cum := uint64(0)
		for i, bound := range f.bounds {
			cum += c.buckets[i].Load()
			labels := formatLabels(f.labels, c.values, "le", formatValue(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum); err != nil {
				return err
			}
		}
		cum += c.buckets[len(f.bounds)].Load()
		labels := formatLabels(f.labels, c.values, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum); err != nil {
			return err
		}
		base := formatLabels(f.labels, c.values)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base,
			formatValue(math.Float64frombits(c.sum.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, cum)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(f.labels, c.values),
			formatValue(math.Float64frombits(c.val.Load())))
		return err
	}
}
