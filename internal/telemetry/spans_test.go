package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic, strictly increasing clock.
func testClock() func() time.Time {
	base := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * 10 * time.Millisecond)
	}
}

func TestSpanHierarchy(t *testing.T) {
	tr := NewTrace("campaign")
	tr.SetClock(testClock())
	ctx := ContextWithTrace(context.Background(), tr)

	rctx, run := StartSpan(ctx, "run", "combo", "size=64")
	_, exec := StartSpan(rctx, "exec:vriga", "phase", "measurement")
	exec.SetAttr("exit", "0")
	exec.End()
	run.End()
	tr.Finish()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	root, run2, exec2 := recs[0], recs[1], recs[2]
	if root.Parent != 0 || run2.Parent != root.ID || exec2.Parent != run2.ID {
		t.Errorf("hierarchy wrong: %+v", recs)
	}
	if run2.Attrs["combo"] != "size=64" || exec2.Attrs["exit"] != "0" {
		t.Errorf("attrs lost: %+v", recs)
	}
	if !exec2.End.After(exec2.Start) || !root.End.After(root.Start) {
		t.Errorf("durations not positive: %+v", recs)
	}
	if exec2.Start.Before(run2.Start) || exec2.End.After(run2.End) {
		t.Errorf("child span not nested in parent: %+v", recs)
	}
}

func TestUntracedContextIsFree(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("StartSpan on untraced context returned a span")
	}
	// All methods must be nil-safe no-ops.
	s.End()
	s.SetAttr("k", "v")
	s.SetError(fmt.Errorf("boom"))
	if c := s.StartChild("x"); c != nil {
		t.Error("nil span spawned a child")
	}
	if SpanFromContext(ctx) != nil || TraceFromContext(ctx) != nil {
		t.Error("untraced context reports a span")
	}
}

func TestSpansJSONRoundTripThroughChrome(t *testing.T) {
	tr := NewTrace("experiment")
	tr.SetClock(testClock())
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < 3; i++ {
		rctx, run := StartSpan(ctx, fmt.Sprintf("run %d", i))
		_, ex := StartSpan(rctx, "exec:dut")
		ex.End()
		run.End()
	}
	tr.Finish()

	data, err := tr.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // root + 3×(run + exec)
		t.Fatalf("parsed %d spans, want 7", len(recs))
	}

	chrome, err := ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(events) != len(recs) {
		t.Fatalf("chrome events = %d, want %d", len(events), len(recs))
	}
	lanes := map[int]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q has negative ts/dur: %+v", ev.Name, ev)
		}
		lanes[ev.Tid] = true
	}
	// Root on lane 0, each run (depth-1) on its own lane shared with its exec.
	if !lanes[0] || len(lanes) != 4 {
		t.Errorf("lanes = %v, want root lane 0 plus one per run", lanes)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	out, err := ChromeTrace(nil)
	if err != nil || string(out) != "[]" {
		t.Errorf("empty trace = %q, %v", out, err)
	}
}

// TestChromeTraceParentCycle: a corrupt archive whose int Parent fields form
// a cycle (neither span reaching Parent==0) must convert without recursing
// forever — each cycling span falls back to its own lane.
func TestChromeTraceParentCycle(t *testing.T) {
	now := time.Now()
	recs := []SpanRecord{
		{ID: 1, Parent: 0, Name: "root", Start: now, End: now.Add(time.Second)},
		{ID: 2, Parent: 3, Name: "a", Start: now, End: now.Add(time.Second)},
		{ID: 3, Parent: 2, Name: "b", Start: now, End: now.Add(time.Second)},
		{ID: 4, Parent: 4, Name: "self", Start: now, End: now.Add(time.Second)},
	}
	data, err := ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(recs) {
		t.Fatalf("got %d events, want %d", len(events), len(recs))
	}
}

// TestTraceConcurrent starts and ends spans from concurrent goroutines,
// mimicking parallel replicas dispatching runs; meaningful under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("campaign")
	ctx := ContextWithTrace(context.Background(), tr)
	const replicas, runs = 6, 40
	var wg sync.WaitGroup
	for rep := 0; rep < replicas; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			wctx, lane := StartSpan(ctx, fmt.Sprintf("replica:%d", rep))
			for i := 0; i < runs; i++ {
				rctx, run := StartSpan(wctx, "run")
				run.SetAttr("n", fmt.Sprint(i))
				_, ex := StartSpan(rctx, "exec")
				ex.End()
				run.End()
			}
			lane.End()
		}(rep)
	}
	wg.Wait()
	tr.Finish()
	recs := tr.Records()
	want := 1 + replicas*(1+2*runs)
	if len(recs) != want {
		t.Fatalf("got %d spans, want %d", len(recs), want)
	}
	if _, err := ChromeTrace(recs); err != nil {
		t.Fatal(err)
	}
}
