package telemetry

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"strings"
	"sync"
)

// This file gives spans real distributed identities: a 16-byte trace ID
// shared by every span of one causal tree (across processes), an 8-byte span
// ID per span, and the W3C traceparent wire form that carries both across
// the HTTP API boundary. Stitching happens at analysis time — each process
// archives its own spans.json, and internal/timeline merges them by trace ID
// exactly like a distributed tracing backend would.

// idRand is the span/trace ID source. math/rand/v2's global functions are
// safe for concurrent use, but a dedicated ChaCha8 stream keeps ID draws from
// perturbing any simulation RNG and lets tests pin the sequence.
var (
	idMu   sync.Mutex
	idRand *rand.Rand = rand.New(rand.NewChaCha8(seedFromGlobal()))
)

func seedFromGlobal() [32]byte {
	var seed [32]byte
	for i := 0; i < len(seed); i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], rand.Uint64())
	}
	return seed
}

// SetIDSeed reseeds the ID generator — tests pin it for reproducible IDs.
func SetIDSeed(seed uint64) {
	var s [32]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	idMu.Lock()
	idRand = rand.New(rand.NewChaCha8(s))
	idMu.Unlock()
}

func randHex(nbytes int) string {
	buf := make([]byte, nbytes)
	idMu.Lock()
	for i := 0; i < nbytes; i += 8 {
		binary.BigEndian.PutUint64(buf[i:], idRand.Uint64())
	}
	idMu.Unlock()
	return hex.EncodeToString(buf)
}

// NewTraceID returns a fresh 32-hex-digit trace ID (never all-zero, which
// W3C reserves as invalid).
func NewTraceID() string {
	for {
		if id := randHex(16); id != zeroTraceID {
			return id
		}
	}
}

// NewSpanID returns a fresh 16-hex-digit span ID (never all-zero).
func NewSpanID() string {
	for {
		if id := randHex(8); id != zeroSpanID {
			return id
		}
	}
}

const (
	zeroTraceID = "00000000000000000000000000000000"
	zeroSpanID  = "0000000000000000"
)

// FormatTraceParent renders the W3C traceparent header value (version 00,
// sampled flag set) for a trace/span ID pair.
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceParent decodes a W3C traceparent header value. A malformed,
// unknown-version, or all-zero header yields ok == false — callers fall back
// to a fresh root trace, never an error: a bad peer must not be able to fail
// a request by sending garbage tracing metadata.
func ParseTraceParent(s string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	version, tid, sid := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return "", "", false
	}
	// Version 00 has exactly 4 fields; future versions may append more, and
	// the spec says to parse the leading fields anyway.
	if version == "00" && len(parts) != 4 {
		return "", "", false
	}
	if len(tid) != 32 || !isHex(tid) || tid == zeroTraceID {
		return "", "", false
	}
	if len(sid) != 16 || !isHex(sid) || sid == zeroSpanID {
		return "", "", false
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return "", "", false
	}
	return tid, sid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceParentHeader is the canonical header name (lowercase per W3C; Go's
// http canonicalizes on set/get either way).
const TraceParentHeader = "traceparent"

type traceParentCtxKey struct{}

// ContextWithTraceParent records a remote parent reference on the context
// without starting any span: the next trace rooted from this context (runner
// or campaign) adopts the remote trace ID and parents its root span under
// the remote span. An empty or malformed value is carried as "" — adoption
// then falls back to a fresh root.
func ContextWithTraceParent(ctx context.Context, tp string) context.Context {
	if _, _, ok := ParseTraceParent(tp); !ok {
		return ctx
	}
	return context.WithValue(ctx, traceParentCtxKey{}, tp)
}

// PendingTraceParent returns the remote parent reference installed by
// ContextWithTraceParent, or "".
func PendingTraceParent(ctx context.Context) string {
	tp, _ := ctx.Value(traceParentCtxKey{}).(string)
	return tp
}

// TraceParentFromContext derives the outgoing traceparent for a request made
// from ctx: the current span's identity when one is active, else any pending
// remote parent being carried through, else "".
func TraceParentFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.TraceParent()
	}
	return PendingTraceParent(ctx)
}
