// Package ndr implements an RFC 2544-style throughput search: the highest
// offered rate a device forwards without loss (the non-drop rate). The
// paper's case study sweeps a fixed rate grid; this utility is the
// methodology extension measurement engineers actually run on top of such a
// testbed — a binary search over offered load with a configurable loss
// acceptance criterion, producing both the NDR and the trial history as a
// publishable artifact.
package ndr

import (
	"fmt"
	"math"
)

// Measurer performs one trial at the given offered rate and reports the
// observed loss ratio (0..1).
type Measurer func(ratePPS float64) (lossRatio float64, err error)

// Config bounds the search.
type Config struct {
	// MinPPS and MaxPPS bracket the search. MinPPS must be loss-free for
	// the result to be meaningful; Search verifies this.
	MinPPS, MaxPPS float64
	// AcceptLoss is the loss ratio still considered "drop-free"
	// (RFC 2544 uses 0; production NDR tests often accept 1e-4).
	AcceptLoss float64
	// Precision stops the search when the bracket is narrower than
	// Precision * MaxPPS. Zero defaults to 0.01 (1%).
	Precision float64
	// MaxTrials caps the number of measurements. Zero defaults to 32.
	MaxTrials int
}

// Trial is one measurement of the search.
type Trial struct {
	RatePPS   float64
	LossRatio float64
	Passed    bool
}

// Result is the outcome of a search.
type Result struct {
	// NDRPPS is the highest passing rate found.
	NDRPPS float64
	// Trials is the full history, in execution order.
	Trials []Trial
	// Saturated reports that even MaxPPS passed — the true NDR lies
	// above the bracket.
	Saturated bool
}

// Errors.
var (
	ErrBadBracket = fmt.Errorf("ndr: need 0 < MinPPS < MaxPPS")
	ErrLossAtMin  = fmt.Errorf("ndr: loss at the minimum rate — no drop-free region in bracket")
)

// Search runs the binary search.
func Search(cfg Config, measure Measurer) (Result, error) {
	if cfg.MinPPS <= 0 || cfg.MaxPPS <= cfg.MinPPS {
		return Result{}, ErrBadBracket
	}
	precision := cfg.Precision
	if precision <= 0 {
		precision = 0.01
	}
	maxTrials := cfg.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 32
	}
	var res Result
	trial := func(rate float64) (bool, error) {
		loss, err := measure(rate)
		if err != nil {
			return false, fmt.Errorf("ndr: trial at %.0f pps: %w", rate, err)
		}
		passed := loss <= cfg.AcceptLoss
		res.Trials = append(res.Trials, Trial{RatePPS: rate, LossRatio: loss, Passed: passed})
		return passed, nil
	}

	// Establish the bracket: the floor must pass, and if the ceiling
	// passes the device is not saturable within the bracket.
	ok, err := trial(cfg.MinPPS)
	if err != nil {
		return res, err
	}
	if !ok {
		return res, ErrLossAtMin
	}
	ok, err = trial(cfg.MaxPPS)
	if err != nil {
		return res, err
	}
	if ok {
		res.NDRPPS = cfg.MaxPPS
		res.Saturated = true
		return res, nil
	}

	lo, hi := cfg.MinPPS, cfg.MaxPPS
	for len(res.Trials) < maxTrials && (hi-lo) > precision*cfg.MaxPPS {
		mid := (lo + hi) / 2
		ok, err := trial(mid)
		if err != nil {
			return res, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.NDRPPS = lo
	return res, nil
}

// Summary renders the result for experiment logs.
func (r Result) Summary() string {
	state := "converged"
	if r.Saturated {
		state = "saturated (true NDR above bracket)"
	}
	return fmt.Sprintf("NDR %.0f pps after %d trials (%s)", r.NDRPPS, len(r.Trials), state)
}

// Efficiency reports how close the NDR search got to a known reference, as
// |ndr - ref| / ref — used by calibration tests.
func (r Result) Efficiency(refPPS float64) float64 {
	if refPPS == 0 {
		return math.Inf(1)
	}
	return math.Abs(r.NDRPPS-refPPS) / refPPS
}
