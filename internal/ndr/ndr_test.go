package ndr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"pos/internal/casestudy"
)

// stepMeasurer returns zero loss below capacity, proportional loss above.
func stepMeasurer(capacity float64) Measurer {
	return func(rate float64) (float64, error) {
		if rate <= capacity {
			return 0, nil
		}
		return 1 - capacity/rate, nil
	}
}

func TestSearchConvergesToCapacity(t *testing.T) {
	res, err := Search(Config{MinPPS: 1000, MaxPPS: 3_000_000, Precision: 0.001}, stepMeasurer(1_750_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency(1_750_000) > 0.005 {
		t.Errorf("NDR = %.0f, want ~1.75M (err %.4f)", res.NDRPPS, res.Efficiency(1_750_000))
	}
	if res.Saturated {
		t.Error("marked saturated despite loss at max")
	}
	// The found rate itself must pass.
	last := res.Trials[len(res.Trials)-1]
	_ = last
	if loss, _ := stepMeasurer(1_750_000)(res.NDRPPS); loss != 0 {
		t.Errorf("returned NDR %.0f loses packets", res.NDRPPS)
	}
}

func TestSearchSaturated(t *testing.T) {
	res, err := Search(Config{MinPPS: 10, MaxPPS: 1000}, stepMeasurer(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || res.NDRPPS != 1000 {
		t.Errorf("res = %+v", res)
	}
	if len(res.Trials) != 2 {
		t.Errorf("trials = %d, want 2 (bracket only)", len(res.Trials))
	}
	if !strings.Contains(res.Summary(), "saturated") {
		t.Errorf("summary = %q", res.Summary())
	}
}

func TestSearchLossAtMin(t *testing.T) {
	_, err := Search(Config{MinPPS: 10_000, MaxPPS: 100_000}, stepMeasurer(5_000))
	if !errors.Is(err, ErrLossAtMin) {
		t.Errorf("err = %v, want ErrLossAtMin", err)
	}
}

func TestSearchBadBracket(t *testing.T) {
	for _, cfg := range []Config{
		{MinPPS: 0, MaxPPS: 100},
		{MinPPS: 100, MaxPPS: 100},
		{MinPPS: 200, MaxPPS: 100},
	} {
		if _, err := Search(cfg, stepMeasurer(50)); !errors.Is(err, ErrBadBracket) {
			t.Errorf("cfg %+v: err = %v", cfg, err)
		}
	}
}

func TestSearchAcceptLoss(t *testing.T) {
	// With 0.1% accepted loss, rates slightly above capacity pass.
	capacity := 100_000.0
	strict, err := Search(Config{MinPPS: 1000, MaxPPS: 200_000, Precision: 0.001}, stepMeasurer(capacity))
	if err != nil {
		t.Fatal(err)
	}
	// 5% accepted loss admits rates up to capacity/(1-0.05) ≈ 105.3k —
	// comfortably distinguishable from the strict threshold at the
	// search's 200 pps grid resolution.
	loose, err := Search(Config{MinPPS: 1000, MaxPPS: 200_000, Precision: 0.001, AcceptLoss: 0.05}, stepMeasurer(capacity))
	if err != nil {
		t.Fatal(err)
	}
	if loose.NDRPPS <= strict.NDRPPS {
		t.Errorf("loose NDR %.0f <= strict %.0f", loose.NDRPPS, strict.NDRPPS)
	}
}

func TestSearchRespectsMaxTrials(t *testing.T) {
	res, err := Search(Config{MinPPS: 1, MaxPPS: 1e9, MaxTrials: 5, Precision: 1e-9}, stepMeasurer(12345))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) > 5 {
		t.Errorf("trials = %d", len(res.Trials))
	}
}

func TestSearchPropagatesMeasureError(t *testing.T) {
	boom := errors.New("generator on fire")
	calls := 0
	m := func(rate float64) (float64, error) {
		calls++
		if calls == 3 {
			return 0, boom
		}
		return stepMeasurer(500)(rate)
	}
	if _, err := Search(Config{MinPPS: 10, MaxPPS: 1000}, m); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// Property: for any step capacity within the bracket, the search result is
// within precision of the capacity and never above a losing rate.
func TestSearchConvergenceProperty(t *testing.T) {
	prop := func(capSeed uint32) bool {
		capacity := 1000 + float64(capSeed%10_000_000)
		res, err := Search(Config{MinPPS: 500, MaxPPS: 20_000_000, Precision: 0.001}, stepMeasurer(capacity))
		if err != nil {
			return false
		}
		if capacity >= 20_000_000 {
			return res.Saturated
		}
		// Precision is relative to the bracket ceiling: the final
		// bracket is at most 0.001*MaxPPS wide and NDR is its floor.
		return res.NDRPPS <= capacity && capacity-res.NDRPPS <= 0.001*20_000_000+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Integration: find the NDR of the emulated DuTs and compare with the
// paper's headline numbers.
func TestNDROfCaseStudyPlatforms(t *testing.T) {
	measure := func(topo *casestudy.Topology, size int) Measurer {
		return func(rate float64) (float64, error) {
			p, err := topo.DirectRun(size, rate, 1)
			if err != nil {
				return 0, err
			}
			return p.LossRatio, nil
		}
	}
	bm, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	res, err := Search(Config{MinPPS: 10_000, MaxPPS: 2_500_000, Precision: 0.005}, measure(bm, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.NDRPPS < 1.6e6 || res.NDRPPS > 1.8e6 {
		t.Errorf("bare-metal 64B NDR = %.0f, want ~1.75M", res.NDRPPS)
	}

	vm, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	vres, err := Search(Config{MinPPS: 5_000, MaxPPS: 300_000, Precision: 0.01}, measure(vm, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if vres.NDRPPS < 30_000 || vres.NDRPPS > 60_000 {
		t.Errorf("vpos 1500B NDR = %.0f, want ~40k", vres.NDRPPS)
	}
	ratio := res.NDRPPS / vres.NDRPPS
	if ratio < 25 || ratio > 60 {
		t.Errorf("NDR gap = %.1fx, want ~44x", ratio)
	}
}
