// Package topo provides a declarative topology description for virtual
// testbeds. The paper's hardware testbed cannot re-create physical wiring
// automatically (Sec. 7) — but its virtual clone can, and does: a vpos
// instance's topology is just software. This package makes that topology an
// artifact: a small, line-oriented text format describing devices and
// direct links, a parser, a builder that instantiates the emulated network,
// and a linter enforcing the pos wiring discipline (R2: direct, non-switched
// connections — switch hops are flagged).
//
//	# linux-router case study, pos flavor
//	generator lg hw=true
//	router dut model=baremetal
//	link lg.tx dut.0 rate=10G
//	link dut.1 lg.rx rate=10G
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DeviceKind enumerates the device types of the format.
type DeviceKind string

// Supported device kinds.
const (
	KindGenerator DeviceKind = "generator"
	KindRouter    DeviceKind = "router"
	KindSwitch    DeviceKind = "switch"
	KindSink      DeviceKind = "sink"
)

// DeviceSpec is one declared device.
type DeviceSpec struct {
	Kind   DeviceKind
	Name   string
	Params map[string]string
	// Line locates the declaration for diagnostics.
	Line int
}

// Endpoint is one side of a link: device name plus port label.
type Endpoint struct {
	Device string
	Port   string
}

// String renders "device.port".
func (e Endpoint) String() string { return e.Device + "." + e.Port }

// LinkSpec is one declared wire.
type LinkSpec struct {
	A, B   Endpoint
	Params map[string]string
	Line   int
}

// Spec is a parsed topology.
type Spec struct {
	Devices []DeviceSpec
	Links   []LinkSpec
}

// ParseError reports a syntax or semantic problem with its line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("topo: line %d: %s", e.Line, e.Msg) }

func perr(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a topology description.
func Parse(data []byte) (*Spec, error) {
	spec := &Spec{}
	names := map[string]bool{}
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch DeviceKind(fields[0]) {
		case KindGenerator, KindRouter, KindSwitch, KindSink:
			if len(fields) < 2 {
				return nil, perr(lineNo, "%s needs a name", fields[0])
			}
			name := fields[1]
			if strings.ContainsAny(name, ".=") {
				return nil, perr(lineNo, "device name %q may not contain '.' or '='", name)
			}
			if names[name] {
				return nil, perr(lineNo, "duplicate device %q", name)
			}
			names[name] = true
			params, err := parseParams(fields[2:], lineNo)
			if err != nil {
				return nil, err
			}
			spec.Devices = append(spec.Devices, DeviceSpec{
				Kind: DeviceKind(fields[0]), Name: name, Params: params, Line: lineNo,
			})
		default:
			if fields[0] != "link" {
				return nil, perr(lineNo, "unknown directive %q", fields[0])
			}
			if len(fields) < 3 {
				return nil, perr(lineNo, "link needs two endpoints")
			}
			a, err := parseEndpoint(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			b, err := parseEndpoint(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			params, err := parseParams(fields[3:], lineNo)
			if err != nil {
				return nil, err
			}
			spec.Links = append(spec.Links, LinkSpec{A: a, B: b, Params: params, Line: lineNo})
		}
	}
	return spec, spec.validate()
}

func parseEndpoint(s string, line int) (Endpoint, error) {
	dev, port, ok := strings.Cut(s, ".")
	if !ok || dev == "" || port == "" {
		return Endpoint{}, perr(line, "endpoint %q must be device.port", s)
	}
	return Endpoint{Device: dev, Port: port}, nil
}

func parseParams(fields []string, line int) (map[string]string, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, perr(line, "parameter %q must be key=value", f)
		}
		if _, dup := out[k]; dup {
			return nil, perr(line, "duplicate parameter %q", k)
		}
		out[k] = v
	}
	return out, nil
}

// validate checks referential integrity and port usage.
func (s *Spec) validate() error {
	devs := make(map[string]DeviceSpec, len(s.Devices))
	for _, d := range s.Devices {
		devs[d.Name] = d
	}
	used := map[string]int{}
	for _, l := range s.Links {
		for _, e := range []Endpoint{l.A, l.B} {
			d, ok := devs[e.Device]
			if !ok {
				return perr(l.Line, "link references unknown device %q", e.Device)
			}
			if err := checkPort(d, e.Port, l.Line); err != nil {
				return err
			}
			key := e.String()
			if prev, dup := used[key]; dup {
				return perr(l.Line, "port %s already wired at line %d", key, prev)
			}
			used[key] = l.Line
		}
		if l.A == l.B {
			return perr(l.Line, "link connects %s to itself", l.A)
		}
	}
	return nil
}

func checkPort(d DeviceSpec, port string, line int) error {
	switch d.Kind {
	case KindGenerator:
		if port != "tx" && port != "rx" {
			return perr(line, "generator %s has ports tx and rx, not %q", d.Name, port)
		}
	case KindRouter:
		if port != "0" && port != "1" {
			return perr(line, "router %s has ports 0 and 1, not %q", d.Name, port)
		}
	case KindSink:
		if port != "0" {
			return perr(line, "sink %s has port 0, not %q", d.Name, port)
		}
	case KindSwitch:
		n := intParam(d.Params, "ports", 2)
		idx, err := strconv.Atoi(port)
		if err != nil || idx < 0 || idx >= n {
			return perr(line, "switch %s has ports 0..%d, not %q", d.Name, n-1, port)
		}
	}
	return nil
}

// DirectlyWired reports whether the topology contains no switches — the pos
// wiring discipline (R2). The returned names list offending switch devices.
func (s *Spec) DirectlyWired() (bool, []string) {
	var switches []string
	for _, d := range s.Devices {
		if d.Kind == KindSwitch {
			switches = append(switches, d.Name)
		}
	}
	sort.Strings(switches)
	return len(switches) == 0, switches
}

// Render writes the canonical form of the spec.
func (s *Spec) Render() []byte {
	var b strings.Builder
	for _, d := range s.Devices {
		fmt.Fprintf(&b, "%s %s%s\n", d.Kind, d.Name, renderParams(d.Params))
	}
	for _, l := range s.Links {
		fmt.Fprintf(&b, "link %s %s%s\n", l.A, l.B, renderParams(l.Params))
	}
	return []byte(b.String())
}

func renderParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, params[k])
	}
	return b.String()
}
