package topo

import (
	"strings"
	"testing"

	"pos/internal/loadgen"
	"pos/internal/packet"
	"pos/internal/sim"
)

const caseStudyTopo = `# linux-router case study, pos flavor
generator lg hw=true
router dut model=baremetal
link lg.tx dut.0 rate=10G
link dut.1 lg.rx rate=10G
`

func TestParseCaseStudy(t *testing.T) {
	spec, err := Parse([]byte(caseStudyTopo))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Devices) != 2 || len(spec.Links) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Devices[0].Kind != KindGenerator || spec.Devices[0].Name != "lg" {
		t.Errorf("device 0 = %+v", spec.Devices[0])
	}
	if spec.Links[0].A.String() != "lg.tx" || spec.Links[0].B.String() != "dut.0" {
		t.Errorf("link 0 = %+v", spec.Links[0])
	}
	if spec.Links[0].Params["rate"] != "10G" {
		t.Errorf("params = %v", spec.Links[0].Params)
	}
	direct, switches := spec.DirectlyWired()
	if !direct || switches != nil {
		t.Errorf("direct = %v %v", direct, switches)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":    "frobnicate x\n",
		"device without name":  "router\n",
		"bad device name":      "router a.b\n",
		"duplicate device":     "router a\nrouter a\n",
		"bad endpoint":         "router a\nlink a b.0\n",
		"unknown device":       "router a\nlink a.0 ghost.1\n",
		"bad generator port":   "generator g\nrouter r\nlink g.5 r.0\n",
		"bad router port":      "generator g\nrouter r\nlink g.tx r.7\n",
		"bad sink port":        "generator g\nsink s\nlink g.tx s.1\n",
		"bad switch port":      "generator g\nswitch sw ports=2\nlink g.tx sw.2\n",
		"double wiring":        "generator g\nrouter r\nsink s\nlink g.tx r.0\nlink s.0 r.0\n",
		"self link":            "router r\nlink r.0 r.0\n",
		"bad param":            "router r extra\n",
		"duplicate param":      "router r a=1 a=2\n",
		"missing link operand": "link a.0\n",
	}
	for name, input := range cases {
		if _, err := Parse([]byte(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("%s: error type %T", name, err)
		}
	}
}

func TestDirectlyWiredFlagsSwitches(t *testing.T) {
	spec, err := Parse([]byte(`
generator g
switch sw1 ports=2 delay=300ns
sink s
link g.tx sw1.0
link sw1.1 s.0
`))
	if err != nil {
		t.Fatal(err)
	}
	direct, switches := spec.DirectlyWired()
	if direct || len(switches) != 1 || switches[0] != "sw1" {
		t.Errorf("direct = %v %v", direct, switches)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	spec, err := Parse([]byte(caseStudyTopo))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(spec.Render())
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, spec.Render())
	}
	if len(again.Devices) != len(spec.Devices) || len(again.Links) != len(spec.Links) {
		t.Errorf("round trip lost content")
	}
}

func TestBuildCaseStudyAndMeasure(t *testing.T) {
	spec, err := Parse([]byte(caseStudyTopo))
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := n.Generator("lg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Router("dut"); err != nil {
		t.Fatal(err)
	}
	res, err := gen.Run(loadgen.RunConfig{
		Template: packet.UDPTemplate{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			FrameSize: 64,
		},
		RatePPS:  100_000,
		Duration: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RxPackets != 100_000 {
		t.Errorf("rx = %d, want 100000 (drop-free below capacity)", res.RxPackets)
	}
	// A built bare-metal router saturates at ~1.75 Mpps, like the
	// hand-wired case study.
	res, err = gen.Run(loadgen.RunConfig{
		Template: packet.UDPTemplate{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			FrameSize: 64,
		},
		RatePPS:  2_200_000,
		Duration: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RxRatePPS < 1.70e6 || res.RxRatePPS > 1.82e6 {
		t.Errorf("plateau = %.0f", res.RxRatePPS)
	}
}

func TestBuildSwitchedAndLossy(t *testing.T) {
	spec, err := Parse([]byte(`
generator g profile=osnt
switch sw ports=2 delay=15ns
sink s
link g.tx sw.0 rate=10G loss=0.1 seed=3
link sw.1 s.0
`))
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := n.Generator("g")
	res, err := gen.Run(loadgen.RunConfig{
		Template: packet.UDPTemplate{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			FrameSize: 64,
		},
		RatePPS:  50_000,
		Duration: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One-way topology: the wire loss shows up at the sink, not at the
	// generator's (unwired) RX port.
	loss := 1 - float64(n.Sinks["s"].Packets)/float64(res.TxPackets)
	if loss < 0.08 || loss > 0.12 {
		t.Errorf("loss = %.4f, want ~0.10", loss)
	}
	if n.Switches["sw"].NumPorts() != 2 {
		t.Error("switch ports wrong")
	}
}

func TestBuildVMRouter(t *testing.T) {
	spec, err := Parse([]byte(`
generator g hw=false
router r model=vm seed=5 hw=false
link g.tx r.0
link r.1 g.rx
`))
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := n.Generator("g")
	res, err := gen.Run(loadgen.RunConfig{
		Template: packet.UDPTemplate{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			FrameSize: 64,
		},
		RatePPS:  200_000,
		Duration: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// VM model: heavy loss at 200 kpps.
	if res.RxRatePPS > 90_000 {
		t.Errorf("VM forwarded %.0f pps, implausibly high", res.RxRatePPS)
	}
	if res.LatencyAvailable {
		t.Error("latency available without hardware timestamps")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		"generator g profile=warp10\n",                        // unknown profile
		"router r model=quantum\n",                            // unknown model
		"switch sw ports=2 delay=300\n",                       // bad duration
		"generator g\nsink s\nlink g.tx s.0 rate=fast\n",      // bad rate
		"generator g\nsink s\nlink g.tx s.0 loss=2\n",         // bad loss
		"generator g\nsink s\nlink g.tx s.0 prop=yesterday\n", // bad prop
	}
	for _, input := range cases {
		spec, err := Parse([]byte(input))
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("built invalid topology %q", input)
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := map[string]float64{
		"10G": 10e9, "1g": 1e9, "100M": 100e6, "1T": 1e12, "25k": 25e3, "1e9": 1e9, "42": 42,
	}
	for in, want := range cases {
		got, err := parseRate(in)
		if err != nil || got != want {
			t.Errorf("parseRate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "G", "-1G", "0"} {
		if _, err := parseRate(bad); err == nil {
			t.Errorf("parseRate(%q) succeeded", bad)
		}
	}
}

func TestNetworkLookupErrors(t *testing.T) {
	n := &Network{Generators: map[string]*loadgen.Generator{}, Routers: nil}
	if _, err := n.Generator("x"); err == nil {
		t.Error("missing generator found")
	}
	if _, err := n.Router("x"); err == nil {
		t.Error("missing router found")
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	inputs := []string{
		"link", "link .", "link a. .b", "generator", "switch s ports=x",
		strings.Repeat("router r\n", 3), "\x00\x01\x02", "link a.b c.d e=f g",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("panic on %q", in)
				}
			}()
			_, _ = Parse([]byte(in))
		}()
	}
}
