package topo

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pos/internal/loadgen"
	"pos/internal/netem"
	"pos/internal/perfmodel"
	"pos/internal/router"
	"pos/internal/sim"
)

// Network is an instantiated topology.
type Network struct {
	Engine     *sim.Engine
	Generators map[string]*loadgen.Generator
	Routers    map[string]*router.Router
	Switches   map[string]*netem.Switch
	Sinks      map[string]*netem.Sink
}

// Generator returns a named generator, or an error.
func (n *Network) Generator(name string) (*loadgen.Generator, error) {
	g, ok := n.Generators[name]
	if !ok {
		return nil, fmt.Errorf("topo: no generator %q", name)
	}
	return g, nil
}

// Router returns a named router, or an error.
func (n *Network) Router(name string) (*router.Router, error) {
	r, ok := n.Routers[name]
	if !ok {
		return nil, fmt.Errorf("topo: no router %q", name)
	}
	return r, nil
}

// Build instantiates the topology on a fresh discrete-event engine.
//
// Device parameters:
//   - generator: hw=true|false (hardware timestamps), profile=moongen|osnt|iperf
//   - router: model=baremetal|vm, seed=N, hw=true|false, forwarding=true|false
//   - switch: ports=N, delay=DUR (e.g. 300ns)
//   - sink: none
//
// Link parameters: rate=BITS (10G, 1e9, 25000000000), prop=DUR, queue=DUR,
// jitter=DUR (delay variation), loss=RATIO, seed=N.
func (s *Spec) Build() (*Network, error) {
	n := &Network{
		Engine:     sim.NewEngine(),
		Generators: map[string]*loadgen.Generator{},
		Routers:    map[string]*router.Router{},
		Switches:   map[string]*netem.Switch{},
		Sinks:      map[string]*netem.Sink{},
	}
	for _, d := range s.Devices {
		switch d.Kind {
		case KindGenerator:
			hw := boolParam(d.Params, "hw", true)
			if profile, ok := d.Params["profile"]; ok {
				p, err := profileByName(profile)
				if err != nil {
					return nil, perr(d.Line, "%v", err)
				}
				n.Generators[d.Name] = loadgen.NewWithProfile(n.Engine, d.Name, p)
			} else {
				n.Generators[d.Name] = loadgen.New(n.Engine, d.Name, hw)
			}
		case KindRouter:
			model, err := modelByName(d.Params["model"], uint64(intParam(d.Params, "seed", 1)))
			if err != nil {
				return nil, perr(d.Line, "%v", err)
			}
			rt, err := router.New(n.Engine, router.Config{
				Name:               d.Name,
				Model:              model,
				HardwareTimestamps: boolParam(d.Params, "hw", true),
			})
			if err != nil {
				return nil, perr(d.Line, "%v", err)
			}
			rt.SetForwarding(boolParam(d.Params, "forwarding", true))
			n.Routers[d.Name] = rt
		case KindSwitch:
			delay, err := durParam(d.Params, "delay", netem.CutThroughSwitchDelay)
			if err != nil {
				return nil, perr(d.Line, "%v", err)
			}
			n.Switches[d.Name] = netem.NewSwitch(n.Engine, d.Name, intParam(d.Params, "ports", 2), delay)
		case KindSink:
			n.Sinks[d.Name] = netem.NewSink(d.Name)
		}
	}
	for _, l := range s.Links {
		cfg, err := linkConfig(l)
		if err != nil {
			return nil, err
		}
		pa, err := n.port(s, l.A, l.Line)
		if err != nil {
			return nil, err
		}
		pb, err := n.port(s, l.B, l.Line)
		if err != nil {
			return nil, err
		}
		netem.Wire(n.Engine, pa, pb, cfg)
	}
	return n, nil
}

func (n *Network) port(s *Spec, e Endpoint, line int) (*netem.Port, error) {
	if g, ok := n.Generators[e.Device]; ok {
		if e.Port == "tx" {
			return g.TxPort(), nil
		}
		return g.RxPort(), nil
	}
	if r, ok := n.Routers[e.Device]; ok {
		idx, _ := strconv.Atoi(e.Port)
		return r.Port(idx), nil
	}
	if sw, ok := n.Switches[e.Device]; ok {
		idx, _ := strconv.Atoi(e.Port)
		return sw.Port(idx), nil
	}
	if sk, ok := n.Sinks[e.Device]; ok {
		return sk.Port, nil
	}
	return nil, perr(line, "unknown device %q", e.Device)
}

func linkConfig(l LinkSpec) (netem.LinkConfig, error) {
	cfg := netem.LinkConfig{}
	if v, ok := l.Params["rate"]; ok {
		r, err := parseRate(v)
		if err != nil {
			return cfg, perr(l.Line, "%v", err)
		}
		cfg.RateBitsPerSec = r
	}
	var err error
	if cfg.PropagationDelay, err = durParam(l.Params, "prop", 0); err != nil {
		return cfg, perr(l.Line, "%v", err)
	}
	if cfg.QueueDelayLimit, err = durParam(l.Params, "queue", 0); err != nil {
		return cfg, perr(l.Line, "%v", err)
	}
	if cfg.DelayJitterStd, err = durParam(l.Params, "jitter", 0); err != nil {
		return cfg, perr(l.Line, "%v", err)
	}
	if v, ok := l.Params["loss"]; ok {
		loss, err := strconv.ParseFloat(v, 64)
		if err != nil || loss < 0 || loss >= 1 {
			return cfg, perr(l.Line, "bad loss ratio %q", v)
		}
		cfg.LossRatio = loss
	}
	cfg.Seed = uint64(intParam(l.Params, "seed", 0))
	return cfg, nil
}

// parseRate accepts raw bit rates ("1e9", "10000000000") and suffixed forms
// ("10G", "25g", "100M", "1T").
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(strings.ToUpper(s), "K"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(strings.ToUpper(s), "M"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(strings.ToUpper(s), "G"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(strings.ToUpper(s), "T"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}

func profileByName(name string) (loadgen.Profile, error) {
	switch name {
	case "moongen":
		return loadgen.MoonGenProfile(), nil
	case "osnt":
		return loadgen.OSNTProfile(), nil
	case "iperf":
		return loadgen.IPerfProfile(), nil
	default:
		return loadgen.Profile{}, fmt.Errorf("unknown generator profile %q", name)
	}
}

func modelByName(name string, seed uint64) (perfmodel.Model, error) {
	switch name {
	case "", "baremetal":
		return perfmodel.NewBareMetal(), nil
	case "vm":
		return perfmodel.NewVirtual(seed), nil
	default:
		return nil, fmt.Errorf("unknown router model %q", name)
	}
}

func boolParam(params map[string]string, key string, def bool) bool {
	v, ok := params[key]
	if !ok {
		return def
	}
	return v == "true" || v == "1" || v == "yes"
}

func intParam(params map[string]string, key string, def int) int {
	v, ok := params[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func durParam(params map[string]string, key string, def sim.Duration) (sim.Duration, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %s=%q", key, v)
	}
	return d, nil
}
