package yamlite

import (
	"strings"
	"testing"
	"testing/quick"
)

const paperLoopVars = `# loop variables of the Appendix A experiment
pkt_sz: [64, 1500]
pkt_rate:
  - 10000
  - 20000
  - 30000
runtime: 2
note: "packet sizes include the 4 B FCS"
`

func TestParsePaperFile(t *testing.T) {
	doc, err := Parse([]byte(paperLoopVars))
	if err != nil {
		t.Fatal(err)
	}
	keys := doc.Keys()
	want := []string{"pkt_sz", "pkt_rate", "runtime", "note"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key %d = %s, want %s", i, keys[i], want[i])
		}
	}
	sizes, err := doc.List("pkt_sz")
	if err != nil || len(sizes) != 2 || sizes[0] != "64" || sizes[1] != "1500" {
		t.Errorf("pkt_sz = %v, %v", sizes, err)
	}
	rates, err := doc.List("pkt_rate")
	if err != nil || len(rates) != 3 || rates[2] != "30000" {
		t.Errorf("pkt_rate = %v, %v", rates, err)
	}
	runtime, err := doc.Scalar("runtime")
	if err != nil || runtime != "2" {
		t.Errorf("runtime = %q, %v", runtime, err)
	}
	note, err := doc.Scalar("note")
	if err != nil || note != "packet sizes include the 4 B FCS" {
		t.Errorf("note = %q, %v", note, err)
	}
}

func TestScalarPromotedToList(t *testing.T) {
	doc, err := Parse([]byte("pkt_sz: 64\n"))
	if err != nil {
		t.Fatal(err)
	}
	// "each parameter can represent either a single value or a list".
	l, err := doc.List("pkt_sz")
	if err != nil || len(l) != 1 || l[0] != "64" {
		t.Errorf("list = %v, %v", l, err)
	}
}

func TestScalarOfListFails(t *testing.T) {
	doc, err := Parse([]byte("a: [1, 2]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Scalar("a"); err == nil {
		t.Error("Scalar on a list succeeded")
	}
}

func TestMissingKey(t *testing.T) {
	doc, err := Parse([]byte("a: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Scalar("b"); err == nil {
		t.Error("missing key Scalar succeeded")
	}
	if _, err := doc.List("b"); err == nil {
		t.Error("missing key List succeeded")
	}
	if _, ok := doc.Get("b"); ok {
		t.Error("missing key Get succeeded")
	}
}

func TestStringMap(t *testing.T) {
	doc, err := Parse([]byte("a: 1\nb: two\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := doc.StringMap()
	if err != nil || m["a"] != "1" || m["b"] != "two" {
		t.Errorf("map = %v, %v", m, err)
	}
	doc2, _ := Parse([]byte("a: [1]\n"))
	if _, err := doc2.StringMap(); err == nil {
		t.Error("StringMap accepted list value")
	}
}

func TestQuotingAndComments(t *testing.T) {
	input := `a: "value # with hash"
b: 'single # quoted'
c: plain # trailing comment
d: "colon: inside"
e: [ "x, y", 'z' ]
`
	doc, err := Parse([]byte(input))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"a": "value # with hash",
		"b": "single # quoted",
		"c": "plain",
		"d": "colon: inside",
	}
	for k, want := range cases {
		if got, _ := doc.Scalar(k); got != want {
			t.Errorf("%s = %q, want %q", k, got, want)
		}
	}
	e, _ := doc.List("e")
	if len(e) != 2 || e[0] != "x, y" || e[1] != "z" {
		t.Errorf("e = %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no colon":                    "justtext\n",
		"empty key":                   ": value\n",
		"duplicate key":               "a: 1\na: 2\n",
		"item without key":            "- 1\n",
		"unindented item":             "a:\n- 1\n",
		"unterminated flow list":      "a: [1, 2\n",
		"unterminated quote":          "a: \"oops\n",
		"unterminated quote in list":  "a: ['oops]\n",
		"block list without items":    "a:\n",
		"nested mapping":              "a: 1\n  b: 2\n",
		"block list then nested junk": "a:\n  - 1\nb: 2\n  c: 3\n",
	}
	for name, input := range cases {
		if _, err := Parse([]byte(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("%s: error type %T", name, err)
		}
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	_, err := Parse([]byte("a: 1\nb: 2\nbroken\n"))
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 3 {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("message = %q", pe.Error())
	}
}

func TestEmptyAndSeparators(t *testing.T) {
	doc, err := Parse([]byte("---\n\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Keys()) != 0 {
		t.Errorf("keys = %v", doc.Keys())
	}
}

func TestEmptyFlowList(t *testing.T) {
	doc, err := Parse([]byte("a: []\n"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := doc.List("a")
	if err != nil || len(l) != 0 {
		t.Errorf("list = %v, %v", l, err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	keys := []string{"pkt_sz", "pkt_rate", "runtime", "iface"}
	values := map[string]Value{
		"pkt_sz":   {List: []string{"64", "1500"}, IsList: true},
		"pkt_rate": {List: []string{"10000"}, IsList: true},
		"runtime":  {Scalar: "2"},
		"iface":    {Scalar: "eno1 np0"},
	}
	data := Marshal(keys, values)
	doc, err := Parse(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	gotKeys := doc.Keys()
	for i := range keys {
		if gotKeys[i] != keys[i] {
			t.Errorf("key order: %v", gotKeys)
		}
	}
	if l, _ := doc.List("pkt_sz"); len(l) != 2 || l[1] != "1500" {
		t.Errorf("pkt_sz = %v", l)
	}
	if s, _ := doc.Scalar("iface"); s != "eno1 np0" {
		t.Errorf("iface = %q", s)
	}
}

// Property: Marshal -> Parse is the identity for documents over a sane
// scalar alphabet.
func TestRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= ' ' && r != '"' && r != '\'' && r != '\\' && r < 127 {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	prop := func(scalars []string, listMask []bool) bool {
		keys := make([]string, 0, len(scalars))
		values := make(map[string]Value)
		for i, s := range scalars {
			k := "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			if _, dup := values[k]; dup {
				continue
			}
			keys = append(keys, k)
			s = sanitize(s)
			if i < len(listMask) && listMask[i] {
				values[k] = Value{List: []string{s, sanitize(s + "x")}, IsList: true}
			} else {
				values[k] = Value{Scalar: s}
			}
		}
		doc, err := Parse(Marshal(keys, values))
		if err != nil {
			return false
		}
		for _, k := range keys {
			want := values[k]
			got, ok := doc.Get(k)
			if !ok || got.IsList != want.IsList {
				return false
			}
			if want.IsList {
				if len(got.List) != len(want.List) {
					return false
				}
				for i := range want.List {
					if strings.TrimSpace(want.List[i]) != got.List[i] {
						// Parse trims surrounding space inside
						// flow items; treat as equal modulo
						// that canonicalization.
						if want.List[i] != got.List[i] {
							return false
						}
					}
				}
			} else if strings.TrimSpace(want.Scalar) != got.Scalar && want.Scalar != got.Scalar {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Parse terminates cleanly on arbitrary input — either a document
// or a *ParseError, never a panic.
func TestParseNeverPanicsProperty(t *testing.T) {
	prop := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		doc, err := Parse([]byte(input))
		if err != nil {
			_, isParseErr := err.(*ParseError)
			return isParseErr
		}
		return doc != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
