// Package yamlite parses the YAML subset that pos variable files use —
// the paper's loop-variables.yml and friends: top-level mappings whose
// values are scalars, flow lists ([a, b, c]), or block lists of scalars.
// It is intentionally not a general YAML parser; experiment parameter files
// never need anchors, nesting beyond one level, or multi-line strings, and
// a small exact parser beats a permissive one for reproducibility (a file
// that parses differently on two machines is a repeatability bug).
//
//	pkt_sz: [64, 1500]
//	pkt_rate:
//	  - 10000
//	  - 20000
//	runtime: 2
//	comment: "strings may be quoted"
package yamlite

import (
	"fmt"
	"strings"
)

// Value is a parsed YAML value: either a scalar or a list of scalars.
type Value struct {
	// Scalar holds the value when List is nil.
	Scalar string
	// List holds the values of a flow or block sequence.
	List []string
	// IsList distinguishes an empty list from an empty scalar.
	IsList bool
}

// Doc is a parsed document: an ordered mapping.
type Doc struct {
	keys   []string
	values map[string]Value
}

// Keys returns the mapping keys in file order.
func (d *Doc) Keys() []string { return append([]string(nil), d.keys...) }

// Get returns the value for key.
func (d *Doc) Get(key string) (Value, bool) {
	v, ok := d.values[key]
	return v, ok
}

// Scalar returns the scalar value for key, or an error when the key is
// missing or holds a list.
func (d *Doc) Scalar(key string) (string, error) {
	v, ok := d.values[key]
	if !ok {
		return "", fmt.Errorf("yamlite: key %q not present", key)
	}
	if v.IsList {
		return "", fmt.Errorf("yamlite: key %q holds a list, want scalar", key)
	}
	return v.Scalar, nil
}

// List returns the values of key as a list; a scalar is returned as a
// single-element list, matching pos semantics where every loop parameter
// "can represent either a single value or a list of values".
func (d *Doc) List(key string) ([]string, error) {
	v, ok := d.values[key]
	if !ok {
		return nil, fmt.Errorf("yamlite: key %q not present", key)
	}
	if v.IsList {
		return append([]string(nil), v.List...), nil
	}
	return []string{v.Scalar}, nil
}

// StringMap flattens the document into a map of scalars; list values are
// rejected.
func (d *Doc) StringMap() (map[string]string, error) {
	out := make(map[string]string, len(d.keys))
	for _, k := range d.keys {
		v := d.values[k]
		if v.IsList {
			return nil, fmt.Errorf("yamlite: key %q holds a list in a scalar-only file", k)
		}
		out[k] = v.Scalar
	}
	return out, nil
}

// ParseError reports the offending line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("yamlite: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a document.
func Parse(data []byte) (*Doc, error) {
	doc := &Doc{values: make(map[string]Value)}
	lines := strings.Split(string(data), "\n")
	var pendingKey string
	var pendingLine int
	var pendingList []string
	inBlockList := false

	flush := func() error {
		if !inBlockList {
			return nil
		}
		if len(pendingList) == 0 {
			return errf(pendingLine, "key %q has no list items", pendingKey)
		}
		doc.values[pendingKey] = Value{List: pendingList, IsList: true}
		pendingList = nil
		inBlockList = false
		return nil
	}

	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed == "---" {
			continue
		}
		indented := line != strings.TrimLeft(line, " \t")
		if strings.HasPrefix(trimmed, "- ") || trimmed == "-" {
			if !inBlockList {
				return nil, errf(lineNo, "list item without a key")
			}
			if !indented {
				return nil, errf(lineNo, "block list items must be indented")
			}
			item := strings.TrimSpace(strings.TrimPrefix(trimmed, "-"))
			scalar, err := parseScalar(item, lineNo)
			if err != nil {
				return nil, err
			}
			pendingList = append(pendingList, scalar)
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		if indented {
			return nil, errf(lineNo, "unexpected indentation (nested mappings are not supported)")
		}
		key, rest, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, errf(lineNo, "expected 'key: value'")
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, errf(lineNo, "empty key")
		}
		if _, dup := doc.values[key]; dup {
			return nil, errf(lineNo, "duplicate key %q", key)
		}
		rest = strings.TrimSpace(rest)
		switch {
		case rest == "":
			// Block list follows.
			pendingKey, pendingLine = key, lineNo
			inBlockList = true
			doc.keys = append(doc.keys, key)
			doc.values[key] = Value{IsList: true} // placeholder, flushed later
		case strings.HasPrefix(rest, "["):
			list, err := parseFlowList(rest, lineNo)
			if err != nil {
				return nil, err
			}
			doc.keys = append(doc.keys, key)
			doc.values[key] = Value{List: list, IsList: true}
		default:
			scalar, err := parseScalar(rest, lineNo)
			if err != nil {
				return nil, err
			}
			doc.keys = append(doc.keys, key)
			doc.values[key] = Value{Scalar: scalar}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return doc, nil
}

// stripComment removes a trailing comment, respecting quotes.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble {
				// YAML requires a preceding space (or line start).
				if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
					return line[:i]
				}
			}
		}
	}
	return line
}

// parseScalar unquotes a scalar token.
func parseScalar(s string, lineNo int) (string, error) {
	if s == "" {
		return "", nil
	}
	if s[0] == '"' || s[0] == '\'' {
		q := s[0]
		if len(s) < 2 || s[len(s)-1] != q {
			return "", errf(lineNo, "unterminated quoted scalar %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	return s, nil
}

// parseFlowList parses "[a, b, c]".
func parseFlowList(s string, lineNo int) ([]string, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, errf(lineNo, "unterminated flow list %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []string{}, nil
	}
	parts := splitFlow(inner)
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		scalar, err := parseScalar(strings.TrimSpace(p), lineNo)
		if err != nil {
			return nil, err
		}
		out = append(out, scalar)
	}
	return out, nil
}

// splitFlow splits on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	start := 0
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ',':
			if !inSingle && !inDouble {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// Marshal renders a mapping of scalars/lists back to the subset syntax,
// keys in the given order (or sorted when order is nil is the caller's
// concern — Marshal preserves the order handed to it).
func Marshal(keys []string, values map[string]Value) []byte {
	var b strings.Builder
	for _, k := range keys {
		v := values[k]
		if v.IsList {
			fmt.Fprintf(&b, "%s: [%s]\n", k, strings.Join(quoteAll(v.List), ", "))
		} else {
			fmt.Fprintf(&b, "%s: %s\n", k, quote(v.Scalar))
		}
	}
	return []byte(b.String())
}

func quoteAll(xs []string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = quote(x)
	}
	return out
}

// quote quotes a scalar only when the plain form would be ambiguous.
// Scalars containing both quote characters cannot be represented in the
// subset and are rendered single-quoted best-effort; experiment parameters
// (numbers, interface names, rates) never hit this.
func quote(s string) string {
	if s == "" || strings.ContainsAny(s, ":#,[]'\" \t") {
		if strings.Contains(s, `"`) {
			return "'" + s + "'"
		}
		return `"` + s + `"`
	}
	return s
}
