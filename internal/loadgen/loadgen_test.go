package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/pcap"
	"pos/internal/perfmodel"
	"pos/internal/router"
	"pos/internal/sim"
)

func template(size int) packet.UDPTemplate {
	return packet.UDPTemplate{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packet.IPv4Addr{10, 0, 0, 2}, DstIP: packet.IPv4Addr{10, 0, 1, 2},
		SrcPort: 1000, DstPort: 2000, FrameSize: size,
	}
}

// loopback wires the generator's TX port straight to its RX port.
func loopback(e *sim.Engine, hw bool) *Generator {
	g := New(e, "lg", hw)
	netem.Wire(e, g.TxPort(), g.RxPort(), netem.LinkConfig{})
	return g
}

// dutSetup wires generator <-> router with the given model.
func dutSetup(t testing.TB, model perfmodel.Model, hw bool) (*sim.Engine, *Generator) {
	t.Helper()
	e := sim.NewEngine()
	g := New(e, "lg", hw)
	r, err := router.New(e, router.Config{Name: "dut", Model: model, HardwareTimestamps: hw})
	if err != nil {
		t.Fatal(err)
	}
	netem.Wire(e, g.TxPort(), r.Port(0), netem.LinkConfig{})
	netem.Wire(e, r.Port(1), g.RxPort(), netem.LinkConfig{})
	return e, g
}

func TestLoopbackCountsExactly(t *testing.T) {
	e := sim.NewEngine()
	g := loopback(e, true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 10_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets != 10_000 {
		t.Errorf("TxPackets = %d, want 10000", res.TxPackets)
	}
	if res.RxPackets != res.TxPackets {
		t.Errorf("RxPackets = %d, want %d", res.RxPackets, res.TxPackets)
	}
	if res.LossRatio() != 0 {
		t.Errorf("loss = %v", res.LossRatio())
	}
	if res.FrameSize != 64 {
		t.Errorf("FrameSize = %d", res.FrameSize)
	}
}

func TestFractionalRateCarry(t *testing.T) {
	// 12345 pps over 1 s with 1 ms ticks is 12.345 packets per tick; the
	// carry accumulator must still hit the total exactly.
	e := sim.NewEngine()
	g := loopback(e, true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 12_345, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets != 12_345 {
		t.Errorf("TxPackets = %d, want 12345", res.TxPackets)
	}
}

func TestLowRateStillTransmits(t *testing.T) {
	e := sim.NewEngine()
	g := loopback(e, true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 3, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets != 3 {
		t.Errorf("TxPackets = %d, want 3", res.TxPackets)
	}
}

func TestRunValidation(t *testing.T) {
	e := sim.NewEngine()
	g := loopback(e, true)
	if _, err := g.Run(RunConfig{Template: template(64), RatePPS: 0, Duration: sim.Second}); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := g.Run(RunConfig{Template: template(64), RatePPS: 100, Duration: 0}); err == nil {
		t.Error("accepted zero duration")
	}
	if _, err := g.Run(RunConfig{Template: template(1), RatePPS: 100, Duration: sim.Second}); err == nil {
		t.Error("accepted invalid template")
	}
}

func TestLatencyMeasuredOnBareMetal(t *testing.T) {
	_, g := dutSetup(t, perfmodel.NewBareMetal(), true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 10_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LatencyAvailable {
		t.Fatal("latency unavailable on bare metal")
	}
	avg, min, max := res.LatencyStats()
	if min <= 0 || avg < min || max < avg {
		t.Errorf("latency stats inconsistent: avg=%v min=%v max=%v", avg, min, max)
	}
}

func TestLatencyUnavailableOnVM(t *testing.T) {
	// The paper: "in our VM, we cannot generate latency measurements, due
	// to the limited hardware support."
	_, g := dutSetup(t, perfmodel.NewVirtual(1), false)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 10_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyAvailable || len(res.Latencies) != 0 {
		t.Error("latency reported despite missing hardware timestamps")
	}
	if res.RxPackets == 0 {
		t.Error("throughput measurement should still work on the VM")
	}
}

func TestThroughputPlateausAtDuTCapacity(t *testing.T) {
	_, g := dutSetup(t, perfmodel.NewBareMetal(), true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 2_000_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.RxRatePPS < 1.70e6 || res.RxRatePPS > 1.82e6 {
		t.Errorf("RxRatePPS = %.0f, want ~1.75M", res.RxRatePPS)
	}
	if res.LossRatio() <= 0 {
		t.Error("expected loss above capacity")
	}
}

func TestPerSecondSamples(t *testing.T) {
	e := sim.NewEngine()
	g := loopback(e, true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 1000, Duration: 3 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSecondTx) < 3 {
		t.Fatalf("PerSecondTx = %v, want >= 3 samples", res.PerSecondTx)
	}
	for i := 0; i < 2; i++ {
		if res.PerSecondTx[i] < 990 || res.PerSecondTx[i] > 1010 {
			t.Errorf("second %d: tx = %v, want ~1000", i, res.PerSecondTx[i])
		}
	}
}

func TestSequentialRunsIndependent(t *testing.T) {
	e := sim.NewEngine()
	g := loopback(e, true)
	a, err := g.Run(RunConfig{Template: template(64), RatePPS: 5000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Run(RunConfig{Template: template(128), RatePPS: 7000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if a.TxPackets != 5000 || b.TxPackets != 7000 {
		t.Errorf("runs bled into each other: %d / %d", a.TxPackets, b.TxPackets)
	}
	if b.FrameSize != 128 {
		t.Errorf("second run frame size = %d", b.FrameSize)
	}
}

func TestPcapReplay(t *testing.T) {
	// Build a two-frame capture, replay it, and check alternation.
	f1, _ := template(64).Build()
	f2, _ := template(128).Build()
	replay := []pcap.Packet{
		{Timestamp: time.Unix(0, 0), Data: f1},
		{Timestamp: time.Unix(0, 1000), Data: f2},
	}
	e := sim.NewEngine()
	g := loopback(e, true)
	res, err := g.Run(RunConfig{Replay: replay, RatePPS: 10_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxPackets != 10_000 {
		t.Errorf("TxPackets = %d", res.TxPackets)
	}
	// Mixed sizes: total bytes between the two pure cases.
	if res.TxBytes <= 10_000*64 || res.TxBytes >= 10_000*128 {
		t.Errorf("TxBytes = %d, want strictly between pure-64 and pure-128", res.TxBytes)
	}
}

func TestLatencySampleEvery(t *testing.T) {
	_, g := dutSetup(t, perfmodel.NewBareMetal(), true)
	res, err := g.Run(RunConfig{
		Template: template(64), RatePPS: 100_000, Duration: sim.Second,
		LatencySampleEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 ticks -> 1000 batches -> ~100 samples.
	if len(res.Latencies) < 80 || len(res.Latencies) > 120 {
		t.Errorf("samples = %d, want ~100", len(res.Latencies))
	}
}

func TestMaxLatencySamplesBound(t *testing.T) {
	_, g := dutSetup(t, perfmodel.NewBareMetal(), true)
	res, err := g.Run(RunConfig{
		Template: template(64), RatePPS: 100_000, Duration: sim.Second,
		MaxLatencySamples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) > 50 {
		t.Errorf("samples = %d, want <= 50", len(res.Latencies))
	}
}

func TestWriteReportFormat(t *testing.T) {
	_, g := dutSetup(t, perfmodel.NewBareMetal(), true)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 50_000, Duration: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[Device: id=0] TX:",
		"[Device: id=1] RX:",
		"total 100000 packets",
		"Mbit/s with framing",
		"[Latency] avg:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLatencyCSVSorted(t *testing.T) {
	res := RunResult{Latencies: []sim.Duration{300, 100, 200}}
	var buf bytes.Buffer
	if err := res.WriteLatencyCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "100\n200\n300\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestStddev(t *testing.T) {
	if got := stddev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("stddev constant = %v", got)
	}
	if got := stddev([]float64{1}); got != 0 {
		t.Errorf("stddev single = %v", got)
	}
	got := stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got < 2.13 || got > 2.15 {
		t.Errorf("stddev = %v, want ~2.14", got)
	}
}

func BenchmarkGeneratorRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		g := loopback(e, true)
		if _, err := g.Run(RunConfig{Template: template(64), RatePPS: 100_000, Duration: 100 * sim.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}
