package loadgen

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteReport emits a MoonGen-style statistics log for one run. The format
// follows MoonGen's throughput counters closely — per-second device lines
// followed by totals — so downstream tooling written against real MoonGen
// logs parses these reports unchanged:
//
//	[Device: id=0] TX: 0.10 Mpps, 51.20 Mbit/s (67.20 Mbit/s with framing)
//	[Device: id=1] RX: 0.10 Mpps, 51.20 Mbit/s (67.20 Mbit/s with framing)
//	[Device: id=0] TX: 0.10 Mpps (StdDev 0.00), total 1000000 packets, 64000000 bytes
//	[Device: id=1] RX: 0.10 Mpps (StdDev 0.00), total 1000000 packets, 64000000 bytes
//	[Latency] avg: 12345 ns, min: 9000 ns, max: 40000 ns, samples: 1000
func (r RunResult) WriteReport(w io.Writer) error {
	frameBits := float64(r.FrameSize) * 8
	framedBits := float64(r.FrameSize+20) * 8
	for i := range r.PerSecondTx {
		tx := r.PerSecondTx[i]
		if _, err := fmt.Fprintf(w, "[Device: id=0] TX: %.4f Mpps, %.2f Mbit/s (%.2f Mbit/s with framing)\n",
			tx/1e6, tx*frameBits/1e6, tx*framedBits/1e6); err != nil {
			return err
		}
		var rx float64
		if i < len(r.PerSecondRx) {
			rx = r.PerSecondRx[i]
		}
		if _, err := fmt.Fprintf(w, "[Device: id=1] RX: %.4f Mpps, %.2f Mbit/s (%.2f Mbit/s with framing)\n",
			rx/1e6, rx*frameBits/1e6, rx*framedBits/1e6); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "[Device: id=0] TX: %.4f Mpps (StdDev %.4f), total %d packets, %d bytes\n",
		r.TxRatePPS/1e6, stddev(r.PerSecondTx)/1e6, r.TxPackets, r.TxBytes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "[Device: id=1] RX: %.4f Mpps (StdDev %.4f), total %d packets, %d bytes\n",
		r.RxRatePPS/1e6, stddev(r.PerSecondRx)/1e6, r.RxPackets, r.RxBytes); err != nil {
		return err
	}
	if r.LatencyAvailable {
		avg, min, max := r.LatencyStats()
		if _, err := fmt.Fprintf(w, "[Latency] avg: %.0f ns, min: %.0f ns, max: %.0f ns, samples: %d\n",
			avg, min, max, len(r.Latencies)); err != nil {
			return err
		}
	}
	return nil
}

// WriteLatencyCSV emits the raw latency samples in MoonGen's histogram CSV
// convention (one nanosecond value per line, sorted).
func (r RunResult) WriteLatencyCSV(w io.Writer) error {
	sorted := make([]float64, len(r.Latencies))
	for i, d := range r.Latencies {
		sorted[i] = float64(d)
	}
	sort.Float64s(sorted)
	for _, v := range sorted {
		if _, err := fmt.Fprintf(w, "%.0f\n", v); err != nil {
			return err
		}
	}
	return nil
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	variance := sq / float64(len(xs)-1)
	// Round-off can push tiny variances negative.
	if variance < 0 {
		return 0
	}
	return math.Sqrt(variance)
}
