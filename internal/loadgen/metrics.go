package loadgen

import "pos/internal/telemetry"

// Batched data-plane telemetry: how many packet trains the generators emit
// and how large they are. The histogram's buckets span a 1 pps trickle to
// line-rate 64 B trains at millisecond ticks.
var (
	trainsTotal = telemetry.Default.Counter("pos_loadgen_trains_total",
		"Packet trains emitted by batched generators.")
	trainPackets = telemetry.Default.Histogram("pos_loadgen_train_packets",
		"Packets per emitted train.",
		[]float64{1, 10, 100, 1000, 10000, 100000})
)
