// Package loadgen emulates the paper's load generator, MoonGen: a scriptable
// traffic source that synthesizes packets at a configured rate at runtime or
// replays recorded pcap traffic, measures TX/RX throughput per second, and —
// where NIC hardware timestamping is available end to end — samples one-way
// forwarding latency. Its report format mirrors MoonGen's statistics output
// closely enough that the moonparse package plays the role of the paper's
// "parser for MoonGen's output".
package loadgen

import (
	"fmt"
	"math"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/pcap"
	"pos/internal/sim"
)

// Generator is a dual-port traffic source/sink: it transmits on port TX and
// counts what returns on port RX, exactly like the case study's MoonGen host
// whose two NIC ports are wired to the DuT's two ports.
type Generator struct {
	Name string

	engine *sim.Engine
	tx     *netem.Port
	rx     *netem.Port

	// run state
	active        bool
	runEnd        sim.Time
	rxPackets     int64
	rxBytes       int64
	latencies     []sim.Duration
	latencyOK     bool
	perSecondTx   []float64
	perSecondRx   []float64
	curSecTx      int64
	curSecRx      int64
	latencyCap    int
	sampleCounter int
	sampleEvery   int

	// profile models the generator implementation's fidelity; noise
	// drives its burst and timestamp jitter.
	profile Profile
	noise   *sim.Rand
}

// New returns a generator whose ports are named <name>.tx / <name>.rx.
// hardwareTimestamps marks the NIC as latency-measurement capable (true on
// the bare-metal testbed, false on vpos).
func New(e *sim.Engine, name string, hardwareTimestamps bool) *Generator {
	g := &Generator{Name: name, engine: e}
	g.tx = netem.NewPort(name+".tx", nil)
	g.rx = netem.NewPort(name+".rx", g)
	g.tx.HardwareTimestamps = hardwareTimestamps
	g.rx.HardwareTimestamps = hardwareTimestamps
	// The default profile is an idealized MoonGen: millisecond batching,
	// no burst jitter, timestamping as wired. NewWithProfile installs the
	// fidelity models of concrete generator implementations.
	g.profile = Profile{Name: "moongen", TickInterval: DefaultTickInterval, HardwareTimestamps: hardwareTimestamps}
	g.noise = sim.NewRand(1)
	return g
}

// TxPort returns the transmit port to wire to the DuT ingress.
func (g *Generator) TxPort() *netem.Port { return g.tx }

// RxPort returns the receive port to wire to the DuT egress.
func (g *Generator) RxPort() *netem.Port { return g.rx }

// RunConfig describes one measurement run.
type RunConfig struct {
	// Template is the synthetic frame prototype (ignored when Replay is
	// set).
	Template packet.UDPTemplate
	// Replay, when non-empty, replays these captured frames round-robin
	// instead of synthesizing from Template.
	Replay []pcap.Packet
	// RatePPS is the offered load in packets per second.
	RatePPS float64
	// Duration is the measurement window length.
	Duration sim.Duration
	// TickInterval is the batching granularity; 0 defaults to 1 ms.
	TickInterval sim.Duration
	// MaxLatencySamples bounds memory for latency sampling; 0 defaults
	// to 100000.
	MaxLatencySamples int
	// DrainGrace extends RX accounting past the transmit window so
	// packets still in the forwarding pipeline when the generator stops
	// are not misreported as loss (MoonGen keeps its RX counters running
	// after TX ends for the same reason). 0 defaults to 5 ms; negative
	// disables the grace entirely.
	DrainGrace sim.Duration
	// LatencySampleEvery samples one batch in N; 0 defaults to 1.
	LatencySampleEvery int
}

// DefaultTickInterval is the batch granularity of the generator.
const DefaultTickInterval = sim.Millisecond

// DefaultDrainGrace is how long RX counters keep running after the transmit
// window ends.
const DefaultDrainGrace = 5 * sim.Millisecond

// RunResult holds the outcome of one measurement run — the generator-side
// ground truth the evaluation phase consumes.
type RunResult struct {
	// FrameSize is the on-wire frame size used.
	FrameSize int
	// OfferedPPS is the configured rate.
	OfferedPPS float64
	// Duration is the configured measurement window.
	Duration sim.Duration

	// TxPackets/TxBytes were handed to the NIC; TxDropped were refused by
	// the wire (line-rate excess).
	TxPackets, TxBytes, TxDropped int64
	// RxPackets/RxBytes arrived back within the window.
	RxPackets, RxBytes int64

	// TxRatePPS and RxRatePPS are window-average rates.
	TxRatePPS, RxRatePPS float64
	// RxMbps is the RX goodput at the Ethernet layer.
	RxMbps float64
	// PerSecondTx and PerSecondRx hold per-second rate samples.
	PerSecondTx, PerSecondRx []float64

	// LatencyAvailable reports whether hardware timestamping held end to
	// end; when false, Latencies is empty (the vpos situation).
	LatencyAvailable bool
	// Latencies are sampled one-way delays.
	Latencies []sim.Duration
}

// LossRatio returns the fraction of transmitted packets that never returned.
func (r RunResult) LossRatio() float64 {
	if r.TxPackets == 0 {
		return 0
	}
	return 1 - float64(r.RxPackets)/float64(r.TxPackets)
}

// LatencyStats summarizes the latency samples (ns): average, min, max.
func (r RunResult) LatencyStats() (avg, min, max float64) {
	if len(r.Latencies) == 0 {
		return 0, 0, 0
	}
	min = math.MaxFloat64
	for _, d := range r.Latencies {
		f := float64(d)
		avg += f
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	avg /= float64(len(r.Latencies))
	return avg, min, max
}

// Run executes one measurement run to completion on the generator's engine
// and returns the measured result. It drives the engine itself; the caller
// must not be inside an engine callback.
func (g *Generator) Run(cfg RunConfig) (RunResult, error) {
	if g.active {
		return RunResult{}, fmt.Errorf("loadgen %s: run already active", g.Name)
	}
	if cfg.RatePPS <= 0 {
		return RunResult{}, fmt.Errorf("loadgen %s: non-positive rate %v", g.Name, cfg.RatePPS)
	}
	if cfg.Duration <= 0 {
		return RunResult{}, fmt.Errorf("loadgen %s: non-positive duration %v", g.Name, cfg.Duration)
	}
	tick := cfg.TickInterval
	if tick <= 0 {
		tick = g.profile.TickInterval
	}
	if tick <= 0 {
		tick = DefaultTickInterval
	}
	if tick > cfg.Duration {
		tick = cfg.Duration
	}

	var frames [][]byte
	if len(cfg.Replay) > 0 {
		for _, p := range cfg.Replay {
			frames = append(frames, p.Data)
		}
	} else {
		data, err := cfg.Template.Build()
		if err != nil {
			return RunResult{}, fmt.Errorf("loadgen %s: %w", g.Name, err)
		}
		frames = [][]byte{data}
	}

	g.active = true
	start := g.engine.Now()
	grace := cfg.DrainGrace
	if grace == 0 {
		grace = DefaultDrainGrace
	}
	if grace < 0 {
		grace = 0
	}
	g.runEnd = start.Add(cfg.Duration + grace)
	g.rxPackets, g.rxBytes = 0, 0
	g.latencies = g.latencies[:0]
	g.latencyOK = g.tx.HardwareTimestamps && g.rx.HardwareTimestamps
	g.perSecondTx, g.perSecondRx = nil, nil
	g.curSecTx, g.curSecRx = 0, 0
	g.latencyCap = cfg.MaxLatencySamples
	if g.latencyCap <= 0 {
		g.latencyCap = 100000
	}
	g.sampleEvery = cfg.LatencySampleEvery
	if g.sampleEvery <= 0 {
		g.sampleEvery = 1
	}
	g.sampleCounter = 0

	txBefore := g.tx.Stats()

	// Schedule transmit ticks with fractional-packet carry so any rate is
	// hit exactly on average.
	var carry float64
	frameIdx := 0
	perTickExact := cfg.RatePPS * tick.Seconds()
	var secMark sim.Time = start.Add(sim.Second)
	for at := sim.Duration(0); at < cfg.Duration; at += tick {
		g.engine.At(start.Add(at), func(now sim.Time) {
			emit := perTickExact
			if g.profile.BurstJitter > 0 {
				// Kernel scheduling makes sockets-based
				// generators bursty: per-tick emission varies,
				// long-run rate is preserved by the carry.
				f := 1 + g.profile.BurstJitter*g.noise.NormFloat64()
				if f < 0 {
					f = 0
				}
				emit *= f
			}
			carry += emit
			n := int64(carry)
			carry -= float64(n)
			if n == 0 {
				return
			}
			for now >= secMark {
				g.rotateSecond()
				secMark = secMark.Add(sim.Second)
			}
			frame := frames[frameIdx]
			frameIdx = (frameIdx + 1) % len(frames)
			g.tx.Send(now, netem.Batch{
				Data:        frame,
				FrameSize:   len(frame),
				Count:       n,
				SentAt:      now,
				Timestamped: true,
			})
			g.curSecTx += n
		})
	}

	// Let in-flight traffic land: run the engine until quiescent. RX
	// accounting in HandleBatch ignores anything after runEnd.
	if err := g.engine.Run(); err != nil {
		g.active = false
		return RunResult{}, err
	}
	g.rotateSecond()
	g.active = false

	txAfter := g.tx.Stats()
	frameSize := len(frames[0])
	res := RunResult{
		FrameSize:        frameSize,
		OfferedPPS:       cfg.RatePPS,
		Duration:         cfg.Duration,
		TxPackets:        txAfter.TxPackets - txBefore.TxPackets,
		TxBytes:          txAfter.TxBytes - txBefore.TxBytes,
		TxDropped:        txAfter.TxDropped - txBefore.TxDropped,
		RxPackets:        g.rxPackets,
		RxBytes:          g.rxBytes,
		PerSecondTx:      append([]float64(nil), g.perSecondTx...),
		PerSecondRx:      append([]float64(nil), g.perSecondRx...),
		LatencyAvailable: len(g.latencies) > 0,
		Latencies:        append([]sim.Duration(nil), g.latencies...),
	}
	secs := cfg.Duration.Seconds()
	res.TxRatePPS = float64(res.TxPackets) / secs
	res.RxRatePPS = float64(res.RxPackets) / secs
	res.RxMbps = float64(res.RxBytes) * 8 / secs / 1e6
	if !res.LatencyAvailable {
		res.Latencies = nil
	}
	return res, nil
}

func (g *Generator) rotateSecond() {
	g.perSecondTx = append(g.perSecondTx, float64(g.curSecTx))
	g.perSecondRx = append(g.perSecondRx, float64(g.curSecRx))
	g.curSecTx, g.curSecRx = 0, 0
}

// HandleBatch implements netem.Device for the RX port.
func (g *Generator) HandleBatch(now sim.Time, in netem.Batch, rx *netem.Port) {
	if !g.active || now > g.runEnd {
		return
	}
	g.rxPackets += in.Count
	g.rxBytes += in.Bytes()
	g.curSecRx += in.Count
	if !in.Timestamped {
		// A hop without hardware timestamps breaks hardware latency
		// measurement for the whole run — the paper's vpos limitation.
		g.latencyOK = false
	}
	hwSample := g.latencyOK && in.Timestamped
	swSample := !hwSample && g.profile.SoftwareTimestamps
	if !hwSample && !swSample {
		return
	}
	g.sampleCounter++
	if g.sampleCounter%g.sampleEvery != 0 || len(g.latencies) >= g.latencyCap {
		return
	}
	d := in.Delay
	if swSample {
		// Host-clock timestamping: the true delay plus scheduling and
		// clock-read noise, never negative.
		d += sim.Duration(float64(g.profile.TimestampNoise) * g.noise.NormFloat64())
		if d < 0 {
			d = 0
		}
	}
	g.latencies = append(g.latencies, d)
}
