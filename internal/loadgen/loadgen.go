// Package loadgen emulates the paper's load generator, MoonGen: a scriptable
// traffic source that synthesizes packets at a configured rate at runtime or
// replays recorded pcap traffic, measures TX/RX throughput per second, and —
// where NIC hardware timestamping is available end to end — samples one-way
// forwarding latency. Its report format mirrors MoonGen's statistics output
// closely enough that the moonparse package plays the role of the paper's
// "parser for MoonGen's output".
//
// The generator has two emission paths. The scalar path pre-schedules one
// heap event per tick — the original engine, kept verbatim as the
// differential-test oracle. The batched path (engine in Batching mode) emits
// one packet train per tick from a sim.Ticker lane and lets the network
// deliver cut-through, which removes every per-tick heap operation and
// closure allocation; its emission schedule and per-second bucketing are
// computed so the two paths produce byte-identical results.
package loadgen

import (
	"fmt"
	"math"
	"sort"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/pcap"
	"pos/internal/sim"
)

// tsNoiseSeedOffset derives the RX timestamp-noise stream from the profile
// seed. TX jitter and RX noise draw from separate streams so that emission
// scheduling can be precomputed without perturbing the per-arrival noise
// sequence.
const tsNoiseSeedOffset = 0x9E3779B97F4A7C15

// Generator is a dual-port traffic source/sink: it transmits on port TX and
// counts what returns on port RX, exactly like the case study's MoonGen host
// whose two NIC ports are wired to the DuT's two ports.
type Generator struct {
	Name string

	engine *sim.Engine
	tx     *netem.Port
	rx     *netem.Port

	// run state
	active        bool
	batched       bool
	runEnd        sim.Time
	rxPackets     int64
	rxBytes       int64
	latencies     []sim.Duration
	latencyOK     bool
	perSecondTx   []float64
	perSecondRx   []float64
	curSecTx      int64
	curSecRx      int64
	latencyCap    int
	sampleCounter int
	sampleEvery   int

	// batched-path state, all buffers reused across runs.
	emit      []int64    // per-tick emission counts, precomputed at Start
	rotations []sim.Time // per-second rotation instants (tick times)
	rxBuckets []int64    // RX counts per bucket, indexed by rxBucket walk
	rxBucket  int
	tickIdx   int

	frames   [][]byte
	frameIdx int
	frame    []byte // cached synthesized template frame

	// profile models the generator implementation's fidelity; noise
	// drives its burst jitter, tsNoise its software-timestamp error.
	profile Profile
	noise   *sim.Rand
	tsNoise *sim.Rand
}

// New returns a generator whose ports are named <name>.tx / <name>.rx.
// hardwareTimestamps marks the NIC as latency-measurement capable (true on
// the bare-metal testbed, false on vpos).
func New(e *sim.Engine, name string, hardwareTimestamps bool) *Generator {
	g := &Generator{Name: name, engine: e}
	g.tx = netem.NewPort(name+".tx", nil)
	g.rx = netem.NewPort(name+".rx", g)
	g.tx.HardwareTimestamps = hardwareTimestamps
	g.rx.HardwareTimestamps = hardwareTimestamps
	// The default profile is an idealized MoonGen: millisecond batching,
	// no burst jitter, timestamping as wired. NewWithProfile installs the
	// fidelity models of concrete generator implementations.
	g.profile = Profile{Name: "moongen", TickInterval: DefaultTickInterval, HardwareTimestamps: hardwareTimestamps}
	g.noise = sim.NewRand(1)
	g.tsNoise = sim.NewRand(1 + tsNoiseSeedOffset)
	return g
}

// TxPort returns the transmit port to wire to the DuT ingress.
func (g *Generator) TxPort() *netem.Port { return g.tx }

// RxPort returns the receive port to wire to the DuT egress.
func (g *Generator) RxPort() *netem.Port { return g.rx }

// RunConfig describes one measurement run.
type RunConfig struct {
	// Template is the synthetic frame prototype (ignored when Replay is
	// set).
	Template packet.UDPTemplate
	// Replay, when non-empty, replays these captured frames round-robin
	// instead of synthesizing from Template.
	Replay []pcap.Packet
	// RatePPS is the offered load in packets per second.
	RatePPS float64
	// Duration is the measurement window length.
	Duration sim.Duration
	// TickInterval is the batching granularity; 0 defaults to 1 ms.
	TickInterval sim.Duration
	// MaxLatencySamples bounds memory for latency sampling; 0 defaults
	// to 100000.
	MaxLatencySamples int
	// DrainGrace extends RX accounting past the transmit window so
	// packets still in the forwarding pipeline when the generator stops
	// are not misreported as loss (MoonGen keeps its RX counters running
	// after TX ends for the same reason). 0 defaults to 5 ms; negative
	// disables the grace entirely.
	DrainGrace sim.Duration
	// LatencySampleEvery samples one batch in N; 0 defaults to 1.
	LatencySampleEvery int
}

// DefaultTickInterval is the batch granularity of the generator.
const DefaultTickInterval = sim.Millisecond

// DefaultDrainGrace is how long RX counters keep running after the transmit
// window ends.
const DefaultDrainGrace = 5 * sim.Millisecond

// RunResult holds the outcome of one measurement run — the generator-side
// ground truth the evaluation phase consumes.
type RunResult struct {
	// FrameSize is the on-wire frame size used.
	FrameSize int
	// OfferedPPS is the configured rate.
	OfferedPPS float64
	// Duration is the configured measurement window.
	Duration sim.Duration

	// TxPackets/TxBytes were handed to the NIC; TxDropped were refused by
	// the wire (line-rate excess).
	TxPackets, TxBytes, TxDropped int64
	// RxPackets/RxBytes arrived back within the window.
	RxPackets, RxBytes int64

	// TxRatePPS and RxRatePPS are window-average rates.
	TxRatePPS, RxRatePPS float64
	// RxMbps is the RX goodput at the Ethernet layer.
	RxMbps float64
	// PerSecondTx and PerSecondRx hold per-second rate samples.
	PerSecondTx, PerSecondRx []float64

	// LatencyAvailable reports whether hardware timestamping held end to
	// end; when false, Latencies is empty (the vpos situation).
	LatencyAvailable bool
	// Latencies are sampled one-way delays.
	Latencies []sim.Duration
}

// LossRatio returns the fraction of transmitted packets that never returned.
func (r RunResult) LossRatio() float64 {
	if r.TxPackets == 0 {
		return 0
	}
	return 1 - float64(r.RxPackets)/float64(r.TxPackets)
}

// LatencyStats summarizes the latency samples (ns): average, min, max.
func (r RunResult) LatencyStats() (avg, min, max float64) {
	if len(r.Latencies) == 0 {
		return 0, 0, 0
	}
	min = math.MaxFloat64
	for _, d := range r.Latencies {
		f := float64(d)
		avg += f
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	avg /= float64(len(r.Latencies))
	return avg, min, max
}

// ActiveRun is a measurement run that has been scheduled on the engine but
// not yet finalized. External drivers (sharded sweeps) start runs, advance
// the engine themselves, and collect the result once the engine is idle.
type ActiveRun struct {
	g         *Generator
	cfg       RunConfig
	frameSize int
	txBefore  netem.Counters
	finalized bool
}

// Run executes one measurement run to completion on the generator's engine
// and returns the measured result. It drives the engine itself; the caller
// must not be inside an engine callback.
func (g *Generator) Run(cfg RunConfig) (RunResult, error) {
	return g.RunOn(cfg, g.engine.Run)
}

// RunOn executes one measurement run, advancing the data plane with the
// given drive function instead of the generator's own engine — the hook a
// partitioned topology uses to run a whole sim.ShardGroup to quiescence
// around the generator's schedule.
func (g *Generator) RunOn(cfg RunConfig, drive func() error) (RunResult, error) {
	ar, err := g.Start(cfg)
	if err != nil {
		return RunResult{}, err
	}
	if err := drive(); err != nil {
		g.active = false
		return RunResult{}, err
	}
	return ar.Result()
}

// Start validates the configuration and schedules the run's transmit
// activity on the engine without driving it. The caller runs the engine to
// quiescence (directly or through a sim.ShardGroup) and then calls Result.
func (g *Generator) Start(cfg RunConfig) (*ActiveRun, error) {
	if g.active {
		return nil, fmt.Errorf("loadgen %s: run already active", g.Name)
	}
	if cfg.RatePPS <= 0 {
		return nil, fmt.Errorf("loadgen %s: non-positive rate %v", g.Name, cfg.RatePPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen %s: non-positive duration %v", g.Name, cfg.Duration)
	}
	tick := cfg.TickInterval
	if tick <= 0 {
		tick = g.profile.TickInterval
	}
	if tick <= 0 {
		tick = DefaultTickInterval
	}
	if tick > cfg.Duration {
		tick = cfg.Duration
	}

	g.frames = g.frames[:0]
	if len(cfg.Replay) > 0 {
		for _, p := range cfg.Replay {
			g.frames = append(g.frames, p.Data)
		}
	} else {
		data, err := cfg.Template.BuildReuse(g.frame)
		if err != nil {
			return nil, fmt.Errorf("loadgen %s: %w", g.Name, err)
		}
		g.frame = data
		g.frames = append(g.frames, data)
	}

	g.active = true
	g.batched = g.engine.Batching()
	start := g.engine.Now()
	grace := cfg.DrainGrace
	if grace == 0 {
		grace = DefaultDrainGrace
	}
	if grace < 0 {
		grace = 0
	}
	g.runEnd = start.Add(cfg.Duration + grace)
	g.rxPackets, g.rxBytes = 0, 0
	g.latencies = g.latencies[:0]
	g.latencyOK = g.tx.HardwareTimestamps && g.rx.HardwareTimestamps
	g.perSecondTx, g.perSecondRx = g.perSecondTx[:0], g.perSecondRx[:0]
	g.curSecTx, g.curSecRx = 0, 0
	g.latencyCap = cfg.MaxLatencySamples
	if g.latencyCap <= 0 {
		g.latencyCap = 100000
	}
	g.sampleEvery = cfg.LatencySampleEvery
	if g.sampleEvery <= 0 {
		g.sampleEvery = 1
	}
	g.sampleCounter = 0
	g.frameIdx = 0

	ar := &ActiveRun{g: g, cfg: cfg, frameSize: len(g.frames[0]), txBefore: g.tx.Stats()}
	if g.batched {
		g.startBatched(cfg, start, tick)
	} else {
		g.startScalar(cfg, start, tick)
	}
	return ar, nil
}

// startScalar pre-schedules one heap event per tick — the original emission
// engine, preserved as the differential-test oracle.
func (g *Generator) startScalar(cfg RunConfig, start sim.Time, tick sim.Duration) {
	// Schedule transmit ticks with fractional-packet carry so any rate is
	// hit exactly on average.
	var carry float64
	perTickExact := cfg.RatePPS * tick.Seconds()
	var secMark sim.Time = start.Add(sim.Second)
	for at := sim.Duration(0); at < cfg.Duration; at += tick {
		g.engine.At(start.Add(at), func(now sim.Time) {
			emit := perTickExact
			if g.profile.BurstJitter > 0 {
				// Kernel scheduling makes sockets-based
				// generators bursty: per-tick emission varies,
				// long-run rate is preserved by the carry.
				f := 1 + g.profile.BurstJitter*g.noise.NormFloat64()
				if f < 0 {
					f = 0
				}
				emit *= f
			}
			carry += emit
			n := int64(carry)
			carry -= float64(n)
			if n == 0 {
				return
			}
			for now >= secMark {
				g.rotateSecond()
				secMark = secMark.Add(sim.Second)
			}
			frame := g.frames[g.frameIdx]
			g.frameIdx = (g.frameIdx + 1) % len(g.frames)
			g.tx.Send(now, netem.Batch{
				Data:        frame,
				FrameSize:   len(frame),
				Count:       n,
				SentAt:      now,
				Timestamped: true,
			})
			g.curSecTx += n
		})
	}
}

// startBatched precomputes the whole emission schedule — per-tick train
// sizes, per-second TX buckets and the rotation instants that delimit RX
// buckets — and registers a single ticker lane to emit it. The arithmetic is
// tick-for-tick the scalar handler's, so the schedule (and with it every
// derived statistic) is identical; only the heap events disappear.
func (g *Generator) startBatched(cfg RunConfig, start sim.Time, tick sim.Duration) {
	g.emit = g.emit[:0]
	g.rotations = g.rotations[:0]
	var carry float64
	var curSecTx int64
	perTickExact := cfg.RatePPS * tick.Seconds()
	secMark := start.Add(sim.Second)
	nTicks := 0
	for at := sim.Duration(0); at < cfg.Duration; at += tick {
		now := start.Add(at)
		nTicks++
		emit := perTickExact
		if g.profile.BurstJitter > 0 {
			f := 1 + g.profile.BurstJitter*g.noise.NormFloat64()
			if f < 0 {
				f = 0
			}
			emit *= f
		}
		carry += emit
		n := int64(carry)
		carry -= float64(n)
		g.emit = append(g.emit, n)
		if n == 0 {
			continue
		}
		// The scalar handler rotates lazily: buckets close at the first
		// emitting tick past the boundary, and an RX batch delivered at
		// exactly that instant lands in the new bucket because the tick
		// event carries a lower sequence number. Recording the instant
		// (repeated when one tick closes several empty seconds) lets
		// HandleBatch reproduce that assignment from timestamps alone.
		for now >= secMark {
			g.perSecondTx = append(g.perSecondTx, float64(curSecTx))
			g.rotations = append(g.rotations, now)
			curSecTx = 0
			secMark = secMark.Add(sim.Second)
		}
		curSecTx += n
	}
	g.curSecTx = curSecTx
	g.rxBuckets = g.rxBuckets[:0]
	for i := 0; i <= len(g.rotations); i++ {
		g.rxBuckets = append(g.rxBuckets, 0)
	}
	g.rxBucket = 0
	g.tickIdx = 0
	// Train telemetry flushes here, once per run: the schedule is known in
	// full, so a single aggregation pass replaces three atomics per tick in
	// the emission hot path. Distinct train sizes are few (carry keeps them
	// within one packet of each other; jitter widens the set a little).
	sizes := make(map[int64]uint64, 4)
	var trains uint64
	for _, n := range g.emit {
		if n > 0 {
			sizes[n]++
			trains++
		}
	}
	order := make([]int64, 0, len(sizes))
	for v := range sizes {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		trainPackets.ObserveN(float64(v), sizes[v])
	}
	trainsTotal.Add(float64(trains))
	g.engine.Ticks(start, tick, nTicks, g.batchedTick)
}

// batchedTick emits one precomputed packet train. No RNG, no heap events,
// no allocations: the hot path is a slice read and a cut-through Send.
func (g *Generator) batchedTick(now sim.Time) {
	n := g.emit[g.tickIdx]
	g.tickIdx++
	if n == 0 {
		return
	}
	frame := g.frames[g.frameIdx]
	if g.frameIdx++; g.frameIdx == len(g.frames) {
		g.frameIdx = 0
	}
	g.tx.Send(now, netem.Batch{
		Data:        frame,
		FrameSize:   len(frame),
		Count:       n,
		SentAt:      now,
		Timestamped: true,
	})
}

// Result finalizes the run and assembles its statistics. The engine must
// have gone quiescent (all scheduled ticks fired, all deliveries landed)
// since Start.
func (ar *ActiveRun) Result() (RunResult, error) {
	g := ar.g
	if ar.finalized {
		return RunResult{}, fmt.Errorf("loadgen %s: run already finalized", g.Name)
	}
	if g.batched && g.tickIdx < len(g.emit) {
		return RunResult{}, fmt.Errorf("loadgen %s: %d of %d ticks still pending; run the engine to quiescence before Result", g.Name, len(g.emit)-g.tickIdx, len(g.emit))
	}
	ar.finalized = true
	g.active = false
	cfg := ar.cfg

	var perSecTx, perSecRx []float64
	if g.batched {
		perSecTx = append([]float64(nil), g.perSecondTx...)
		perSecTx = append(perSecTx, float64(g.curSecTx))
		perSecRx = make([]float64, len(g.rxBuckets))
		for i, n := range g.rxBuckets {
			perSecRx[i] = float64(n)
		}
	} else {
		g.rotateSecond()
		perSecTx = append([]float64(nil), g.perSecondTx...)
		perSecRx = append([]float64(nil), g.perSecondRx...)
	}

	txAfter := g.tx.Stats()
	res := RunResult{
		FrameSize:        ar.frameSize,
		OfferedPPS:       cfg.RatePPS,
		Duration:         cfg.Duration,
		TxPackets:        txAfter.TxPackets - ar.txBefore.TxPackets,
		TxBytes:          txAfter.TxBytes - ar.txBefore.TxBytes,
		TxDropped:        txAfter.TxDropped - ar.txBefore.TxDropped,
		RxPackets:        g.rxPackets,
		RxBytes:          g.rxBytes,
		PerSecondTx:      perSecTx,
		PerSecondRx:      perSecRx,
		LatencyAvailable: len(g.latencies) > 0,
		Latencies:        append([]sim.Duration(nil), g.latencies...),
	}
	secs := cfg.Duration.Seconds()
	res.TxRatePPS = float64(res.TxPackets) / secs
	res.RxRatePPS = float64(res.RxPackets) / secs
	res.RxMbps = float64(res.RxBytes) * 8 / secs / 1e6
	if !res.LatencyAvailable {
		res.Latencies = nil
	}
	return res, nil
}

func (g *Generator) rotateSecond() {
	g.perSecondTx = append(g.perSecondTx, float64(g.curSecTx))
	g.perSecondRx = append(g.perSecondRx, float64(g.curSecRx))
	g.curSecTx, g.curSecRx = 0, 0
}

// HandleBatch implements netem.Device for the RX port.
func (g *Generator) HandleBatch(now sim.Time, in netem.Batch, rx *netem.Port) {
	if !g.active || now > g.runEnd {
		return
	}
	g.rxPackets += in.Count
	g.rxBytes += in.Bytes()
	if g.batched {
		// Timestamp-based bucketing: cut-through deliveries arrive in
		// timestamp order per flow, so a monotone walk over the
		// precomputed rotation instants reproduces the scalar engine's
		// event-ordered bucket assignment (ties go to the new bucket,
		// as the rotating tick fires first in the scalar engine).
		for g.rxBucket < len(g.rotations) && now >= g.rotations[g.rxBucket] {
			g.rxBucket++
		}
		g.rxBuckets[g.rxBucket] += in.Count
	} else {
		g.curSecRx += in.Count
	}
	if !in.Timestamped {
		// A hop without hardware timestamps breaks hardware latency
		// measurement for the whole run — the paper's vpos limitation.
		g.latencyOK = false
	}
	hwSample := g.latencyOK && in.Timestamped
	swSample := !hwSample && g.profile.SoftwareTimestamps
	if !hwSample && !swSample {
		return
	}
	g.sampleCounter++
	if g.sampleCounter%g.sampleEvery != 0 || len(g.latencies) >= g.latencyCap {
		return
	}
	d := in.Delay
	if swSample {
		// Host-clock timestamping: the true delay plus scheduling and
		// clock-read noise, never negative. Drawn from a stream
		// separate from the TX jitter so arrival-order noise is
		// independent of how emission was scheduled.
		d += sim.Duration(float64(g.profile.TimestampNoise) * g.tsNoise.NormFloat64())
		if d < 0 {
			d = 0
		}
	}
	g.latencies = append(g.latencies, d)
}
