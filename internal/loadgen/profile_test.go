package loadgen

import (
	"math"
	"testing"

	"pos/internal/netem"
	"pos/internal/perfmodel"
	"pos/internal/router"
	"pos/internal/sim"
)

// profiledRig wires a profiled generator to a bare-metal router.
func profiledRig(t testing.TB, p Profile) (*sim.Engine, *Generator) {
	t.Helper()
	e := sim.NewEngine()
	g := NewWithProfile(e, "gen", p)
	r, err := router.New(e, router.Config{Name: "dut", Model: perfmodel.NewBareMetal(), HardwareTimestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	netem.Wire(e, g.TxPort(), r.Port(0), netem.LinkConfig{})
	netem.Wire(e, r.Port(1), g.RxPort(), netem.LinkConfig{})
	return e, g
}

// interTickStddev measures the relative variation of emission across
// sub-second windows by sampling per-second counters over a long run at a
// rate that should be constant.
func runProfile(t testing.TB, p Profile) RunResult {
	t.Helper()
	_, g := profiledRig(t, p)
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 100_000, Duration: 5 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func relStddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(xs)-1)) / mean
}

func TestOSNTRateIsExact(t *testing.T) {
	res := runProfile(t, OSNTProfile())
	if res.TxPackets != 500_000 {
		t.Errorf("TxPackets = %d, want exactly 500000", res.TxPackets)
	}
	if cv := relStddev(res.PerSecondTx[:5]); cv > 1e-9 {
		t.Errorf("OSNT per-second variation = %v, want 0", cv)
	}
}

func TestIPerfIsBurstier(t *testing.T) {
	moon := runProfile(t, MoonGenProfile())
	iperf := runProfile(t, IPerfProfile())
	cvMoon := relStddev(moon.PerSecondTx[:5])
	cvIPerf := relStddev(iperf.PerSecondTx[:5])
	if cvIPerf <= cvMoon {
		t.Errorf("iperf per-second variation %v <= moongen %v, want burstier", cvIPerf, cvMoon)
	}
	// Long-run rate is still approximately preserved.
	if iperf.TxPackets < 480_000 || iperf.TxPackets > 520_000 {
		t.Errorf("iperf total = %d, want ~500000", iperf.TxPackets)
	}
}

func TestIPerfLatencyNoisierThanMoonGen(t *testing.T) {
	moon := runProfile(t, MoonGenProfile())
	iperf := runProfile(t, IPerfProfile())
	if !moon.LatencyAvailable || !iperf.LatencyAvailable {
		t.Fatalf("latency availability: moongen=%v iperf=%v", moon.LatencyAvailable, iperf.LatencyAvailable)
	}
	spread := func(r RunResult) float64 {
		var xs []float64
		for _, d := range r.Latencies {
			xs = append(xs, float64(d))
		}
		return relStddev(xs)
	}
	if spread(iperf) <= spread(moon) {
		t.Errorf("iperf latency spread %v <= moongen %v, want noisier software timestamps", spread(iperf), spread(moon))
	}
}

func TestIPerfLatencySurvivesNonTimestampedPath(t *testing.T) {
	// Even on a path without hardware timestamps (vpos-style), a
	// software-timestamping generator still reports (noisy) latency.
	e := sim.NewEngine()
	g := NewWithProfile(e, "gen", IPerfProfile())
	r, err := router.New(e, router.Config{Name: "dut", Model: perfmodel.NewVirtual(1), HardwareTimestamps: false})
	if err != nil {
		t.Fatal(err)
	}
	netem.Wire(e, g.TxPort(), r.Port(0), netem.LinkConfig{})
	netem.Wire(e, r.Port(1), g.RxPort(), netem.LinkConfig{})
	res, err := g.Run(RunConfig{Template: template(64), RatePPS: 20_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LatencyAvailable {
		t.Error("software timestamps should survive a non-hw path")
	}
	// And MoonGen on the same path cannot measure latency at all.
	e2 := sim.NewEngine()
	g2 := NewWithProfile(e2, "gen", MoonGenProfile())
	r2, _ := router.New(e2, router.Config{Name: "dut", Model: perfmodel.NewVirtual(1), HardwareTimestamps: false})
	netem.Wire(e2, g2.TxPort(), r2.Port(0), netem.LinkConfig{})
	netem.Wire(e2, r2.Port(1), g2.RxPort(), netem.LinkConfig{})
	res2, err := g2.Run(RunConfig{Template: template(64), RatePPS: 20_000, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.LatencyAvailable {
		t.Error("hardware-timestamp generator measured latency on a non-hw path")
	}
}

func TestProfileTickDefaultsApplied(t *testing.T) {
	// OSNT emits every 100µs: 5000 ticks over 0.5 s. At 100 kpps that is
	// 10 packets per tick, so per-second counters must be exact and the
	// batch count high — observable through per-second sample stability.
	res := runProfile(t, OSNTProfile())
	if len(res.PerSecondTx) < 5 {
		t.Fatalf("samples = %d", len(res.PerSecondTx))
	}
	for i := 0; i < 5; i++ {
		if res.PerSecondTx[i] != 100_000 {
			t.Errorf("second %d: tx = %v, want exactly 100000", i, res.PerSecondTx[i])
		}
	}
}

func TestProfileSeedsDeterministic(t *testing.T) {
	a := runProfile(t, IPerfProfile())
	b := runProfile(t, IPerfProfile())
	if a.TxPackets != b.TxPackets || a.RxPackets != b.RxPackets {
		t.Errorf("same-seed iperf runs differ: %d/%d vs %d/%d", a.TxPackets, a.RxPackets, b.TxPackets, b.RxPackets)
	}
}
