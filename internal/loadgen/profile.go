package loadgen

import "pos/internal/sim"

// Profile models the fidelity of a traffic-generator implementation. The
// paper's load-generator discussion (Sec. 4.2) distinguishes three classes,
// citing the "Mind the Gap" comparison of packet generators:
//
//   - MoonGen: DPDK-based, fine-grained software rate control and NIC
//     hardware timestamps — "precision and accuracy … superior to other
//     software packet generators".
//   - OSNT: a NetFPGA hardware generator — cycle-exact rates and
//     hardware timestamping.
//   - iPerf: a plain sockets-based generator on an off-the-shelf host —
//     kernel batching makes emission bursty, and only noisy software
//     timestamps are available for latency.
//
// Profiles let the same Generator reproduce all three, so the testbed can
// quantify the gap (see BenchmarkMindTheGap).
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// TickInterval is the emission granularity: how often the generator
	// wakes to transmit a batch.
	TickInterval sim.Duration
	// BurstJitter is the relative standard deviation of per-tick emission
	// counts (kernel scheduling noise); the long-run average rate is
	// preserved via the carry accumulator.
	BurstJitter float64
	// HardwareTimestamps marks NIC hardware timestamping capability.
	HardwareTimestamps bool
	// SoftwareTimestamps enables host-clock latency sampling when
	// hardware timestamps are unavailable end to end; samples carry
	// TimestampNoise.
	SoftwareTimestamps bool
	// TimestampNoise is the standard deviation of software-timestamp
	// error added to each latency sample.
	TimestampNoise sim.Duration
	// Seed drives the profile's noise sources.
	Seed uint64
}

// MoonGenProfile models the paper's default load generator.
func MoonGenProfile() Profile {
	return Profile{
		Name:               "moongen",
		TickInterval:       sim.Millisecond,
		BurstJitter:        0.01,
		HardwareTimestamps: true,
		Seed:               1,
	}
}

// OSNTProfile models the NetFPGA-based hardware generator: finer emission
// granularity, zero burst jitter, hardware timestamps.
func OSNTProfile() Profile {
	return Profile{
		Name:               "osnt",
		TickInterval:       100 * sim.Microsecond,
		BurstJitter:        0,
		HardwareTimestamps: true,
		Seed:               1,
	}
}

// IPerfProfile models a sockets-based generator: coarse, bursty emission and
// noisy software timestamps only.
func IPerfProfile() Profile {
	return Profile{
		Name:               "iperf",
		TickInterval:       4 * sim.Millisecond,
		BurstJitter:        0.25,
		HardwareTimestamps: false,
		SoftwareTimestamps: true,
		TimestampNoise:     30 * sim.Microsecond,
		Seed:               1,
	}
}

// NewWithProfile returns a generator whose emission behaviour follows the
// profile.
func NewWithProfile(e *sim.Engine, name string, p Profile) *Generator {
	g := New(e, name, p.HardwareTimestamps)
	g.profile = p
	g.noise = sim.NewRand(p.Seed)
	g.tsNoise = sim.NewRand(p.Seed + tsNoiseSeedOffset)
	return g
}
