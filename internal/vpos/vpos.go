// Package vpos implements the virtual-testbed service the paper operates at
// virtualtestbed.net.in.tum.de: a web service where researchers create
// disposable vpos instances "with a single click", run the case-study
// experiment inside them, and fetch the results — no own infrastructure
// required. Each instance is a complete virtual testbed (two nodes, a
// virtualized DuT model, its own results tree); experiments executed in an
// instance use exactly the same definition that runs on the hardware
// testbed, which is the property the service exists to demonstrate.
package vpos

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pos/internal/casestudy"
	"pos/internal/core"
	"pos/internal/eventlog"
	"pos/internal/results"
	"pos/internal/sim"
	"pos/internal/trace"
)

// Status of an instance.
type Status string

// Instance lifecycle states.
const (
	// StatusReady means the instance is idle and can run an experiment.
	StatusReady Status = "ready"
	// StatusRunning means an experiment is executing.
	StatusRunning Status = "running"
	// StatusDestroyed marks a torn-down instance.
	StatusDestroyed Status = "destroyed"
)

// RunInfo summarizes the last experiment execution in an instance.
type RunInfo struct {
	Experiment string    `json:"experiment"`
	TotalRuns  int       `json:"total_runs"`
	FailedRuns int       `json:"failed_runs"`
	ResultsDir string    `json:"results_dir"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	Error      string    `json:"error,omitempty"`
}

// Instance is one disposable virtual testbed.
type Instance struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Nodes   []string  `json:"nodes"`

	mu      sync.Mutex
	status  Status
	lastRun *RunInfo
	topo    *casestudy.Topology
	store   *results.Store
}

// Status returns the instance's lifecycle state.
func (i *Instance) Status() Status {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.status
}

// LastRun returns the last execution summary, if any.
func (i *Instance) LastRun() *RunInfo {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.lastRun == nil {
		return nil
	}
	cp := *i.lastRun
	return &cp
}

// Manager owns the service's instances.
type Manager struct {
	// BaseDir roots each instance's results tree.
	baseDir string
	// Seed feeds instance jitter seeds (incremented per instance so
	// instances differ, like distinct physical conditions).
	mu        sync.Mutex
	seq       int
	instances map[string]*Instance
	clock     func() time.Time
	events    *eventlog.Pipeline
	logger    *slog.Logger
}

// SetEvents attaches the live event pipeline: every instance execution's
// runner publishes its workflow events there, so a vposd operator can watch
// instance experiments the same way campaign observers do.
func (m *Manager) SetEvents(p *eventlog.Pipeline) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = p
}

// SetLogger installs the structured logger for instance lifecycle events;
// nil restores the discard default.
func (m *Manager) SetLogger(lg *slog.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logger = lg
}

func (m *Manager) log() *slog.Logger {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.logger == nil {
		return eventlog.Discard()
	}
	return m.logger
}

// NewManager returns a manager storing instance results under baseDir.
func NewManager(baseDir string) (*Manager, error) {
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return nil, fmt.Errorf("vpos: %w", err)
	}
	return &Manager{
		baseDir:   baseDir,
		instances: make(map[string]*Instance),
		clock:     time.Now,
	}, nil
}

// SetClock overrides the timestamp source (tests).
func (m *Manager) SetClock(clock func() time.Time) { m.clock = clock }

// Create boots a fresh vpos instance — the paper's "single click".
func (m *Manager) Create() (*Instance, error) {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("vpos-%04d", m.seq)
	seed := uint64(m.seq)
	now := m.clock()
	m.mu.Unlock()

	topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	store, err := results.NewStore(filepath.Join(m.baseDir, id))
	if err != nil {
		topo.Close()
		return nil, err
	}
	inst := &Instance{
		ID:      id,
		Created: now,
		Nodes:   []string{topo.LoadGen, topo.DuT},
		status:  StatusReady,
		topo:    topo,
		store:   store,
	}
	m.mu.Lock()
	m.instances[id] = inst
	m.mu.Unlock()
	m.log().Info("vpos instance created", "instance", id, "nodes", len(inst.Nodes))
	return inst, nil
}

// Get returns an instance by id.
func (m *Manager) Get(id string) (*Instance, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.instances[id]
	if !ok {
		return nil, fmt.Errorf("vpos: no instance %q", id)
	}
	return inst, nil
}

// List returns all instances sorted by id.
func (m *Manager) List() []*Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Instance, 0, len(m.instances))
	for _, inst := range m.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Destroy tears an instance down and releases its control plane. The
// results tree on disk survives — researchers keep their artifacts.
func (m *Manager) Destroy(id string) error {
	m.mu.Lock()
	inst, ok := m.instances[id]
	if ok {
		delete(m.instances, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("vpos: no instance %q", id)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.status == StatusRunning {
		// Destroying mid-run would leave the workflow dangling; the
		// service refuses, like the real one holding a booked node.
		m.mu.Lock()
		m.instances[id] = inst
		m.mu.Unlock()
		return fmt.Errorf("vpos: instance %q is running an experiment", id)
	}
	inst.status = StatusDestroyed
	inst.topo.Close()
	m.log().Info("vpos instance destroyed", "instance", id)
	return nil
}

// RunConfig parameterizes an instance experiment execution.
type RunConfig struct {
	// Sweep defaults to the paper's Appendix A sweep when zero.
	Sweep casestudy.SweepConfig
	// Faults, when non-empty, arms a deterministic fault schedule for
	// this execution, keyed by node name — disposable instances are the
	// place to rehearse an experiment's failure behaviour before burning
	// testbed time on it.
	Faults map[string]sim.FaultPlan
}

// Run executes the case-study experiment synchronously inside the instance.
func (m *Manager) Run(ctx context.Context, id string, cfg RunConfig) (*RunInfo, error) {
	inst, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	inst.mu.Lock()
	switch inst.status {
	case StatusRunning:
		inst.mu.Unlock()
		return nil, fmt.Errorf("vpos: instance %q already running", id)
	case StatusDestroyed:
		inst.mu.Unlock()
		return nil, fmt.Errorf("vpos: instance %q destroyed", id)
	}
	inst.status = StatusRunning
	topo, store := inst.topo, inst.store
	inst.mu.Unlock()

	sweep := cfg.Sweep
	if len(sweep.Sizes) == 0 {
		sweep = casestudy.PaperSweep()
	}
	exp := topo.Experiment(sweep)
	info := &RunInfo{Experiment: exp.Name, StartedAt: m.clock()}
	runner := topo.Runner()
	if len(cfg.Faults) > 0 {
		runner.InjectFaults(sim.NewFaultInjector(cfg.Faults))
	}
	// Every instance execution archives its workflow timeline: the service
	// hands researchers results that carry their own execution log.
	rec := trace.NewRecorder()
	rec.Clock = m.clock
	rec.Forward = runner.Progress
	runner.Progress = rec.Observe
	m.mu.Lock()
	runner.Events = m.events
	lg := m.logger
	m.mu.Unlock()
	if lg != nil {
		ctx = eventlog.WithLogger(ctx, lg)
	}
	m.log().Info("vpos experiment started", "instance", id, "experiment", exp.Name)
	sum, runErr := runner.Run(ctx, exp, store)
	info.FinishedAt = m.clock()
	if sum != nil {
		info.TotalRuns = sum.TotalRuns
		info.FailedRuns = sum.FailedRuns
		info.ResultsDir = sum.ResultsDir
		if rexp, err := store.OpenExperiment(exp.User, exp.Name, filepath.Base(sum.ResultsDir)); err == nil {
			if rec.Archive(rexp) == nil {
				rexp.Sync()
			}
		}
	}
	if runErr != nil {
		info.Error = runErr.Error()
	}
	inst.mu.Lock()
	inst.status = StatusReady
	inst.lastRun = info
	inst.mu.Unlock()
	if runErr != nil {
		m.log().Error("vpos experiment failed", "instance", id,
			"experiment", exp.Name, "err", runErr.Error())
		return info, fmt.Errorf("vpos: %w", runErr)
	}
	m.log().Info("vpos experiment finished", "instance", id,
		"experiment", exp.Name, "runs", info.TotalRuns)
	return info, nil
}

// Results opens the instance's results store for evaluation.
func (m *Manager) Results(id string) (*results.Store, error) {
	inst, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	return inst.store, nil
}

// Experiment builds the instance's case-study definition, for callers that
// want to inspect or customize it before running.
func (m *Manager) Experiment(id string, sweep casestudy.SweepConfig) (*core.Experiment, error) {
	inst, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	return inst.topo.Experiment(sweep), nil
}
