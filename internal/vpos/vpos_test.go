package vpos

import (
	"context"
	"strings"
	"testing"
	"time"

	"pos/internal/trace"

	"pos/internal/casestudy"
	"pos/internal/eval"
	"pos/internal/sim"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quickSweep() casestudy.SweepConfig {
	return casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000, 30_000}, RuntimeSec: 1}
}

func TestCreateListDestroy(t *testing.T) {
	m := newManager(t)
	a, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Error("instance ids collide")
	}
	if a.Status() != StatusReady || len(a.Nodes) != 2 {
		t.Errorf("instance = %+v", a)
	}
	list := m.List()
	if len(list) != 2 || list[0].ID != a.ID {
		t.Errorf("list = %v", list)
	}
	if err := m.Destroy(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(a.ID); err == nil {
		t.Error("destroyed instance still visible")
	}
	if err := m.Destroy(a.ID); err == nil {
		t.Error("double destroy succeeded")
	}
}

func TestRunInsideInstance(t *testing.T) {
	m := newManager(t)
	inst, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Run(context.Background(), inst.ID, RunConfig{Sweep: quickSweep()})
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalRuns != 2 || info.FailedRuns != 0 || info.ResultsDir == "" {
		t.Errorf("info = %+v", info)
	}
	if inst.Status() != StatusReady {
		t.Errorf("status = %s after run", inst.Status())
	}
	if got := inst.LastRun(); got == nil || got.TotalRuns != 2 {
		t.Errorf("last run = %+v", got)
	}
	// The results are a normal pos results tree, evaluable as usual.
	store, err := m.Results(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := store.ListExperiments("user", "linux-router-vpos")
	if err != nil || len(ids) != 1 {
		t.Fatalf("experiments = %v, %v", ids, err)
	}
	rec, err := store.OpenExperiment("user", "linux-router-vpos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	runs, err := eval.LoadRuns(rec, "vriga", "moongen.log")
	if err != nil || len(runs) != 2 {
		t.Fatalf("runs = %d, %v", len(runs), err)
	}
	// Drop-free at these low rates.
	for _, r := range runs {
		if r.Report == nil || r.Report.RxMpps() == 0 {
			t.Errorf("run %d has no throughput", r.Run)
		}
	}
}

func TestRunOnDestroyedOrMissingInstance(t *testing.T) {
	m := newManager(t)
	inst, _ := m.Create()
	if err := m.Destroy(inst.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), inst.ID, RunConfig{Sweep: quickSweep()}); err == nil {
		t.Error("ran on a destroyed instance")
	}
	if _, err := m.Run(context.Background(), "ghost", RunConfig{}); err == nil {
		t.Error("ran on a missing instance")
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	// Two instances get different seeds: overloaded results differ, like
	// two researchers' separate VMs.
	m := newManager(t)
	a, _ := m.Create()
	b, _ := m.Create()
	sweep := casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{250_000}, RuntimeSec: 1}
	ia, err := m.Run(context.Background(), a.ID, RunConfig{Sweep: sweep})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := m.Run(context.Background(), b.ID, RunConfig{Sweep: sweep})
	if err != nil {
		t.Fatal(err)
	}
	ra := rxOf(t, m, a.ID)
	rb := rxOf(t, m, b.ID)
	if ra == rb {
		t.Errorf("independent instances produced identical overloaded results (%v)", ra)
	}
	_ = ia
	_ = ib
}

func rxOf(t *testing.T, m *Manager, id string) float64 {
	t.Helper()
	store, err := m.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments("user", "linux-router-vpos")
	rec, err := store.OpenExperiment("user", "linux-router-vpos", ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	runs, err := eval.LoadRuns(rec, "vriga", "moongen.log")
	if err != nil || len(runs) == 0 || runs[0].Report == nil {
		t.Fatalf("runs = %v, %v", runs, err)
	}
	return runs[0].Report.RxMpps()
}

func TestHTTPServiceEndToEnd(t *testing.T) {
	m := newManager(t)
	srv, err := Serve(m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())

	inst, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Status != StatusReady {
		t.Errorf("created = %+v", inst)
	}
	list, err := c.List()
	if err != nil || len(list) != 1 {
		t.Errorf("list = %v, %v", list, err)
	}
	info, err := c.Run(inst.ID, []int{64}, []int{10_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalRuns != 1 || info.FailedRuns != 0 {
		t.Errorf("run info = %+v", info)
	}
	got, err := c.Get(inst.ID)
	if err != nil || got.LastRun == nil || got.LastRun.TotalRuns != 1 {
		t.Errorf("get = %+v, %v", got, err)
	}
	if err := c.Destroy(inst.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(inst.ID); err == nil || !strings.Contains(err.Error(), "no instance") {
		t.Errorf("get after destroy: %v", err)
	}
	if _, err := c.Run("ghost", nil, nil, 0); err == nil {
		t.Error("ran on missing instance over HTTP")
	}
}

// TestRunWithFaultSchedule: a deterministic fault plan armed through
// RunConfig fires inside the instance — the scheduled measurement exec
// fails, the run is recorded as failed, and the instance returns to ready.
func TestRunWithFaultSchedule(t *testing.T) {
	m := newManager(t)
	inst, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	// Each node's exec occurrence 1 is its setup script; occurrence 2 is
	// the first measurement run. Both nodes fail it, so neither is left
	// waiting out the run_done barrier for a partner that never comes.
	info, err := m.Run(context.Background(), inst.ID, RunConfig{
		Sweep: quickSweep(),
		Faults: map[string]sim.FaultPlan{
			"vriga":  {FailExecs: []int{2}},
			"vtartu": {FailExecs: []int{2}},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "injected exec fault") {
		t.Fatalf("err = %v, want injected exec fault", err)
	}
	if info == nil || info.FailedRuns != 1 || info.Error == "" {
		t.Fatalf("info = %+v", info)
	}
	if inst.Status() != StatusReady {
		t.Errorf("status = %s after faulted run", inst.Status())
	}

	// Without a plan the same instance completes cleanly — faults are
	// per-execution, not sticky instance state.
	info, err = m.Run(context.Background(), inst.ID, RunConfig{Sweep: quickSweep()})
	if err != nil {
		t.Fatal(err)
	}
	if info.FailedRuns != 0 || info.TotalRuns != 2 {
		t.Errorf("info = %+v", info)
	}
}

// TestRunArchivesExecutionTrace: every instance execution ships its workflow
// timeline (experiment-trace.json / experiment.log) and its span tree
// (spans.json) next to the measurement results.
func TestRunArchivesExecutionTrace(t *testing.T) {
	m := newManager(t)
	inst, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), inst.ID, RunConfig{Sweep: quickSweep()}); err != nil {
		t.Fatal(err)
	}
	store, err := m.Results(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := store.ListExperiments("user", "linux-router-vpos")
	if err != nil || len(ids) != 1 {
		t.Fatalf("experiments = %v, %v", ids, err)
	}
	exp, err := store.OpenExperiment("user", "linux-router-vpos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := exp.ReadExperimentArtifact("experiment-trace.json")
	if err != nil {
		t.Fatalf("experiment-trace.json: %v", err)
	}
	events, err := trace.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	var measured int
	for _, ev := range events {
		if ev.Phase == "measurement" {
			measured++
		}
	}
	if measured == 0 {
		t.Errorf("no measurement events in archived trace (%d events)", len(events))
	}
	logData, err := exp.ReadExperimentArtifact("experiment.log")
	if err != nil || len(logData) == 0 {
		t.Errorf("experiment.log: %d bytes, %v", len(logData), err)
	}
	spans, err := exp.ReadExperimentArtifact("spans.json")
	if err != nil || len(spans) == 0 {
		t.Errorf("spans.json: %d bytes, %v", len(spans), err)
	}
}

// TestServerShutdownGraceful: Shutdown stops the listener and returns.
func TestServerShutdownGraceful(t *testing.T) {
	m := newManager(t)
	srv, err := Serve(m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.Addr())
	if _, err := c.Create(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.List(); err == nil {
		t.Error("request after shutdown succeeded")
	}
}
