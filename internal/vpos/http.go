package vpos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pos/internal/casestudy"
)

// InstanceView is the JSON representation of an instance.
type InstanceView struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Nodes   []string  `json:"nodes"`
	Status  Status    `json:"status"`
	LastRun *RunInfo  `json:"last_run,omitempty"`
}

func view(i *Instance) InstanceView {
	return InstanceView{
		ID:      i.ID,
		Created: i.Created,
		Nodes:   i.Nodes,
		Status:  i.Status(),
		LastRun: i.LastRun(),
	}
}

// Server exposes the manager over HTTP:
//
//	POST   /instances                  create an instance
//	GET    /instances                  list instances
//	GET    /instances/{id}             one instance
//	DELETE /instances/{id}             destroy an instance
//	POST   /instances/{id}/run         run the case study (body: sweep config)
type Server struct {
	mgr  *Manager
	http *http.Server
	ln   net.Listener
}

// runRequest is the body of a run call.
type runRequest struct {
	Sizes      []int   `json:"sizes,omitempty"`
	RatesPPS   []int   `json:"rates_pps,omitempty"`
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
}

// Serve starts the service on a loopback port.
func Serve(mgr *Manager) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("vpos: %w", err)
	}
	s := &Server{mgr: mgr, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /instances", s.create)
	mux.HandleFunc("GET /instances", s.list)
	mux.HandleFunc("GET /instances/{id}", s.get)
	mux.HandleFunc("DELETE /instances/{id}", s.destroy)
	mux.HandleFunc("POST /instances/{id}/run", s.run)
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the service's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the service: no new connections, in-flight
// experiment runs drain until they finish or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// Close shuts the service down with a short drain window.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	inst, err := s.mgr.Create()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, view(inst))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	instances := s.mgr.List()
	out := make([]InstanceView, 0, len(instances))
	for _, i := range instances {
		out = append(out, view(i))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	inst, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, view(inst))
}

func (s *Server) destroy(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Destroy(r.PathValue("id")); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	cfg := RunConfig{Sweep: casestudy.SweepConfig{
		Sizes:      req.Sizes,
		RatesPPS:   req.RatesPPS,
		RuntimeSec: req.RuntimeSec,
	}}
	info, err := s.mgr.Run(r.Context(), r.PathValue("id"), cfg)
	if err != nil {
		if info != nil {
			s.writeJSON(w, http.StatusConflict, info)
			return
		}
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// Client drives the service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the service at addr.
func NewClient(addr string) *Client {
	return &Client{base: "http://" + addr, hc: &http.Client{Timeout: 5 * time.Minute}}
}

func (c *Client) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("vpos: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("vpos: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("vpos: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb map[string]string
		if json.Unmarshal(data, &eb) == nil && eb["error"] != "" {
			return fmt.Errorf("vpos: %s %s: %s", method, path, eb["error"])
		}
		return fmt.Errorf("vpos: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("vpos: %w", err)
	}
	return nil
}

// Create boots a new instance.
func (c *Client) Create() (InstanceView, error) {
	var out InstanceView
	err := c.do(http.MethodPost, "/instances", nil, &out)
	return out, err
}

// List returns all instances.
func (c *Client) List() ([]InstanceView, error) {
	var out []InstanceView
	err := c.do(http.MethodGet, "/instances", nil, &out)
	return out, err
}

// Get fetches one instance.
func (c *Client) Get(id string) (InstanceView, error) {
	var out InstanceView
	err := c.do(http.MethodGet, "/instances/"+id, nil, &out)
	return out, err
}

// Destroy tears an instance down.
func (c *Client) Destroy(id string) error {
	return c.do(http.MethodDelete, "/instances/"+id, nil, nil)
}

// Run executes the case study in an instance with the given sweep (zero
// values select the paper sweep).
func (c *Client) Run(id string, sizes, ratesPPS []int, runtimeSec float64) (RunInfo, error) {
	body, err := json.Marshal(runRequest{Sizes: sizes, RatesPPS: ratesPPS, RuntimeSec: runtimeSec})
	if err != nil {
		return RunInfo{}, fmt.Errorf("vpos: %w", err)
	}
	var out RunInfo
	err = c.do(http.MethodPost, "/instances/"+id+"/run", bytes.NewReader(body), &out)
	return out, err
}
