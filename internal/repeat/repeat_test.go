package repeat

import (
	"context"
	"strings"
	"testing"

	"pos/internal/casestudy"
	"pos/internal/core"
	"pos/internal/eval"
	"pos/internal/results"
)

func smallSweep() casestudy.SweepConfig {
	return casestudy.SweepConfig{
		Sizes:      []int{64},
		RatesPPS:   []int{10_000, 100_000},
		RuntimeSec: 1,
	}
}

func TestBareMetalIsIdenticallyRepeatable(t *testing.T) {
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(context.Background(), topo.Testbed.Runner(), topo.Experiment(smallSweep()), store,
		Config{Repetitions: 3, Node: topo.LoadGen, Artifact: "moongen.log"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Errorf("deterministic testbed not identically repeatable: %+v", rep)
	}
	if rep.MaxRelDev != 0 {
		t.Errorf("max deviation = %v", rep.MaxRelDev)
	}
	if len(rep.Deviations) != 2 {
		t.Errorf("deviations = %d, want one per combination", len(rep.Deviations))
	}
	out := string(rep.Render())
	if !strings.Contains(out, "IDENTICAL") || !strings.Contains(out, "pkt_rate=10000") {
		t.Errorf("render = %q", out)
	}
}

func TestOverloadedVirtualDeviates(t *testing.T) {
	// The VM redraws its capacity jitter as virtual time advances, so
	// back-to-back repetitions of an overloaded run differ — exactly the
	// instability the paper shows in Fig. 3b.
	topo, err := casestudy.New(casestudy.Virtual, casestudy.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sweep := casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{250_000}, RuntimeSec: 1}
	rep, err := Verify(context.Background(), topo.Testbed.Runner(), topo.Experiment(sweep), store,
		Config{Repetitions: 3, Node: topo.LoadGen, Artifact: "moongen.log"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Error("overloaded vpos reported as identical — jitter lost")
	}
	if rep.MaxRelDev <= 0 || rep.MaxRelDev > 0.5 {
		t.Errorf("max deviation = %v, want small but non-zero", rep.MaxRelDev)
	}
	if !strings.Contains(string(rep.Render()), "max relative deviation") {
		t.Errorf("render = %q", rep.Render())
	}
}

func TestVerifyValidation(t *testing.T) {
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, _ := results.NewStore(t.TempDir())
	runner := topo.Testbed.Runner()
	exp := topo.Experiment(smallSweep())
	if _, err := Verify(context.Background(), runner, exp, store, Config{Repetitions: 1, Node: "a", Artifact: "b"}); err == nil {
		t.Error("accepted one repetition")
	}
	if _, err := Verify(context.Background(), runner, exp, store, Config{Repetitions: 2}); err == nil {
		t.Error("accepted empty node/artifact")
	}
	// Wrong artifact name: no comparable runs.
	if _, err := Verify(context.Background(), runner, exp, store, Config{Repetitions: 2, Node: topo.LoadGen, Artifact: "nope.log"}); err == nil {
		t.Error("accepted missing artifact")
	}
}

func TestCustomMetric(t *testing.T) {
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, _ := results.NewStore(t.TempDir())
	// Compare TX instead of RX.
	rep, err := Verify(context.Background(), topo.Testbed.Runner(), topo.Experiment(smallSweep()), store,
		Config{
			Repetitions: 2, Node: topo.LoadGen, Artifact: "moongen.log",
			Metric: func(r eval.RunData) (float64, bool) {
				if r.Report == nil {
					return 0, false
				}
				return r.Report.TxMpps(), true
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Errorf("TX not repeatable: %+v", rep)
	}
}

func TestFailedRunsExcluded(t *testing.T) {
	// Verify errors out when an execution produces nothing comparable;
	// emulate by a metric that rejects everything.
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, _ := results.NewStore(t.TempDir())
	_, err = Verify(context.Background(), topo.Testbed.Runner(), topo.Experiment(smallSweep()), store,
		Config{
			Repetitions: 2, Node: topo.LoadGen, Artifact: "moongen.log",
			Metric: func(eval.RunData) (float64, bool) { return 0, false },
		})
	if err == nil {
		t.Error("no-comparable-runs execution accepted")
	}
	_ = core.NumRuns(nil)
}
