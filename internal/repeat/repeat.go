// Package repeat verifies repeatability — the first rung of the ACM badging
// ladder the paper builds on ("repeatability: the same people use the same
// setup to repeat results"). It executes the same experiment definition
// several times on the same testbed, pairs the resulting measurement runs by
// their loop-variable combinations, and quantifies the deviation between
// executions. A deterministic testbed must produce bit-identical repetitions;
// a real one produces a deviation distribution that this report makes a
// publishable artifact instead of an anecdote.
package repeat

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"pos/internal/core"
	"pos/internal/eval"
	"pos/internal/results"
)

// Config drives a repeatability check.
type Config struct {
	// Repetitions is the number of executions (>= 2).
	Repetitions int
	// Node and Artifact locate the MoonGen log to compare (e.g. "vriga",
	// "moongen.log").
	Node, Artifact string
	// Metric extracts the compared value from a run; nil defaults to
	// received Mpps.
	Metric func(eval.RunData) (float64, bool)
}

// Deviation is the comparison of one loop combination across executions.
type Deviation struct {
	// Combo is the run's loop-variable combination key.
	Combo string
	// Values holds the metric per execution, in execution order.
	Values []float64
	// MaxRelDev is max|v - mean| / mean (0 when mean == 0).
	MaxRelDev float64
}

// Report is the outcome of a repeatability check.
type Report struct {
	Experiment  string
	Repetitions int
	// Deviations has one entry per loop combination, sorted by key.
	Deviations []Deviation
	// MaxRelDev is the worst deviation across combinations.
	MaxRelDev float64
	// Identical reports bit-identical metrics across every execution.
	Identical bool
}

// Verify runs the experiment cfg.Repetitions times and compares results.
func Verify(ctx context.Context, runner *core.Runner, exp *core.Experiment, store *results.Store, cfg Config) (*Report, error) {
	if cfg.Repetitions < 2 {
		return nil, fmt.Errorf("repeat: need at least 2 repetitions, got %d", cfg.Repetitions)
	}
	if cfg.Node == "" || cfg.Artifact == "" {
		return nil, fmt.Errorf("repeat: Node and Artifact required")
	}
	metric := cfg.Metric
	if metric == nil {
		metric = func(r eval.RunData) (float64, bool) {
			if r.Failed || r.Report == nil {
				return 0, false
			}
			return r.Report.RxMpps(), true
		}
	}

	// Execute the repetitions, collecting combo -> value per execution.
	perExec := make([]map[string]float64, 0, cfg.Repetitions)
	for i := 0; i < cfg.Repetitions; i++ {
		sum, err := runner.Run(ctx, exp, store)
		if err != nil {
			return nil, fmt.Errorf("repeat: execution %d: %w", i, err)
		}
		ids, err := store.ListExperiments(exp.User, exp.Name)
		if err != nil || len(ids) == 0 {
			return nil, fmt.Errorf("repeat: execution %d: results missing (%v)", i, err)
		}
		rec, err := store.OpenExperiment(exp.User, exp.Name, ids[len(ids)-1])
		if err != nil {
			return nil, err
		}
		runs, err := eval.LoadRuns(rec, cfg.Node, cfg.Artifact)
		if err != nil {
			return nil, err
		}
		values := make(map[string]float64, len(runs))
		for _, r := range runs {
			if v, ok := metric(r); ok {
				values[core.Combination(r.LoopVars).Key()] = v
			}
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("repeat: execution %d (%s) yielded no comparable runs", i, sum.ResultsDir)
		}
		perExec = append(perExec, values)
	}

	// Pair by combination.
	rep := &Report{Experiment: exp.Name, Repetitions: cfg.Repetitions, Identical: true}
	var keys []string
	for k := range perExec[0] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := Deviation{Combo: k}
		var sum float64
		complete := true
		for _, exec := range perExec {
			v, ok := exec[k]
			if !ok {
				complete = false
				break
			}
			d.Values = append(d.Values, v)
			sum += v
		}
		if !complete {
			return nil, fmt.Errorf("repeat: combination %s missing from some execution", k)
		}
		allEqual := true
		for _, v := range d.Values {
			if v != d.Values[0] {
				allEqual = false
				rep.Identical = false
			}
		}
		if !allEqual {
			mean := sum / float64(len(d.Values))
			for _, v := range d.Values {
				if mean != 0 {
					rel := math.Abs(v-mean) / mean
					if rel > d.MaxRelDev {
						d.MaxRelDev = rel
					}
				}
			}
		}
		if d.MaxRelDev > rep.MaxRelDev {
			rep.MaxRelDev = d.MaxRelDev
		}
		rep.Deviations = append(rep.Deviations, d)
	}
	return rep, nil
}

// Render writes the report as a publishable text artifact.
func (r *Report) Render() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "Repeatability report: %s, %d executions\n", r.Experiment, r.Repetitions)
	if r.Identical {
		b.WriteString("result: IDENTICAL — every execution reproduced every run bit-for-bit\n")
	} else {
		fmt.Fprintf(&b, "result: max relative deviation %.4f%%\n", r.MaxRelDev*100)
	}
	fmt.Fprintf(&b, "%-40s %-14s %s\n", "combination", "max rel dev", "values")
	for _, d := range r.Deviations {
		vals := make([]string, len(d.Values))
		for i, v := range d.Values {
			vals[i] = fmt.Sprintf("%.6g", v)
		}
		fmt.Fprintf(&b, "%-40s %-14.6f %s\n", d.Combo, d.MaxRelDev, strings.Join(vals, " "))
	}
	return []byte(b.String())
}
