package casestudy

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pos/internal/core"
	"pos/internal/eval"
	"pos/internal/moonparse"
	"pos/internal/packet"
	"pos/internal/results"
	"pos/internal/sched"
	"pos/internal/sim"
)

func TestFullWorkflowBareMetal(t *testing.T) {
	// The appendix experiment, miniaturized: 2 sizes x 3 rates through
	// the complete control plane (calendar, BMC boot, shell scripts,
	// barriers, uploads).
	topo, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 150_000, 300_000},
		RuntimeSec: 1,
	}
	exp := topo.Experiment(cfg)
	runner := topo.Testbed.Runner()
	sum, err := runner.Run(context.Background(), exp, store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 6 || sum.FailedRuns != 0 {
		t.Fatalf("summary = %+v", sum)
	}

	ids, _ := store.ListExperiments("user", "linux-router-pos")
	e, err := store.OpenExperiment("user", "linux-router-pos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every run produced a parseable MoonGen log and router counters.
	for run := 0; run < 6; run++ {
		logData, err := e.ReadRunArtifact(run, topo.LoadGen, "moongen.log")
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		rep, err := moonparse.Parse(bytes.NewReader(logData))
		if err != nil {
			t.Fatalf("run %d: parse: %v\n%s", run, err, logData)
		}
		meta, err := e.ReadRunMeta(run)
		if err != nil {
			t.Fatal(err)
		}
		// Below all bare-metal limits, RX == offered rate.
		wantMpps := atof(meta.LoopVars["pkt_rate"]) / 1e6
		line := packet.LineRatePPS(10e9, atoi(meta.LoopVars["pkt_sz"])) / 1e6
		if wantMpps > line {
			wantMpps = line
		}
		if got := rep.RxMpps(); got < wantMpps*0.98 || got > wantMpps*1.02 {
			t.Errorf("run %d (%s): RX = %.4f Mpps, want ~%.4f", run, meta.LoopVars, got, wantMpps)
		}
		// Latency measured on bare metal.
		if rep.Latency == nil {
			t.Errorf("run %d: no latency on bare metal", run)
		}
		stats, err := e.ReadRunArtifact(run, topo.DuT, "router.stats")
		if err != nil {
			t.Fatalf("run %d: router stats: %v", run, err)
		}
		if !strings.Contains(string(stats), "forwarded=") {
			t.Errorf("run %d: stats = %q", run, stats)
		}
	}
}

// TestTwoReplicaCampaign shards the vpos sweep across two independent
// virtual testbeds — the parallel-campaign demonstration: every run lands
// in one shared results experiment with the same numbering, parseable logs,
// and byte-identical metadata the sequential sweep produces.
func TestTwoReplicaCampaign(t *testing.T) {
	clock := func() time.Time { return time.Date(2021, 12, 7, 10, 0, 0, 0, time.UTC) }
	cfg := SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 20_000, 30_000},
		RuntimeSec: 1,
	}

	topos, err := NewReplicas(Virtual, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topos {
		defer topo.Close()
	}
	reps := Replicas(topos, cfg)
	for i := range reps {
		reps[i].Runner.Clock = clock
	}
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := (&sched.Campaign{Replicas: reps}).Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 6 || sum.FailedRuns != 0 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}

	// Sequential reference on a third identical testbed.
	seqTopo, err := New(Virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer seqTopo.Close()
	seqRunner := seqTopo.Testbed.Runner()
	seqRunner.Clock = clock
	seqStore, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqRunner.Run(context.Background(), seqTopo.Experiment(cfg), seqStore); err != nil {
		t.Fatal(err)
	}

	ids, _ := store.ListExperiments("user", "linux-router-vpos")
	e, err := store.OpenExperiment("user", "linux-router-vpos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	seqIDs, _ := seqStore.ListExperiments("user", "linux-router-vpos")
	seqExp, err := seqStore.OpenExperiment("user", "linux-router-vpos", seqIDs[0])
	if err != nil {
		t.Fatal(err)
	}

	combos, _ := core.CrossProduct(seqTopo.Experiment(cfg).LoopVars)
	for run := 0; run < 6; run++ {
		// Deterministic numbering: run i carries cross-product combo i no
		// matter which replica executed it.
		meta, err := e.ReadRunMeta(run)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range combos[run] {
			if meta.LoopVars[k] != v {
				t.Errorf("run %d: %s = %s, want %s", run, k, meta.LoopVars[k], v)
			}
		}
		// Every run produced a parseable MoonGen log.
		logData, err := e.ReadRunArtifact(run, "vriga", "moongen.log")
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if _, err := moonparse.Parse(bytes.NewReader(logData)); err != nil {
			t.Errorf("run %d: parse: %v", run, err)
		}
		// Per-run metadata byte-identical to the sequential sweep.
		want, err := seqExp.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.ReadRunArtifact(run, "", "metadata.json")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("run %d metadata diverges:\nsequential: %s\ncampaign:   %s", run, want, got)
		}
	}
	// Both replicas booted and produced setup artifacts under their own
	// namespace; the campaign manifest records the sharding.
	for _, a := range []string{
		"setup/replica0/vriga.out",
		"setup/replica1/vtartu.out",
		"experiment/campaign.json",
	} {
		if _, err := e.ReadExperimentArtifact(a); err != nil {
			t.Errorf("missing artifact %s: %v", a, err)
		}
	}
}

func TestFullWorkflowVirtualHasNoLatency(t *testing.T) {
	topo, err := New(Virtual, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Sizes: []int{64}, RatesPPS: []int{20_000}, RuntimeSec: 1}
	if _, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(cfg), store); err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments("user", "linux-router-vpos")
	e, _ := store.OpenExperiment("user", "linux-router-vpos", ids[0])
	logData, err := e.ReadRunArtifact(0, topo.LoadGen, "moongen.log")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := moonparse.Parse(bytes.NewReader(logData))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency != nil {
		t.Error("vpos produced latency measurements despite missing hardware timestamps (paper: impossible)")
	}
	// Throughput still measured, drop-free at 20 kpps.
	if got := rep.RxMpps(); got < 0.0195 || got > 0.0205 {
		t.Errorf("RX = %.4f Mpps, want ~0.02", got)
	}
}

func TestIdenticalScriptsAcrossPlatforms(t *testing.T) {
	// The paper's essential property: the experiment scripts for pos and
	// vpos are byte-identical; only the node bindings/testbed differ.
	a, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ea := a.Experiment(PaperSweep())
	eb := b.Experiment(PaperSweep())
	for i := range ea.Hosts {
		if ea.Hosts[i].Setup != eb.Hosts[i].Setup {
			t.Errorf("setup script differs for %s", ea.Hosts[i].Role)
		}
		if ea.Hosts[i].Measurement != eb.Hosts[i].Measurement {
			t.Errorf("measurement script differs for %s", ea.Hosts[i].Role)
		}
	}
	if len(ea.LoopVars) != 2 || core.NumRuns(ea.LoopVars) != 60 {
		t.Errorf("paper sweep = %d runs, want 60", core.NumRuns(ea.LoopVars))
	}
}

func TestDirectRunBareMetalShape(t *testing.T) {
	topo, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	// 64 B at 2.2 Mpps offered: plateau at ~1.75 Mpps.
	p, err := topo.DirectRun(64, 2_200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.RxMpps < 1.70 || p.RxMpps > 1.82 {
		t.Errorf("64B overload RX = %.3f Mpps, want ~1.75", p.RxMpps)
	}
	// 1500 B at 1.0 Mpps offered: NIC ceiling ~0.81 Mpps.
	p, err = topo.DirectRun(1500, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.RxMpps < 0.78 || p.RxMpps > 0.84 {
		t.Errorf("1500B overload RX = %.3f Mpps, want ~0.81", p.RxMpps)
	}
	if !p.LatencyOK {
		t.Error("latency unavailable on bare metal")
	}
}

func TestDirectRunVirtualShape(t *testing.T) {
	topo, err := New(Virtual, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	// Drop-free at 40 kpps for both sizes.
	for _, size := range []int{64, 1500} {
		p, err := topo.DirectRun(size, 40_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.LossRatio > 0.001 {
			t.Errorf("%dB at 40kpps: loss = %.4f, want ~0 (Fig. 3b)", size, p.LossRatio)
		}
		if p.LatencyOK {
			t.Error("vpos claims latency capability")
		}
	}
	// Overloaded at 300 kpps: far below offered, sizes diverge.
	p64, err := topo.DirectRun(64, 300_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1500, err := topo.DirectRun(1500, 300_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p64.RxMpps > 0.09 || p1500.RxMpps > 0.09 {
		t.Errorf("VM forwarded %.3f/%.3f Mpps at 300kpps, implausibly high", p64.RxMpps, p1500.RxMpps)
	}
	if p64.RxMpps <= p1500.RxMpps {
		t.Errorf("no size divergence under overload: 64B=%.4f 1500B=%.4f", p64.RxMpps, p1500.RxMpps)
	}
}

func TestBareMetalVirtualGap(t *testing.T) {
	bm, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	vm, err := New(Virtual, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	pb, err := bm.DirectRun(64, 2_200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// VM drop-free max is ~0.04 Mpps (the paper's comparison base).
	ratio := pb.RxMpps / 0.04
	if ratio < 38 || ratio > 50 {
		t.Errorf("bare-metal/VM gap = %.1fx, want ~44x", ratio)
	}
}

func TestSwitchedTopologyAblation(t *testing.T) {
	direct, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	switched, err := New(BareMetal, WithSwitch(netemCutThrough()))
	if err != nil {
		t.Fatal(err)
	}
	defer switched.Close()
	pd, err := direct.DirectRun(64, 10_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := switched.DirectRun(64, 10_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same throughput either way…
	if pd.RxMpps != ps.RxMpps {
		t.Errorf("throughput differs: %.4f vs %.4f", pd.RxMpps, ps.RxMpps)
	}
}

func netemCutThrough() sim.Duration { return 300 * sim.Nanosecond }

func TestMoonGenArgParsing(t *testing.T) {
	cfg, err := parseMoonGenArgs([]string{"--rate", "10000", "--size", "1500", "--time", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RatePPS != 10000 || cfg.frameSize != 1500 || cfg.Duration != 2*sim.Second {
		t.Errorf("cfg = %+v", cfg)
	}
	for _, bad := range [][]string{
		{},                              // missing rate
		{"--rate"},                      // missing value
		{"--rate", "x"},                 // bad rate
		{"--rate", "-5"},                // negative rate
		{"--rate", "1", "--size", "x"},  // bad size
		{"--rate", "1", "--time", "0"},  // bad time
		{"--rate", "1", "--bogus", "2"}, // unknown flag
	} {
		if _, err := parseMoonGenArgs(bad); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func atof(s string) float64 {
	var f float64
	for _, c := range s {
		f = f*10 + float64(c-'0')
	}
	return f
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestLatencyHistogramThroughWorkflow(t *testing.T) {
	// Extend the measurement script with the latency-CSV upload — the
	// full "throughput and latency data created by MoonGen" pipeline.
	topo, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exp := topo.Experiment(SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000, 100_000}, RuntimeSec: 1})
	exp.Hosts[0].Measurement = `pos_run moongen.log moongen --rate $pkt_rate --size $pkt_sz --time $runtime
pos_run latency.csv moongen_hist
pos_sync run_done 2
`
	if _, err := topo.Testbed.Runner().Run(context.Background(), exp, store); err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments("user", exp.Name)
	rec, err := store.OpenExperiment("user", exp.Name, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	lat, err := eval.LoadLatency(rec, topo.LoadGen, "latency.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 2 {
		t.Fatalf("latency groups = %v", lat)
	}
	for combo, samples := range lat {
		if len(samples) == 0 {
			t.Errorf("%s: no samples", combo)
		}
		for _, s := range samples {
			if s <= 0 {
				t.Errorf("%s: non-positive latency %v", combo, s)
			}
		}
	}
	// Higher load produces higher median latency.
	med := func(key string) float64 {
		xs := append([]float64(nil), lat[key]...)
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	low := med("pkt_rate=10000,pkt_sz=64")
	high := med("pkt_rate=100000,pkt_sz=64")
	if high <= low {
		t.Errorf("median latency did not grow with load: %.0f vs %.0f ns", low, high)
	}
}

func TestMoonGenHistFailsOnVpos(t *testing.T) {
	topo, err := New(Virtual)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exp := topo.Experiment(SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000}, RuntimeSec: 1})
	exp.Hosts[0].Measurement = `pos_run moongen.log moongen --rate $pkt_rate --size $pkt_sz --time $runtime
pos_run latency.csv moongen_hist
pos_sync run_done 2
`
	// The failing loadgen script never reaches its barrier, so the DuT
	// waits for the full barrier timeout; shorten it for the test.
	topo.Testbed.Service.BarrierTimeout = 200 * time.Millisecond
	runner := topo.Testbed.Runner()
	runner.ContinueOnRunFailure = true
	sum, err := runner.Run(context.Background(), exp, store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FailedRuns != 1 {
		t.Errorf("failed runs = %d — vpos latency collection must fail explicitly", sum.FailedRuns)
	}
}

// TestArtifactsByteIdenticalAcrossExecutions is the strongest repeatability
// statement: two full workflow executions on identically seeded testbeds
// produce byte-for-byte identical measurement artifacts.
func TestArtifactsByteIdenticalAcrossExecutions(t *testing.T) {
	collect := func() map[string][]byte {
		topo, err := New(Virtual, WithSeed(123))
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		store, err := results.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sweep := SweepConfig{Sizes: []int{64, 1500}, RatesPPS: []int{20_000, 250_000}, RuntimeSec: 1}
		if _, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(sweep), store); err != nil {
			t.Fatal(err)
		}
		ids, _ := store.ListExperiments("user", "linux-router-vpos")
		rec, err := store.OpenExperiment("user", "linux-router-vpos", ids[0])
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		runs, _ := rec.Runs()
		for _, run := range runs {
			arts, _ := rec.RunArtifacts(run)
			for _, a := range arts {
				parts := strings.SplitN(a, "/", 2)
				data, err := rec.ReadRunArtifact(run, parts[0], parts[1])
				if err != nil {
					t.Fatal(err)
				}
				out[fmt.Sprintf("run%d/%s", run, a)] = data
			}
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artifact counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("artifact %s differs between executions", name)
		}
	}
}

// TestCampaignSurvivesFaultyReplica: one of three replicas is armed (via
// SetFaults) to fail every exec after its initial setup — measurements and
// clean-slate re-setups alike, on both of its nodes. The campaign retries
// its runs on the healthy replicas and still completes the full sweep with
// zero failed runs and a complete attempt history.
func TestCampaignSurvivesFaultyReplica(t *testing.T) {
	cfg := SweepConfig{
		Sizes:      []int{64, 1500},
		RatesPPS:   []int{10_000, 20_000, 30_000},
		RuntimeSec: 1,
	}
	topos, err := NewReplicas(Virtual, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topos {
		defer topo.Close()
	}
	// Both nodes fail so a faulted run dies instantly instead of leaving
	// the partner waiting out the run_done barrier. Exec occurrence 1 is
	// each node's initial setup script, which must succeed for the
	// session to come up at all.
	failing := map[string]sim.FaultPlan{}
	for _, node := range []string{topos[1].LoadGen, topos[1].DuT} {
		var occ []int
		for i := 2; i <= 60; i++ {
			occ = append(occ, i)
		}
		failing[node] = sim.FaultPlan{FailExecs: occ}
	}
	topos[1].SetFaults(failing)

	reps := Replicas(topos, cfg)
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := &sched.Campaign{
		Replicas:        reps,
		MaxAttempts:     4,
		QuarantineAfter: 2,
	}
	sum, err := c.Run(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 6 || sum.FailedRuns != 0 || len(sum.Records) != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	// replica1 dequeues at least one run and always fails it, so at least
	// one run must record a retry; and if anything was quarantined it can
	// only be the armed replica.
	retried := 0
	for _, rec := range sum.Records {
		if rec.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("no run records a retry despite replica1 failing every exec")
	}
	for _, q := range sum.Quarantined {
		if q != "replica1" {
			t.Errorf("quarantined %q, only replica1 is faulty", q)
		}
	}

	ids, _ := store.ListExperiments("user", "linux-router-vpos")
	e, err := store.OpenExperiment("user", "linux-router-vpos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		if _, err := e.ReadRunMeta(run); err != nil {
			t.Errorf("run %d metadata: %v", run, err)
		}
		logData, err := e.ReadRunArtifact(run, "vriga", "moongen.log")
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if _, err := moonparse.Parse(bytes.NewReader(logData)); err != nil {
			t.Errorf("run %d: parse: %v", run, err)
		}
	}
	if _, err := e.ReadExperimentArtifact("experiment/attempts.json"); err != nil {
		t.Errorf("attempts.json missing: %v", err)
	}
}
