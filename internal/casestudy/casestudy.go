// Package casestudy reproduces the paper's Sec. 5 / Appendix A experiment:
// a MoonGen load generator measuring the forwarding throughput of a Linux
// router for 64 B and 1500 B packets on two platforms — pos (bare metal) and
// vpos (the virtual clone of the testbed).
//
// It assembles a two-node testbed (LoadGen and DuT) with directly wired
// 10 Gbit/s links, attaches the data plane (internal/loadgen,
// internal/router over internal/netem on a shared internal/sim engine), and
// registers the domain commands the experiment scripts call: `moongen` on
// the load generator, `router_enable`/`router_stats` on the DuT. The
// experiment definition itself is pure pos methodology — scripts plus
// variable files — so the identical scripts run on both platforms, the
// property the paper demonstrates.
package casestudy

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"pos/internal/core"
	"pos/internal/image"
	"pos/internal/loadgen"
	"pos/internal/netem"
	"pos/internal/node"
	"pos/internal/packet"
	"pos/internal/perfmodel"
	"pos/internal/router"
	"pos/internal/sim"
	"pos/internal/testbed"
)

// Flavor selects the platform of the case study.
type Flavor string

// The two platforms compared in Fig. 3.
const (
	// BareMetal is the hardware testbed: Intel 82599 NICs with hardware
	// timestamping, a Linux router forwarding ~1.75 Mpps.
	BareMetal Flavor = "pos"
	// Virtual is vpos: KVM guests behind Linux bridges — ~44x lower
	// drop-free throughput, unstable under overload, no hardware
	// timestamps (and therefore no latency measurements).
	Virtual Flavor = "vpos"
)

// Topology is the running rig: the classic two-node pair of the case study,
// or a partitioned multi-hop chain (NewChain) whose devices spread across the
// shards of a sim.ShardGroup.
type Topology struct {
	Flavor  Flavor
	Testbed *testbed.Testbed
	// Engine is the load generator's engine — the only engine of a
	// single-shard topology, one of several in a partitioned one.
	Engine *sim.Engine
	// Group is the shard group driving a partitioned topology; nil when
	// the whole data plane lives on one engine.
	Group *sim.ShardGroup
	Gen   *loadgen.Generator
	// Router is the first hop (the DuT of the two-node rig); Routers holds
	// every forwarding device, in path order.
	Router  *router.Router
	Routers []*router.Router
	// Shards is how many engines the data plane was partitioned across.
	Shards   int
	LoadGen  string // node name playing the load generator
	DuT      string // node name playing the device under test
	template func(frameSize int) packet.UDPTemplate
	expName  string // experiment definition name
	// drive advances the data plane to quiescence: Engine.Run on a single
	// shard, ShardGroup.Run plus clock alignment on a partitioned one.
	drive func() error
	// minGrace floors RunConfig.DrainGrace at the topology's end-to-end
	// path delay so in-flight packets on long trunks are not misread as
	// loss when the caller leaves the grace defaulted.
	minGrace sim.Duration

	// Faults, when non-nil, is the deterministic fault injector every
	// Runner() built from this topology is wrapped with. Occurrences
	// count over the topology's lifetime, like the condition of a
	// physical node.
	Faults *sim.FaultInjector

	// mu guards lastRun, written by the moongen command (executed on the
	// loadgen node) and read by moongen_hist.
	mu      sync.Mutex
	lastRun *loadgen.RunResult
}

// Option tweaks the topology.
type Option func(*options)

type options struct {
	seed        uint64
	switched    bool
	switchDelay sim.Duration
	profile     *loadgen.Profile
	faults      map[string]sim.FaultPlan
	scalar      bool
}

// WithSeed pins the VM jitter seed (default 1).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithSwitch inserts an L2 switch between the hosts instead of direct
// wiring — the ablation from the paper's limitations section.
func WithSwitch(delay sim.Duration) Option {
	return func(o *options) { o.switched = true; o.switchDelay = delay }
}

// WithGenerator replaces the default load generator fidelity with the given
// profile (MoonGen, OSNT hardware, or iPerf-class software). The profile's
// timestamping capability overrides the platform default, so an OSNT card
// measures latency even in vpos and an iPerf host never measures it in
// hardware terms.
func WithGenerator(p loadgen.Profile) Option {
	return func(o *options) { o.profile = &p }
}

// WithScalarEngine disables the batched cut-through data plane and runs the
// topology on the scalar event-per-hop engine. The scalar path is the
// differential-test oracle: it produces byte-identical results to the
// batched default and exists so tests (and suspicious users) can prove it.
func WithScalarEngine() Option {
	return func(o *options) { o.scalar = true }
}

// WithFaults arms the topology with a deterministic fault schedule, keyed
// by node name (vriga, vtartu). Every runner built via Topology.Runner is
// wrapped with the injector, so a campaign replica built from this topology
// misbehaves on exactly the scheduled operations — the reproducible way to
// rehearse the fault-tolerance path (retry, clean-slate re-setup,
// quarantine) before trusting it on hardware.
func WithFaults(plans map[string]sim.FaultPlan) Option {
	return func(o *options) { o.faults = plans }
}

// New builds the two-node topology on fresh testbed infrastructure. The
// node names follow the paper's virtual testbed: vriga (LoadGen) and vtartu
// (DuT).
func New(flavor Flavor, opts ...Option) (*Topology, error) {
	return newTopology(flavor, 0, opts...)
}

// NewReplicas builds n independent copies of the topology — the replica
// testbeds of a parallel campaign, like spawning n vpos instances of the
// same virtual testbed. Every replica runs its own engine, testbed, and
// control plane; the VM jitter seed is offset per replica so the replicas
// are deterministic yet independent. On error, already-built replicas are
// closed.
func NewReplicas(flavor Flavor, n int, opts ...Option) ([]*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("casestudy: need at least one replica, got %d", n)
	}
	topos := make([]*Topology, n)
	for i := range topos {
		t, err := newTopology(flavor, uint64(i), opts...)
		if err != nil {
			for _, built := range topos[:i] {
				built.Close()
			}
			return nil, err
		}
		topos[i] = t
	}
	return topos, nil
}

func newTopology(flavor Flavor, seedOffset uint64, opts ...Option) (*Topology, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	o.seed += seedOffset

	tb := testbed.New()
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		return nil, err
	}
	lgHandle, err := tb.AddNode("vriga")
	if err != nil {
		return nil, err
	}
	dutHandle, err := tb.AddNode("vtartu")
	if err != nil {
		return nil, err
	}

	engine := sim.NewEngine()
	engine.SetBatching(!o.scalar)
	hw := flavor == BareMetal
	var model perfmodel.Model
	if hw {
		model = perfmodel.NewBareMetal()
	} else {
		model = perfmodel.NewVirtual(o.seed)
	}
	rt, err := router.New(engine, router.Config{
		Name:               "dut",
		Model:              model,
		HardwareTimestamps: hw,
	})
	if err != nil {
		return nil, err
	}
	rt.SetForwarding(false) // setup script must enable routing
	var gen *loadgen.Generator
	if o.profile != nil {
		gen = loadgen.NewWithProfile(engine, "loadgen", *o.profile)
	} else {
		gen = loadgen.New(engine, "loadgen", hw)
	}

	link := netem.LinkConfig{RateBitsPerSec: 10e9}
	if o.switched {
		// Each cable runs through its own 2-port cross-connect, the way
		// an L1/L2 switch would patch the topology. A single shared L2
		// switch would be wrong here: the emulated Linux router forwards
		// frames without rewriting MACs, so one broadcast domain across
		// both router ports would flood and loop.
		swA := netem.NewSwitch(engine, "swA", 2, o.switchDelay)
		swB := netem.NewSwitch(engine, "swB", 2, o.switchDelay)
		netem.Wire(engine, gen.TxPort(), swA.Port(0), link)
		netem.Wire(engine, swA.Port(1), rt.Port(0), link)
		netem.Wire(engine, rt.Port(1), swB.Port(0), link)
		netem.Wire(engine, swB.Port(1), gen.RxPort(), link)
	} else {
		// pos wiring: direct, non-switched connections (R2).
		netem.Wire(engine, gen.TxPort(), rt.Port(0), link)
		netem.Wire(engine, rt.Port(1), gen.RxPort(), link)
	}

	topo := &Topology{
		Flavor:   flavor,
		Testbed:  tb,
		Engine:   engine,
		Gen:      gen,
		Router:   rt,
		Routers:  []*router.Router{rt},
		Shards:   1,
		LoadGen:  "vriga",
		DuT:      "vtartu",
		expName:  "linux-router-" + string(flavor),
		drive:    engine.Run,
		template: defaultTemplate,
	}
	if o.faults != nil {
		topo.Faults = sim.NewFaultInjector(o.faults)
	}
	lgHandle.OnBoot(topo.installLoadGenTools)
	dutHandle.OnBoot(topo.installDuTTools)
	return topo, nil
}

// defaultTemplate is the synthetic frame prototype shared by every topology
// flavor: the addresses of the paper's two-host rig.
func defaultTemplate(frameSize int) packet.UDPTemplate {
	return packet.UDPTemplate{
		SrcMAC:  packet.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC:  packet.MAC{0x02, 0, 0, 0, 0, 0x02},
		SrcIP:   packet.IPv4Addr{10, 0, 0, 2},
		DstIP:   packet.IPv4Addr{10, 0, 1, 2},
		SrcPort: 1234, DstPort: 4321,
		FrameSize: frameSize,
	}
}

// SetForwarding toggles ip_forward on every router of the topology.
func (t *Topology) SetForwarding(on bool) {
	for _, r := range t.Routers {
		r.SetForwarding(on)
	}
}

// RouterStats sums the forwarding counters over every router. Forwarded
// counts each hop, so a packet traversing a K-router chain contributes K.
func (t *Topology) RouterStats() router.Stats {
	var sum router.Stats
	for _, r := range t.Routers {
		st := r.Stats()
		sum.Forwarded += st.Forwarded
		sum.Dropped += st.Dropped
		sum.TTLExpired += st.TTLExpired
		sum.BadPacket += st.BadPacket
		sum.NotRouting += st.NotRouting
	}
	return sum
}

// ResetRouterStats zeroes every router's counters and CPU backlog.
func (t *Topology) ResetRouterStats() {
	for _, r := range t.Routers {
		r.ResetStats()
	}
}

// runMeasurement executes one measurement run against the data plane,
// driving whichever engine arrangement the topology uses and flooring the
// drain grace at the topology's path delay.
func (t *Topology) runMeasurement(cfg loadgen.RunConfig) (loadgen.RunResult, error) {
	if cfg.DrainGrace == 0 && t.minGrace > loadgen.DefaultDrainGrace {
		cfg.DrainGrace = t.minGrace
	}
	return t.Gen.RunOn(cfg, t.drive)
}

// SetFaults arms (or disarms, with nil) the topology's fault schedule after
// construction — the way to break a single replica out of a NewReplicas
// batch, which applies identical options to every copy.
func (t *Topology) SetFaults(plans map[string]sim.FaultPlan) {
	if plans == nil {
		t.Faults = nil
		return
	}
	t.Faults = sim.NewFaultInjector(plans)
}

// Runner builds the topology's workflow runner, wrapped with the fault
// injector when one is armed. Campaign replicas must be built through this
// method (not Testbed.Runner directly) or scheduled faults never fire.
func (t *Topology) Runner() *core.Runner {
	r := t.Testbed.Runner()
	if t.Faults != nil {
		r.InjectFaults(t.Faults)
	}
	return r
}

// Close releases the control-plane resources.
func (t *Topology) Close() { t.Testbed.Close() }

// installLoadGenTools registers the `moongen` command plus `moongen_hist`,
// which emits the latency samples of the most recent run as MoonGen's
// histogram CSV — the second data product the paper's plotting scripts
// consume ("throughput and latency data created by MoonGen").
func (t *Topology) installLoadGenTools(n *node.Node) error {
	if err := n.RegisterCommand("moongen", func(ctx context.Context, _ *node.Node, args []string, stdout, stderr node.ErrWriter) error {
		cfg, err := parseMoonGenArgs(args)
		if err != nil {
			return err
		}
		cfg.Template = t.template(cfg.frameSize)
		res, err := t.runMeasurement(cfg.RunConfig)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.lastRun = &res
		t.mu.Unlock()
		return res.WriteReport(writerOf(stdout))
	}); err != nil {
		return err
	}
	return n.RegisterCommand("moongen_hist", func(_ context.Context, _ *node.Node, _ []string, stdout, _ node.ErrWriter) error {
		t.mu.Lock()
		last := t.lastRun
		t.mu.Unlock()
		if last == nil {
			return fmt.Errorf("moongen_hist: no completed run")
		}
		if !last.LatencyAvailable {
			return fmt.Errorf("moongen_hist: no latency data (hardware timestamps unavailable)")
		}
		return last.WriteLatencyCSV(writerOf(stdout))
	})
}

// installDuTTools registers the router-control commands.
func (t *Topology) installDuTTools(n *node.Node) error {
	if err := n.RegisterCommand("router_enable", func(context.Context, *node.Node, []string, node.ErrWriter, node.ErrWriter) error {
		t.SetForwarding(true)
		return nil
	}); err != nil {
		return err
	}
	if err := n.RegisterCommand("router_disable", func(context.Context, *node.Node, []string, node.ErrWriter, node.ErrWriter) error {
		t.SetForwarding(false)
		return nil
	}); err != nil {
		return err
	}
	return n.RegisterCommand("router_stats", func(_ context.Context, _ *node.Node, args []string, stdout, _ node.ErrWriter) error {
		st := t.RouterStats()
		fmt.Fprintf(writerOf(stdout), "forwarded=%d dropped=%d ttl_expired=%d bad=%d not_routing=%d\n",
			st.Forwarded, st.Dropped, st.TTLExpired, st.BadPacket, st.NotRouting)
		if len(args) == 1 && args[0] == "--reset" {
			t.ResetRouterStats()
		}
		return nil
	})
}

type moonGenConfig struct {
	loadgen.RunConfig
	frameSize int
}

// parseMoonGenArgs understands the flags the measurement script passes:
// --rate <pps> --size <frame bytes> --time <seconds>.
func parseMoonGenArgs(args []string) (moonGenConfig, error) {
	cfg := moonGenConfig{}
	cfg.frameSize = 64
	seconds := 1.0
	for i := 0; i < len(args); i++ {
		flag := args[i]
		if i+1 >= len(args) {
			return cfg, fmt.Errorf("moongen: flag %s needs a value", flag)
		}
		val := args[i+1]
		i++
		switch flag {
		case "--rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r <= 0 {
				return cfg, fmt.Errorf("moongen: bad rate %q", val)
			}
			cfg.RatePPS = r
		case "--size":
			s, err := strconv.Atoi(val)
			if err != nil {
				return cfg, fmt.Errorf("moongen: bad size %q", val)
			}
			cfg.frameSize = s
		case "--time":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil || sec <= 0 {
				return cfg, fmt.Errorf("moongen: bad time %q", val)
			}
			seconds = sec
		default:
			return cfg, fmt.Errorf("moongen: unknown flag %s", flag)
		}
	}
	if cfg.RatePPS == 0 {
		return cfg, fmt.Errorf("moongen: --rate is required")
	}
	cfg.Duration = sim.Duration(seconds * float64(sim.Second))
	return cfg, nil
}

// writerOf adapts node.ErrWriter to io.Writer.
type writerAdapter struct{ w node.ErrWriter }

func (w writerAdapter) Write(p []byte) (int, error) { return w.w.Write(p) }

func writerOf(w node.ErrWriter) writerAdapter { return writerAdapter{w} }
