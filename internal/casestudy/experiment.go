package casestudy

import (
	"fmt"
	"time"

	"pos/internal/core"
	"pos/internal/loadgen"
	"pos/internal/pcap"
	"pos/internal/sched"
	"pos/internal/sim"
)

// Scripts of the case study. They are deliberately identical for pos and
// vpos — the experiment definition never changes between platforms; only
// the testbed underneath does.
const (
	// LoadGenSetup configures the traffic source.
	LoadGenSetup = `# LoadGen setup: announce readiness and wait for the DuT.
echo configuring MoonGen on $NODE as $ROLE
pos_set_var global loadgen_ready 1
pos_sync setup_done 2
`
	// DuTSetup turns the host into a router.
	DuTSetup = `# DuT setup: enable IPv4 forwarding, then meet the LoadGen.
echo enabling ip_forward on $NODE
router_enable
pos_set_var global dut_ready 1
pos_sync setup_done 2
`
	// LoadGenMeasurement runs one MoonGen measurement and uploads its log.
	LoadGenMeasurement = `# One measurement run: rate and size come from the loop variables.
echo run $RUN rate=$pkt_rate size=$pkt_sz
pos_run moongen.log moongen --rate $pkt_rate --size $pkt_sz --time $runtime
pos_sync run_done 2
`
	// DuTMeasurement waits out the run, then uploads forwarding counters.
	DuTMeasurement = `# The DuT is passive during a run; collect its counters afterwards.
pos_sync run_done 2
pos_run router.stats router_stats --reset
`
)

// SweepConfig parameterizes the experiment definition.
type SweepConfig struct {
	// Sizes are the frame sizes in bytes (paper: 64 and 1500).
	Sizes []int
	// RatesPPS are the offered rates (paper: 10000..300000 step 10000).
	RatesPPS []int
	// RuntimeSec is the per-run measurement window in virtual seconds.
	RuntimeSec float64
	// User owns the allocation; defaults to "user" as in vpos.
	User string
}

// PaperSweep returns the exact parameter space of Appendix A: 2 sizes x 30
// rates = 60 measurement runs.
func PaperSweep() SweepConfig {
	cfg := SweepConfig{Sizes: []int{64, 1500}, RuntimeSec: 2}
	for r := 10_000; r <= 300_000; r += 10_000 {
		cfg.RatesPPS = append(cfg.RatesPPS, r)
	}
	return cfg
}

// ExtendedSweep widens the rate axis so both Fig. 3a plateaus (the 1.75 Mpps
// CPU limit and the ~0.81 Mpps NIC line-rate ceiling) become visible.
func ExtendedSweep() SweepConfig {
	cfg := SweepConfig{Sizes: []int{64, 1500}, RuntimeSec: 2}
	for r := 100_000; r <= 2_200_000; r += 100_000 {
		cfg.RatesPPS = append(cfg.RatesPPS, r)
	}
	return cfg
}

// Experiment renders the sweep as a pos experiment bound to the topology's
// nodes. The returned definition is pure data — scripts and variables.
func (t *Topology) Experiment(cfg SweepConfig) *core.Experiment {
	user := cfg.User
	if user == "" {
		user = "user"
	}
	runtime := cfg.RuntimeSec
	if runtime <= 0 {
		runtime = 2
	}
	var sizes, rates []string
	for _, s := range cfg.Sizes {
		sizes = append(sizes, fmt.Sprint(s))
	}
	for _, r := range cfg.RatesPPS {
		rates = append(rates, fmt.Sprint(r))
	}
	return &core.Experiment{
		Name: t.expName,
		User: user,
		GlobalVars: core.Vars{
			"runtime": fmt.Sprintf("%g", runtime),
			"flavor":  string(t.Flavor),
		},
		LoopVars: []core.LoopVar{
			{Name: "pkt_sz", Values: sizes},
			{Name: "pkt_rate", Values: rates},
		},
		Hosts: []core.HostSpec{
			{
				Role:        "loadgen",
				Node:        t.LoadGen,
				Image:       "debian-buster@20201012T110000Z",
				LocalVars:   core.Vars{"port_tx": "eno1", "port_rx": "eno2"},
				Setup:       LoadGenSetup,
				Measurement: LoadGenMeasurement,
			},
			{
				Role:        "dut",
				Node:        t.DuT,
				Image:       "debian-buster@20201012T110000Z",
				LocalVars:   core.Vars{"port_in": "eno1", "port_out": "eno2"},
				Setup:       DuTSetup,
				Measurement: DuTMeasurement,
			},
		},
		Duration: 3 * time.Hour,
	}
}

// Replicas renders one sweep as campaign replicas over the given topologies
// (built with NewReplicas): each replica is that topology's runner plus the
// identical experiment definition bound to its nodes. Feed the result to a
// sched.Campaign to shard the sweep.
func Replicas(topos []*Topology, cfg SweepConfig) []sched.Replica {
	reps := make([]sched.Replica, len(topos))
	for i, t := range topos {
		reps[i] = sched.Replica{
			Name:       fmt.Sprintf("replica%d", i),
			Runner:     t.Runner(),
			Experiment: t.Experiment(cfg),
		}
	}
	return reps
}

// DirectRun performs one measurement run against the data plane without the
// control plane — the fast path used by the benchmark harness to sweep the
// figures (each sweep point is identical to what a full workflow run
// produces; integration tests assert that equivalence).
func (t *Topology) DirectRun(frameSize int, ratePPS float64, durationSec float64) (RunPoint, error) {
	t.SetForwarding(true)
	cfg := moonGenConfig{frameSize: frameSize}
	cfg.RatePPS = ratePPS
	cfg.Duration = sim.Duration(durationSec * float64(sim.Second))
	cfg.Template = t.template(frameSize)
	res, err := t.runMeasurement(cfg.RunConfig)
	if err != nil {
		return RunPoint{}, err
	}
	return RunPoint{
		Flavor:     t.Flavor,
		FrameSize:  frameSize,
		OfferedPPS: ratePPS,
		TxMpps:     res.TxRatePPS / 1e6,
		RxMpps:     res.RxRatePPS / 1e6,
		LossRatio:  res.LossRatio(),
		LatencyOK:  res.LatencyAvailable,
	}, nil
}

// LatencySamples performs one measurement run and returns the raw one-way
// latency samples in nanoseconds. It fails on platforms without end-to-end
// hardware timestamping (vpos), matching the paper's limitation.
func (t *Topology) LatencySamples(frameSize int, ratePPS, durationSec float64) ([]float64, error) {
	t.SetForwarding(true)
	cfg := moonGenConfig{frameSize: frameSize}
	cfg.RatePPS = ratePPS
	cfg.Duration = sim.Duration(durationSec * float64(sim.Second))
	cfg.Template = t.template(frameSize)
	res, err := t.runMeasurement(cfg.RunConfig)
	if err != nil {
		return nil, err
	}
	if !res.LatencyAvailable {
		return nil, fmt.Errorf("casestudy: latency measurement unavailable on %s (no hardware timestamps)", t.Flavor)
	}
	out := make([]float64, len(res.Latencies))
	for i, d := range res.Latencies {
		out[i] = float64(d)
	}
	return out, nil
}

// ReplayRun replays captured frames through the DuT at the given rate
// (round-robin over the capture) and returns the measured point — the
// pcap-based traffic source the paper names alongside synthetic generation.
func (t *Topology) ReplayRun(packets []pcap.Packet, ratePPS, durationSec float64) (RunPoint, error) {
	if len(packets) == 0 {
		return RunPoint{}, fmt.Errorf("casestudy: empty capture")
	}
	t.SetForwarding(true)
	res, err := t.Gen.Run(loadgen.RunConfig{
		Replay:   packets,
		RatePPS:  ratePPS,
		Duration: sim.Duration(durationSec * float64(sim.Second)),
	})
	if err != nil {
		return RunPoint{}, err
	}
	return RunPoint{
		Flavor:     t.Flavor,
		FrameSize:  res.FrameSize,
		OfferedPPS: ratePPS,
		TxMpps:     res.TxRatePPS / 1e6,
		RxMpps:     res.RxRatePPS / 1e6,
		LossRatio:  res.LossRatio(),
		LatencyOK:  res.LatencyAvailable,
	}, nil
}

// RunPoint is one point of a throughput sweep — one cell of Fig. 3.
type RunPoint struct {
	Flavor     Flavor
	FrameSize  int
	OfferedPPS float64
	TxMpps     float64
	RxMpps     float64
	LossRatio  float64
	LatencyOK  bool
}
