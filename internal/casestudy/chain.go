package casestudy

import (
	"fmt"

	"pos/internal/image"
	"pos/internal/loadgen"
	"pos/internal/netem"
	"pos/internal/partition"
	"pos/internal/perfmodel"
	"pos/internal/router"
	"pos/internal/sim"
	"pos/internal/testbed"
)

// ChainConfig parameterizes the multi-hop router chain topology: the load
// generator feeds router 1, each router forwards to the next, and the last
// router returns traffic to the generator's RX port. Routers group into
// contiguous clusters joined by slow trunk links; the trunks are the only
// links the partitioner may cut, so their propagation delay becomes the
// cross-shard lookahead.
type ChainConfig struct {
	// Routers is the chain length (default 4).
	Routers int
	// Clusters is how many contiguous router groups the chain forms
	// (default Shards, or 2 when Shards is unset). Trunk links sit at the
	// cluster boundaries and on the return path.
	Clusters int
	// Shards is the partition target (default Clusters). WithScalarEngine
	// forces a single shard without changing any link delay, so the scalar
	// run remains the byte-identical oracle for the partitioned one.
	Shards int
	// HopDelay is the propagation delay of intra-cluster links
	// (default 5 µs — patch cables inside one rack).
	HopDelay sim.Duration
	// TrunkDelay is the propagation delay of cluster-boundary trunks and
	// the return link (default 2 ms — the inter-site fibre whose latency
	// buys the synchronizer its lookahead).
	TrunkDelay sim.Duration
}

func (c *ChainConfig) setDefaults() {
	if c.Routers <= 0 {
		c.Routers = 4
	}
	if c.Shards <= 0 {
		if c.Clusters > 0 {
			c.Shards = c.Clusters
		} else {
			c.Shards = 2
		}
	}
	if c.Clusters <= 0 {
		c.Clusters = c.Shards
	}
	if c.Clusters > c.Routers {
		c.Clusters = c.Routers
	}
	if c.HopDelay <= 0 {
		c.HopDelay = 5 * sim.Microsecond
	}
	if c.TrunkDelay <= 0 {
		c.TrunkDelay = 2 * sim.Millisecond
	}
}

// chainSeedStride derives per-router VM jitter seeds from the topology seed.
// Seeds depend only on the router's position, never on shard placement, so a
// partitioned run and the scalar oracle drive identical model sequences.
const chainSeedStride = 0x9E3779B97F4A7C15

// NewChain builds the multi-hop chain topology, partitions it across shards
// with the latency-aware partitioner, and wires cut links through cross-shard
// mailboxes. With one shard (or WithScalarEngine) the identical chain runs on
// a single engine — the differential-test oracle.
func NewChain(flavor Flavor, cc ChainConfig, opts ...Option) (*Topology, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cc.setDefaults()
	shardTarget := cc.Shards
	if o.scalar {
		shardTarget = 1
	}

	// Cluster assignment: contiguous blocks, sizes as even as possible.
	clusterOf := make([]int, cc.Routers) // router index (0-based) -> cluster
	base, extra := cc.Routers/cc.Clusters, cc.Routers%cc.Clusters
	for i, c, fill := 0, 0, 0; i < cc.Routers; i++ {
		clusterOf[i] = c
		fill++
		size := base
		if c < extra {
			size++
		}
		if fill == size {
			c, fill = c+1, 0
		}
	}
	rname := func(i int) string { return fmt.Sprintf("r%d", i+1) }

	// The partition graph mirrors the wiring below edge for edge.
	g := partition.Graph{Nodes: []partition.Node{{Name: "gen"}}}
	for i := 0; i < cc.Routers; i++ {
		g.Nodes = append(g.Nodes, partition.Node{Name: rname(i)})
	}
	linkDelay := func(a, b int) sim.Duration {
		if clusterOf[a] != clusterOf[b] {
			return cc.TrunkDelay
		}
		return cc.HopDelay
	}
	g.Edges = append(g.Edges, partition.Edge{A: "gen", B: rname(0), RateBitsPerSec: 10e9, Latency: cc.HopDelay})
	for i := 0; i+1 < cc.Routers; i++ {
		g.Edges = append(g.Edges, partition.Edge{A: rname(i), B: rname(i + 1), RateBitsPerSec: 10e9, Latency: linkDelay(i, i+1)})
	}
	g.Edges = append(g.Edges, partition.Edge{A: rname(cc.Routers - 1), B: "gen", RateBitsPerSec: 10e9, Latency: cc.TrunkDelay})

	asg, err := partition.Partition(g, partition.Config{Shards: shardTarget, MinLookahead: cc.TrunkDelay})
	if err != nil {
		return nil, fmt.Errorf("casestudy: partitioning chain: %w", err)
	}

	tb := testbed.New()
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		return nil, err
	}
	lgHandle, err := tb.AddNode("vriga")
	if err != nil {
		return nil, err
	}
	dutHandle, err := tb.AddNode("vtartu")
	if err != nil {
		return nil, err
	}

	engines := make([]*sim.Engine, asg.Shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
		engines[i].SetBatching(!o.scalar)
	}
	var group *sim.ShardGroup
	var shards []*sim.Shard
	if asg.Shards > 1 {
		group = sim.NewShardGroup(0)
		for _, e := range engines {
			shards = append(shards, group.AddEngine(e, nil))
		}
	}
	engOf := func(name string) *sim.Engine { return engines[asg.Shard[name]] }

	hw := flavor == BareMetal
	routers := make([]*router.Router, cc.Routers)
	for i := range routers {
		var model perfmodel.Model
		if hw {
			model = perfmodel.NewBareMetal()
		} else {
			model = perfmodel.NewVirtual(o.seed + uint64(i)*chainSeedStride)
		}
		rt, err := router.New(engOf(rname(i)), router.Config{
			Name:               rname(i),
			Model:              model,
			HardwareTimestamps: hw,
		})
		if err != nil {
			return nil, err
		}
		rt.SetForwarding(false) // setup script must enable routing
		routers[i] = rt
	}
	var gen *loadgen.Generator
	if o.profile != nil {
		gen = loadgen.NewWithProfile(engOf("gen"), "loadgen", *o.profile)
	} else {
		gen = loadgen.New(engOf("gen"), "loadgen", hw)
	}

	wire := func(a, b *netem.Port, na, nb string, delay sim.Duration) error {
		cfg := netem.LinkConfig{RateBitsPerSec: 10e9, PropagationDelay: delay}
		sa, sb := asg.Shard[na], asg.Shard[nb]
		if group == nil || sa == sb {
			netem.Wire(engines[sa], a, b, cfg)
			return nil
		}
		_, err := netem.WireCross(a, b, shards[sa], shards[sb], cfg)
		return err
	}
	if err := wire(gen.TxPort(), routers[0].Port(0), "gen", rname(0), cc.HopDelay); err != nil {
		return nil, err
	}
	pathDelay := cc.HopDelay
	for i := 0; i+1 < cc.Routers; i++ {
		d := linkDelay(i, i+1)
		if err := wire(routers[i].Port(1), routers[i+1].Port(0), rname(i), rname(i+1), d); err != nil {
			return nil, err
		}
		pathDelay += d
	}
	if err := wire(routers[cc.Routers-1].Port(1), gen.RxPort(), rname(cc.Routers-1), "gen", cc.TrunkDelay); err != nil {
		return nil, err
	}
	pathDelay += cc.TrunkDelay

	drive := engines[asg.Shard["gen"]].Run
	if group != nil {
		drive = func() error {
			if err := group.Run(); err != nil {
				return err
			}
			// Realign the shard clocks so the next run starts where a
			// single-engine run would have left its one clock.
			group.AlignClocks()
			return nil
		}
	}

	topo := &Topology{
		Flavor:   flavor,
		Testbed:  tb,
		Engine:   engOf("gen"),
		Group:    group,
		Gen:      gen,
		Router:   routers[0],
		Routers:  routers,
		Shards:   asg.Shards,
		LoadGen:  "vriga",
		DuT:      "vtartu",
		expName:  "router-chain-" + string(flavor),
		drive:    drive,
		minGrace: pathDelay + loadgen.DefaultDrainGrace,
		template: defaultTemplate,
	}
	lgHandle.OnBoot(topo.installLoadGenTools)
	dutHandle.OnBoot(topo.installDuTTools)
	return topo, nil
}
