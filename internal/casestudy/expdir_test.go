package casestudy

import (
	"context"
	"os"
	"strings"
	"testing"

	"pos/internal/core"
	"pos/internal/expfile"
	"pos/internal/results"
	"pos/internal/topo"
)

// repoExperimentDir is the canonical published experiment shipped with the
// repository — the equivalent of the paper's pos-artifacts/experiment tree.
const repoExperimentDir = "../../experiments/linux-router"

func TestShippedExperimentDirLoads(t *testing.T) {
	exp, err := expfile.Load(repoExperimentDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "linux-router" || exp.User != "user" {
		t.Errorf("meta = %s/%s", exp.Name, exp.User)
	}
	if core.NumRuns(exp.LoopVars) != 60 {
		t.Errorf("runs = %d, want 60 (Appendix A)", core.NumRuns(exp.LoopVars))
	}
	if len(exp.Hosts) != 2 {
		t.Fatalf("hosts = %d", len(exp.Hosts))
	}
}

func TestShippedExperimentMatchesInCodeDefinition(t *testing.T) {
	// The on-disk artifact and the in-code definition must stay in sync:
	// both are "the experiment", published in two forms.
	onDisk, err := expfile.Load(repoExperimentDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	inCode := topo.Experiment(PaperSweep())

	byRole := map[string]core.HostSpec{}
	for _, h := range onDisk.Hosts {
		byRole[h.Role] = h
	}
	for _, want := range inCode.Hosts {
		got, ok := byRole[want.Role]
		if !ok {
			t.Fatalf("role %s missing on disk", want.Role)
		}
		if got.Setup != want.Setup {
			t.Errorf("%s setup differs:\n--- disk ---\n%s--- code ---\n%s", want.Role, got.Setup, want.Setup)
		}
		if got.Measurement != want.Measurement {
			t.Errorf("%s measurement differs:\n--- disk ---\n%s--- code ---\n%s", want.Role, got.Measurement, want.Measurement)
		}
		if got.Node != want.Node || got.Image != want.Image {
			t.Errorf("%s binding = %s/%s, want %s/%s", want.Role, got.Node, got.Image, want.Node, want.Image)
		}
	}
	if core.NumRuns(onDisk.LoopVars) != core.NumRuns(inCode.LoopVars) {
		t.Errorf("run counts differ: %d vs %d", core.NumRuns(onDisk.LoopVars), core.NumRuns(inCode.LoopVars))
	}
}

func TestShippedExperimentRunsEndToEnd(t *testing.T) {
	exp, err := expfile.Load(repoExperimentDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the sweep for test time; the definition itself is untouched.
	exp.LoopVars = []core.LoopVar{
		{Name: "pkt_sz", Values: []string{"64"}},
		{Name: "pkt_rate", Values: []string{"10000", "300000"}},
	}
	exp.GlobalVars["runtime"] = "1"
	topo, err := New(BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := topo.Testbed.Runner().Run(context.Background(), exp, store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRuns != 2 || sum.FailedRuns != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	ids, _ := store.ListExperiments("user", "linux-router")
	rec, err := store.OpenExperiment("user", "linux-router", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	logData, err := rec.ReadRunArtifact(0, "vriga", "moongen.log")
	if err != nil || !strings.Contains(string(logData), "RX:") {
		t.Errorf("moongen log = %q, %v", logData, err)
	}
}

func TestShippedTopologyBuildsAndIsDirect(t *testing.T) {
	data, err := os.ReadFile(repoExperimentDir + "/topology.txt")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := topo.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	direct, switches := spec.DirectlyWired()
	if !direct {
		t.Errorf("shipped topology uses switches: %v — violates R2", switches)
	}
	n, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Generator("lg"); err != nil {
		t.Error(err)
	}
	if _, err := n.Router("dut"); err != nil {
		t.Error(err)
	}
}
