package casestudy

import (
	"errors"
	"fmt"

	"pos/internal/loadgen"
	"pos/internal/sim"
)

// SweepPoints flattens a sweep into its (size, rate) measurement points in
// campaign order: sizes outer, rates inner — the same order the appendix
// workflow's loop variables enumerate.
func SweepPoints(cfg SweepConfig) [][2]float64 {
	pts := make([][2]float64, 0, len(cfg.Sizes)*len(cfg.RatesPPS))
	for _, s := range cfg.Sizes {
		for _, r := range cfg.RatesPPS {
			pts = append(pts, [2]float64{float64(s), float64(r)})
		}
	}
	return pts
}

// ShardedSweep runs every point of the sweep, partitioned round-robin across
// the replica topologies (built with NewReplicas) and executed in parallel
// on a sim.ShardGroup — one shard per replica timeline. Results come back in
// campaign order regardless of sharding.
//
// Each shard's subsequence is exactly what sequential DirectRun calls on
// that replica would produce: the shard driver chains runs back-to-back on
// the replica's own engine, so determinism is per-replica, independent of
// GOMAXPROCS and scheduling. window > 0 selects conservative time-window
// synchronization (useful when shards exchange traffic); 0 lets these
// independent timelines free-run.
func ShardedSweep(topos []*Topology, cfg SweepConfig, window sim.Duration) ([]RunPoint, error) {
	if len(topos) == 0 {
		return nil, fmt.Errorf("casestudy: sharded sweep needs at least one topology")
	}
	for _, t := range topos {
		if t.Group != nil {
			return nil, fmt.Errorf("casestudy: replica %q is itself partitioned across shards; ShardedSweep cannot nest shard groups", t.expName)
		}
	}
	runtime := cfg.RuntimeSec
	if runtime <= 0 {
		runtime = 2
	}
	pts := SweepPoints(cfg)
	out := make([]RunPoint, len(pts))
	group := sim.NewShardGroup(window)
	states := make([]*sweepShard, len(topos))
	for i, t := range topos {
		st := &sweepShard{topo: t, out: out, runtime: runtime}
		for p := i; p < len(pts); p += len(topos) {
			st.points = append(st.points, p)
			st.cfgs = append(st.cfgs, pts[p])
		}
		states[i] = st
		group.AddEngine(t.Engine, st.drive)
	}
	if err := group.Run(); err != nil {
		return nil, err
	}
	errs := make([]error, 0, len(states))
	for _, st := range states {
		if st.err != nil {
			errs = append(errs, st.err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// sweepShard is one replica's slice of the sweep.
type sweepShard struct {
	topo    *Topology
	points  []int        // indices into the campaign-order result slice
	cfgs    [][2]float64 // (size, rate) per point
	runtime float64
	next    int
	ar      *loadgen.ActiveRun
	err     error
	out     []RunPoint
}

// drive is the shard's idle callback: finalize the run that just drained,
// then start the next point.
func (st *sweepShard) drive(_ *sim.Shard, _ sim.Time) bool {
	if st.ar != nil {
		res, err := st.ar.Result()
		st.ar = nil
		if err != nil {
			st.err = err
			return false
		}
		idx := st.points[st.next-1]
		size, rate := st.cfgs[st.next-1][0], st.cfgs[st.next-1][1]
		st.out[idx] = RunPoint{
			Flavor:     st.topo.Flavor,
			FrameSize:  int(size),
			OfferedPPS: rate,
			TxMpps:     res.TxRatePPS / 1e6,
			RxMpps:     res.RxRatePPS / 1e6,
			LossRatio:  res.LossRatio(),
			LatencyOK:  res.LatencyAvailable,
		}
	}
	if st.next >= len(st.points) {
		return false
	}
	size, rate := st.cfgs[st.next][0], st.cfgs[st.next][1]
	st.next++
	st.topo.Router.SetForwarding(true)
	cfg := moonGenConfig{frameSize: int(size)}
	cfg.RatePPS = rate
	cfg.Duration = sim.Duration(st.runtime * float64(sim.Second))
	cfg.Template = st.topo.template(int(size))
	ar, err := st.topo.Gen.Start(cfg.RunConfig)
	if err != nil {
		st.err = err
		return false
	}
	st.ar = ar
	return true
}
