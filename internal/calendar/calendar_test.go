package calendar

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 12, 7, 9, 0, 0, 0, time.UTC)

func hours(h int) time.Time { return t0.Add(time.Duration(h) * time.Hour) }

func newCal() *Calendar {
	return New([]string{"vriga", "vtartu", "vvilnius"})
}

func TestAllocateAndRelease(t *testing.T) {
	c := newCal()
	a, err := c.Allocate("alice", []string{"vriga", "vtartu"}, hours(0), hours(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == 0 || a.User != "alice" || len(a.Nodes) != 2 {
		t.Errorf("alloc = %+v", a)
	}
	if err := c.Release("alice", a.ID); err != nil {
		t.Fatal(err)
	}
	if !c.Free([]string{"vriga"}, hours(0), hours(3)) {
		t.Error("node not free after release")
	}
}

func TestOverlapRejected(t *testing.T) {
	c := newCal()
	if _, err := c.Allocate("alice", []string{"vriga"}, hours(0), hours(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate("bob", []string{"vriga"}, hours(2), hours(4)); !errors.Is(err, ErrConflict) {
		t.Errorf("overlapping allocation: err = %v, want conflict", err)
	}
	// Disjoint node is fine even in the same interval.
	if _, err := c.Allocate("bob", []string{"vtartu"}, hours(2), hours(4)); err != nil {
		t.Errorf("disjoint allocation rejected: %v", err)
	}
	// Back-to-back (half-open) intervals are fine.
	if _, err := c.Allocate("bob", []string{"vriga"}, hours(3), hours(5)); err != nil {
		t.Errorf("adjacent allocation rejected: %v", err)
	}
}

func TestAtomicity(t *testing.T) {
	c := newCal()
	if _, err := c.Allocate("alice", []string{"vtartu"}, hours(0), hours(3)); err != nil {
		t.Fatal(err)
	}
	// Request includes one free and one held node: nothing is reserved.
	if _, err := c.Allocate("bob", []string{"vriga", "vtartu"}, hours(1), hours(2)); err == nil {
		t.Fatal("partial-conflict allocation accepted")
	}
	if !c.Free([]string{"vriga"}, hours(1), hours(2)) {
		t.Error("failed allocation leaked a reservation")
	}
}

func TestValidation(t *testing.T) {
	c := newCal()
	if _, err := c.Allocate("a", []string{"vriga"}, hours(2), hours(1)); !errors.Is(err, ErrBadInterval) {
		t.Errorf("bad interval: %v", err)
	}
	if _, err := c.Allocate("a", nil, hours(0), hours(1)); !errors.Is(err, ErrNoNodes) {
		t.Errorf("empty nodes: %v", err)
	}
	if _, err := c.Allocate("a", []string{"ghost"}, hours(0), hours(1)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: %v", err)
	}
	if _, err := c.Allocate("a", []string{"vriga", "vriga"}, hours(0), hours(1)); !errors.Is(err, ErrDuplicateReq) {
		t.Errorf("duplicate node: %v", err)
	}
}

func TestReleaseAuthorization(t *testing.T) {
	c := newCal()
	a, _ := c.Allocate("alice", []string{"vriga"}, hours(0), hours(1))
	if err := c.Release("bob", a.ID); !errors.Is(err, ErrWrongUser) {
		t.Errorf("cross-user release: %v", err)
	}
	if err := c.Release("alice", 999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing id: %v", err)
	}
}

func TestActive(t *testing.T) {
	c := newCal()
	c.Allocate("alice", []string{"vriga"}, hours(0), hours(2))
	c.Allocate("bob", []string{"vtartu"}, hours(1), hours(3))
	act := c.Active(hours(0).Add(90 * time.Minute))
	if len(act) != 2 {
		t.Fatalf("active = %d, want 2", len(act))
	}
	if act[0].User != "alice" || act[1].User != "bob" {
		t.Errorf("active order: %v", act)
	}
	if got := c.Active(hours(5)); len(got) != 0 {
		t.Errorf("active after end: %v", got)
	}
}

func TestExpire(t *testing.T) {
	c := newCal()
	c.Allocate("alice", []string{"vriga"}, hours(0), hours(1))
	c.Allocate("bob", []string{"vtartu"}, hours(0), hours(4))
	if n := c.Expire(hours(2)); n != 1 {
		t.Errorf("expired %d, want 1", n)
	}
	if !c.Free([]string{"vriga"}, hours(0), hours(1)) {
		t.Error("expired allocation still blocks")
	}
	if c.Free([]string{"vtartu"}, hours(0), hours(1)) {
		t.Error("live allocation expired")
	}
}

func TestAddNode(t *testing.T) {
	c := newCal()
	c.AddNode("vnew")
	if _, err := c.Allocate("alice", []string{"vnew"}, hours(0), hours(1)); err != nil {
		t.Errorf("allocating added node: %v", err)
	}
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestConcurrentAllocationNoDoubleBooking(t *testing.T) {
	c := newCal()
	const workers = 32
	var wg sync.WaitGroup
	got := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, got[i] = c.Allocate("user", []string{"vriga"}, hours(0), hours(1))
		}(i)
	}
	wg.Wait()
	success := 0
	for _, err := range got {
		if err == nil {
			success++
		}
	}
	if success != 1 {
		t.Errorf("%d concurrent allocations succeeded, want exactly 1", success)
	}
}

// Property: no two accepted allocations ever share a node while overlapping
// in time, for arbitrary request sequences.
func TestNoOverlapInvariantProperty(t *testing.T) {
	type req struct {
		NodeBits uint8
		StartH   uint8
		LenH     uint8
	}
	nodeNames := []string{"vriga", "vtartu", "vvilnius"}
	prop := func(reqs []req) bool {
		c := newCal()
		var accepted []Allocation
		for _, r := range reqs {
			var nodes []string
			for i, n := range nodeNames {
				if r.NodeBits&(1<<i) != 0 {
					nodes = append(nodes, n)
				}
			}
			start := hours(int(r.StartH % 48))
			end := start.Add(time.Duration(r.LenH%8+1) * time.Hour)
			if a, err := c.Allocate("u", nodes, start, end); err == nil {
				accepted = append(accepted, a)
			}
		}
		for i := 0; i < len(accepted); i++ {
			for j := i + 1; j < len(accepted); j++ {
				a, b := accepted[i], accepted[j]
				if !a.Overlaps(b.Start, b.End) {
					continue
				}
				for _, n1 := range a.Nodes {
					for _, n2 := range b.Nodes {
						if n1 == n2 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizeCountsEveryHeldAllocation(t *testing.T) {
	c := newCal()
	if c.Size() != 0 {
		t.Fatalf("fresh calendar Size = %d", c.Size())
	}
	c.Allocate("alice", []string{"vriga"}, hours(0), hours(1))
	c.Allocate("bob", []string{"vtartu"}, hours(0), hours(4))
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2", c.Size())
	}
	// An ended allocation still counts until someone sweeps it — that is
	// the leak Size exists to expose.
	if c.Expire(hours(2)); c.Size() != 1 {
		t.Errorf("Size after Expire = %d, want 1", c.Size())
	}
}
