// Package calendar implements the testbed's allocation calendar. pos runs as
// a multi-user facility: experiment hosts are shared between researchers by
// temporal separation. An allocation reserves a set of nodes for one user
// over a time interval; the calendar refuses any reservation that would let
// two experiments touch the same node at the same time — using a node in
// more than one experiment simultaneously is prohibited by design (Sec. 4.4).
package calendar

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Allocation is one confirmed reservation.
type Allocation struct {
	// ID is assigned by the calendar.
	ID int
	// User owns the reservation.
	User string
	// Nodes are the reserved node names.
	Nodes []string
	// Start and End bound the reservation (half-open [Start, End)).
	Start, End time.Time
}

// Overlaps reports whether the allocation's interval intersects [start,end).
func (a Allocation) Overlaps(start, end time.Time) bool {
	return a.Start.Before(end) && start.Before(a.End)
}

// Conflict errors.
var (
	ErrConflict     = errors.New("calendar: node already allocated in that interval")
	ErrUnknownNode  = errors.New("calendar: unknown node")
	ErrBadInterval  = errors.New("calendar: end must be after start")
	ErrNoNodes      = errors.New("calendar: allocation needs at least one node")
	ErrNotFound     = errors.New("calendar: allocation not found")
	ErrWrongUser    = errors.New("calendar: allocation belongs to another user")
	ErrDuplicateReq = errors.New("calendar: duplicate node in request")
)

// Calendar tracks allocations for a fixed set of testbed nodes.
type Calendar struct {
	mu     sync.Mutex
	nodes  map[string]bool
	allocs map[int]Allocation
	nextID int
}

// New returns a calendar managing the given node names.
func New(nodes []string) *Calendar {
	c := &Calendar{
		nodes:  make(map[string]bool, len(nodes)),
		allocs: make(map[int]Allocation),
		nextID: 1,
	}
	for _, n := range nodes {
		c.nodes[n] = true
	}
	return c
}

// AddNode registers an additional node with the calendar.
func (c *Calendar) AddNode(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[name] = true
}

// Nodes lists managed node names, sorted.
func (c *Calendar) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Allocate reserves nodes for user over [start, end). It fails atomically:
// either every node is reserved or none is.
func (c *Calendar) Allocate(user string, nodes []string, start, end time.Time) (Allocation, error) {
	if !end.After(start) {
		return Allocation{}, ErrBadInterval
	}
	if len(nodes) == 0 {
		return Allocation{}, ErrNoNodes
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			return Allocation{}, fmt.Errorf("%w: %s", ErrDuplicateReq, n)
		}
		seen[n] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if !c.nodes[n] {
			return Allocation{}, fmt.Errorf("%w: %s", ErrUnknownNode, n)
		}
	}
	for _, a := range c.allocs {
		if !a.Overlaps(start, end) {
			continue
		}
		for _, n := range nodes {
			for _, held := range a.Nodes {
				if n == held {
					return Allocation{}, fmt.Errorf("%w: %s held by %s (#%d) until %s",
						ErrConflict, n, a.User, a.ID, a.End.Format(time.RFC3339))
				}
			}
		}
	}
	alloc := Allocation{
		ID:    c.nextID,
		User:  user,
		Nodes: append([]string(nil), nodes...),
		Start: start,
		End:   end,
	}
	c.nextID++
	c.allocs[alloc.ID] = alloc
	return alloc, nil
}

// Release frees an allocation early. Only the owning user may release it.
func (c *Calendar) Release(user string, id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.allocs[id]
	if !ok {
		return ErrNotFound
	}
	if a.User != user {
		return fmt.Errorf("%w: %s", ErrWrongUser, a.User)
	}
	delete(c.allocs, id)
	return nil
}

// Free reports whether every listed node is unallocated across [start, end).
func (c *Calendar) Free(nodes []string, start, end time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.allocs {
		if !a.Overlaps(start, end) {
			continue
		}
		for _, n := range nodes {
			for _, held := range a.Nodes {
				if n == held {
					return false
				}
			}
		}
	}
	return true
}

// Active returns allocations overlapping the instant at, sorted by ID.
func (c *Calendar) Active(at time.Time) []Allocation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Allocation
	for _, a := range c.allocs {
		if a.Overlaps(at, at.Add(time.Nanosecond)) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size reports how many allocations the calendar currently holds — including
// ones already ended but not yet swept by Expire. Every Allocate scans this
// many reservations, so Size is the regression signal for expiry leaks.
func (c *Calendar) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.allocs)
}

// Expire drops allocations that ended at or before now and returns how many
// were removed.
func (c *Calendar) Expire(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for id, a := range c.allocs {
		if !a.End.After(now) {
			delete(c.allocs, id)
			removed++
		}
	}
	return removed
}
