package publish

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pos/internal/results"
)

func sampleExperiment(t *testing.T) *results.Experiment {
	t.Helper()
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := store.CreateExperiment("user", "linux-router", time.Date(2020, 10, 12, 11, 20, 32, 230471000, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exp.Sync() })
	if err := exp.AddExperimentArtifact("experiment/measurement.sh", []byte("moongen --rate $pkt_rate")); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		if err := exp.WriteRunMeta(results.RunMeta{Run: run, Failed: run == 2}); err != nil {
			t.Fatal(err)
		}
		if err := exp.AddRunArtifact(run, "loadgen", "moongen.log", []byte("log data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.AddExperimentArtifact("figures/throughput.svg", []byte("<svg/>")); err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestBuildManifest(t *testing.T) {
	exp := sampleExperiment(t)
	m, err := BuildManifest(exp, "user", "linux-router")
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 3 || m.FailedRuns != 1 {
		t.Errorf("manifest = %+v", m)
	}
	if m.ID != exp.ID() {
		t.Errorf("id = %s", m.ID)
	}
	// All artifacts present and sorted.
	wantSome := []string{
		"experiment/measurement.sh",
		"figures/throughput.svg",
		"run_0000/loadgen/moongen.log",
		"run_0000/metadata.json",
	}
	joined := strings.Join(m.Files, "\n")
	for _, w := range wantSome {
		if !strings.Contains(joined, w) {
			t.Errorf("manifest missing %s:\n%s", w, joined)
		}
	}
	for i := 1; i < len(m.Files); i++ {
		if m.Files[i] < m.Files[i-1] {
			t.Error("files not sorted")
		}
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	exp := sampleExperiment(t)
	var buf bytes.Buffer
	m, err := Archive(exp, "linux-router", &buf)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	var names []string
	contents := map[string]string{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, hdr.Name)
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		contents[hdr.Name] = string(data)
	}
	if len(names) != len(m.Files) {
		t.Errorf("archive entries = %d, manifest = %d", len(names), len(m.Files))
	}
	prefix := "linux-router-" + exp.ID() + "/"
	for _, n := range names {
		if !strings.HasPrefix(n, prefix) {
			t.Errorf("entry %q not rooted at %q", n, prefix)
		}
	}
	if got := contents[prefix+"experiment/measurement.sh"]; got != "moongen --rate $pkt_rate" {
		t.Errorf("script content = %q", got)
	}
}

func TestWebsite(t *testing.T) {
	exp := sampleExperiment(t)
	m, err := BuildManifest(exp, "user", "linux-router")
	if err != nil {
		t.Fatal(err)
	}
	site, err := Website(m)
	if err != nil {
		t.Fatal(err)
	}
	html := string(site)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"linux-router",
		"3 measurement runs (1 failed)",
		"run_0000/",
		"experiment/measurement.sh",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("website missing %q", want)
		}
	}
}

func TestRelease(t *testing.T) {
	exp := sampleExperiment(t)
	dest := filepath.Join(t.TempDir(), "artifacts.tar.gz")
	m, err := Release(exp, "user", "linux-router", dest)
	if err != nil {
		t.Fatal(err)
	}
	if m.User != "user" {
		t.Errorf("user = %q", m.User)
	}
	// The website was generated into the experiment before archiving.
	if _, err := exp.ReadExperimentArtifact("index.html"); err != nil {
		t.Errorf("index.html missing: %v", err)
	}
	found := false
	for _, f := range m.Files {
		if f == "index.html" {
			found = true
		}
	}
	if !found {
		t.Error("index.html not in the released bundle")
	}
	fi, err := os.Stat(dest)
	if err != nil || fi.Size() == 0 {
		t.Errorf("archive missing or empty: %v", err)
	}
}
