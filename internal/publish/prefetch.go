package publish

import (
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// prefetchWindow bounds how many files the readers run ahead of the tar
// writer; the window keeps the disk busy while bounding memory.
const prefetchWindow = 8

// dedupCacheMaxBytes caps the per-inode read cache to artifacts worth
// holding; bigger files are re-read per reference.
const dedupCacheMaxBytes = 8 << 20

type fileData struct {
	rel     string
	data    []byte
	modTime time.Time
	err     error
}

type inodeKey struct{ dev, ino uint64 }

// inodeCache memoizes the content of hardlink-shared files so each
// deduplicated artifact is read from disk once per bundle, not once per
// run directory.
type inodeCache struct {
	mu      sync.Mutex
	entries map[inodeKey][]byte
}

// prefetchFiles streams the named files of dir to out in order, reading up
// to prefetchWindow of them concurrently. It closes out when done and
// returns early when stop closes.
func prefetchFiles(dir string, rels []string, out chan<- fileData, stop <-chan struct{}) {
	defer close(out)
	slots := make([]chan fileData, len(rels))
	for i := range slots {
		slots[i] = make(chan fileData, 1)
	}
	cache := &inodeCache{entries: make(map[inodeKey][]byte)}
	sem := make(chan struct{}, prefetchWindow)
	go func() {
		for i, rel := range rels {
			select {
			case sem <- struct{}{}:
			case <-stop:
				return
			}
			go func(i int, rel string) {
				defer func() { <-sem }()
				slots[i] <- readArtifact(dir, rel, cache)
			}(i, rel)
		}
	}()
	for i := range slots {
		select {
		case fd := <-slots[i]:
			select {
			case out <- fd:
			case <-stop:
				return
			}
		case <-stop:
			return
		}
	}
}

func readArtifact(dir, rel string, cache *inodeCache) fileData {
	full := filepath.Join(dir, filepath.FromSlash(rel))
	fd := fileData{rel: rel}
	info, err := os.Stat(full)
	if err != nil {
		fd.err = err
		return fd
	}
	fd.modTime = info.ModTime()
	key, shared := statIdentity(info)
	if shared && info.Size() <= dedupCacheMaxBytes {
		cache.mu.Lock()
		data, ok := cache.entries[key]
		cache.mu.Unlock()
		if ok {
			fd.data = data
			return fd
		}
	}
	data, err := os.ReadFile(full)
	if err != nil {
		fd.err = err
		return fd
	}
	fd.data = data
	if shared && int64(len(data)) <= dedupCacheMaxBytes {
		cache.mu.Lock()
		cache.entries[key] = data
		cache.mu.Unlock()
	}
	return fd
}

// statIdentity reports the file's (device, inode) identity and whether the
// inode is shared between paths (hardlink count above one). Only shared
// inodes go through the cache — they are the dedup store's doing and
// guaranteed identical wherever they appear.
func statIdentity(info os.FileInfo) (inodeKey, bool) {
	if st, ok := info.Sys().(*syscall.Stat_t); ok {
		return inodeKey{dev: uint64(st.Dev), ino: uint64(st.Ino)}, st.Nlink > 1
	}
	return inodeKey{}, false
}
