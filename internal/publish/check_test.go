package publish

import (
	"context"
	"strings"
	"testing"
	"time"

	"pos/internal/casestudy"
	"pos/internal/results"
)

// completeExperiment runs a real miniature workflow to get a guaranteed
// publishable artifact tree.
func completeExperiment(t *testing.T) *results.Experiment {
	t.Helper()
	topo, err := casestudy.New(casestudy.BareMetal)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sweep := casestudy.SweepConfig{Sizes: []int{64}, RatesPPS: []int{10_000, 20_000}, RuntimeSec: 1}
	if _, err := topo.Testbed.Runner().Run(context.Background(), topo.Experiment(sweep), store); err != nil {
		t.Fatal(err)
	}
	ids, _ := store.ListExperiments("user", "linux-router-pos")
	exp, err := store.OpenExperiment("user", "linux-router-pos", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestCheckPassesOnRealWorkflowOutput(t *testing.T) {
	exp := completeExperiment(t)
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("complete artifact flagged:\n%s", rep.Render())
	}
	if rep.RunsChecked != 2 {
		t.Errorf("runs checked = %d", rep.RunsChecked)
	}
	if !strings.Contains(rep.Render(), "PUBLISHABLE") {
		t.Errorf("render = %q", rep.Render())
	}
}

func TestCheckFlagsMissingDefinition(t *testing.T) {
	store, _ := results.NewStore(t.TempDir())
	exp, err := store.CreateExperiment("u", "bare", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exp.Sync() })
	if err := exp.WriteRunMeta(results.RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	if err := exp.AddRunArtifact(0, "n", "out", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("missing definition not flagged")
	}
	if !strings.Contains(rep.Render(), "experiment definition artifact missing") {
		t.Errorf("render = %q", rep.Render())
	}
}

func TestCheckFlagsNoRuns(t *testing.T) {
	store, _ := results.NewStore(t.TempDir())
	exp, _ := store.CreateExperiment("u", "empty", time.Now())
	t.Cleanup(func() { exp.Sync() })
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Render(), "no measurement runs") {
		t.Errorf("report = %s", rep.Render())
	}
}

func TestCheckFlagsRunGap(t *testing.T) {
	store, _ := results.NewStore(t.TempDir())
	exp, _ := store.CreateExperiment("u", "gap", time.Now())
	t.Cleanup(func() { exp.Sync() })
	for _, run := range []int{0, 2} { // hole at 1
		exp.WriteRunMeta(results.RunMeta{Run: run, LoopVars: map[string]string{"r": string(rune('0' + run))}})
		exp.AddRunArtifact(run, "n", "out", []byte("x"))
	}
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Render(), "contiguous") {
		t.Errorf("report = %s", rep.Render())
	}
}

func TestCheckFlagsEmptySuccessfulRun(t *testing.T) {
	store, _ := results.NewStore(t.TempDir())
	exp, _ := store.CreateExperiment("u", "hollow", time.Now())
	t.Cleanup(func() { exp.Sync() })
	exp.WriteRunMeta(results.RunMeta{Run: 0})
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Severity == "error" && strings.Contains(f.Msg, "no artifacts") {
			found = true
		}
	}
	if !found {
		t.Errorf("empty run not flagged: %s", rep.Render())
	}
}

func TestCheckWarnsOnDuplicatesAndSilentFailures(t *testing.T) {
	store, _ := results.NewStore(t.TempDir())
	exp, _ := store.CreateExperiment("u", "warns", time.Now())
	t.Cleanup(func() { exp.Sync() })
	combo := map[string]string{"pkt_sz": "64"}
	exp.WriteRunMeta(results.RunMeta{Run: 0, LoopVars: combo})
	exp.AddRunArtifact(0, "n", "out", []byte("x"))
	exp.WriteRunMeta(results.RunMeta{Run: 1, LoopVars: combo}) // duplicate combo
	exp.AddRunArtifact(1, "n", "out", []byte("x"))
	exp.WriteRunMeta(results.RunMeta{Run: 2, Failed: true, LoopVars: map[string]string{"pkt_sz": "1500"}}) // failed, no error msg, no artifacts
	rep, err := Check(exp)
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	if !strings.Contains(text, "duplicate loop combination") {
		t.Errorf("duplicate not warned: %s", text)
	}
	if !strings.Contains(text, "failed run without artifacts") {
		t.Errorf("silent failure not warned: %s", text)
	}
	// Warnings don't block publication — but the missing definition does
	// in this synthetic tree.
	if rep.OK() {
		t.Error("synthetic tree without definition passed")
	}
}
