package publish

import (
	"fmt"
	"sort"
	"strings"

	"pos/internal/results"
)

// Finding is one problem discovered by Check.
type Finding struct {
	// Severity is "error" (artifact incomplete) or "warning" (unusual
	// but publishable).
	Severity string
	// Path locates the problem.
	Path string
	// Msg explains it.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Severity, f.Path, f.Msg)
}

// CheckReport is the outcome of an artifact completeness check.
type CheckReport struct {
	Findings []Finding
	// RunsChecked counts the measurement runs inspected.
	RunsChecked int
}

// OK reports whether the artifact has no errors (warnings allowed).
func (r CheckReport) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == "error" {
			return false
		}
	}
	return true
}

// Render formats the report for artifact-evaluation logs.
func (r CheckReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "artifact check: %d runs inspected, %d findings\n", r.RunsChecked, len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	if r.OK() {
		b.WriteString("result: PUBLISHABLE\n")
	} else {
		b.WriteString("result: INCOMPLETE — fix the errors before release\n")
	}
	return b.String()
}

// Check verifies that an experiment's result tree is complete enough to
// publish: the experiment definition is archived, every measurement run has
// metadata and per-host outputs, run indices are contiguous, and failed runs
// are explicitly marked. This is the mechanical part of what an Artifact
// Evaluation Committee reviewer does by hand.
func Check(exp *results.Experiment) (CheckReport, error) {
	var rep CheckReport
	addErr := func(path, msg string) {
		rep.Findings = append(rep.Findings, Finding{Severity: "error", Path: path, Msg: msg})
	}
	addWarn := func(path, msg string) {
		rep.Findings = append(rep.Findings, Finding{Severity: "warning", Path: path, Msg: msg})
	}

	// The experiment definition must be part of the artifact.
	for _, required := range []string{
		"experiment/global-vars.json",
		"experiment/loop-variables.json",
		"experiment/topology.json",
	} {
		if _, err := exp.ReadExperimentArtifact(required); err != nil {
			addErr(required, "experiment definition artifact missing")
		}
	}

	runs, err := exp.Runs()
	if err != nil {
		return rep, err
	}
	if len(runs) == 0 {
		addErr("run_*", "no measurement runs recorded")
		return rep, nil
	}
	rep.RunsChecked = len(runs)

	// Contiguity: pos numbers runs 0..N-1; a hole means lost results.
	sort.Ints(runs)
	for i, run := range runs {
		if run != i {
			addErr(fmt.Sprintf("run_%04d", i), "missing run directory (indices must be contiguous)")
			break
		}
	}

	seenCombos := make(map[string]int, len(runs))
	for _, run := range runs {
		prefix := fmt.Sprintf("run_%04d", run)
		meta, err := exp.ReadRunMeta(run)
		if err != nil {
			addErr(prefix+"/metadata.json", "metadata missing or unreadable")
			continue
		}
		key := combinationKey(meta.LoopVars)
		if prev, dup := seenCombos[key]; dup {
			addWarn(prefix, fmt.Sprintf("duplicate loop combination (also run %d)", prev))
		}
		seenCombos[key] = run
		arts, err := exp.RunArtifacts(run)
		if err != nil || len(arts) == 0 {
			if meta.Failed {
				addWarn(prefix, "failed run without artifacts")
			} else {
				addErr(prefix, "successful run has no artifacts")
			}
			continue
		}
		if meta.Failed && meta.Error == "" {
			addWarn(prefix+"/metadata.json", "failed run without an error message")
		}
	}
	return rep, nil
}

func combinationKey(vars map[string]string) string {
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + vars[k]
	}
	return strings.Join(parts, ",")
}
