package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The run manifest is the experiment's index: which runs exist, each run's
// metadata, and every artifact path recorded. It is maintained in memory by
// the experiment handle and flushed write-behind: mutations are applied
// immediately (so readers on the same handle are never stale), marked
// pending, and a background flusher group-commits the accumulated state in
// one atomic file write. Backpressure bounds the number of unflushed
// mutations, so a wedged disk slows writers down instead of growing an
// unbounded queue.
//
// The manifest lives at <root>/.posindex/<user>/<experiment>/<id>.json —
// outside the experiment directory, so the published layout stays
// byte-identical to the paper's. Reopening an experiment loads the manifest;
// a missing or corrupt manifest is rebuilt from a tree scan (the slow path
// the manifest exists to avoid).

// maxPendingMutations bounds the write-behind queue. A writer that gets
// this far ahead of the flusher blocks until a group commit completes.
const maxPendingMutations = 512

// flushWindow is how long the flusher waits before each group commit so
// back-to-back writers accumulate into one manifest write. Skipped when a
// Sync is waiting or the queue is saturated.
const flushWindow = 2 * time.Millisecond

// index is the in-memory manifest.
type index struct {
	gen  uint64
	runs map[int]*indexRun
	exp  map[string]struct{} // experiment-level artifacts, slash paths
}

type indexRun struct {
	hasMeta   bool
	meta      RunMeta
	artifacts map[string]struct{} // "<node>/<artifact>" slash paths
}

func newIndex() *index {
	return &index{runs: make(map[int]*indexRun), exp: make(map[string]struct{})}
}

func (idx *index) run(n int) *indexRun {
	entry := idx.runs[n]
	if entry == nil {
		entry = &indexRun{artifacts: make(map[string]struct{})}
		idx.runs[n] = entry
	}
	return entry
}

func (idx *index) setMeta(meta RunMeta) {
	entry := idx.run(meta.Run)
	entry.hasMeta = true
	entry.meta = meta
}

func (idx *index) addRunArtifact(run int, rel string) {
	idx.run(run).artifacts[rel] = struct{}{}
}

func (idx *index) addExperimentArtifact(rel string) {
	idx.exp[rel] = struct{}{}
}

// manifestFile is the persisted form.
type manifestFile struct {
	Version    int                     `json:"version"`
	Generation uint64                  `json:"generation"`
	Experiment []string                `json:"experiment_artifacts,omitempty"`
	Runs       map[string]*manifestRun `json:"runs,omitempty"`
}

type manifestRun struct {
	Meta      *RunMeta `json:"meta,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
}

const manifestVersion = 1

func (idx *index) encode() ([]byte, error) {
	mf := manifestFile{
		Version:    manifestVersion,
		Generation: idx.gen,
		Runs:       make(map[string]*manifestRun, len(idx.runs)),
	}
	mf.Experiment = sortedKeys(idx.exp)
	for run, entry := range idx.runs {
		mr := &manifestRun{Artifacts: sortedKeys(entry.artifacts)}
		if entry.hasMeta {
			meta := entry.meta.clone()
			mr.Meta = &meta
		}
		mf.Runs[strconv.Itoa(run)] = mr
	}
	return json.Marshal(mf)
}

func decodeIndex(data []byte) (*index, error) {
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, err
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("manifest version %d", mf.Version)
	}
	idx := newIndex()
	idx.gen = mf.Generation
	for _, rel := range mf.Experiment {
		idx.exp[rel] = struct{}{}
	}
	for key, mr := range mf.Runs {
		run, err := strconv.Atoi(key)
		if err != nil || run < 0 {
			return nil, fmt.Errorf("manifest run key %q", key)
		}
		entry := idx.run(run)
		for _, rel := range mr.Artifacts {
			entry.artifacts[rel] = struct{}{}
		}
		if mr.Meta != nil {
			entry.hasMeta = true
			entry.meta = mr.Meta.clone()
		}
	}
	return idx, nil
}

func sortedKeys(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *Store) indexPath(user, name, id string) string {
	return filepath.Join(s.root, indexDirName, user, name, id+".json")
}

func (e *Experiment) indexPath() string {
	return e.store.indexPath(e.user, e.name, e.id)
}

// ensureIndexLocked loads or rebuilds the manifest. Caller holds e.mu.
func (e *Experiment) ensureIndexLocked() error {
	if e.idx != nil {
		return nil
	}
	if data, err := os.ReadFile(e.indexPath()); err == nil {
		if idx, derr := decodeIndex(data); derr == nil && e.indexMatchesTree(idx) {
			e.idx = idx
			return nil
		}
		// Corrupt or stale manifest: fall through to a rebuild.
	}
	idx, err := scanTree(e.dir)
	if err != nil {
		return err
	}
	e.idx = idx
	return nil
}

// indexMatchesTree is the shallow staleness probe run when a manifest is
// loaded from disk: one readdir of the experiment root, comparing the run
// directory set and the top-level entry set against the manifest. A writer
// that crashed before its final flush leaves a manifest that is a
// consistent-but-old snapshot — typically missing whole runs — which this
// catches at the cost of a single directory read instead of a tree walk.
// Out-of-band edits inside an existing run directory are not detectable
// this cheaply; RebuildIndex covers those.
func (e *Experiment) indexMatchesTree(idx *index) bool {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return false
	}
	diskRuns := make(map[int]bool)
	diskTops := make(map[string]bool)
	for _, ent := range entries {
		if run, ok := parseRunDir(ent.Name()); ok && ent.IsDir() {
			diskRuns[run] = true
			continue
		}
		diskTops[ent.Name()] = true
	}
	if len(diskRuns) != len(idx.runs) {
		return false
	}
	for run := range idx.runs {
		if !diskRuns[run] {
			return false
		}
	}
	idxTops := make(map[string]bool)
	for rel := range idx.exp {
		top := rel
		if i := strings.IndexByte(rel, '/'); i >= 0 {
			top = rel[:i]
		}
		idxTops[top] = true
	}
	if len(diskTops) != len(idxTops) {
		return false
	}
	for name := range diskTops {
		if !idxTops[name] {
			return false
		}
	}
	return true
}

// scanTree rebuilds a manifest from the on-disk layout — the legacy walk,
// run once on reopen instead of on every enumeration.
func scanTree(dir string) (*index, error) {
	idx := newIndex()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if run, ok := parseRunDir(name); ok && ent.IsDir() {
			if err := scanRunDir(idx, filepath.Join(dir, name), run); err != nil {
				return nil, err
			}
			continue
		}
		// Everything else is experiment-level artifact territory.
		if err := scanExperimentArtifacts(idx, dir, filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

func scanRunDir(idx *index, base string, run int) error {
	entry := idx.run(run)
	err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(base, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "metadata.json" {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			var meta RunMeta
			if err := json.Unmarshal(data, &meta); err != nil {
				return fmt.Errorf("run %d metadata: %w", run, err)
			}
			entry.hasMeta = true
			entry.meta = meta
			return nil
		}
		entry.artifacts[rel] = struct{}{}
		return nil
	})
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

func scanExperimentArtifacts(idx *index, dir, path string) error {
	err := filepath.Walk(path, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		idx.addExperimentArtifact(filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// mutate applies one manifest mutation and schedules a write-behind flush.
// With the index disabled it is a no-op.
func (e *Experiment) mutate(apply func(*index)) error { return e.mutateOp("", nil, apply) }

// mutateOp is mutate with an optional deferred disk write riding the same
// queue: the flusher executes op before committing the manifest snapshot
// that records it, so a crash leaves a stale-but-consistent manifest rather
// than one listing files that were never written. Re-queueing a path still
// in the queue replaces its op (last write wins), which also guarantees
// every queued op targets a distinct path — the invariant that lets the
// flusher drain them in parallel. With the index disabled the op runs
// synchronously — the legacy behavior.
func (e *Experiment) mutateOp(path string, op func() error, apply func(*index)) error {
	if e.store.noIndex {
		if op != nil {
			return op()
		}
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return err
	}
	// Backpressure: bound the unflushed mutation count.
	for e.pending >= maxPendingMutations {
		e.cond.Wait()
	}
	apply(e.idx)
	e.idx.gen++
	e.pending++
	manifestPending.Inc()
	if op != nil {
		if i, ok := e.opIdx[path]; ok {
			e.ops[i] = op
		} else {
			if e.opIdx == nil {
				e.opIdx = make(map[string]int)
			}
			e.opIdx[path] = len(e.ops)
			e.ops = append(e.ops, op)
		}
	}
	if !e.flushing {
		e.flushing = true
		go e.flushLoop()
	}
	return nil
}

// flushLoop group-commits the manifest: every iteration snapshots the
// current state and writes it once, covering all mutations that accumulated
// while the previous write was in flight. It exits when nothing is pending.
func (e *Experiment) flushLoop() {
	e.mu.Lock()
	for e.pending > 0 || len(e.ops) > 0 {
		if e.syncWaiters == 0 && e.pending < maxPendingMutations {
			e.mu.Unlock()
			time.Sleep(flushWindow)
			e.mu.Lock()
		}
		ops := e.ops
		e.ops = nil
		e.opIdx = nil
		data, err := e.idx.encode()
		manifestPending.Add(-float64(e.pending))
		e.pending = 0
		e.cond.Broadcast() // wake writers blocked on backpressure
		e.mu.Unlock()
		if len(ops) > 0 {
			// Skip deferred writes when the experiment tree is gone (pruned,
			// or a test tearing it down) — same guard as writeManifest.
			if _, statErr := os.Stat(e.dir); statErr == nil {
				if opErr := drainOps(ops); opErr != nil && err == nil {
					err = opErr
				}
			}
		}
		if err == nil {
			err = e.writeManifest(data)
			if err == nil {
				manifestFlushes.Inc()
			}
		}
		if err != nil {
			e.store.log().Error("write-behind flush failed",
				"experiment", e.user+"/"+e.name+"/"+e.id, "err", err.Error())
		}
		e.mu.Lock()
		if err != nil && e.flushErr == nil {
			e.flushErr = err
		}
	}
	e.flushing = false
	e.cond.Broadcast() // wake Sync waiters
	e.mu.Unlock()
}

// drainOps executes one group commit's deferred writes. Every op targets a
// distinct path (mutateOp replaces re-queued paths in place), so a few
// workers can drain them in parallel; the first error wins.
func drainOps(ops []func() error) error {
	workers := 4
	if len(ops) < workers {
		workers = len(ops)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += workers {
				if err := ops[i](); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

func (e *Experiment) writeManifest(data []byte) error {
	// An experiment that has been removed (pruned, or a test tearing its
	// tree down) needs no manifest; dropping the write keeps the flusher
	// from resurrecting deleted directories.
	if _, err := os.Stat(e.dir); err != nil {
		return nil
	}
	path := e.indexPath()
	if err := e.store.ensureDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return e.store.writeFileAtomic(path, data)
}

// Sync blocks until every pending manifest mutation has been flushed and
// returns the first flush error, if any. Runners call it when an experiment
// execution completes; it is cheap when the manifest is already clean.
func (e *Experiment) Sync() error {
	if e.store.noIndex {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncWaiters++
	for e.flushing || e.pending > 0 || len(e.ops) > 0 {
		e.cond.Wait()
	}
	e.syncWaiters--
	return e.flushErr
}

// Generation returns the experiment's manifest generation counter. It bumps
// on every recorded write — rewritten metadata, re-uploaded artifacts — and
// is the invalidation key for warm evaluation caches. ok is false when the
// manifest is disabled or unavailable; such experiments are uncacheable.
func (e *Experiment) Generation() (gen uint64, ok bool) {
	if e.store.noIndex {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return 0, false
	}
	return e.idx.gen, true
}

// ArtifactPaths returns every file recorded for the experiment as sorted,
// slash-separated paths relative to the experiment directory — exactly what
// a tree walk would list, without the walk. The publication phase streams
// from this list.
func (e *Experiment) ArtifactPaths() ([]string, error) {
	if e.store.noIndex {
		idx, err := scanTree(e.dir)
		if err != nil {
			return nil, err
		}
		return idx.paths(), nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return nil, err
	}
	return e.idx.paths(), nil
}

func (idx *index) paths() []string {
	var out []string
	for rel := range idx.exp {
		out = append(out, rel)
	}
	for run, entry := range idx.runs {
		prefix := runDirName(run) + "/"
		if entry.hasMeta {
			out = append(out, prefix+"metadata.json")
		}
		for rel := range entry.artifacts {
			out = append(out, prefix+rel)
		}
	}
	sort.Strings(out)
	return out
}

// RebuildIndex discards the manifest and rebuilds it from the on-disk tree,
// then flushes it synchronously. Use after out-of-band modifications to an
// experiment directory.
func (e *Experiment) RebuildIndex() error {
	if e.store.noIndex {
		return fmt.Errorf("results: store opened without an index")
	}
	idx, err := scanTree(e.dir)
	if err != nil {
		return err
	}
	e.mu.Lock()
	for e.flushing || e.pending > 0 {
		e.cond.Wait()
	}
	// Continue the persisted generation sequence — a rebuild must never
	// regress the counter, or stale cache entries would re-validate.
	if e.idx == nil {
		e.ensureIndexLocked()
	}
	oldGen := uint64(0)
	if e.idx != nil {
		oldGen = e.idx.gen
	}
	idx.gen = oldGen + 1
	e.idx = idx
	data, err := idx.encode()
	e.mu.Unlock()
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return e.writeManifest(data)
}

// IndexInfo summarizes the manifest for inspection tooling.
type IndexInfo struct {
	Generation          uint64
	Runs                int
	RunArtifacts        int
	ExperimentArtifacts int
}

// IndexInfo reports the manifest's current shape.
func (e *Experiment) IndexInfo() (IndexInfo, error) {
	if e.store.noIndex {
		return IndexInfo{}, fmt.Errorf("results: store opened without an index")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return IndexInfo{}, err
	}
	info := IndexInfo{
		Generation:          e.idx.gen,
		Runs:                len(e.idx.runs),
		ExperimentArtifacts: len(e.idx.exp),
	}
	for _, entry := range e.idx.runs {
		info.RunArtifacts += len(entry.artifacts)
	}
	return info, nil
}
