package results

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStrictRunDirParsing(t *testing.T) {
	cases := []struct {
		name string
		want int
		ok   bool
	}{
		{"run_0000", 0, true},
		{"run_0042", 42, true},
		{"run_9999", 9999, true},
		{"run_10000", 10000, true}, // %04d widens past 9999
		{"run_0001.bak", 0, false},
		{"run_001", 0, false},   // too few digits
		{"run_00001", 0, false}, // non-canonical zero padding
		{"run_+0001", 0, false},
		{"run_-001", 0, false},
		{"run_", 0, false},
		{"run_abcd", 0, false},
		{"ruN_0001", 0, false},
		{"metadata.json", 0, false},
	}
	for _, c := range cases {
		n, ok := parseRunDir(c.name)
		if ok != c.ok || (ok && n != c.want) {
			t.Errorf("parseRunDir(%q) = %d, %v; want %d, %v", c.name, n, ok, c.want, c.ok)
		}
	}
}

func TestRunsIgnoresDecoyDirectories(t *testing.T) {
	_, e := newExp(t)
	for _, r := range []int{0, 1} {
		if err := e.WriteRunMeta(RunMeta{Run: r}); err != nil {
			t.Fatal(err)
		}
	}
	// Stragglers that the lax Sscanf parser used to accept.
	for _, decoy := range []string{"run_0001.bak", "run_001", "run_00002", "run_xyz"} {
		if err := os.MkdirAll(filepath.Join(e.Dir(), decoy), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Both the manifest-backed and the scanning path must agree.
	runs, err := e.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0] != 0 || runs[1] != 1 {
		t.Errorf("indexed runs = %v", runs)
	}
	scanned, err := e.scanRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 2 || scanned[0] != 0 || scanned[1] != 1 {
		t.Errorf("scanned runs = %v", scanned)
	}
}

func TestUnifiedArtifactNameValidation(t *testing.T) {
	_, e := newExp(t)
	bad := []struct {
		desc string
		err  error
	}{
		{"run artifact with slash", e.AddRunArtifact(0, "n", "a/b", nil)},
		{"run artifact with backslash", e.AddRunArtifact(0, "n", `a\b`, nil)},
		{"run artifact dotdot", e.AddRunArtifact(0, "n", "..", nil)},
		{"node name with slash", e.AddRunArtifact(0, "bad/node", "a", nil)},
		{"empty run artifact", e.AddRunArtifact(0, "n", "", nil)},
		{"run artifact with temp prefix", e.AddRunArtifact(0, "n", ".tmp-x", nil)},
		{"experiment artifact traversal", e.AddExperimentArtifact("../escape", nil)},
		{"experiment artifact nested traversal", e.AddExperimentArtifact("a/../../b", nil)},
		{"experiment artifact absolute", e.AddExperimentArtifact("/etc/passwd", nil)},
		{"experiment artifact empty segment", e.AddExperimentArtifact("a//b", nil)},
		{"experiment artifact dot segment", e.AddExperimentArtifact("a/./b", nil)},
		{"experiment artifact backslash", e.AddExperimentArtifact(`a\b`, nil)},
		{"experiment artifact temp prefix", e.AddExperimentArtifact("figs/.tmp-1", nil)},
		{"empty experiment artifact", e.AddExperimentArtifact("", nil)},
	}
	for _, c := range bad {
		if c.err == nil {
			t.Errorf("%s: accepted", c.desc)
		}
	}
	// Nested experiment artifacts stay allowed.
	if err := e.AddExperimentArtifact("experiment/loadgen/setup.sh", []byte("x")); err != nil {
		t.Errorf("nested experiment artifact rejected: %v", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	// Satellite for the formerly unused Experiment.mu: hammer one
	// experiment from concurrent meta and artifact writers (run with
	// -race in the race tier).
	_, e := newExp(t)
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				run := w*perWorker + i
				if err := e.WriteRunMeta(RunMeta{Run: run, LoopVars: map[string]string{"w": fmt.Sprint(w)}}); err != nil {
					errs[w] = err
					return
				}
				if err := e.AddRunArtifact(run, "node", "out.log", []byte(fmt.Sprintf("w%d i%d", w, i))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	runs, err := e.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != workers*perWorker {
		t.Errorf("runs = %d, want %d", len(runs), workers*perWorker)
	}
}

func TestManifestPersistsAndServesReopen(t *testing.T) {
	s, e := newExp(t)
	for run := 0; run < 3; run++ {
		if err := e.WriteRunMeta(RunMeta{Run: run, LoopVars: map[string]string{"rate": fmt.Sprint(run)}}); err != nil {
			t.Fatal(err)
		}
		if err := e.AddRunArtifact(run, "lg", "moongen.log", []byte("log")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddExperimentArtifact("experiment/setup.sh", []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(e.indexPath()); err != nil {
		t.Fatalf("manifest not flushed: %v", err)
	}

	// Reopen through a fresh store — the original would hand back the live
	// handle instead of loading the persisted manifest.
	s2, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	re, err := s2.OpenExperiment("user", "default", e.ID())
	if err != nil {
		t.Fatal(err)
	}
	runs, err := re.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Errorf("reopened runs = %v", runs)
	}
	meta, err := re.ReadRunMeta(1)
	if err != nil || meta.LoopVars["rate"] != "1" {
		t.Errorf("reopened meta = %+v, %v", meta, err)
	}
	arts, err := re.RunArtifacts(2)
	if err != nil || len(arts) != 1 || arts[0] != "lg/moongen.log" {
		t.Errorf("reopened artifacts = %v, %v", arts, err)
	}
	paths, err := re.ArtifactPaths()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"experiment/setup.sh",
		"run_0000/lg/moongen.log", "run_0000/metadata.json",
		"run_0001/lg/moongen.log", "run_0001/metadata.json",
		"run_0002/lg/moongen.log", "run_0002/metadata.json",
	}
	if strings.Join(paths, ";") != strings.Join(want, ";") {
		t.Errorf("paths = %v", paths)
	}
}

func TestManifestRebuildFromScan(t *testing.T) {
	s, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "lg", "a.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest: a fresh store's reopen must fall back to a
	// tree scan (the original store would serve its live handle).
	if err := os.WriteFile(e.indexPath(), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	re, err := s2.OpenExperiment("user", "default", e.ID())
	if err != nil {
		t.Fatal(err)
	}
	runs, err := re.Runs()
	if err != nil || len(runs) != 1 {
		t.Fatalf("runs after corrupt manifest = %v, %v", runs, err)
	}
	arts, err := re.RunArtifacts(0)
	if err != nil || len(arts) != 1 || arts[0] != "lg/a.log" {
		t.Errorf("artifacts = %v, %v", arts, err)
	}
}

func TestRebuildIndexPicksUpOutOfBandFiles(t *testing.T) {
	_, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	// Dropped in next to the tree, bypassing the store API.
	if err := os.WriteFile(filepath.Join(e.Dir(), "NOTES.txt"), []byte("n"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := e.ArtifactPaths()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(paths, ";"), "NOTES.txt") {
		t.Fatalf("manifest saw an out-of-band file without a rebuild: %v", paths)
	}
	if err := e.RebuildIndex(); err != nil {
		t.Fatal(err)
	}
	paths, err = e.ArtifactPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(paths, ";"), "NOTES.txt") {
		t.Errorf("rebuild missed the out-of-band file: %v", paths)
	}
}

func TestGenerationBumpsOnEveryWrite(t *testing.T) {
	_, e := newExp(t)
	gen0, ok := e.Generation()
	if !ok {
		t.Fatal("generation unavailable on an indexed store")
	}
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	gen1, _ := e.Generation()
	if gen1 <= gen0 {
		t.Errorf("generation %d not bumped from %d by WriteRunMeta", gen1, gen0)
	}
	// A re-uploaded artifact (straggler retry, teardown refusal replay)
	// must bump it again.
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	gen2, _ := e.Generation()
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	gen3, _ := e.Generation()
	if gen3 <= gen2 {
		t.Errorf("generation %d not bumped from %d by artifact overwrite", gen3, gen2)
	}
}

func TestDedupHardlinksIdenticalContent(t *testing.T) {
	_, e := newExp(t)
	payload := []byte(strings.Repeat("measurement script\n", 512))
	for run := 0; run < 5; run++ {
		if err := e.AddRunArtifact(run, "lg", "setup.sh", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Every copy reads back byte-identical.
	for run := 0; run < 5; run++ {
		data, err := e.ReadRunArtifact(run, "lg", "setup.sh")
		if err != nil || !bytes.Equal(data, payload) {
			t.Fatalf("run %d content mismatch: %v", run, err)
		}
	}
	// All copies share one inode with the blob.
	first, err := os.Stat(filepath.Join(e.Dir(), "run_0000", "lg", "setup.sh"))
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 5; run++ {
		fi, err := os.Stat(filepath.Join(e.Dir(), runDirName(run), "lg", "setup.sh"))
		if err != nil {
			t.Fatal(err)
		}
		if !os.SameFile(first, fi) {
			t.Fatalf("run %d not deduplicated", run)
		}
	}
	if nlink, ok := linkCount(first); ok && nlink != 6 { // 5 runs + 1 blob
		t.Errorf("link count = %d, want 6", nlink)
	}
}

func TestDedupOverwriteDoesNotCorruptSiblings(t *testing.T) {
	_, e := newExp(t)
	shared := []byte(strings.Repeat("shared content\n", 512))
	rewritten := []byte(strings.Repeat("rewritten\n", 512))
	if err := e.AddRunArtifact(0, "n", "a", shared); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(1, "n", "a", shared); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "a", rewritten); err != nil {
		t.Fatal(err)
	}
	if data, _ := e.ReadRunArtifact(0, "n", "a"); !bytes.Equal(data, rewritten) {
		t.Errorf("run 0 = %.20q...", data)
	}
	if data, _ := e.ReadRunArtifact(1, "n", "a"); !bytes.Equal(data, shared) {
		t.Errorf("run 1 = %.20q... (sibling corrupted by overwrite)", data)
	}
}

func TestBlobStatsAndGC(t *testing.T) {
	s, e := newExp(t)
	keep := []byte(strings.Repeat("keep me around\n", 512))
	if err := e.AddRunArtifact(0, "n", "keep", keep); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "drop", []byte(strings.Repeat("about to be orphaned\n", 512))); err != nil {
		t.Fatal(err)
	}
	stats, err := s.BlobStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blobs != 2 || stats.Referenced != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Orphan one blob by deleting its only tree reference.
	if err := os.Remove(filepath.Join(e.Dir(), "run_0000", "n", "drop")); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GCBlobs()
	if err != nil || removed != 1 {
		t.Fatalf("gc = %d, %v", removed, err)
	}
	stats, _ = s.BlobStats()
	if stats.Blobs != 1 {
		t.Errorf("blobs after gc = %d", stats.Blobs)
	}
	if data, err := e.ReadRunArtifact(0, "n", "keep"); err != nil || !bytes.Equal(data, keep) {
		t.Errorf("survivor = %.20q..., %v", data, err)
	}
}

func TestSharedStoreServesLiveHandle(t *testing.T) {
	s, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0, LoopVars: map[string]string{"rate": "10"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "a", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	// A reader opened through the same store must see the writer's
	// in-memory state even while the write-behind queue is still draining.
	re, err := s.OpenExperiment("user", "default", e.ID())
	if err != nil {
		t.Fatal(err)
	}
	if re != e {
		t.Fatal("same store returned a second handle for a live experiment")
	}
	runs, err := re.Runs()
	if err != nil || len(runs) != 1 {
		t.Fatalf("runs = %v, %v", runs, err)
	}
	meta, err := re.ReadRunMeta(0)
	if err != nil || meta.LoopVars["rate"] != "10" {
		t.Fatalf("meta = %+v, %v", meta, err)
	}
	// Reading the artifact drains the queue if its file has not landed.
	if data, err := re.ReadRunArtifact(0, "n", "a"); err != nil || string(data) != "tiny" {
		t.Fatalf("artifact = %q, %v", data, err)
	}
}

func TestSmallArtifactsBypassDedup(t *testing.T) {
	s, e := newExp(t)
	small := []byte("identical but tiny")
	if err := e.AddRunArtifact(0, "n", "a", small); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(1, "n", "a", small); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	fi0, err := os.Stat(filepath.Join(e.Dir(), "run_0000", "n", "a"))
	if err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(filepath.Join(e.Dir(), "run_0001", "n", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if os.SameFile(fi0, fi1) {
		t.Error("sub-threshold artifacts were deduplicated")
	}
	if stats, _ := s.BlobStats(); stats.Blobs != 0 {
		t.Errorf("blob pool grew for sub-threshold artifacts: %+v", stats)
	}
}

func TestNoDedupStoreWritesPlainFiles(t *testing.T) {
	s, err := NewStore(t.TempDir(), NoDedup())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateExperiment("user", "default", when)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Sync() })
	payload := []byte("same bytes")
	if err := e.AddRunArtifact(0, "n", "a", payload); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(1, "n", "a", payload); err != nil {
		t.Fatal(err)
	}
	fi0, _ := os.Stat(filepath.Join(e.Dir(), "run_0000", "n", "a"))
	fi1, _ := os.Stat(filepath.Join(e.Dir(), "run_0001", "n", "a"))
	if os.SameFile(fi0, fi1) {
		t.Error("NoDedup store hardlinked content")
	}
	if stats, _ := s.BlobStats(); stats.Blobs != 0 {
		t.Errorf("NoDedup store grew a blob pool: %+v", stats)
	}
}

func TestNoIndexStoreFallsBackToScans(t *testing.T) {
	s, err := NewStore(t.TempDir(), NoIndex())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateExperiment("user", "default", when)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Generation(); ok {
		t.Error("NoIndex store reported a generation")
	}
	runs, err := e.Runs()
	if err != nil || len(runs) != 1 {
		t.Fatalf("runs = %v, %v", runs, err)
	}
	arts, err := e.RunArtifacts(0)
	if err != nil || len(arts) != 1 {
		t.Fatalf("artifacts = %v, %v", arts, err)
	}
	paths, err := e.ArtifactPaths()
	if err != nil || len(paths) != 2 {
		t.Fatalf("paths = %v, %v", paths, err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), indexDirName)); !os.IsNotExist(err) {
		t.Error("NoIndex store wrote a manifest")
	}
}

func TestDurableStoreWrites(t *testing.T) {
	s, err := NewStore(t.TempDir(), Durable())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateExperiment("user", "default", when)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Sync() })
	if err := e.WriteRunMeta(RunMeta{Run: 0, LoopVars: map[string]string{"a": "1"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("fsynced")); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if data, err := e.ReadRunArtifact(0, "n", "a.log"); err != nil || string(data) != "fsynced" {
		t.Errorf("artifact = %q, %v", data, err)
	}
}

func TestTmpSweepOnOpen(t *testing.T) {
	s, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer: orphaned temp files at several depths.
	orphans := []string{
		filepath.Join(s.Root(), ".tmp-rootcrash"),
		filepath.Join(e.Dir(), ".tmp-123"),
		filepath.Join(e.Dir(), "run_0000", ".tmp-456"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// NewStore sweeps the root level; OpenExperiment sweeps the tree. A
	// crash recovery runs in a fresh process, so open via a fresh store —
	// the original store would hand back its live, registered handle.
	s2, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.OpenExperiment("user", "default", e.ID()); err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the sweep", p)
		}
	}
	// Real content is untouched.
	if _, err := e.ReadRunMeta(0); err != nil {
		t.Error(err)
	}
}

func TestBackpressureBoundsPendingMutations(t *testing.T) {
	_, e := newExp(t)
	// Many more mutations than the queue bound; writers must block on the
	// flusher rather than grow state unboundedly, and everything must be
	// visible after Sync.
	for i := 0; i < maxPendingMutations*2+10; i++ {
		if err := e.WriteRunMeta(RunMeta{Run: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	pending := e.pending
	e.mu.Unlock()
	if pending != 0 {
		t.Errorf("pending after Sync = %d", pending)
	}
	runs, err := e.Runs()
	if err != nil || len(runs) != maxPendingMutations*2+10 {
		t.Errorf("runs = %d, %v", len(runs), err)
	}
}

func TestPruneRemovesManifest(t *testing.T) {
	s, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateExperiment("user", "default", when.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prune("user", "default", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(e.indexPath()); !os.IsNotExist(err) {
		t.Error("pruned experiment's manifest survived")
	}
}

func TestDotUserRejected(t *testing.T) {
	s, _ := newExp(t)
	if _, err := s.CreateExperiment(".posindex", "x", when); err == nil {
		t.Error("accepted a user colliding with store internals")
	}
	if _, err := s.CreateExperiment("u", ".hidden", when); err == nil {
		t.Error("accepted a dot experiment name")
	}
}
