package results

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// tmpPrefix names the store's in-flight temp files. Writers publish by
// renaming a temp file over the final path; anything still carrying the
// prefix after a crash is an orphan and gets swept on open.
const tmpPrefix = ".tmp-"

// bufWriterPool recycles the buffered writers of the streamed-JSON ingest
// path, so per-run metadata writes stop allocating a fresh 4 KiB buffer
// each time.
var bufWriterPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 16<<10) },
}

// writeFileAtomic writes via a temp file + rename so readers never observe
// a torn result file. With the store in durable mode, the file and its
// parent directory are fsynced before and after the rename.
func (s *Store) writeFileAtomic(path string, data []byte) error {
	return s.writeFileStream(path, func(w *bufio.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// writeFileStream is writeFileAtomic with the content streamed into a
// pooled buffered writer — the ingest fast path for encoded JSON, which
// avoids materializing an intermediate byte slice per record.
func (s *Store) writeFileStream(path string, write func(w *bufio.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	tmpName := tmp.Name()
	bw := bufWriterPool.Get().(*bufio.Writer)
	bw.Reset(tmp)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	bw.Reset(nil)
	bufWriterPool.Put(bw)
	if err == nil && s.durable {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	return s.publish(tmpName, path)
}

// publish atomically moves a prepared temp file to its final path, syncing
// the parent directory in durable mode so the rename itself survives a
// crash.
func (s *Store) publish(tmpName, path string) error {
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if s.durable {
		if err := syncDir(filepath.Dir(path)); err != nil {
			return err
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// sweepTmp removes orphaned temp files left behind by a crashed writer.
// Shallow sweeps cover a directory's own entries; recursive sweeps descend
// (used when opening a single experiment, where the tree is bounded).
func sweepTmp(dir string, recursive bool) {
	if !recursive {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, ent := range entries {
			if !ent.IsDir() && strings.HasPrefix(ent.Name(), tmpPrefix) {
				os.Remove(filepath.Join(dir, ent.Name()))
			}
		}
		return
	}
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // best-effort: a vanished entry is already gone
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			os.Remove(path)
		}
		return nil
	})
}
