package results

import (
	"strings"
	"testing"
	"time"
)

var when = time.Date(2020, 10, 12, 11, 20, 32, 230471000, time.UTC)

func newExp(t *testing.T) (*Store, *Experiment) {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.CreateExperiment("user", "default", when)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the write-behind flusher before the TempDir is torn down.
	t.Cleanup(func() { e.Sync() })
	return s, e
}

func TestExperimentIDMatchesPaperLayout(t *testing.T) {
	_, e := newExp(t)
	if e.ID() != "2020-10-12_11-20-32_230471" {
		t.Errorf("ID = %s", e.ID())
	}
	if !strings.Contains(e.Dir(), "user/default/2020-10-12_11-20-32_230471") {
		t.Errorf("Dir = %s", e.Dir())
	}
}

func TestRunMetaRoundTrip(t *testing.T) {
	_, e := newExp(t)
	meta := RunMeta{
		Run:        3,
		LoopVars:   map[string]string{"pkt_sz": "64", "pkt_rate": "10000"},
		StartedAt:  when,
		FinishedAt: when.Add(time.Minute),
	}
	if err := e.WriteRunMeta(meta); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadRunMeta(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.LoopVars["pkt_sz"] != "64" || got.Run != 3 || got.Failed {
		t.Errorf("meta = %+v", got)
	}
}

func TestFailedRunMeta(t *testing.T) {
	_, e := newExp(t)
	if err := e.WriteRunMeta(RunMeta{Run: 0, Failed: true, Error: "exit 1"}); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadRunMeta(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Failed || got.Error != "exit 1" {
		t.Errorf("meta = %+v", got)
	}
}

func TestRunArtifacts(t *testing.T) {
	_, e := newExp(t)
	if err := e.AddRunArtifact(1, "loadgen", "moongen.log", []byte("log")); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(1, "dut", "setup.out", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRunMeta(RunMeta{Run: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := e.ReadRunArtifact(1, "loadgen", "moongen.log")
	if err != nil || string(data) != "log" {
		t.Errorf("artifact = %q, %v", data, err)
	}
	list, err := e.RunArtifacts(1)
	if err != nil {
		t.Fatal(err)
	}
	// metadata.json excluded, entries sorted.
	if len(list) != 2 || list[0] != "dut/setup.out" || list[1] != "loadgen/moongen.log" {
		t.Errorf("artifacts = %v", list)
	}
}

func TestArtifactNameValidation(t *testing.T) {
	_, e := newExp(t)
	if err := e.AddRunArtifact(0, "bad/node", "a", nil); err == nil {
		t.Error("accepted slash in node name")
	}
	if err := e.AddRunArtifact(0, "n", "../../escape", nil); err == nil {
		t.Error("accepted path traversal in artifact")
	}
	if err := e.AddExperimentArtifact("../escape", nil); err == nil {
		t.Error("accepted traversal in experiment artifact")
	}
}

func TestExperimentArtifacts(t *testing.T) {
	_, e := newExp(t)
	if err := e.AddExperimentArtifact("experiment/measurement.sh", []byte("echo hi")); err != nil {
		t.Fatal(err)
	}
	data, err := e.ReadExperimentArtifact("experiment/measurement.sh")
	if err != nil || string(data) != "echo hi" {
		t.Errorf("artifact = %q, %v", data, err)
	}
}

func TestRunsEnumeration(t *testing.T) {
	_, e := newExp(t)
	for _, r := range []int{5, 0, 2} {
		if err := e.WriteRunMeta(RunMeta{Run: r}); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := e.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 || runs[0] != 0 || runs[1] != 2 || runs[2] != 5 {
		t.Errorf("runs = %v", runs)
	}
}

func TestListAndOpenExperiments(t *testing.T) {
	s, e := newExp(t)
	later, err := s.CreateExperiment("user", "default", when.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.ListExperiments("user", "default")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != e.ID() || ids[1] != later.ID() {
		t.Errorf("ids = %v", ids)
	}
	reopened, err := s.OpenExperiment("user", "default", e.ID())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Dir() != e.Dir() {
		t.Errorf("reopened dir = %s", reopened.Dir())
	}
	if _, err := s.OpenExperiment("user", "default", "nope"); err == nil {
		t.Error("opened missing experiment")
	}
	if ids, err := s.ListExperiments("ghost", "x"); err != nil || ids != nil {
		t.Errorf("missing user: %v, %v", ids, err)
	}
}

func TestCreateExperimentValidation(t *testing.T) {
	s, _ := newExp(t)
	if _, err := s.CreateExperiment("", "x", when); err == nil {
		t.Error("accepted empty user")
	}
	if _, err := s.CreateExperiment("u", "", when); err == nil {
		t.Error("accepted empty name")
	}
}

func TestAtomicOverwrite(t *testing.T) {
	_, e := newExp(t)
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRunArtifact(0, "n", "a.log", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := e.ReadRunArtifact(0, "n", "a.log")
	if err != nil || string(data) != "v2" {
		t.Errorf("artifact = %q, %v", data, err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	s, _ := newExp(t)
	// Two more executions after the fixture's one.
	e2, err := s.CreateExperiment("user", "default", when.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	e3, err := s.CreateExperiment("user", "default", when.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune("user", "default", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "2020-10-12_11-20-32_230471" {
		t.Errorf("removed = %v", removed)
	}
	ids, _ := s.ListExperiments("user", "default")
	if len(ids) != 2 || ids[0] != e2.ID() || ids[1] != e3.ID() {
		t.Errorf("ids = %v", ids)
	}
	// Pruning again is a no-op.
	removed, err = s.Prune("user", "default", 2)
	if err != nil || removed != nil {
		t.Errorf("second prune = %v, %v", removed, err)
	}
	// keep=0 removes everything.
	if _, err := s.Prune("user", "default", 0); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.ListExperiments("user", "default")
	if len(ids) != 0 {
		t.Errorf("ids after full prune = %v", ids)
	}
	if _, err := s.Prune("user", "default", -1); err == nil {
		t.Error("negative keep accepted")
	}
}

func TestControlDir(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := s.ControlDir("queue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dir, s.Root()) || !strings.HasSuffix(dir, ".posqueue") {
		t.Errorf("ControlDir = %q (want <root>/.posqueue)", dir)
	}
	// Idempotent, and invisible to the experiment listing namespace.
	if again, err := s.ControlDir("queue"); err != nil || again != dir {
		t.Errorf("second ControlDir = %q, %v", again, err)
	}
	if _, err := s.ListExperiments(".posqueue", "x"); err == nil {
		t.Log("note: listing under a control dir should stay empty or fail")
	}
	for _, bad := range []string{"", "a/b", `a\b`, ".."} {
		if _, err := s.ControlDir(bad); err == nil {
			t.Errorf("ControlDir(%q) accepted", bad)
		}
	}
}
