// Package results implements pos' central result collection (requirement
// R5). Every experiment gets a timestamped directory tree in the paper's
// layout — <root>/<user>/<experiment>/<timestamp>/ — holding per-run result
// files, per-run loop-parameter metadata, the executed scripts and variable
// files, and experiment-wide artifacts. The enforced structure is what makes
// the evaluation and publication phases mechanical.
//
// On top of the paper layout the store maintains a fast path:
//
//   - a per-experiment run manifest (see index.go) kept in memory and
//     flushed write-behind, so enumerating runs and artifacts never walks
//     the tree again;
//   - content-addressed blob storage (see blob.go) that deduplicates
//     identical artifacts — a 60-run sweep writes each repeated script or
//     variable file once and hardlinks it into every run;
//   - a generation counter per experiment that downstream caches (eval)
//     use for invalidation.
//
// Both live outside the experiment directories (<root>/.posindex,
// <root>/.posblob), so the on-disk experiment layout stays byte-identical
// to the paper's artifacts.
package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pos/internal/eventlog"
)

// Store is the root of the results tree, the emulated
// /srv/testbed/results.
type Store struct {
	root    string
	durable bool
	noDedup bool
	noIndex bool

	// dirs memoizes directories this handle has created. Artifact ingest
	// otherwise pays an os.MkdirAll stat-walk for every single file.
	dirs sync.Map

	// exps registers live experiment handles by "user/name/id" so every
	// consumer sharing this store sees one manifest: a reader opened while
	// a writer's queue is still draining gets the writer's in-memory state,
	// not a stale disk scan.
	exps sync.Map

	// logger receives operational warnings (background flush failures,
	// which otherwise only surface at the next Sync); discard by default.
	logger atomic.Pointer[slog.Logger]
}

// SetLogger installs the structured logger for store-level warnings. The
// write-behind flusher fails in the background; without a logger its first
// error waits silently for the next Sync. nil restores the discard default.
func (s *Store) SetLogger(lg *slog.Logger) {
	if lg == nil {
		s.logger.Store(nil)
		return
	}
	s.logger.Store(lg)
}

func (s *Store) log() *slog.Logger {
	if lg := s.logger.Load(); lg != nil {
		return lg
	}
	return eventlog.Discard()
}

// Option configures a Store.
type Option func(*Store)

// Durable makes every write fsync the file and its parent directory before
// the atomic rename publishes it — crash durability at a heavy syscall cost.
// Off by default (and in tests).
func Durable() Option { return func(s *Store) { s.durable = true } }

// NoDedup disables content-addressed deduplication; every artifact is
// written in full.
func NoDedup() Option { return func(s *Store) { s.noDedup = true } }

// NoIndex disables the fast path: no run manifest, no write-behind flusher,
// no directory-creation memo. Enumeration and writes behave the way the
// original store did. Used as the baseline in benchmarks.
func NoIndex() Option { return func(s *Store) { s.noIndex = true } }

// ensureDir creates dir unless this handle already has. Unlike os.MkdirAll
// it never stat-walks the path: it tries a bare Mkdir and only recurses to
// the parent on ENOENT, so the per-artifact cost is zero syscalls for a
// memoized directory and one for a fresh leaf under an existing parent.
// With the fast path disabled it degrades to a plain MkdirAll.
func (s *Store) ensureDir(dir string) error {
	if s.noIndex {
		return os.MkdirAll(dir, 0o755)
	}
	if _, ok := s.dirs.Load(dir); ok {
		return nil
	}
	err := os.Mkdir(dir, 0o755)
	switch {
	case err == nil || os.IsExist(err):
	case os.IsNotExist(err):
		if perr := s.ensureDir(filepath.Dir(dir)); perr != nil {
			return perr
		}
		if err = os.Mkdir(dir, 0o755); err != nil && !os.IsExist(err) {
			return err
		}
	default:
		return err
	}
	s.dirs.Store(dir, struct{}{})
	return nil
}

// forgetTree drops memoized directories at or below dir after the tree was
// removed, so a later write recreates them instead of failing.
func (s *Store) forgetTree(dir string) {
	prefix := dir + string(filepath.Separator)
	s.dirs.Range(func(k, _ any) bool {
		if d := k.(string); d == dir || strings.HasPrefix(d, prefix) {
			s.dirs.Delete(k)
		}
		return true
	})
}

// deferSmallWrite returns a write-behind op for an artifact too small to
// deduplicate: the bytes are copied (the caller may reuse its buffer) and
// written by the background flusher, overlapped with foreground payload
// writes. Only taken on the fast path — with the index disabled every write
// is synchronous, and the queue's memory footprint stays bounded by
// backpressure × dedupMinBytes.
func (e *Experiment) deferSmallWrite(dir, base string, data []byte) (string, func() error, bool) {
	if e.store.noIndex || len(data) >= dedupMinBytes {
		return "", nil, false
	}
	path := filepath.Join(dir, base)
	// Overwrites of flushed files stay synchronous: such a file must never
	// serve stale bytes to readers between the rewrite and the next queue
	// drain. Re-queueing a path still in the queue is fine — mutateOp
	// replaces the queued op, so the last write wins.
	if _, err := os.Lstat(path); err == nil || !errors.Is(err, fs.ErrNotExist) {
		return "", nil, false
	}
	if err := e.store.ensureDir(dir); err != nil {
		return path, func() error { return fmt.Errorf("results: %w", err) }, true
	}
	buf := append([]byte(nil), data...)
	return path, func() error { return e.store.writeFileAtomic(path, buf) }, true
}

// writeInDir runs one artifact write inside dir, creating dir on demand. If
// the memoized directory turns out to have been removed out-of-band, the
// memo is dropped and the write retried once against a fresh directory.
func (e *Experiment) writeInDir(dir string, write func() error) error {
	if err := e.store.ensureDir(dir); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	err := write()
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		e.store.forgetTree(dir)
		if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
			err = write()
		}
	}
	return err
}

// NewStore opens (creating if needed) a results tree rooted at dir. Orphaned
// temp files at the root (from a crashed writer) are swept; experiment
// directories are swept when opened.
func NewStore(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	s := &Store{root: dir}
	for _, opt := range opts {
		opt(s)
	}
	sweepTmp(dir, false)
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// ControlDir returns (creating it if needed) a controller-state directory
// under the store root, namespaced like the index and blob pool (".pos"
// prefix, so it can never collide with a user tree). It holds durable
// control-plane state that is not experiment data — the campaign queue's
// journal lives in ControlDir("queue"). name must be a single flat path
// element.
func (s *Store) ControlDir(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
		return "", fmt.Errorf("results: bad control dir name %q", name)
	}
	dir := filepath.Join(s.root, ".pos"+name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("results: control dir: %w", err)
	}
	return dir, nil
}

// internalDirs are the store-level directories that hold the fast-path
// state. They sit next to the per-user trees and are never part of any
// experiment's published layout.
const (
	indexDirName = ".posindex"
	blobDirName  = ".posblob"
)

// Experiment is one experiment's result directory. One handle is the single
// writer of its manifest; handles are safe for concurrent use by multiple
// goroutines (replica testbeds of a campaign share one).
type Experiment struct {
	// mu guards the manifest (idx), the write-behind flusher state, and
	// the generation counter. File writes happen outside the lock; the
	// index mutation that records them happens under it.
	mu   sync.Mutex
	cond *sync.Cond

	store *Store
	dir   string
	user  string
	name  string
	id    string

	idx         *index
	pending     int            // manifest mutations not yet flushed to disk
	ops         []func() error // deferred small-file writes, drained by the flusher
	opIdx       map[string]int // queued op per target path; re-queue replaces (last wins)
	flushing    bool           // a flusher goroutine is active
	flushErr    error          // first flush failure, surfaced by Sync
	syncWaiters int            // Sync callers blocked; makes the flusher skip its window
}

func (s *Store) newExperiment(dir, user, name, id string) *Experiment {
	e := &Experiment{store: s, dir: dir, user: user, name: name, id: id}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// CreateExperiment allocates a fresh timestamped experiment directory. The
// timestamp format matches the paper's artifacts
// (e.g. 2020-10-12_11-20-32_230471).
func (s *Store) CreateExperiment(user, name string, at time.Time) (*Experiment, error) {
	if user == "" || name == "" {
		return nil, fmt.Errorf("results: user and experiment name required")
	}
	if strings.HasPrefix(user, ".") || strings.HasPrefix(name, ".") {
		return nil, fmt.Errorf("results: user and experiment name must not start with a dot (reserved for store internals)")
	}
	id := at.Format("2006-01-02_15-04-05") + fmt.Sprintf("_%06d", at.Nanosecond()/1000)
	dir := filepath.Join(s.root, user, name, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	e := s.newExperiment(dir, user, name, id)
	if !s.noIndex {
		e.idx = newIndex()
		s.exps.Store(user+"/"+name+"/"+id, e)
	}
	return e, nil
}

// OpenExperiment opens an existing experiment directory for evaluation. The
// manifest is loaded (or rebuilt from a tree scan) on first use; orphaned
// temp files from a crashed writer are swept.
func (s *Store) OpenExperiment(user, name, id string) (*Experiment, error) {
	key := user + "/" + name + "/" + id
	if !s.noIndex {
		if live, ok := s.exps.Load(key); ok {
			return live.(*Experiment), nil
		}
	}
	dir := filepath.Join(s.root, user, name, id)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("results: experiment %s/%s/%s not found", user, name, id)
	}
	sweepTmp(dir, true)
	e := s.newExperiment(dir, user, name, id)
	if !s.noIndex {
		if prior, loaded := s.exps.LoadOrStore(key, e); loaded {
			return prior.(*Experiment), nil
		}
	}
	return e, nil
}

// ListExperiments returns the IDs recorded for user/name, sorted ascending
// (timestamps sort chronologically).
func (s *Store) ListExperiments(user, name string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, user, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("results: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Prune deletes all but the newest keep executions of user/name, returning
// the removed ids. Retention by count matches how shared testbeds manage
// their result volumes; the newest executions (lexically greatest ids —
// timestamps sort chronologically) survive. Deduplicated blobs that lose
// their last reference are reclaimed by GCBlobs.
func (s *Store) Prune(user, name string, keep int) ([]string, error) {
	if keep < 0 {
		return nil, fmt.Errorf("results: keep must be >= 0")
	}
	ids, err := s.ListExperiments(user, name)
	if err != nil {
		return nil, err
	}
	if len(ids) <= keep {
		return nil, nil
	}
	victims := ids[:len(ids)-keep]
	for _, id := range victims {
		dir := filepath.Join(s.root, user, name, id)
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("results: pruning %s: %w", id, err)
		}
		s.forgetTree(dir)
		s.exps.Delete(user + "/" + name + "/" + id)
		os.Remove(s.indexPath(user, name, id))
	}
	return append([]string(nil), victims...), nil
}

// Dir returns the experiment's directory.
func (e *Experiment) Dir() string { return e.dir }

// ID returns the experiment's timestamp identifier.
func (e *Experiment) ID() string { return e.id }

// RunMeta is the metadata pos records for every measurement run: which loop
// parameter combination the run executed.
type RunMeta struct {
	Run        int               `json:"run"`
	LoopVars   map[string]string `json:"loop_vars"`
	StartedAt  time.Time         `json:"started_at"`
	FinishedAt time.Time         `json:"finished_at"`
	// Failed marks runs whose measurement script exited non-zero.
	Failed bool `json:"failed,omitempty"`
	// Error carries the failure reason for failed runs.
	Error string `json:"error,omitempty"`
}

// clone returns a defensive copy (the LoopVars map is shared state
// otherwise — the manifest keeps its own copy).
func (m RunMeta) clone() RunMeta {
	if m.LoopVars != nil {
		vars := make(map[string]string, len(m.LoopVars))
		for k, v := range m.LoopVars {
			vars[k] = v
		}
		m.LoopVars = vars
	}
	return m
}

func runDirName(run int) string { return fmt.Sprintf("run_%04d", run) }

// parseRunDir strictly parses a run directory name. Only names that
// round-trip through runDirName are accepted, so stragglers like
// "run_0001.bak", "run_001", or "run_+0001" never surface as runs.
func parseRunDir(name string) (int, bool) {
	digits, ok := strings.CutPrefix(name, "run_")
	if !ok || len(digits) < 4 {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 || runDirName(n) != name {
		return 0, false
	}
	return n, true
}

// validateArtifactName is the shared sanitizer for artifact and node names.
// flat names (per-run artifacts, node names) must be a single path element;
// nested names (experiment artifacts) may contain forward slashes but no
// empty, dot, or dot-dot segments. Temp-file prefixes are reserved for the
// store's own atomic writes.
func validateArtifactName(name string, flat bool) error {
	if name == "" {
		return fmt.Errorf("results: artifact name must not be empty")
	}
	if strings.ContainsRune(name, '\\') {
		return fmt.Errorf("results: artifact name %q must use forward slashes", name)
	}
	if strings.HasPrefix(name, "/") {
		return fmt.Errorf("results: artifact path %q must be relative", name)
	}
	if flat && strings.ContainsRune(name, '/') {
		return fmt.Errorf("results: artifact and node names must be flat (%q)", name)
	}
	for _, seg := range strings.Split(name, "/") {
		switch {
		case seg == "" || seg == "." || seg == "..":
			return fmt.Errorf("results: artifact path %q escapes the experiment", name)
		case strings.HasPrefix(seg, tmpPrefix):
			return fmt.Errorf("results: artifact path %q uses the reserved temp prefix", name)
		}
	}
	return nil
}

// WriteRunMeta stores the metadata file of one run. The write is atomic on
// disk and recorded in the manifest write-behind; rewriting a run's metadata
// bumps the experiment generation, invalidating warm eval caches.
func (e *Experiment) WriteRunMeta(meta RunMeta) error {
	dir := filepath.Join(e.dir, runDirName(meta.Run))
	stored := meta.clone()
	path := filepath.Join(dir, "metadata.json")
	writeMeta := func() error {
		return e.store.writeFileStream(path, func(w *bufio.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(stored)
		})
	}
	if e.store.noIndex {
		return e.writeInDir(dir, writeMeta)
	}
	record := func(idx *index) { idx.setMeta(stored) }
	if err := e.store.ensureDir(dir); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	// Fast path: the metadata is authoritative in the manifest the moment
	// mutateOp returns; the small disk file rides the write-behind queue.
	// Rewrites of a flushed file stay synchronous, like deferSmallWrite.
	if _, err := os.Lstat(path); errors.Is(err, fs.ErrNotExist) {
		return e.mutateOp(path, writeMeta, record)
	}
	if err := e.writeInDir(dir, writeMeta); err != nil {
		return err
	}
	return e.mutate(record)
}

// ReadRunMeta loads one run's metadata, served from the manifest when the
// run was recorded through this store.
func (e *Experiment) ReadRunMeta(run int) (RunMeta, error) {
	if meta, ok := e.metaFromIndex(run); ok {
		return meta, nil
	}
	data, err := os.ReadFile(filepath.Join(e.dir, runDirName(run), "metadata.json"))
	if err != nil {
		return RunMeta{}, fmt.Errorf("results: %w", err)
	}
	var meta RunMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return RunMeta{}, fmt.Errorf("results: run %d metadata: %w", run, err)
	}
	return meta, nil
}

func (e *Experiment) metaFromIndex(run int) (RunMeta, bool) {
	if e.store.noIndex {
		return RunMeta{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return RunMeta{}, false
	}
	entry := e.idx.runs[run]
	if entry == nil || !entry.hasMeta {
		return RunMeta{}, false
	}
	return entry.meta.clone(), true
}

// AddRunArtifact stores one artifact produced during a run by a node, e.g.
// the captured MoonGen log. Identical content already present anywhere in
// the store is deduplicated: the run's file becomes a hardlink to the shared
// blob, keeping the visible layout byte-identical at a fraction of the IO.
func (e *Experiment) AddRunArtifact(run int, nodeName, artifact string, data []byte) error {
	if err := validateArtifactName(nodeName, true); err != nil {
		return err
	}
	if err := validateArtifactName(artifact, true); err != nil {
		return err
	}
	dir := filepath.Join(e.dir, runDirName(run), nodeName)
	record := func(idx *index) { idx.addRunArtifact(run, nodeName+"/"+artifact) }
	if path, op, ok := e.deferSmallWrite(dir, artifact, data); ok {
		return e.mutateOp(path, op, record)
	}
	err := e.writeInDir(dir, func() error {
		return e.store.writeFileDedup(filepath.Join(dir, artifact), data)
	})
	if err != nil {
		return err
	}
	return e.mutate(record)
}

// resourcesName is the run-level host-conditions record (telemetry
// RuntimeDelta JSON) archived by the runner next to metadata.json. Like
// metadata.json it is a reserved file, not a node artifact, and is excluded
// from RunArtifacts listings.
const resourcesName = "resources.json"

// WriteRunResources stores one run's host-conditions record (resources.json)
// next to its metadata. The write rides the manifest write-behind like any
// small artifact.
func (e *Experiment) WriteRunResources(run int, data []byte) error {
	dir := filepath.Join(e.dir, runDirName(run))
	record := func(idx *index) { idx.addRunArtifact(run, resourcesName) }
	if path, op, ok := e.deferSmallWrite(dir, resourcesName, data); ok {
		return e.mutateOp(path, op, record)
	}
	err := e.writeInDir(dir, func() error {
		return e.store.writeFileDedup(filepath.Join(dir, resourcesName), data)
	})
	if err != nil {
		return err
	}
	return e.mutate(record)
}

// ReadRunResources loads one run's host-conditions record back.
func (e *Experiment) ReadRunResources(run int) ([]byte, error) {
	data, err := e.readBack(filepath.Join(e.dir, runDirName(run), resourcesName))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return data, nil
}

// ReadRunArtifact loads one artifact back.
func (e *Experiment) ReadRunArtifact(run int, nodeName, artifact string) ([]byte, error) {
	data, err := e.readBack(filepath.Join(e.dir, runDirName(run), nodeName, artifact))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return data, nil
}

// readBack reads an artifact file, draining the write-behind queue once when
// the file is not there yet — a handle must always see its own writes.
func (e *Experiment) readBack(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil && errors.Is(err, fs.ErrNotExist) && !e.store.noIndex {
		if serr := e.Sync(); serr == nil {
			data, err = os.ReadFile(path)
		}
	}
	return data, err
}

// AddExperimentArtifact stores an experiment-wide artifact (the experiment
// script, variable files, topology dump, hardware info, generated plots).
// Content is deduplicated against the store's blob pool like run artifacts.
func (e *Experiment) AddExperimentArtifact(artifact string, data []byte) error {
	if err := validateArtifactName(artifact, false); err != nil {
		return err
	}
	path := filepath.Join(e.dir, filepath.FromSlash(artifact))
	record := func(idx *index) { idx.addExperimentArtifact(artifact) }
	if opPath, op, ok := e.deferSmallWrite(filepath.Dir(path), filepath.Base(path), data); ok {
		return e.mutateOp(opPath, op, record)
	}
	err := e.writeInDir(filepath.Dir(path), func() error {
		return e.store.writeFileDedup(path, data)
	})
	if err != nil {
		return err
	}
	return e.mutate(record)
}

// ReadExperimentArtifact loads an experiment-wide artifact.
func (e *Experiment) ReadExperimentArtifact(artifact string) ([]byte, error) {
	data, err := e.readBack(filepath.Join(e.dir, artifact))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return data, nil
}

// Runs lists the run indices present, sorted. With the manifest this is a
// memory read; without it the directory is scanned with strict run-name
// matching.
func (e *Experiment) Runs() ([]int, error) {
	if e.store.noIndex {
		return e.scanRuns()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return nil, err
	}
	runs := make([]int, 0, len(e.idx.runs))
	for run := range e.idx.runs {
		runs = append(runs, run)
	}
	sort.Ints(runs)
	if len(runs) == 0 {
		return nil, nil
	}
	return runs, nil
}

func (e *Experiment) scanRuns() ([]int, error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var runs []int
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if n, ok := parseRunDir(ent.Name()); ok {
			runs = append(runs, n)
		}
	}
	sort.Ints(runs)
	return runs, nil
}

// RunArtifacts lists "<node>/<artifact>" paths for one run, sorted.
func (e *Experiment) RunArtifacts(run int) ([]string, error) {
	if e.store.noIndex {
		return e.scanRunArtifacts(run)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensureIndexLocked(); err != nil {
		return nil, err
	}
	entry := e.idx.runs[run]
	if entry == nil {
		return nil, fmt.Errorf("results: run %d not recorded", run)
	}
	out := make([]string, 0, len(entry.artifacts))
	for rel := range entry.artifacts {
		if filepath.Base(rel) == "metadata.json" || rel == resourcesName {
			continue
		}
		out = append(out, rel)
	}
	sort.Strings(out)
	return out, nil
}

func (e *Experiment) scanRunArtifacts(run int) ([]string, error) {
	base := filepath.Join(e.dir, runDirName(run))
	var out []string
	err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || info.Name() == "metadata.json" {
			return nil
		}
		rel, err := filepath.Rel(base, path)
		if err != nil {
			return err
		}
		if rel == resourcesName {
			return nil
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	sort.Strings(out)
	return out, nil
}
