// Package results implements pos' central result collection (requirement
// R5). Every experiment gets a timestamped directory tree in the paper's
// layout — <root>/<user>/<experiment>/<timestamp>/ — holding per-run result
// files, per-run loop-parameter metadata, the executed scripts and variable
// files, and experiment-wide artifacts. The enforced structure is what makes
// the evaluation and publication phases mechanical.
package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the root of the results tree, the emulated
// /srv/testbed/results.
type Store struct {
	root string
}

// NewStore opens (creating if needed) a results tree rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Experiment is one experiment's result directory.
type Experiment struct {
	mu   sync.Mutex
	dir  string
	user string
	name string
	id   string
}

// CreateExperiment allocates a fresh timestamped experiment directory. The
// timestamp format matches the paper's artifacts
// (e.g. 2020-10-12_11-20-32_230471).
func (s *Store) CreateExperiment(user, name string, at time.Time) (*Experiment, error) {
	if user == "" || name == "" {
		return nil, fmt.Errorf("results: user and experiment name required")
	}
	id := at.Format("2006-01-02_15-04-05") + fmt.Sprintf("_%06d", at.Nanosecond()/1000)
	dir := filepath.Join(s.root, user, name, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return &Experiment{dir: dir, user: user, name: name, id: id}, nil
}

// OpenExperiment opens an existing experiment directory for evaluation.
func (s *Store) OpenExperiment(user, name, id string) (*Experiment, error) {
	dir := filepath.Join(s.root, user, name, id)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("results: experiment %s/%s/%s not found", user, name, id)
	}
	return &Experiment{dir: dir, user: user, name: name, id: id}, nil
}

// ListExperiments returns the IDs recorded for user/name, sorted ascending
// (timestamps sort chronologically).
func (s *Store) ListExperiments(user, name string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, user, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("results: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Prune deletes all but the newest keep executions of user/name, returning
// the removed ids. Retention by count matches how shared testbeds manage
// their result volumes; the newest executions (lexically greatest ids —
// timestamps sort chronologically) survive.
func (s *Store) Prune(user, name string, keep int) ([]string, error) {
	if keep < 0 {
		return nil, fmt.Errorf("results: keep must be >= 0")
	}
	ids, err := s.ListExperiments(user, name)
	if err != nil {
		return nil, err
	}
	if len(ids) <= keep {
		return nil, nil
	}
	victims := ids[:len(ids)-keep]
	for _, id := range victims {
		dir := filepath.Join(s.root, user, name, id)
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("results: pruning %s: %w", id, err)
		}
	}
	return append([]string(nil), victims...), nil
}

// Dir returns the experiment's directory.
func (e *Experiment) Dir() string { return e.dir }

// ID returns the experiment's timestamp identifier.
func (e *Experiment) ID() string { return e.id }

// RunMeta is the metadata pos records for every measurement run: which loop
// parameter combination the run executed.
type RunMeta struct {
	Run        int               `json:"run"`
	LoopVars   map[string]string `json:"loop_vars"`
	StartedAt  time.Time         `json:"started_at"`
	FinishedAt time.Time         `json:"finished_at"`
	// Failed marks runs whose measurement script exited non-zero.
	Failed bool `json:"failed,omitempty"`
	// Error carries the failure reason for failed runs.
	Error string `json:"error,omitempty"`
}

func runDirName(run int) string { return fmt.Sprintf("run_%04d", run) }

// WriteRunMeta stores the metadata file of one run.
func (e *Experiment) WriteRunMeta(meta RunMeta) error {
	dir := filepath.Join(e.dir, runDirName(meta.Run))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, "metadata.json"), append(data, '\n'))
}

// ReadRunMeta loads one run's metadata.
func (e *Experiment) ReadRunMeta(run int) (RunMeta, error) {
	data, err := os.ReadFile(filepath.Join(e.dir, runDirName(run), "metadata.json"))
	if err != nil {
		return RunMeta{}, fmt.Errorf("results: %w", err)
	}
	var meta RunMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return RunMeta{}, fmt.Errorf("results: run %d metadata: %w", run, err)
	}
	return meta, nil
}

// AddRunArtifact stores one artifact produced during a run by a node, e.g.
// the captured MoonGen log.
func (e *Experiment) AddRunArtifact(run int, nodeName, artifact string, data []byte) error {
	if strings.ContainsAny(artifact, "/\\") || strings.ContainsAny(nodeName, "/\\") {
		return fmt.Errorf("results: artifact and node names must be flat (%q, %q)", nodeName, artifact)
	}
	dir := filepath.Join(e.dir, runDirName(run), nodeName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, artifact), data)
}

// ReadRunArtifact loads one artifact back.
func (e *Experiment) ReadRunArtifact(run int, nodeName, artifact string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(e.dir, runDirName(run), nodeName, artifact))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return data, nil
}

// AddExperimentArtifact stores an experiment-wide artifact (the experiment
// script, variable files, topology dump, hardware info, generated plots).
func (e *Experiment) AddExperimentArtifact(artifact string, data []byte) error {
	if strings.Contains(artifact, "..") {
		return fmt.Errorf("results: artifact path %q escapes the experiment", artifact)
	}
	path := filepath.Join(e.dir, artifact)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return writeFileAtomic(path, data)
}

// ReadExperimentArtifact loads an experiment-wide artifact.
func (e *Experiment) ReadExperimentArtifact(artifact string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(e.dir, artifact))
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return data, nil
}

// Runs lists the run indices present, sorted.
func (e *Experiment) Runs() ([]int, error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	var runs []int
	for _, ent := range entries {
		var n int
		if ent.IsDir() {
			if _, err := fmt.Sscanf(ent.Name(), "run_%04d", &n); err == nil {
				runs = append(runs, n)
			}
		}
	}
	sort.Ints(runs)
	return runs, nil
}

// RunArtifacts lists "<node>/<artifact>" paths for one run, sorted.
func (e *Experiment) RunArtifacts(run int) ([]string, error) {
	base := filepath.Join(e.dir, runDirName(run))
	var out []string
	err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || info.Name() == "metadata.json" {
			return nil
		}
		rel, err := filepath.Rel(base, path)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// writeFileAtomic writes via a temp file + rename so readers never observe a
// torn result file.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	return nil
}
