package results

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// Content-addressed blob storage. Every artifact's content is published
// once under <root>/.posblob/sha256/<aa>/<hash> and hardlinked into the
// experiment tree, so a 60-run cross product that records the same script,
// variable file, or loop-var binding in every run writes the bytes exactly
// once. The experiment layout stays byte-identical — a hardlink is a
// regular file to every reader — and overwrites stay safe because the store
// only ever replaces files by rename, never in place.
//
// On filesystems without hardlink support the store transparently falls
// back to full writes.

func (s *Store) blobPath(sum [sha256.Size]byte) string {
	hexSum := hex.EncodeToString(sum[:])
	return filepath.Join(s.root, blobDirName, "sha256", hexSum[:2], hexSum)
}

// linkSeq names the short-lived link staging files; they carry tmpPrefix so
// the orphan sweeper reclaims them after a crash.
var linkSeq atomic.Uint64

// dedupMinBytes is the smallest artifact worth deduplicating. Below one
// page the blob-pool bookkeeping (link probe, pool link, fan-out directory)
// costs more syscalls than the duplicate write it would save, and the pool
// fills with inodes that reclaim no meaningful space.
const dedupMinBytes = 4096

// writeFileDedup stores data at path, deduplicating against the blob pool.
func (s *Store) writeFileDedup(path string, data []byte) error {
	if s.noDedup || len(data) < dedupMinBytes {
		return s.writeFileAtomic(path, data)
	}
	sum := sha256.Sum256(data)
	blob := s.blobPath(sum)

	// Fast path: the content already exists — link it into place without
	// writing a byte.
	if err := s.linkInto(blob, path); err == nil {
		dedupHits.Inc()
		dedupBytesSaved.Add(float64(len(data)))
		return nil
	} else if !os.IsNotExist(err) {
		// The blob exists but cannot be linked (EXDEV, EMLINK, EPERM,
		// …): fall back to a plain write.
		return s.writeFileAtomic(path, data)
	}

	// Slow path: write the content once, publish it as the blob, then
	// move it into place. The blob gains its first link from the temp
	// file, so the data hits the disk exactly once.
	dedupMisses.Inc()
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if s.durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("results: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("results: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(blob), 0o755); err == nil {
		// A concurrent writer may have published the same blob; either
		// link is the same content, so EEXIST is success.
		if err := os.Link(tmpName, blob); err != nil && !os.IsExist(err) {
			// Link unsupported: the artifact itself still lands below.
		}
	}
	return s.publish(tmpName, path)
}

// linkInto atomically places a hardlink to blob at path. The common ingest
// case — path does not exist yet — is a single link syscall; an existing
// file is replaced through a staged name so readers never see a torn file.
func (s *Store) linkInto(blob, path string) error {
	err := os.Link(blob, path)
	if err == nil || !os.IsExist(err) {
		return err
	}
	staged := filepath.Join(filepath.Dir(path), fmt.Sprintf("%slnk-%d", tmpPrefix, linkSeq.Add(1)))
	if err := os.Link(blob, staged); err != nil {
		return err
	}
	return s.publish(staged, path)
}

// BlobStats reports the blob pool's size: distinct blobs, their total
// bytes, and how many still have experiment references (hardlink count
// above one).
type BlobStats struct {
	Blobs      int
	Bytes      int64
	Referenced int
}

// BlobStats scans the blob pool.
func (s *Store) BlobStats() (BlobStats, error) {
	var stats BlobStats
	root := filepath.Join(s.root, blobDirName)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		stats.Blobs++
		stats.Bytes += info.Size()
		if nlink, ok := linkCount(info); ok && nlink > 1 {
			stats.Referenced++
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("results: %w", err)
	}
	return stats, nil
}

// GCBlobs removes blobs whose only remaining link is the pool's own — the
// content was pruned from every experiment. Returns the number of blobs
// reclaimed.
func (s *Store) GCBlobs() (int, error) {
	removed := 0
	root := filepath.Join(s.root, blobDirName)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if nlink, ok := linkCount(info); ok && nlink == 1 {
			if os.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	if err != nil {
		return removed, fmt.Errorf("results: %w", err)
	}
	return removed, nil
}

// linkCount extracts the hardlink count from a FileInfo where the platform
// exposes it.
func linkCount(info fs.FileInfo) (uint64, bool) {
	if st, ok := info.Sys().(*syscall.Stat_t); ok {
		return uint64(st.Nlink), true
	}
	return 0, false
}
