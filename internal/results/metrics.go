package results

import "pos/internal/telemetry"

// Store-wide telemetry. The counters aggregate across every open store and
// experiment handle in the process — exactly what a controller scrape wants.
var (
	manifestFlushes = telemetry.Default.Counter("pos_results_manifest_flushes_total",
		"Manifest group commits written by the write-behind flusher.")
	manifestPending = telemetry.Default.Gauge("pos_results_manifest_pending",
		"Manifest mutations applied in memory but not yet flushed to disk.")
	dedupHits = telemetry.Default.Counter("pos_results_dedup_hits_total",
		"Artifact writes satisfied by linking an existing content blob.")
	dedupMisses = telemetry.Default.Counter("pos_results_dedup_misses_total",
		"Artifact writes that stored new content in the blob pool.")
	dedupBytesSaved = telemetry.Default.Counter("pos_results_dedup_saved_bytes_total",
		"Artifact bytes not rewritten thanks to content dedup.")
)
