package api

import "pos/internal/telemetry"

// API telemetry: per-endpoint request counts (by status code) and latency.
// The endpoint label is the route pattern, not the raw URL, so cardinality
// stays bounded by the mux table.
var (
	requestsTotal = telemetry.Default.CounterVec("pos_api_requests_total",
		"API requests served, by route pattern and status code.", "endpoint", "code")
	requestSeconds = telemetry.Default.HistogramVec("pos_api_request_seconds",
		"API request latency by route pattern.", telemetry.DurationBuckets(), "endpoint")
	eventSubscribers = telemetry.Default.Gauge("pos_api_event_subscribers",
		"SSE clients currently attached to /api/v1/events.")
)
