package api

import (
	"context"
	"errors"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"pos/internal/image"
	"pos/internal/node"
	"pos/internal/results"
	"pos/internal/testbed"
)

func setup(t *testing.T) (*testbed.Testbed, *Client) {
	t.Helper()
	tb := testbed.New()
	t.Cleanup(tb.Close)
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"vriga", "vtartu"} {
		if _, err := tb.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return tb, NewClient(srv.Addr())
}

func TestListAndGetNodes(t *testing.T) {
	_, c := setup(t)
	nodes, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name != "vriga" || nodes[0].State != "off" {
		t.Errorf("nodes = %+v", nodes)
	}
	n, err := c.Node("vtartu")
	if err != nil || n.Name != "vtartu" {
		t.Errorf("node = %+v, %v", n, err)
	}
	if _, err := c.Node("ghost"); err == nil {
		t.Error("got a missing node")
	}
}

func TestBootCycleOverHTTP(t *testing.T) {
	_, c := setup(t)
	if err := c.SetBoot("vriga", "debian-buster", map[string]string{"hugepages": "8"}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Power("vriga", "on")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Boots != 1 {
		t.Errorf("status = %+v", st)
	}
	res, err := c.Exec("vriga", "echo booted with $BOOT_hugepages", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "booted with 8") {
		t.Errorf("output = %q", res.Output)
	}
	st, err = c.Power("vriga", "off")
	if err != nil || st.State != "off" {
		t.Errorf("off: %+v, %v", st, err)
	}
}

func TestSetBootRejectsUnknownImage(t *testing.T) {
	_, c := setup(t)
	if err := c.SetBoot("vriga", "no-such-image", nil); err == nil {
		t.Error("unknown image accepted")
	}
}

func TestPowerValidation(t *testing.T) {
	_, c := setup(t)
	if _, err := c.Power("vriga", "explode"); err == nil {
		t.Error("unknown power op accepted")
	}
	// Power on without image selected.
	if _, err := c.Power("vriga", "on"); err == nil {
		t.Error("power on without image succeeded")
	}
}

func TestExecErrorsCarryOutput(t *testing.T) {
	_, c := setup(t)
	if err := c.SetBoot("vriga", "debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Power("vriga", "on"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("vriga", "echo partial\nexit 3", nil)
	if err == nil {
		t.Fatal("non-zero exit not reported")
	}
	if res.ExitCode != 3 || !strings.Contains(res.Output, "partial") {
		t.Errorf("res = %+v", res)
	}
	// Exec on a powered-off node.
	if _, err := c.Power("vriga", "off"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("vriga", "echo hi", nil)
	if err == nil || res.ExitCode != -1 {
		t.Errorf("powered-off exec: %+v, %v", res, err)
	}
}

func TestImagesEndpoint(t *testing.T) {
	_, c := setup(t)
	imgs, err := c.Images()
	if err != nil || len(imgs) != 1 || !strings.HasPrefix(imgs[0], "debian-buster@") {
		t.Errorf("images = %v, %v", imgs, err)
	}
}

func TestAllocationLifecycle(t *testing.T) {
	_, c := setup(t)
	a, err := c.Allocate("alice", []string{"vriga", "vtartu"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == 0 || a.User != "alice" || len(a.Nodes) != 2 {
		t.Errorf("allocation = %+v", a)
	}
	// Conflicting allocation refused.
	if _, err := c.Allocate("bob", []string{"vriga"}, 30); err == nil {
		t.Error("conflicting allocation accepted")
	}
	active, err := c.Allocations()
	if err != nil || len(active) != 1 {
		t.Errorf("active = %+v, %v", active, err)
	}
	// Wrong user cannot release.
	if err := c.Release("bob", a.ID); err == nil {
		t.Error("cross-user release succeeded")
	}
	if err := c.Release("alice", a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate("bob", []string{"vriga"}, 30); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestAllocationValidation(t *testing.T) {
	_, c := setup(t)
	if _, err := c.Allocate("u", []string{"vriga"}, 0); err == nil {
		t.Error("zero-minute allocation accepted")
	}
	if _, err := c.Allocate("u", []string{"ghost"}, 10); err == nil {
		t.Error("unknown node allocation accepted")
	}
}

func TestFullRemoteExperimentControl(t *testing.T) {
	// Drive the whole node lifecycle purely over HTTP, the way a remote
	// experiment script would.
	_, c := setup(t)
	if _, err := c.Allocate("user", []string{"vtartu"}, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBoot("vtartu", "debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Power("vtartu", "reset"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("vtartu", "set PORT eno1\necho port=$PORT on $HOSTNAME", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "port=eno1 on vtartu") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestResultsEndpoints(t *testing.T) {
	tb := testbed.New()
	t.Cleanup(tb.Close)
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := NewClient(srv.Addr())

	// Without a store attached, results endpoints 404.
	if _, err := c.Results("user", "exp"); err == nil {
		t.Error("results without store succeeded")
	}

	store, err := results.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetResults(store)
	exp, err := store.CreateExperiment("user", "exp", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exp.Sync() })
	if err := exp.WriteRunMeta(results.RunMeta{Run: 0, LoopVars: map[string]string{"pkt_sz": "64"}}); err != nil {
		t.Fatal(err)
	}
	if err := exp.AddRunArtifact(0, "vriga", "moongen.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := exp.WriteRunMeta(results.RunMeta{Run: 1, Failed: true, Error: "boom"}); err != nil {
		t.Fatal(err)
	}

	ids, err := c.Results("user", "exp")
	if err != nil || len(ids) != 1 || ids[0] != exp.ID() {
		t.Fatalf("ids = %v, %v", ids, err)
	}
	// Missing experiment name yields an empty list, not an error.
	empty, err := c.Results("user", "nothing")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty = %v, %v", empty, err)
	}
	runs, err := c.Runs("user", "exp", exp.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].LoopVars["pkt_sz"] != "64" || len(runs[0].Artifacts) != 1 || runs[0].Artifacts[0] != "vriga/moongen.log" {
		t.Errorf("run 0 = %+v", runs[0])
	}
	if !runs[1].Failed || runs[1].Error != "boom" {
		t.Errorf("run 1 = %+v", runs[1])
	}
	if _, err := c.Runs("user", "exp", "nope"); err == nil {
		t.Error("missing execution id succeeded")
	}
}

// TestExecBudgetOutlivesClientBaseline: an exec whose server-side budget
// exceeds the client's baseline deadline must not be cut down by the HTTP
// transport — the request deadline follows the budget. With the old fixed
// http.Client{Timeout: ...} this request died at the baseline.
func TestExecBudgetOutlivesClientBaseline(t *testing.T) {
	tb, c := setup(t)
	c.SetTimeout(50 * time.Millisecond)
	if err := c.SetBoot("vriga", "debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Power("vriga", "on"); err != nil {
		t.Fatal(err)
	}
	h, err := tb.Handle("vriga")
	if err != nil {
		t.Fatal(err)
	}
	err = h.Node.RegisterCommand("slow", func(ctx context.Context, _ *node.Node, _ []string, stdout, _ node.ErrWriter) error {
		select {
		case <-time.After(150 * time.Millisecond):
			stdout.Write([]byte("survived\n"))
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// 150ms of work under a 500ms budget and a 50ms baseline: succeeds.
	res, err := c.ExecContext(context.Background(), "vriga", "slow", nil, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("budgeted exec cut down: %v", err)
	}
	if !strings.Contains(res.Output, "survived") {
		t.Errorf("output = %q", res.Output)
	}

	// The same work under the bare baseline dies at the transport — the
	// capped behaviour a budget exists to avoid.
	if _, err := c.Exec("vriga", "slow", nil); err == nil {
		t.Error("50ms-baseline exec of 150ms work succeeded")
	}

	// A budget below the work time is enforced server-side: the server
	// reports the kill, and the response still reaches the client because
	// the transport deadline outlives the budget.
	res, err = c.ExecContext(context.Background(), "vriga", "slow", nil, 60*time.Millisecond)
	if err == nil {
		t.Fatal("over-budget exec succeeded")
	}
	if !strings.Contains(res.Output, "deadline exceeded") {
		t.Errorf("err = %v, resp = %+v, want server-side deadline kill", err, res)
	}
}

// TestExecContextCancellation: the caller's context aborts the request.
func TestExecContextCancellation(t *testing.T) {
	_, c := setup(t)
	if err := c.SetBoot("vriga", "debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Power("vriga", "on"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecContext(ctx, "vriga", "echo hi", nil, time.Second); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestMetricsEndpointServesPrometheusText: GET /metrics serves valid
// Prometheus text exposition — parse it line by line over real HTTP.
func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	_, c := setup(t)
	// Generate traffic so the api families have samples: one 200 and one 404.
	if _, err := c.Nodes(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node("ghost"); err == nil {
		t.Fatal("missing node succeeded")
	}

	resp, err := http.Get("http://" + c.base[len("http://"):] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Label values may themselves contain braces (route patterns like
	// {name}), so the label block match is greedy to the final brace.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]Inf)$`)
	typed := map[string]string{}
	var samples int
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			typed[fields[2]] = fields[3]
		default:
			if !sampleRe.MatchString(line) {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("no samples exposed")
	}
	if typed["pos_api_requests_total"] != "counter" {
		t.Errorf("pos_api_requests_total type = %q", typed["pos_api_requests_total"])
	}
	if typed["pos_api_request_seconds"] != "histogram" {
		t.Errorf("pos_api_request_seconds type = %q", typed["pos_api_request_seconds"])
	}
	text := string(body)
	for _, want := range []string{
		`pos_api_requests_total{endpoint="GET /api/v1/nodes",code="200"}`,
		`pos_api_requests_total{endpoint="GET /api/v1/nodes/{name}",code="404"}`,
		`pos_api_request_seconds_bucket{endpoint="GET /api/v1/nodes",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestMetricsJSONSnapshot: GET /api/v1/metrics is a decodable structured
// snapshot carrying the per-endpoint counters.
func TestMetricsJSONSnapshot(t *testing.T) {
	_, c := setup(t)
	if _, err := c.Nodes(); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, m := range snap.Metrics {
		if m.Name != "pos_api_requests_total" {
			continue
		}
		for _, v := range m.Values {
			if v.Labels["endpoint"] == "GET /api/v1/nodes" && v.Labels["code"] == "200" && v.Value >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("snapshot missing GET /api/v1/nodes sample: %+v", snap.Metrics)
	}
}

// TestDebugPprofBehindOption: pprof mounts only when WithDebug is given.
func TestDebugPprofBehindOption(t *testing.T) {
	tb := testbed.New()
	t.Cleanup(tb.Close)

	plain, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })
	resp, err := http.Get("http://" + plain.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without WithDebug: HTTP %d", resp.StatusCode)
	}

	debug, err := Serve(tb, WithDebug())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { debug.Close() })
	resp, err = http.Get("http://" + debug.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with WithDebug: HTTP %d", resp.StatusCode)
	}
}

// TestShutdownDrainsInflightHandlers: Shutdown refuses new connections but
// lets a handler already executing finish.
func TestShutdownDrainsInflightHandlers(t *testing.T) {
	tb := testbed.New()
	t.Cleanup(tb.Close)
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddNode("vriga"); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.Addr())
	if err := c.SetBoot("vriga", "debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Power("vriga", "on"); err != nil {
		t.Fatal(err)
	}
	h, err := tb.Handle("vriga")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	err = h.Node.RegisterCommand("slow", func(ctx context.Context, _ *node.Node, _ []string, stdout, _ node.ErrWriter) error {
		close(started)
		select {
		case <-time.After(100 * time.Millisecond):
			stdout.Write([]byte("drained\n"))
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	type execResult struct {
		res ExecResponse
		err error
	}
	done := make(chan execResult, 1)
	go func() {
		res, err := c.Exec("vriga", "slow", nil)
		done <- execResult{res, err}
	}()
	<-started

	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight exec killed by shutdown: %v", r.err)
	}
	if !strings.Contains(r.res.Output, "drained") {
		t.Errorf("output = %q", r.res.Output)
	}
	// The listener is closed: new requests fail.
	if _, err := c.Nodes(); err == nil {
		t.Error("request after shutdown succeeded")
	}
}
