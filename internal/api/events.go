package api

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"pos/internal/eventlog"
)

// SetEvents attaches the live event pipeline, enabling
//
//	GET /api/v1/events    Server-Sent Events stream of experiment events
//
// The stream supports resume: a client reconnecting with the standard
// Last-Event-ID header (or ?last_id=N) is caught up from the experiment
// journal before going live, with sequence numbers deduplicating the
// hand-over — no event is lost or delivered twice across a reconnect.
// Filters: ?replica=, ?phase=, ?run=N.
func (s *Server) SetEvents(p *eventlog.Pipeline) { s.events = p }

// eventFilter is the server-side event selection of one SSE subscriber.
type eventFilter struct {
	replica string
	phase   string
	run     int // -1: any
}

func filterFromQuery(q url.Values) (eventFilter, error) {
	f := eventFilter{replica: q.Get("replica"), phase: q.Get("phase"), run: -1}
	if v := q.Get("run"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return f, fmt.Errorf("api: bad run filter %q", v)
		}
		f.run = n
	}
	return f, nil
}

func (f eventFilter) match(ev eventlog.Event) bool {
	if f.replica != "" && ev.Replica != f.replica {
		return false
	}
	if f.phase != "" && ev.Phase != f.phase {
		return false
	}
	if f.run >= 0 && ev.Run != f.run {
		return false
	}
	return true
}

// resumeCursor extracts the last sequence number the client saw, from the
// standard SSE Last-Event-ID header or the ?last_id query fallback.
func resumeCursor(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_id")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func writeSSE(w http.ResponseWriter, ev eventlog.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data)
	return err
}

// writeSSEData writes an event without an id: line — used for synthetic
// events (Seq 0) that must not regress the client's Last-Event-ID cursor.
func writeSSEData(w http.ResponseWriter, ev eventlog.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// streamEvents serves one SSE subscriber. The live subscription is taken
// BEFORE the journal catch-up, so events published during the replay buffer
// up instead of falling into a gap; the sequence cursor then skips whatever
// the replay already delivered. The subscriber's ring buffer never blocks
// the publishing campaign — a stalled client loses its own events (and can
// resume them from the journal), the runner never waits.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	p := s.events
	if p == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no event pipeline attached"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("api: streaming unsupported"))
		return
	}
	filter, err := filterFromQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cursor := resumeCursor(r)

	sub := p.Subscribe(0)
	defer sub.Close()
	eventSubscribers.Inc()
	defer eventSubscribers.Dec()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Journal catch-up: everything the client missed, in order.
	if history, err := p.ReplaySince(cursor); err == nil {
		for _, ev := range history {
			if ev.Seq > cursor {
				cursor = ev.Seq
			}
			if !filter.match(ev) {
				continue
			}
			if writeSSE(w, ev) != nil {
				return
			}
		}
		fl.Flush()
	}

	ctx := r.Context()
	for {
		ev, ok := sub.Next(ctx)
		if !ok {
			return
		}
		// Synthetic overflow notices (Seq 0) bypass cursor and filters: the
		// client must learn about the gap even when the dropped events would
		// have been filtered out, and the missing id: line keeps its resume
		// cursor intact.
		if ev.Typ == eventlog.TypeDropped {
			if writeSSEData(w, ev) != nil {
				return
			}
			fl.Flush()
			continue
		}
		if ev.Seq <= cursor || !filter.match(ev) {
			continue
		}
		cursor = ev.Seq
		if writeSSE(w, ev) != nil {
			return
		}
		fl.Flush()
	}
}

// ErrStopStream, returned from a StreamEvents callback, ends the stream
// without error.
var ErrStopStream = errors.New("api: stop event stream")

// EventStreamOptions selects what StreamEvents receives.
type EventStreamOptions struct {
	// LastID resumes after the given sequence number (0: from live now,
	// with full journal catch-up when the server has one attached — pass
	// LastID 0 to receive the complete history).
	LastID uint64
	// Replica/Phase filter server-side when non-empty.
	Replica string
	Phase   string
	// Run narrows the stream to a single run index when FilterRun is set
	// (run indexes start at 0, so a plain zero can't carry the meaning).
	Run       int
	FilterRun bool
}

// StreamEvents subscribes to the server's event stream and invokes fn for
// every received event until ctx ends, the server closes the stream, or fn
// returns an error (ErrStopStream for a clean stop). The connection carries
// no client-side deadline — event streams are long-lived by design.
func (c *Client) StreamEvents(ctx context.Context, opts EventStreamOptions, fn func(eventlog.Event) error) error {
	q := url.Values{}
	if opts.Replica != "" {
		q.Set("replica", opts.Replica)
	}
	if opts.Phase != "" {
		q.Set("phase", opts.Phase)
	}
	if opts.FilterRun {
		q.Set("run", strconv.Itoa(opts.Run))
	}
	path := "/api/v1/events"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if opts.LastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(opts.LastID, 10))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api: GET /api/v1/events: HTTP %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue
			}
			var ev eventlog.Event
			ev.Run = eventlog.NoRun
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("api: decoding event: %w", err)
			}
			data = ""
			if err := fn(ev); err != nil {
				if errors.Is(err, ErrStopStream) {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		default:
			// id:/comment lines — the seq travels inside the JSON too.
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("api: event stream: %w", err)
	}
	return nil
}
