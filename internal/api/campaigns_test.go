package api

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pos/internal/eventlog"
	"pos/internal/queue"
	"pos/internal/testbed"
)

// rawStatus issues one request outside the typed client, for asserting exact
// HTTP status codes.
func rawStatus(t *testing.T, method, url, body string) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestReleaseStrictIDParse: "12junk" must be a bad request, not allocation
// 12 (the old fmt.Sscanf parse accepted trailing garbage).
func TestReleaseStrictIDParse(t *testing.T) {
	_, c := setup(t)
	a, err := c.Allocate("alice", []string{"vriga"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	url := c.base + "/api/v1/allocations/" + strconv.Itoa(a.ID) + "junk?user=alice"
	if got := rawStatus(t, http.MethodDelete, url, ""); got != http.StatusBadRequest {
		t.Errorf("DELETE with trailing garbage = %d, want 400", got)
	}
	// The allocation the garbage id happened to prefix must survive.
	active, err := c.Allocations()
	if err != nil || len(active) != 1 {
		t.Fatalf("allocation released through a garbage id: %+v, %v", active, err)
	}
	for _, bad := range []string{"junk12", " 12", "12 ", "0x12", ""} {
		url := c.base + "/api/v1/allocations/" + bad + "?user=alice"
		if got := rawStatus(t, http.MethodDelete, url, ""); got != http.StatusBadRequest && got != http.StatusNotFound {
			// "" hits the mux as a missing path segment (404); everything
			// else must be the handler's strict 400.
			t.Errorf("DELETE id %q = %d, want 400", bad, got)
		}
	}
}

// TestAllocateStatusCodes: only a genuine reservation conflict is 409.
func TestAllocateStatusCodes(t *testing.T) {
	_, c := setup(t)
	url := c.base + "/api/v1/allocations"
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown node", `{"user":"u","nodes":["ghost"],"minutes":10}`, http.StatusNotFound},
		{"empty node set", `{"user":"u","nodes":[],"minutes":10}`, http.StatusBadRequest},
		{"duplicate node", `{"user":"u","nodes":["vriga","vriga"],"minutes":10}`, http.StatusBadRequest},
		{"ok", `{"user":"u","nodes":["vriga"],"minutes":10}`, http.StatusCreated},
		{"conflict", `{"user":"v","nodes":["vriga"],"minutes":10}`, http.StatusConflict},
	}
	for _, tc := range cases {
		if got := rawStatus(t, http.MethodPost, url, tc.body); got != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestReleaseStatusCodes: missing allocation 404, someone else's 403.
func TestReleaseStatusCodes(t *testing.T) {
	_, c := setup(t)
	a, err := c.Allocate("alice", []string{"vriga"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := rawStatus(t, http.MethodDelete, c.base+"/api/v1/allocations/999?user=alice", ""); got != http.StatusNotFound {
		t.Errorf("release missing = %d, want 404", got)
	}
	url := c.base + "/api/v1/allocations/" + strconv.Itoa(a.ID)
	if got := rawStatus(t, http.MethodDelete, url+"?user=bob", ""); got != http.StatusForbidden {
		t.Errorf("cross-user release = %d, want 403", got)
	}
	if got := rawStatus(t, http.MethodDelete, url+"?user=alice", ""); got != http.StatusOK {
		t.Errorf("owner release = %d, want 200", got)
	}
}

// TestExpiredAllocationsSwept: an allocation past its End must neither show
// in the listing nor keep occupying the calendar's scan path — the server
// sweeps on its calendar endpoints (regression for the Expire-never-called
// leak).
func TestExpiredAllocationsSwept(t *testing.T) {
	tb, c := setup(t)
	now := time.Now()
	if _, err := tb.Calendar.Allocate("alice", []string{"vriga"},
		now.Add(-2*time.Hour), now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if tb.Calendar.Size() != 1 {
		t.Fatalf("seed allocation missing: Size = %d", tb.Calendar.Size())
	}
	active, err := c.Allocations()
	if err != nil || len(active) != 0 {
		t.Errorf("ended allocation listed: %+v, %v", active, err)
	}
	if tb.Calendar.Size() != 0 {
		t.Errorf("ended allocation survived the listing sweep: Size = %d", tb.Calendar.Size())
	}
	// And the allocate path sweeps too: a dead reservation must not block.
	if _, err := tb.Calendar.Allocate("alice", []string{"vtartu"},
		now.Add(-2*time.Hour), now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate("bob", []string{"vtartu"}, 30); err != nil {
		t.Errorf("allocate blocked by an expired reservation: %v", err)
	}
}

// queueSetup wires a campaign queue into a served testbed. Submissions with
// Spec["block"]=="1" hold their node until cancelled.
func queueSetup(t *testing.T) (*testbed.Testbed, *Client, *queue.Controller) {
	t.Helper()
	tb := testbed.New()
	t.Cleanup(tb.Close)
	for _, n := range []string{"vriga", "vtartu"} {
		if _, err := tb.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	launch := func(ctx context.Context, sub queue.Submission, ev *eventlog.Pipeline) error {
		if sub.Spec["block"] == "1" {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	q, err := queue.Open(queue.Config{
		Dir:           t.TempDir(),
		Calendar:      tb.Calendar,
		Launch:        launch,
		SweepInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	srv.SetQueue(q)
	return tb, NewClient(srv.Addr()), q
}

func waitCampaign(t *testing.T, c *Client, id int, want string) CampaignView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := c.Campaign(id)
		if err != nil {
			t.Fatalf("Campaign(%d): %v", id, err)
		}
		if v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := c.Campaign(id)
	t.Fatalf("campaign %d stuck in %s, want %s", id, v.State, want)
	return CampaignView{}
}

func TestCampaignQueueOverHTTP(t *testing.T) {
	_, c, _ := queueSetup(t)

	// Two tenants contending for one node: the first runs, the second queues.
	first, err := c.SubmitCampaign(CampaignRequest{
		User: "alice", Name: "hold", Nodes: []string{"vriga"}, Minutes: 30,
		Spec: map[string]string{"block": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c, first.ID, "running")
	second, err := c.SubmitCampaign(CampaignRequest{
		User: "bob", Name: "wait", Nodes: []string{"vriga"}, Minutes: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	all, err := c.Campaigns()
	if err != nil || len(all) != 2 {
		t.Fatalf("Campaigns = %+v, %v", all, err)
	}
	if all[1].State != "queued" || all[1].Position != 1 {
		t.Errorf("second campaign = %+v", all[1])
	}
	// The held allocation is visible through the allocations endpoint.
	active, err := c.Allocations()
	if err != nil || len(active) != 1 || active[0].User != "alice" {
		t.Errorf("allocations while running = %+v, %v", active, err)
	}

	// Authorization on cancel.
	if _, err := c.CancelCampaign("mallory", second.ID); err == nil {
		t.Error("cross-user cancel accepted")
	}
	if got := rawStatus(t, http.MethodDelete,
		c.base+"/api/v1/campaigns/abc?user=bob", ""); got != http.StatusBadRequest {
		t.Errorf("cancel with bad id = %d, want 400", got)
	}
	if _, err := c.Campaign(999); err == nil {
		t.Error("got a missing campaign")
	}

	// Cancel the queued one, then preempt the running one; the node frees.
	if _, err := c.CancelCampaign("bob", second.ID); err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c, second.ID, "cancelled")
	if _, err := c.CancelCampaign("alice", first.ID); err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c, first.ID, "cancelled")

	third, err := c.SubmitCampaign(CampaignRequest{
		User: "carol", Name: "go", Nodes: []string{"vriga"}, Minutes: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c, third.ID, "done")
}

func TestCampaignEndpointsWithoutQueue(t *testing.T) {
	_, c := setup(t)
	if _, err := c.Campaigns(); err == nil || !strings.Contains(err.Error(), "no campaign queue") {
		t.Errorf("campaigns without queue = %v", err)
	}
	if got := rawStatus(t, http.MethodPost, c.base+"/api/v1/campaigns",
		`{"user":"u","nodes":["vriga"],"minutes":5}`); got != http.StatusNotFound {
		t.Errorf("submit without queue = %d, want 404", got)
	}
}

func TestCampaignSubmitValidation(t *testing.T) {
	_, c, _ := queueSetup(t)
	if _, err := c.SubmitCampaign(CampaignRequest{Nodes: []string{"vriga"}, Minutes: 5}); err == nil {
		t.Error("submission without user accepted")
	}
	if got := rawStatus(t, http.MethodPost, c.base+"/api/v1/campaigns", `{notjson`); got != http.StatusBadRequest {
		t.Errorf("malformed submit = %d, want 400", got)
	}
}
