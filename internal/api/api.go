// Package api exposes the testbed controller as an HTTP/JSON service — the
// "pos API" that the paper's experiment scripts interact with to allocate
// devices, configure boots, and execute commands. The server fronts a
// testbed.Testbed; the client provides typed access for tooling and remote
// experiment scripts.
//
//	GET    /api/v1/nodes                  list nodes with state
//	GET    /api/v1/nodes/{name}           one node's state
//	POST   /api/v1/nodes/{name}/boot      {"image": ..., "params": {...}}
//	POST   /api/v1/nodes/{name}/power     {"op": "on"|"off"|"reset"}
//	POST   /api/v1/nodes/{name}/exec      {"script": ..., "env": {...}}
//	GET    /api/v1/images                 list live images
//	GET    /api/v1/allocations            active allocations
//	POST   /api/v1/allocations            {"user", "nodes", "minutes"}
//	DELETE /api/v1/allocations/{id}?user= release
//	POST   /api/v1/campaigns              submit a campaign to the queue
//	GET    /api/v1/campaigns              full queue state
//	GET    /api/v1/campaigns/{id}         one campaign's status
//	DELETE /api/v1/campaigns/{id}?user=   cancel queued / preempt running
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"pos/internal/calendar"
	"pos/internal/eventlog"
	"pos/internal/health"
	"pos/internal/node"
	"pos/internal/queue"
	"pos/internal/results"
	"pos/internal/telemetry"
	"pos/internal/testbed"
)

// NodeStatus is one node's state as reported by the API.
type NodeStatus struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Boots int    `json:"boots"`
}

// BootRequest selects a node's live image and boot parameters.
type BootRequest struct {
	Image  string            `json:"image"`
	Params map[string]string `json:"params,omitempty"`
}

// PowerRequest controls a node's power state out of band.
type PowerRequest struct {
	Op string `json:"op"` // "on", "off", "reset"
}

// ExecRequest runs a script on a node.
type ExecRequest struct {
	Script    string            `json:"script"`
	Env       map[string]string `json:"env,omitempty"`
	TimeoutMS int64             `json:"timeout_ms,omitempty"`
}

// ExecResponse reports a script execution.
type ExecResponse struct {
	Output   string `json:"output"`
	ExitCode int    `json:"exit_code"`
	Error    string `json:"error,omitempty"`
}

// AllocationRequest reserves nodes.
type AllocationRequest struct {
	User    string   `json:"user"`
	Nodes   []string `json:"nodes"`
	Minutes int      `json:"minutes"`
}

// AllocationResponse is a confirmed reservation.
type AllocationResponse struct {
	ID    int       `json:"id"`
	User  string    `json:"user"`
	Nodes []string  `json:"nodes"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// Server serves the controller API for one testbed.
type Server struct {
	tb     *testbed.Testbed
	http   *http.Server
	ln     net.Listener
	store  *results.Store
	events *eventlog.Pipeline
	queue  *queue.Controller
	health *health.Watchdog
	trace  *telemetry.Trace
}

// SetResults attaches a results store, enabling the read-only results
// endpoints:
//
//	GET /api/v1/results/{user}/{exp}                list execution ids
//	GET /api/v1/results/{user}/{exp}/{id}/runs      list runs with metadata
func (s *Server) SetResults(store *results.Store) { s.store = store }

// ServerOption configures Serve.
type ServerOption func(*serverConfig)

type serverConfig struct {
	debug bool
	trace *telemetry.Trace
}

// WithDebug mounts net/http/pprof under /debug/pprof/ — profiling a live
// controller without a rebuild. Off by default: the profile endpoints can
// stall the process and do not belong on an unattended testbed API.
func WithDebug() ServerOption {
	return func(c *serverConfig) { c.debug = true }
}

// WithTrace records a server-side span per instrumented request on tr.
// Opt-in rather than always-on: a long-lived controller would otherwise
// accumulate spans without bound. Regardless of this option, every
// instrumented endpoint propagates an incoming traceparent header into the
// handler's context, so submissions keep their submitter's trace identity.
func WithTrace(tr *telemetry.Trace) ServerOption {
	return func(c *serverConfig) { c.trace = tr }
}

// Serve starts the API on a loopback TCP port.
func Serve(tb *testbed.Testbed, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	s := &Server{tb: tb, ln: ln, trace: cfg.trace}
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /api/v1/nodes", s.listNodes)
	handle("GET /api/v1/nodes/{name}", s.getNode)
	handle("POST /api/v1/nodes/{name}/boot", s.setBoot)
	handle("POST /api/v1/nodes/{name}/power", s.power)
	handle("POST /api/v1/nodes/{name}/exec", s.exec)
	handle("GET /api/v1/images", s.listImages)
	handle("GET /api/v1/allocations", s.listAllocations)
	handle("POST /api/v1/allocations", s.allocate)
	handle("DELETE /api/v1/allocations/{id}", s.release)
	handle("POST /api/v1/campaigns", s.submitCampaign)
	handle("GET /api/v1/campaigns", s.listCampaigns)
	handle("GET /api/v1/campaigns/{id}", s.getCampaign)
	handle("DELETE /api/v1/campaigns/{id}", s.cancelCampaign)
	handle("GET /api/v1/results/{user}/{exp}", s.listResults)
	handle("GET /api/v1/results/{user}/{exp}/{id}/runs", s.listRuns)
	handle("GET /api/v1/health", s.healthStatus)
	// The exposition endpoints are deliberately uninstrumented: scraping
	// metrics should not move the metrics. The event stream joins them —
	// a long-lived SSE connection would wreck the latency histogram.
	mux.HandleFunc("GET /metrics", s.metricsText)
	mux.HandleFunc("GET /api/v1/metrics", s.metricsJSON)
	mux.HandleFunc("GET /api/v1/events", s.streamEvents)
	if cfg.debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return s, nil
}

// statusWriter captures the response code a handler writes, defaulting to
// 200 when the handler never calls WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint latency and status counting,
// and is the single place trace context crosses the server boundary: an
// incoming traceparent header is parsed into the request context (malformed
// or absent values fall back to an untraced context, never an error), echoed
// on the response, and — when WithTrace is installed — a request span opens
// for the handler's duration. The histogram child is resolved once at mux
// construction, off the hot path.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	latency := requestSeconds.With(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ctx := r.Context()
		tp := r.Header.Get(telemetry.TraceParentHeader)
		if _, _, ok := telemetry.ParseTraceParent(tp); ok {
			ctx = telemetry.ContextWithTraceParent(ctx, tp)
			w.Header().Set(telemetry.TraceParentHeader, tp)
		}
		var span *telemetry.Span
		if s.trace != nil {
			span = s.trace.Root().StartChild(pattern)
			if tp != "" {
				span.SetAttr("traceparent", tp)
			}
			ctx = telemetry.ContextWithSpan(ctx, span)
		}
		h(sw, r.WithContext(ctx))
		if span != nil {
			span.SetAttr("status", strconv.Itoa(sw.code))
			span.End()
		}
		latency.Observe(time.Since(start).Seconds())
		requestsTotal.With(pattern, strconv.Itoa(sw.code)).Inc()
	}
}

// Trace returns the trace installed with WithTrace, or nil.
func (s *Server) Trace() *telemetry.Trace { return s.trace }

func (s *Server) metricsText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.Default.WritePrometheus(w)
}

func (s *Server) metricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default.Snapshot())
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight handlers drain until they finish or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// Close shuts the server down with a short drain window.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func readJSON(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleOf(r *http.Request) (*testbed.Handle, error) {
	return s.tb.Handle(r.PathValue("name"))
}

func (s *Server) listNodes(w http.ResponseWriter, r *http.Request) {
	var out []NodeStatus
	for _, name := range s.tb.Nodes() {
		h, err := s.tb.Handle(name)
		if err != nil {
			continue
		}
		out = append(out, NodeStatus{Name: name, State: string(h.Node.State()), Boots: h.Node.BootCount()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getNode(w http.ResponseWriter, r *http.Request) {
	h, err := s.handleOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, NodeStatus{Name: h.Node.Name, State: string(h.Node.State()), Boots: h.Node.BootCount()})
}

func (s *Server) setBoot(w http.ResponseWriter, r *http.Request) {
	h, err := s.handleOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req BootRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := h.Node.SetBoot(req.Image, req.Params); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) power(w http.ResponseWriter, r *http.Request) {
	h, err := s.handleOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req PowerRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch req.Op {
	case "on":
		err = h.Node.PowerOn()
	case "off":
		h.Node.PowerOff()
	case "reset":
		err = h.Node.Reset()
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: unknown power op %q", req.Op))
		return
	}
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, NodeStatus{Name: h.Node.Name, State: string(h.Node.State()), Boots: h.Node.BootCount()})
}

func (s *Server) exec(w http.ResponseWriter, r *http.Request) {
	h, err := s.handleOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req ExecRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	out, err := h.Node.Exec(ctx, req.Script, req.Env)
	resp := ExecResponse{Output: out}
	if err != nil {
		resp.Error = err.Error()
		if exit, ok := err.(*node.ExitError); ok {
			resp.ExitCode = exit.Code
		} else {
			resp.ExitCode = -1
		}
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) listImages(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tb.Images.List())
}

func (s *Server) listAllocations(w http.ResponseWriter, r *http.Request) {
	// Retire ended reservations before reporting: an allocation past its End
	// must neither show up here nor slow future conflict scans.
	s.tb.Calendar.Expire(time.Now())
	active := s.tb.Calendar.Active(time.Now())
	out := make([]AllocationResponse, 0, len(active))
	for _, a := range active {
		out = append(out, AllocationResponse{ID: a.ID, User: a.User, Nodes: a.Nodes, Start: a.Start, End: a.End})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) allocate(w http.ResponseWriter, r *http.Request) {
	var req AllocationRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Minutes <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: minutes must be positive"))
		return
	}
	start := time.Now()
	s.tb.Calendar.Expire(start)
	alloc, err := s.tb.Calendar.Allocate(req.User, req.Nodes, start, start.Add(time.Duration(req.Minutes)*time.Minute))
	if err != nil {
		writeErr(w, allocateStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, AllocationResponse{
		ID: alloc.ID, User: alloc.User, Nodes: alloc.Nodes, Start: alloc.Start, End: alloc.End,
	})
}

func (s *Server) release(w http.ResponseWriter, r *http.Request) {
	// Strict parse: "12junk" is a bad id, not allocation 12 (same contract
	// as the results store's run_NNNN parsing).
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad allocation id %q", r.PathValue("id")))
		return
	}
	user := r.URL.Query().Get("user")
	if err := s.tb.Calendar.Release(user, id); err != nil {
		writeErr(w, releaseStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// allocateStatus maps a Calendar.Allocate error onto an HTTP status: only a
// genuine reservation conflict is 409; a request naming an unknown node is
// 404, and malformed requests (empty node set, duplicates, non-positive
// interval) are the client's fault — 400.
func allocateStatus(err error) int {
	switch {
	case errors.Is(err, calendar.ErrUnknownNode):
		return http.StatusNotFound
	case errors.Is(err, calendar.ErrBadInterval),
		errors.Is(err, calendar.ErrNoNodes),
		errors.Is(err, calendar.ErrDuplicateReq):
		return http.StatusBadRequest
	default:
		return http.StatusConflict
	}
}

// releaseStatus maps a Calendar.Release error: missing allocation is 404,
// someone else's allocation is 403.
func releaseStatus(err error) int {
	switch {
	case errors.Is(err, calendar.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, calendar.ErrWrongUser):
		return http.StatusForbidden
	default:
		return http.StatusConflict
	}
}

// RunView is one measurement run's metadata plus its artifact paths.
type RunView struct {
	Run       int               `json:"run"`
	LoopVars  map[string]string `json:"loop_vars"`
	Failed    bool              `json:"failed,omitempty"`
	Error     string            `json:"error,omitempty"`
	Artifacts []string          `json:"artifacts"`
}

func (s *Server) listResults(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no results store attached"))
		return
	}
	ids, err := s.store.ListExperiments(r.PathValue("user"), r.PathValue("exp"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) listRuns(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no results store attached"))
		return
	}
	exp, err := s.store.OpenExperiment(r.PathValue("user"), r.PathValue("exp"), r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	runs, err := exp.Runs()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]RunView, 0, len(runs))
	for _, run := range runs {
		meta, err := exp.ReadRunMeta(run)
		if err != nil {
			continue
		}
		arts, _ := exp.RunArtifacts(run)
		if arts == nil {
			arts = []string{}
		}
		out = append(out, RunView{
			Run: run, LoopVars: meta.LoopVars,
			Failed: meta.Failed, Error: meta.Error, Artifacts: arts,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// Client is a typed client for the controller API.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// NewClient returns a client for the API at addr (host:port).
func NewClient(addr string) *Client {
	// The deadline lives on each request's context, never on http.Client
	// .Timeout: a transport-wide cap would silently cut down any exec
	// whose server-side budget (TimeoutMS) exceeds it.
	return &Client{base: "http://" + addr, hc: &http.Client{}, timeout: 30 * time.Second}
}

// SetTimeout sets the client's baseline per-request deadline (default 30s,
// zero disables). Execs carrying their own budget extend past it — the
// baseline then only bounds the transport overhead on top of the budget.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(context.Background(), method, path, body, out, 0)
}

// doCtx issues one request. extra > 0 is a server-side execution budget the
// request must outlive: the deadline becomes extra plus the baseline, so the
// HTTP layer never expires before the work it is waiting on.
func (c *Client) doCtx(ctx context.Context, method, path string, body, out any, extra time.Duration) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("api: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	if d := c.requestTimeout(extra); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate trace identity: the context's active span (or a pending
	// remote parent being relayed) rides the W3C traceparent header, so the
	// server can stitch its work under the caller's trace.
	if tp := telemetry.TraceParentFromContext(ctx); tp != "" {
		req.Header.Set(telemetry.TraceParentHeader, tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			// For exec, the body may carry output alongside the error.
			if out != nil {
				_ = json.Unmarshal(data, out)
			}
			return fmt.Errorf("api: %s %s: %s", method, path, eb.Error)
		}
		return fmt.Errorf("api: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decoding response: %w", err)
	}
	return nil
}

// requestTimeout derives one request's deadline: the baseline alone for
// plain calls, the execution budget plus the baseline when the server was
// asked to work for up to `extra`.
func (c *Client) requestTimeout(extra time.Duration) time.Duration {
	if extra <= 0 {
		return c.timeout
	}
	return extra + c.timeout
}

// Nodes lists all nodes.
func (c *Client) Nodes() ([]NodeStatus, error) {
	var out []NodeStatus
	err := c.do(http.MethodGet, "/api/v1/nodes", nil, &out)
	return out, err
}

// Node fetches one node's status.
func (c *Client) Node(name string) (NodeStatus, error) {
	var out NodeStatus
	err := c.do(http.MethodGet, "/api/v1/nodes/"+name, nil, &out)
	return out, err
}

// SetBoot selects a node's image and boot parameters.
func (c *Client) SetBoot(name, image string, params map[string]string) error {
	return c.do(http.MethodPost, "/api/v1/nodes/"+name+"/boot", BootRequest{Image: image, Params: params}, nil)
}

// Power controls a node's power state ("on", "off", "reset").
func (c *Client) Power(name, op string) (NodeStatus, error) {
	var out NodeStatus
	err := c.do(http.MethodPost, "/api/v1/nodes/"+name+"/power", PowerRequest{Op: op}, &out)
	return out, err
}

// Exec runs a script on a node under the client's baseline deadline.
func (c *Client) Exec(name, script string, env map[string]string) (ExecResponse, error) {
	return c.ExecContext(context.Background(), name, script, env, 0)
}

// ExecContext runs a script with an execution budget. timeout > 0 is passed
// to the server as TimeoutMS to bound the script, and the client's own HTTP
// deadline is extended to the budget plus the baseline — a long measurement
// is never cut down by the transport while the server is still within the
// window the caller granted it. The context cancels the request early.
func (c *Client) ExecContext(ctx context.Context, name, script string, env map[string]string, timeout time.Duration) (ExecResponse, error) {
	req := ExecRequest{Script: script, Env: env}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	var out ExecResponse
	err := c.doCtx(ctx, http.MethodPost, "/api/v1/nodes/"+name+"/exec", req, &out, timeout)
	return out, err
}

// Images lists the image store's refs.
func (c *Client) Images() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/api/v1/images", nil, &out)
	return out, err
}

// Allocate reserves nodes for a number of minutes.
func (c *Client) Allocate(user string, nodes []string, minutes int) (AllocationResponse, error) {
	var out AllocationResponse
	err := c.do(http.MethodPost, "/api/v1/allocations", AllocationRequest{User: user, Nodes: nodes, Minutes: minutes}, &out)
	return out, err
}

// Allocations lists active reservations.
func (c *Client) Allocations() ([]AllocationResponse, error) {
	var out []AllocationResponse
	err := c.do(http.MethodGet, "/api/v1/allocations", nil, &out)
	return out, err
}

// Release frees a reservation.
func (c *Client) Release(user string, id int) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/api/v1/allocations/%d?user=%s", id, user), nil, nil)
}

// Results lists the execution ids of user/exp.
func (c *Client) Results(user, exp string) ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/results/%s/%s", user, exp), nil, &out)
	return out, err
}

// Runs lists one execution's measurement runs with metadata and artifacts.
func (c *Client) Runs(user, exp, id string) ([]RunView, error) {
	var out []RunView
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/results/%s/%s/%s/runs", user, exp, id), nil, &out)
	return out, err
}

// Metrics fetches the server's telemetry as a structured JSON snapshot.
func (c *Client) Metrics() (telemetry.Snapshot, error) {
	var out telemetry.Snapshot
	err := c.do(http.MethodGet, "/api/v1/metrics", nil, &out)
	return out, err
}

// MetricsText fetches the server's /metrics in Prometheus text exposition
// format.
func (c *Client) MetricsText() ([]byte, error) {
	ctx := context.Background()
	if d := c.requestTimeout(0); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("api: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}
