package api

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pos/internal/eventlog"
	"pos/internal/testbed"
)

func setupEvents(t *testing.T) (*Server, *Client, *eventlog.Pipeline) {
	t.Helper()
	tb := testbed.New()
	t.Cleanup(tb.Close)
	srv, err := Serve(tb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p := eventlog.NewPipeline()
	srv.SetEvents(p)
	return srv, NewClient(srv.Addr()), p
}

// waitSubscribers blocks until the SSE subscriber gauge reaches n — the
// only way to know a streaming client's subscription is attached before
// publishing events it must see.
func waitSubscribers(t *testing.T, n float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eventSubscribers.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %v, want %v", eventSubscribers.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEventStreamLiveAndFiltered(t *testing.T) {
	_, c, p := setupEvents(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []eventlog.Event
	done := make(chan error, 1)
	go func() {
		done <- c.StreamEvents(ctx, EventStreamOptions{Replica: "alpha"}, func(ev eventlog.Event) error {
			got = append(got, ev)
			if ev.Message == "end" {
				return ErrStopStream
			}
			return nil
		})
	}()
	waitSubscribers(t, 1)
	p.Publish(eventlog.Event{Replica: "beta", Message: "other replica"})
	p.Publish(eventlog.Event{Replica: "alpha", Phase: "setup", Message: "hello"})
	p.Publish(eventlog.Event{Replica: "alpha", Message: "end"})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Message != "hello" || got[1].Message != "end" {
		t.Fatalf("filtered stream = %+v", got)
	}
	if got[0].Phase != "setup" || got[0].Replica != "alpha" || got[0].Seq == 0 {
		t.Errorf("event fields lost in transit: %+v", got[0])
	}
}

// TestEventStreamResumeNoLossNoDup is the reconnect contract: a client that
// dies mid-stream and reconnects with the last sequence number it saw gets
// journal catch-up plus live hand-over with no event lost and none repeated
// — including events published while it was away.
func TestEventStreamResumeNoLossNoDup(t *testing.T) {
	_, c, p := setupEvents(t)
	j, err := eventlog.OpenJournal(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachJournal(j)
	defer j.Close()

	for i := 0; i < 30; i++ {
		p.Publish(eventlog.Event{Replica: "alpha", Message: fmt.Sprintf("m%d", i)})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var seen []eventlog.Event
	err = c.StreamEvents(ctx, EventStreamOptions{}, func(ev eventlog.Event) error {
		seen = append(seen, ev)
		if len(seen) == 12 {
			return ErrStopStream // the "connection died" point
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Campaign keeps publishing while the watcher is disconnected.
	for i := 30; i < 40; i++ {
		p.Publish(eventlog.Event{Replica: "alpha", Message: fmt.Sprintf("m%d", i)})
	}

	err = c.StreamEvents(ctx, EventStreamOptions{LastID: seen[len(seen)-1].Seq},
		func(ev eventlog.Event) error {
			seen = append(seen, ev)
			if len(seen) == 40 {
				return ErrStopStream
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if len(seen) != 40 {
		t.Fatalf("events across both sessions = %d, want 40", len(seen))
	}
	for i, ev := range seen {
		if want := fmt.Sprintf("m%d", i); ev.Message != want {
			t.Fatalf("event %d = %q, want %q (loss or duplication across resume)", i, ev.Message, want)
		}
		if i > 0 && ev.Seq != seen[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d after %d", i, ev.Seq, seen[i-1].Seq)
		}
	}
}

// TestStalledSubscriberDoesNotSlowPublisher: an SSE client that stops
// reading must never back-pressure the experiment. Its ring fills and drops;
// the publisher keeps its pace.
func TestStalledSubscriberDoesNotSlowPublisher(t *testing.T) {
	srv, _, p := setupEvents(t)
	req, err := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/api/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read: the subscriber is wedged
	waitSubscribers(t, 1)

	start := time.Now()
	for i := 0; i < 20000; i++ {
		p.Publish(eventlog.Event{Replica: "alpha", Message: "spam"})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("20k publishes with a stalled subscriber took %v", elapsed)
	}
}
