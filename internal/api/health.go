package api

import (
	"net/http"

	"pos/internal/health"
)

// SetHealth attaches a watchdog, enabling
//
//	GET /api/v1/health    probe states, trip counts, and last trip times
//
// Without one the endpoint still answers (watchdog:false) so callers can
// distinguish "no supervision configured" from "server down".
func (s *Server) SetHealth(w *health.Watchdog) { s.health = w }

// HealthStatus is the response of GET /api/v1/health.
type HealthStatus struct {
	Watchdog bool                `json:"watchdog"`
	Probes   []health.ProbeState `json:"probes,omitempty"`
}

func (s *Server) healthStatus(w http.ResponseWriter, r *http.Request) {
	st := HealthStatus{}
	if s.health != nil {
		st.Watchdog = true
		st.Probes = s.health.Status()
	}
	writeJSON(w, http.StatusOK, st)
}

// Health fetches the server's watchdog status.
func (c *Client) Health() (HealthStatus, error) {
	var st HealthStatus
	err := c.do(http.MethodGet, "/api/v1/health", nil, &st)
	return st, err
}
