package api

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pos/internal/eventlog"
	"pos/internal/image"
	"pos/internal/queue"
	"pos/internal/telemetry"
	"pos/internal/testbed"
)

// traceSetup serves a testbed with request spans recorded on a server trace.
func traceSetup(t *testing.T) (*Server, *Client) {
	t.Helper()
	tb := testbed.New()
	t.Cleanup(tb.Close)
	if err := tb.Images.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddNode("vriga"); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(tb, WithTrace(telemetry.NewTrace("api-server")))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, NewClient(srv.Addr())
}

// TestTraceParentRoundTrip: a client call made inside a traced context
// carries the traceparent header; the server records it on its request span
// and echoes it on the response. Run under -race in the verify-race tier —
// concurrent traced requests exercise the span bookkeeping.
func TestTraceParentRoundTrip(t *testing.T) {
	srv, c := traceSetup(t)
	tr := telemetry.NewTrace("posctl:nodes")
	ctx := telemetry.ContextWithTrace(context.Background(), tr)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []NodeStatus
			if err := c.doCtx(ctx, http.MethodGet, "/api/v1/nodes", nil, &out, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	want := tr.Root().TraceParent()
	recs := srv.Trace().Records()
	requestSpans := 0
	for _, r := range recs {
		if r.Name == "GET /api/v1/nodes" {
			requestSpans++
			if got := r.Attrs["traceparent"]; got != want {
				t.Errorf("request span traceparent = %q, want %q", got, want)
			}
			if got := r.Attrs["status"]; got != "200" {
				t.Errorf("request span status = %q, want 200", got)
			}
		}
	}
	if requestSpans != 8 {
		t.Errorf("request spans = %d, want 8", requestSpans)
	}
}

// TestTraceParentEchoedOnResponse: the wire-level contract.
func TestTraceParentEchoedOnResponse(t *testing.T) {
	_, c := traceSetup(t)
	tp := telemetry.FormatTraceParent(telemetry.NewTraceID(), telemetry.NewSpanID())
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/v1/nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceParentHeader, tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get(telemetry.TraceParentHeader); got != tp {
		t.Errorf("response traceparent = %q, want echo of %q", got, tp)
	}
}

// TestMalformedTraceParentNeverFails: garbage tracing metadata from a peer
// must not fail the request — the server falls back to an untraced context
// and answers 200.
func TestMalformedTraceParentNeverFails(t *testing.T) {
	_, c := traceSetup(t)
	for _, tp := range []string{
		"garbage",
		"00-zzzz-yyyy-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-0000000000000000-01",
	} {
		req, err := http.NewRequest(http.MethodGet, c.base+"/api/v1/nodes", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(telemetry.TraceParentHeader, tp)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("traceparent %q: status %d, want 200", tp, resp.StatusCode)
		}
		if got := resp.Header.Get(telemetry.TraceParentHeader); got != "" {
			t.Errorf("traceparent %q echoed as %q, want dropped", tp, got)
		}
	}
}

// TestQueueSubmissionKeepsSubmitterTrace: a campaign submitted inside a
// traced context keeps the submitter's trace ID through queue admission and
// dispatch — the launcher's context carries the original traceparent, not a
// server-side identity.
func TestQueueSubmissionKeepsSubmitterTrace(t *testing.T) {
	tb := testbed.New()
	t.Cleanup(tb.Close)
	if _, err := tb.AddNode("vriga"); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(tb, WithTrace(telemetry.NewTrace("api-server")))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	type launched struct {
		traceparent string
		admission   eventlog.Admission
		ok          bool
	}
	got := make(chan launched, 1)
	q, err := queue.Open(queue.Config{
		Dir:      t.TempDir(),
		Calendar: tb.Calendar,
		Launch: func(ctx context.Context, sub queue.Submission, ev *eventlog.Pipeline) error {
			adm, ok := eventlog.AdmissionFromContext(ctx)
			got <- launched{telemetry.PendingTraceParent(ctx), adm, ok}
			return nil
		},
		SweepInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	srv.SetQueue(q)

	c := NewClient(srv.Addr())
	tr := telemetry.NewTrace("posctl:submit")
	ctx := telemetry.ContextWithTrace(context.Background(), tr)
	view, err := c.SubmitCampaignContext(ctx, CampaignRequest{
		User: "alice", Name: "traced", Nodes: []string{"vriga"}, Minutes: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case l := <-got:
		wantID := tr.ID()
		gotID, _, ok := telemetry.ParseTraceParent(l.traceparent)
		if !ok || gotID != wantID {
			t.Errorf("launch traceparent = %q (trace %q), want submitter trace %q",
				l.traceparent, gotID, wantID)
		}
		// The parent must be the submitter's span, not a server request span.
		if !strings.HasPrefix(l.traceparent, "00-"+wantID+"-"+tr.Root().SpanID()+"-") {
			t.Errorf("launch traceparent = %q, want parented under submitter span %q",
				l.traceparent, tr.Root().SpanID())
		}
		if !l.ok {
			t.Fatal("launch context carries no admission info")
		}
		if l.admission.SubmissionID == "" || l.admission.Submitted.IsZero() || l.admission.Admitted.IsZero() {
			t.Errorf("admission info incomplete: %+v", l.admission)
		}
		if l.admission.User != "alice" {
			t.Errorf("admission user = %q, want alice", l.admission.User)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("campaign %d never launched", view.ID)
	}
}
