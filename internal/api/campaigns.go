package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pos/internal/queue"
	"pos/internal/telemetry"
)

// CampaignRequest submits one campaign to the controller's queue.
type CampaignRequest struct {
	User     string            `json:"user"`
	Name     string            `json:"name,omitempty"`
	Nodes    []string          `json:"nodes"`
	Minutes  int               `json:"minutes"`
	Priority int               `json:"priority,omitempty"`
	ExpDir   string            `json:"exp_dir,omitempty"`
	Spec     map[string]string `json:"spec,omitempty"`
}

// CampaignView is one queued/running/finished campaign as the API reports it.
type CampaignView struct {
	ID           int               `json:"id"`
	User         string            `json:"user"`
	Name         string            `json:"name"`
	State        string            `json:"state"`
	Nodes        []string          `json:"nodes"`
	Minutes      int               `json:"minutes"`
	Priority     int               `json:"priority,omitempty"`
	Spec         map[string]string `json:"spec,omitempty"`
	Position     int               `json:"position,omitempty"`
	AllocationID int               `json:"allocation_id,omitempty"`
	Submitted    time.Time         `json:"submitted"`
	Admitted     time.Time         `json:"admitted"`
	Finished     time.Time         `json:"finished"`
	Error        string            `json:"error,omitempty"`
}

// SetQueue attaches the campaign queue, enabling the campaign endpoints.
// Without one they answer 404, like the results endpoints without a store.
func (s *Server) SetQueue(q *queue.Controller) { s.queue = q }

func campaignView(st queue.Status) CampaignView {
	return CampaignView{
		ID:           st.ID,
		User:         st.User,
		Name:         st.Name,
		State:        string(st.State),
		Nodes:        st.Nodes,
		Minutes:      st.Minutes,
		Priority:     st.Priority,
		Spec:         st.Spec,
		Position:     st.Position,
		AllocationID: st.AllocationID,
		Submitted:    st.Submitted,
		Admitted:     st.Admitted,
		Finished:     st.Finished,
		Error:        st.Error,
	}
}

func (s *Server) submitCampaign(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no campaign queue attached"))
		return
	}
	var req CampaignRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.queue.Submit(queue.Submission{
		User:     req.User,
		Name:     req.Name,
		Nodes:    req.Nodes,
		Minutes:  req.Minutes,
		Priority: req.Priority,
		ExpDir:   req.ExpDir,
		Spec:     req.Spec,
		// The submitter's identity, not any server-side request span: the
		// campaign's trace must stitch under the posctl invocation that
		// submitted it, however long it waits in the queue.
		TraceParent: telemetry.PendingTraceParent(r.Context()),
	})
	if err != nil {
		if errors.Is(err, queue.ErrClosed) {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, campaignView(st))
}

func (s *Server) listCampaigns(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no campaign queue attached"))
		return
	}
	all := s.queue.List()
	out := make([]CampaignView, 0, len(all))
	for _, st := range all {
		out = append(out, campaignView(st))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getCampaign(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no campaign queue attached"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad campaign id %q", r.PathValue("id")))
		return
	}
	st, err := s.queue.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, campaignView(st))
}

func (s *Server) cancelCampaign(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("api: no campaign queue attached"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad campaign id %q", r.PathValue("id")))
		return
	}
	st, err := s.queue.Cancel(r.URL.Query().Get("user"), id)
	if err != nil {
		switch {
		case errors.Is(err, queue.ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, queue.ErrWrongUser):
			writeErr(w, http.StatusForbidden, err)
		case errors.Is(err, queue.ErrFinished):
			writeErr(w, http.StatusConflict, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, campaignView(st))
}

// SubmitCampaign queues a campaign and returns its assigned status.
func (c *Client) SubmitCampaign(req CampaignRequest) (CampaignView, error) {
	return c.SubmitCampaignContext(context.Background(), req)
}

// SubmitCampaignContext queues a campaign under the caller's context. When
// the context carries an active span (or a pending traceparent), the
// submission inherits that trace identity end to end: queue wait, admission,
// and the campaign run all stitch under the submitter's trace.
func (c *Client) SubmitCampaignContext(ctx context.Context, req CampaignRequest) (CampaignView, error) {
	var out CampaignView
	err := c.doCtx(ctx, http.MethodPost, "/api/v1/campaigns", req, &out, 0)
	return out, err
}

// Campaigns returns the full queue state, submission order.
func (c *Client) Campaigns() ([]CampaignView, error) {
	var out []CampaignView
	err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &out)
	return out, err
}

// Campaign fetches one campaign's status.
func (c *Client) Campaign(id int) (CampaignView, error) {
	var out CampaignView
	err := c.do(http.MethodGet, "/api/v1/campaigns/"+strconv.Itoa(id), nil, &out)
	return out, err
}

// CancelCampaign withdraws a queued campaign or preempts a running one.
func (c *Client) CancelCampaign(user string, id int) (CampaignView, error) {
	var out CampaignView
	err := c.do(http.MethodDelete,
		fmt.Sprintf("/api/v1/campaigns/%d?user=%s", id, user), nil, &out)
	return out, err
}
