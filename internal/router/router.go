// Package router emulates the paper's device under test: a Linux software
// router forwarding packets between its two NIC ports. The forwarding
// fast path validates and rewrites real IPv4 headers (TTL decrement,
// incremental checksum update) while throughput is governed by a
// perfmodel.Model — bare metal or virtualized — using the same fluid
// busy-until discipline as the links, so CPU saturation produces drops and
// queueing delay exactly where the paper's Fig. 3 shows them.
package router

import (
	"encoding/binary"
	"fmt"
	"sync"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/perfmodel"
	"pos/internal/sim"
)

// Stats counts the router's forwarding activity.
type Stats struct {
	Forwarded  int64 // packets sent out the egress port
	Dropped    int64 // packets lost to CPU overload (queue overflow)
	TTLExpired int64 // packets discarded for TTL <= 1
	BadPacket  int64 // undecodable or non-IPv4 packets
	NotRouting int64 // packets discarded while ip_forward was off
}

// Config parameterizes a Router.
type Config struct {
	// Name identifies the router in logs and metadata.
	Name string
	// Model is the forwarding capacity model. Required.
	Model perfmodel.Model
	// QueueDelayLimit bounds the software ingress queue, expressed as
	// time at the current service rate; 0 defaults to 50 ms (roughly
	// 1000 descriptors at VM rates, generous at bare-metal rates).
	QueueDelayLimit sim.Duration
	// HardwareTimestamps marks the router's NICs as capable of hardware
	// timestamping (true for the bare-metal 82599 model).
	HardwareTimestamps bool
}

// DefaultQueueDelayLimit bounds the router's software queue backlog.
const DefaultQueueDelayLimit = 50 * sim.Millisecond

// Router is a two-port IPv4 forwarder.
type Router struct {
	cfg    Config
	engine *sim.Engine
	ports  [2]*netem.Port
	stats  Stats
	// busyUntil is the CPU's virtual completion time.
	busyUntil sim.Time
	// lastCapacity caches the capacity used for utilization reporting.
	lastCapacity float64
	// rewriteIn/rewriteOut memoize the last forwarding rewrite: the load
	// generator reuses one template frame per run, so almost every batch
	// carries the same representative bytes. The memo must not be reused
	// as scratch because delivered batches alias rewriteOut until their
	// scheduled events fire.
	rewriteIn  []byte
	rewriteOut []byte
	// forwarding mirrors net.ipv4.ip_forward: when false, arriving
	// packets are discarded — the state of a freshly booted Linux host
	// before the setup script enables routing.
	forwarding bool
}

// New constructs a router with ports named <name>.eth0 and <name>.eth1.
func New(e *sim.Engine, cfg Config) (*Router, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("router %q: nil capacity model", cfg.Name)
	}
	if cfg.QueueDelayLimit == 0 {
		cfg.QueueDelayLimit = DefaultQueueDelayLimit
	}
	r := &Router{cfg: cfg, engine: e, forwarding: true}
	for i := range r.ports {
		p := netem.NewPort(fmt.Sprintf("%s.eth%d", cfg.Name, i), r)
		p.HardwareTimestamps = cfg.HardwareTimestamps
		r.ports[i] = p
	}
	return r, nil
}

// Port returns the i-th NIC port (0 or 1).
func (r *Router) Port(i int) *netem.Port { return r.ports[i] }

// Stats returns a snapshot of the forwarding counters.
func (r *Router) Stats() Stats { return r.stats }

// ResetStats zeroes counters and the CPU backlog — the equivalent of a fresh
// measurement run after a reboot.
func (r *Router) ResetStats() {
	r.stats = Stats{}
	r.busyUntil = 0
}

// Utilization reports the CPU backlog as a fraction of the queue limit.
func (r *Router) Utilization(now sim.Time) float64 {
	if r.busyUntil <= now {
		return 0
	}
	return float64(r.busyUntil.Sub(now)) / float64(r.cfg.QueueDelayLimit)
}

// SetForwarding toggles the IPv4 forwarding path — the emulated
// net.ipv4.ip_forward sysctl the DuT setup script flips.
func (r *Router) SetForwarding(on bool) { r.forwarding = on }

// HandleBatch implements netem.Device: forward from one port to the other.
func (r *Router) HandleBatch(now sim.Time, in Batch, rx *netem.Port) {
	if !r.forwarding {
		r.stats.NotRouting += in.Count
		return
	}
	out := r.egress(rx)
	if out == nil {
		r.stats.BadPacket += in.Count
		return
	}
	fwd := in
	if !r.rewrite(&fwd) {
		return
	}
	// CPU admission: the model's capacity for this interval sets the
	// per-packet service time; packets beyond the queue limit are lost,
	// as a saturated softirq path drops at the NIC ring.
	capacity := r.cfg.Model.CapacityPPS(now, in.FrameSize)
	r.lastCapacity = capacity
	if capacity <= 0 {
		r.stats.Dropped += fwd.Count
		return
	}
	perPacket := sim.Duration(float64(sim.Second) / capacity)
	if perPacket <= 0 {
		perPacket = 1
	}
	busy := r.busyUntil
	if busy < now {
		busy = now
	}
	backlog := busy.Sub(now)
	room := r.cfg.QueueDelayLimit - backlog
	accepted := fwd.Count
	if room <= 0 {
		accepted = 0
	} else if need := sim.Duration(fwd.Count) * perPacket; need > room {
		accepted = int64(room / perPacket)
	}
	r.stats.Dropped += fwd.Count - accepted
	if accepted == 0 {
		return
	}
	svcTime := sim.Duration(accepted) * perPacket
	r.busyUntil = busy.Add(svcTime)
	done := fwd
	done.Count = accepted
	done.Delay += backlog + svcTime/2 + r.cfg.Model.SampleLatency(r.Utilization(now))
	r.stats.Forwarded += accepted
	if r.engine.Batching() {
		// Cut-through: hand the batch straight to the egress port with
		// its logical completion time. busyUntil is monotone, so the
		// downstream link still sees sends in timestamp order.
		out.Send(r.busyUntil, done)
		return
	}
	d := sendPool.Get().(*egressSend)
	d.out, d.b = out, done
	r.engine.AtArg(r.busyUntil, runEgressSend, d)
}

// egressSend is the pooled argument of the router's completion event in the
// scalar path.
type egressSend struct {
	out *netem.Port
	b   Batch
}

var sendPool = sync.Pool{New: func() any { return new(egressSend) }}

func runEgressSend(now sim.Time, arg any) {
	d := arg.(*egressSend)
	out, b := d.out, d.b
	d.out, d.b = nil, Batch{}
	sendPool.Put(d)
	out.Send(now, b)
}

// Batch aliases netem.Batch for readability in this package's signatures.
type Batch = netem.Batch

// egress picks the opposite port.
func (r *Router) egress(rx *netem.Port) *netem.Port {
	switch rx {
	case r.ports[0]:
		return r.ports[1]
	case r.ports[1]:
		return r.ports[0]
	default:
		return nil
	}
}

// rewrite performs the IPv4 forwarding transformation in place on the
// batch's representative frame: validate, decrement TTL, and update the
// checksum incrementally (RFC 1624). It returns false when the whole batch
// is discarded.
func (r *Router) rewrite(b *Batch) bool {
	// Memo hit: these exact bytes (same backing array, shared read-only)
	// already passed validation when the memo was filled — skip the decode
	// entirely. This keeps the steady-state forwarding path allocation-free.
	if r.rewriteIn != nil && &r.rewriteIn[0] == &b.Data[0] && len(r.rewriteIn) == len(b.Data) {
		b.Data = r.rewriteOut
		return true
	}
	var p packet.Packet
	if err := p.DecodeInto(b.Data); err != nil || !p.Has(packet.LayerTypeIPv4) {
		r.stats.BadPacket += b.Count
		return false
	}
	if p.IP.TTL <= 1 {
		r.stats.TTLExpired += b.Count
		return false
	}
	rewritten := make([]byte, len(b.Data))
	copy(rewritten, b.Data)
	hdr := rewritten[packet.EthernetHeaderLen:]
	hdr[8]-- // TTL
	// Incremental checksum (RFC 1141): decrementing the TTL byte (high
	// byte of word 4) increases the stored checksum by 0x0100, with
	// end-around carry.
	cs := binary.BigEndian.Uint16(hdr[10:12])
	sum := uint32(cs) + 0x0100
	sum = (sum & 0xffff) + (sum >> 16)
	binary.BigEndian.PutUint16(hdr[10:12], uint16(sum))
	r.rewriteIn, r.rewriteOut = b.Data, rewritten
	b.Data = rewritten
	return true
}
