package router

import (
	"testing"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/perfmodel"
	"pos/internal/sim"
)

// rig wires loadgen-port -> router -> sink and returns the pieces.
type rig struct {
	engine *sim.Engine
	tx     *netem.Port
	router *Router
	sink   *netem.Sink
}

func newRig(t testing.TB, model perfmodel.Model) *rig {
	t.Helper()
	e := sim.NewEngine()
	r, err := New(e, Config{Name: "dut", Model: model, HardwareTimestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := netem.NewSink("lg.rx")
	sink.Port.HardwareTimestamps = true
	tx := netem.NewPort("lg.tx", nil)
	tx.HardwareTimestamps = true
	netem.Wire(e, tx, r.Port(0), netem.LinkConfig{})
	netem.Wire(e, r.Port(1), sink.Port, netem.LinkConfig{})
	return &rig{engine: e, tx: tx, router: r, sink: sink}
}

func testFrame(t testing.TB, size int, ttl uint8) []byte {
	t.Helper()
	data, err := packet.UDPTemplate{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packet.IPv4Addr{10, 0, 0, 2}, DstIP: packet.IPv4Addr{10, 0, 1, 2},
		SrcPort: 1000, DstPort: 2000, FrameSize: size, TTL: ttl,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// offer injects rate pps of the given frame for dur of virtual time in 1 ms
// ticks.
func (r *rig) offer(data []byte, size int, pps float64, dur sim.Duration) {
	tick := sim.Millisecond
	perTick := int64(pps * tick.Seconds())
	if perTick < 1 {
		perTick = 1
	}
	for at := sim.Duration(0); at < dur; at += tick {
		batch := netem.Batch{Data: data, FrameSize: size, Count: perTick, Timestamped: true}
		r.engine.At(sim.Time(at), func(now sim.Time) {
			b := batch
			b.SentAt = now
			r.tx.Send(now, b)
		})
	}
}

func TestForwardsBelowCapacity(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 64, 64)
	r.offer(data, 64, 100_000, sim.Second)
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if r.router.Stats().Dropped != 0 {
		t.Errorf("dropped %d below capacity", r.router.Stats().Dropped)
	}
	if got := r.sink.Packets; got != 100_000 {
		t.Errorf("delivered %d, want 100000", got)
	}
}

func TestDropsAboveBareMetalCapacity(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 64, 64)
	// Count only deliveries inside the offered-traffic window; the router
	// legitimately drains its queue for a few more milliseconds after the
	// generator stops, which a real measurement window also excludes.
	var inWindow int64
	r.sink.OnBatch = func(now sim.Time, b netem.Batch) {
		if now <= sim.Time(sim.Second) {
			inWindow += b.Count
		}
	}
	r.offer(data, 64, 2_200_000, sim.Second)
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	got := float64(inWindow)
	if got < 1.70e6 || got > 1.80e6 {
		t.Errorf("forwarded %.0f pps, want ~1.75M plateau", got)
	}
	if r.router.Stats().Dropped == 0 {
		t.Error("no drops above capacity")
	}
}

func TestNICLineRateCaps1500B(t *testing.T) {
	// 1.0 Mpps of 1500 B frames exceeds 10 GbE line rate (~0.82 Mpps):
	// the ingress link, not the router CPU, is the bottleneck.
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 1500, 64)
	r.offer(data, 1500, 1_000_000, sim.Second)
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	line := packet.LineRatePPS(10e9, 1500)
	got := float64(r.sink.Packets)
	if got < line*0.95 || got > line*1.02 {
		t.Errorf("forwarded %.0f pps, want ~%.0f (line rate)", got, line)
	}
	if r.router.Stats().Dropped != 0 {
		t.Errorf("router dropped %d; drops should happen at the NIC", r.router.Stats().Dropped)
	}
}

func TestTTLDecrementAndChecksum(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 64, 17)
	var out netem.Batch
	r.sink.OnBatch = func(_ sim.Time, b netem.Batch) { out = b }
	r.tx.Send(0, netem.Batch{Data: data, FrameSize: 64, Count: 1})
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Data == nil {
		t.Fatal("nothing forwarded")
	}
	p, err := packet.Decode(out.Data)
	if err != nil {
		t.Fatalf("forwarded frame no longer decodes (checksum?): %v", err)
	}
	if p.IP.TTL != 16 {
		t.Errorf("TTL = %d, want 16", p.IP.TTL)
	}
	// Original frame must be untouched.
	orig, err := packet.Decode(data)
	if err != nil || orig.IP.TTL != 17 {
		t.Error("router mutated the caller's frame")
	}
}

func TestTTLChecksumAcrossAllTTLValues(t *testing.T) {
	// Exercise the incremental-checksum carry edge cases.
	for ttl := uint8(2); ttl != 0; ttl++ {
		r := newRig(t, perfmodel.NewBareMetal())
		data := testFrame(t, 64, ttl)
		var out netem.Batch
		r.sink.OnBatch = func(_ sim.Time, b netem.Batch) { out = b }
		r.tx.Send(0, netem.Batch{Data: data, FrameSize: 64, Count: 1})
		if err := r.engine.Run(); err != nil {
			t.Fatal(err)
		}
		p, err := packet.Decode(out.Data)
		if err != nil {
			t.Fatalf("ttl=%d: forwarded frame invalid: %v", ttl, err)
		}
		if p.IP.TTL != ttl-1 {
			t.Fatalf("ttl=%d: forwarded TTL=%d", ttl, p.IP.TTL)
		}
	}
}

func TestTTLExpiredDiscarded(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 64, 1)
	r.tx.Send(0, netem.Batch{Data: data, FrameSize: 64, Count: 7})
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if r.sink.Packets != 0 {
		t.Error("TTL=1 packet was forwarded")
	}
	if got := r.router.Stats().TTLExpired; got != 7 {
		t.Errorf("TTLExpired = %d, want 7", got)
	}
}

func TestBadPacketsCounted(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	r.tx.Send(0, netem.Batch{Data: []byte{1, 2, 3}, FrameSize: 3, Count: 4})
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.router.Stats().BadPacket; got != 4 {
		t.Errorf("BadPacket = %d, want 4", got)
	}
}

func TestVirtualRouterDropFreeAt40k(t *testing.T) {
	for _, size := range []int{64, 1500} {
		r := newRig(t, perfmodel.NewVirtual(3))
		data := testFrame(t, size, 64)
		r.offer(data, size, 40_000, 2*sim.Second)
		if err := r.engine.Run(); err != nil {
			t.Fatal(err)
		}
		if d := r.router.Stats().Dropped; d != 0 {
			t.Errorf("size %d: dropped %d at 40 kpps, want drop-free (Fig. 3b)", size, d)
		}
	}
}

func TestVirtualRouterUnstableWhenOverloaded(t *testing.T) {
	// At 200 kpps the VM saturates; per-interval throughput must vary
	// (the instability visible in Fig. 3b) and sizes must diverge.
	perSize := map[int]float64{}
	for _, size := range []int{64, 1500} {
		r := newRig(t, perfmodel.NewVirtual(3))
		data := testFrame(t, size, 64)
		r.offer(data, size, 200_000, 2*sim.Second)
		if err := r.engine.Run(); err != nil {
			t.Fatal(err)
		}
		perSize[size] = float64(r.sink.Packets) / 2
		if r.router.Stats().Dropped == 0 {
			t.Errorf("size %d: no drops at 200 kpps", size)
		}
	}
	if perSize[64] <= perSize[1500] {
		t.Errorf("overloaded VM: 64B=%.0f <= 1500B=%.0f pps, want divergence", perSize[64], perSize[1500])
	}
	if perSize[64] > 80_000 {
		t.Errorf("VM forwarded %.0f pps, implausibly high", perSize[64])
	}
}

func TestRouterRequiresModel(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{Name: "x"}); err == nil {
		t.Error("New accepted nil model")
	}
}

func TestResetStats(t *testing.T) {
	r := newRig(t, perfmodel.NewBareMetal())
	data := testFrame(t, 64, 64)
	r.tx.Send(0, netem.Batch{Data: data, FrameSize: 64, Count: 10})
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
	r.router.ResetStats()
	if r.router.Stats() != (Stats{}) {
		t.Error("stats not zeroed")
	}
	if r.router.Utilization(r.engine.Now()) != 0 {
		t.Error("utilization not zeroed")
	}
}

func TestLatencyHigherOnVM(t *testing.T) {
	measure := func(model perfmodel.Model) sim.Duration {
		r := newRig(t, model)
		data := testFrame(t, 64, 64)
		var delay sim.Duration
		r.sink.OnBatch = func(_ sim.Time, b netem.Batch) { delay = b.Delay }
		r.tx.Send(0, netem.Batch{Data: data, FrameSize: 64, Count: 1})
		if err := r.engine.Run(); err != nil {
			t.Fatal(err)
		}
		return delay
	}
	bm := measure(perfmodel.NewBareMetal())
	vm := measure(perfmodel.NewVirtual(5))
	if vm <= bm {
		t.Errorf("VM latency %v <= bare metal %v", vm, bm)
	}
}

func BenchmarkRouterHandleBatch(b *testing.B) {
	r := newRig(b, perfmodel.NewBareMetal())
	data := testFrame(b, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.tx.Send(r.engine.Now(), netem.Batch{Data: data, FrameSize: 64, Count: 32})
		r.engine.Run()
		if i%1000 == 0 {
			r.router.ResetStats()
			r.sink.Port.ResetStats()
		}
	}
}
