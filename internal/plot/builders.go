package plot

import (
	"fmt"
	"sort"

	"pos/internal/eval"
)

// Throughput builds the Fig. 3-style line plot: received Mpps over offered
// Mpps, one line per packet size.
func Throughput(title string, series []eval.Series) *Figure {
	labeled := make([]eval.Series, len(series))
	for i, s := range series {
		labeled[i] = eval.Series{Name: s.Name + " B", Points: s.Points}
	}
	return &Figure{
		Title:  title,
		XLabel: "offered rate [Mpps]",
		YLabel: "received rate [Mpps]",
		Kind:   Line,
		Series: labeled,
	}
}

// LatencyCDF builds a latency CDF from nanosecond samples, plotted in µs.
func LatencyCDF(title string, samplesNs map[string][]float64) *Figure {
	f := &Figure{
		Title:  title,
		XLabel: "latency [µs]",
		YLabel: "CDF",
		Kind:   CDFKind,
	}
	for name, xs := range samplesNs {
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x / 1000
		}
		f.Series = append(f.Series, eval.Series{Name: name, Points: eval.CDF(scaled)})
	}
	sortSeries(f.Series)
	return f
}

// LatencyHistogram builds a latency histogram (µs) with the given bins.
func LatencyHistogram(title string, samplesNs []float64, bins int) *Figure {
	scaled := make([]float64, len(samplesNs))
	for i, x := range samplesNs {
		scaled[i] = x / 1000
	}
	return &Figure{
		Title:  title,
		XLabel: "latency [µs]",
		YLabel: "samples",
		Kind:   HistoKind,
		Series: []eval.Series{{Name: "latency", Points: eval.Histogram(scaled, bins)}},
	}
}

// LatencyHDR builds an HDR percentile plot (µs) — x axis in "number of
// nines".
func LatencyHDR(title string, samplesNs map[string][]float64) *Figure {
	f := &Figure{
		Title:  title,
		XLabel: "percentile [nines]",
		YLabel: "latency [µs]",
		Kind:   HDRKind,
	}
	for name, xs := range samplesNs {
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x / 1000
		}
		f.Series = append(f.Series, eval.Series{Name: name, Points: eval.HDR(scaled, eval.HDRQuantiles)})
	}
	sortSeries(f.Series)
	return f
}

// LatencyViolin builds a violin figure comparing latency distributions (µs).
func LatencyViolin(title string, samplesNs map[string][]float64) *Figure {
	f := &Figure{
		Title:  title,
		XLabel: "",
		YLabel: "latency [µs]",
		Kind:   Violin,
	}
	var names []string
	for name := range samplesNs {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		xs := samplesNs[name]
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x / 1000
		}
		f.Violins = append(f.Violins, NamedViolin{Name: name, Violin: eval.ViolinStats(scaled, 24)})
	}
	return f
}

func sortSeries(ss []eval.Series) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Name < ss[j].Name })
}

func sortStrings(ss []string) { sort.Strings(ss) }

// Stability plots per-second received-rate samples over time — the
// visualization of the run-to-run instability Fig. 3b shows for the
// overloaded vpos router. Keys label the runs (e.g. loop combinations);
// values are per-second Mpps samples.
func Stability(title string, perSecond map[string][]float64) *Figure {
	f := &Figure{
		Title:  title,
		XLabel: "time [s]",
		YLabel: "received rate [Mpps]",
		Kind:   Line,
	}
	var names []string
	for name := range perSecond {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		pts := make([]eval.Point, len(perSecond[name]))
		for i, v := range perSecond[name] {
			pts[i] = eval.Point{X: float64(i), Y: v}
		}
		f.Series = append(f.Series, eval.Series{Name: name, Points: pts})
	}
	return f
}

// Export renders a figure into every supported format, keyed by file
// extension ("svg", "tex", "csv") — the multi-format export the paper's
// plotting scripts perform.
func Export(f *Figure) map[string][]byte {
	return map[string][]byte{
		"svg": []byte(f.SVG()),
		"tex": []byte(f.TeX()),
		"csv": []byte(f.CSV()),
	}
}

// ExportNamed renders a figure to "<base>.<ext>" filename/content pairs.
func ExportNamed(base string, f *Figure) map[string][]byte {
	out := make(map[string][]byte, 3)
	for ext, data := range Export(f) {
		out[fmt.Sprintf("%s.%s", base, ext)] = data
	}
	return out
}
