package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"pos/internal/eval"
)

func sampleSeries() []eval.Series {
	return []eval.Series{
		{Name: "64", Points: []eval.Point{{X: 0.01, Y: 0.01}, {X: 0.02, Y: 0.02}, {X: 0.3, Y: 0.04}}},
		{Name: "1500", Points: []eval.Point{{X: 0.01, Y: 0.01}, {X: 0.02, Y: 0.02}, {X: 0.3, Y: 0.035}}},
	}
}

func TestThroughputFigureSVGWellFormed(t *testing.T) {
	f := Throughput("Fig 3a", sampleSeries())
	svg := f.SVG()
	// Structural checks.
	for _, want := range []string{"<svg", "</svg>", "Fig 3a", "offered rate [Mpps]", "received rate [Mpps]", "64 B", "1500 B", "<path", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Must be valid XML.
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("SVG is not well-formed XML: %v", err)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	f := &Figure{Title: `a<b & "c"`, Kind: Line, Series: sampleSeries()}
	svg := f.SVG()
	if strings.Contains(svg, `a<b`) {
		t.Error("unescaped < in SVG")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("escaped SVG invalid: %v", err)
	}
}

func TestEmptyFigureStillRenders(t *testing.T) {
	f := &Figure{Title: "empty", Kind: Line}
	svg := f.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty figure did not render")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("empty SVG invalid: %v", err)
	}
}

func TestCSVFormat(t *testing.T) {
	f := Throughput("t", sampleSeries())
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 7 { // header + 6 points
		t.Errorf("lines = %d:\n%s", len(lines), csv)
	}
	if !strings.Contains(csv, "64 B,0.01,0.01") {
		t.Errorf("csv = %s", csv)
	}
}

func TestTeXFormat(t *testing.T) {
	f := Throughput("fig_3a", sampleSeries())
	tex := f.TeX()
	for _, want := range []string{"\\begin{tikzpicture}", "\\begin{axis}", "\\addplot", "\\addlegendentry{64 B}", "(0.01, 0.01)", "fig\\_3a", "\\end{axis}"} {
		if !strings.Contains(tex, want) {
			t.Errorf("TeX missing %q:\n%s", want, tex)
		}
	}
}

func TestCDFFigure(t *testing.T) {
	f := LatencyCDF("latency", map[string][]float64{
		"pos": {10000, 20000, 30000},
	})
	if f.Kind != CDFKind {
		t.Errorf("kind = %s", f.Kind)
	}
	// ns -> µs conversion.
	if got := f.Series[0].Points[0].X; got != 10 {
		t.Errorf("first point X = %v, want 10µs", got)
	}
	tex := f.TeX()
	if !strings.Contains(tex, "const plot") {
		t.Error("CDF TeX missing step-plot style")
	}
}

func TestHistogramFigure(t *testing.T) {
	f := LatencyHistogram("hist", []float64{1000, 2000, 2000, 3000}, 3)
	svg := f.SVG()
	if !strings.Contains(svg, "<rect") {
		t.Error("histogram has no bars")
	}
	if !strings.Contains(f.TeX(), "ybar") {
		t.Error("histogram TeX missing ybar")
	}
}

func TestHDRFigure(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i) * 1000
	}
	f := LatencyHDR("hdr", map[string][]float64{"pos": samples})
	pts := f.Series[0].Points
	if len(pts) != len(eval.HDRQuantiles) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Error("HDR curve decreasing")
		}
	}
}

func TestViolinFigure(t *testing.T) {
	f := LatencyViolin("violin", map[string][]float64{
		"pos":  {1000, 2000, 2000, 3000, 4000},
		"vpos": {50000, 60000, 60000, 70000},
	})
	if len(f.Violins) != 2 {
		t.Fatalf("violins = %d", len(f.Violins))
	}
	// Sorted by name.
	if f.Violins[0].Name != "pos" || f.Violins[1].Name != "vpos" {
		t.Errorf("order = %s/%s", f.Violins[0].Name, f.Violins[1].Name)
	}
	svg := f.SVG()
	if !strings.Contains(svg, "fill-opacity") {
		t.Error("violin bodies missing")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("violin SVG invalid: %v", err)
	}
	csv := f.CSV()
	for _, want := range []string{"pos,median,", "vpos,q1,", "vpos,max,"} {
		if !strings.Contains(csv, want) {
			t.Errorf("violin CSV missing %q", want)
		}
	}
}

func TestExportNamed(t *testing.T) {
	f := Throughput("t", sampleSeries())
	files := ExportNamed("throughput", f)
	for _, name := range []string{"throughput.svg", "throughput.tex", "throughput.csv"} {
		if len(files[name]) == 0 {
			t.Errorf("missing %s", name)
		}
	}
	if len(files) != 3 {
		t.Errorf("files = %d", len(files))
	}
}

func TestTicksAreRounded(t *testing.T) {
	got := ticks(0, 1, 6)
	if len(got) < 4 {
		t.Fatalf("ticks = %v", got)
	}
	for _, tick := range got {
		if tick < 0 || tick > 1.001 {
			t.Errorf("tick %v out of range", tick)
		}
	}
	// Degenerate range.
	if got := ticks(5, 5, 6); len(got) != 1 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.5", 1: "1", 2.5: "2.5", 1e7: "1e+07"}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSortedNames(t *testing.T) {
	f := Throughput("t", sampleSeries())
	names := f.Sorted()
	if names[0] != "1500 B" || names[1] != "64 B" {
		t.Errorf("sorted = %v", names)
	}
}

func TestErrorBarsRendered(t *testing.T) {
	f := &Figure{
		Title: "agg", Kind: Line,
		Series: []eval.Series{{Name: "64", Points: []eval.Point{
			{X: 1, Y: 10, YErr: 2},
			{X: 2, Y: 20},
		}}},
	}
	svg := f.SVG()
	// Error bar = 3 extra line elements for the errored point.
	if strings.Count(svg, "<line") < 3 {
		t.Errorf("no error bars in SVG:\n%s", svg)
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "series,x,y,yerr\n") || !strings.Contains(csv, "64,1,10,2") {
		t.Errorf("csv = %q", csv)
	}
	tex := f.TeX()
	if !strings.Contains(tex, "error bars") || !strings.Contains(tex, "+- (0, 2)") {
		t.Errorf("tex = %q", tex)
	}
	// Bounds include Y+YErr: the top error bar is inside the plot area.
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("SVG invalid: %v", err)
	}
}

func TestNoErrColumnWithoutErrors(t *testing.T) {
	f := Throughput("t", sampleSeries())
	if strings.Contains(f.CSV(), "yerr") {
		t.Error("yerr column present without errors")
	}
	if strings.Contains(f.TeX(), "error bars") {
		t.Error("TeX error bars without errors")
	}
}

func TestStabilityFigure(t *testing.T) {
	f := Stability("vpos instability", map[string][]float64{
		"stable":   {0.02, 0.02, 0.02},
		"unstable": {0.06, 0.05, 0.066},
	})
	if len(f.Series) != 2 || f.Series[0].Name != "stable" {
		t.Fatalf("series = %+v", f.Series)
	}
	if f.Series[1].Points[2].X != 2 || f.Series[1].Points[2].Y != 0.066 {
		t.Errorf("point = %+v", f.Series[1].Points[2])
	}
	svg := f.SVG()
	if !strings.Contains(svg, "time [s]") {
		t.Error("x label missing")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Errorf("SVG invalid: %v", err)
	}
}
