// Package plot renders the out-of-the-box figures the pos evaluation phase
// produces: line plots (throughput over offered rate, Fig. 3), histograms,
// CDFs, HDR latency curves, and violin plots. Each figure renders to SVG,
// TeX (pgfplots), and CSV — the "multiple formats" the paper names —
// without external dependencies.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pos/internal/eval"
)

// Kind selects the plot geometry.
type Kind string

// Supported plot kinds (Sec. 4.4 lists exactly these representations).
const (
	Line      Kind = "line"
	HistoKind Kind = "histogram"
	CDFKind   Kind = "cdf"
	HDRKind   Kind = "hdr"
	Violin    Kind = "violin"
)

// Figure is a renderable chart.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Kind   Kind
	Series []eval.Series
	// Violins is used only by Kind == Violin.
	Violins []NamedViolin
	// Width and Height in SVG pixels; zero values default to 640x400.
	Width, Height int
}

// NamedViolin pairs a distribution summary with its category label.
type NamedViolin struct {
	Name   string
	Violin eval.Violin
}

const (
	defaultW = 640
	defaultH = 400
	padL     = 70
	padR     = 20
	padT     = 40
	padB     = 55
)

// Palette is the series color cycle (Okabe-Ito, color-blind safe).
var Palette = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442"}

func (f *Figure) dims() (w, h int) {
	w, h = f.Width, f.Height
	if w <= 0 {
		w = defaultW
	}
	if h <= 0 {
		h = defaultH
	}
	return w, h
}

// bounds computes the data range across all series.
func (f *Figure) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	add := func(x, y float64) {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
		ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			add(p.X, p.Y-p.YErr)
			add(p.X, p.Y+p.YErr)
		}
	}
	for i, v := range f.Violins {
		add(float64(i), v.Violin.Summary.Min)
		add(float64(i), v.Violin.Summary.Max)
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	// Anchor throughput-style plots at zero for honest proportions.
	if ymin > 0 {
		ymin = 0
	}
	return
}

// ticks produces ~n nicely rounded tick positions across [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVG renders the figure as a standalone SVG document.
func (f *Figure) SVG() string {
	w, h := f.dims()
	xmin, xmax, ymin, ymax := f.bounds()
	plotW, plotH := float64(w-padL-padR), float64(h-padT-padB)
	xpos := func(x float64) float64 { return padL + (x-xmin)/(xmax-xmin)*plotW }
	ypos := func(y float64) float64 { return float64(h-padB) - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, esc(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, h-padB, w-padR, h-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, padT, padL, h-padB)
	for _, t := range ticks(xmin, xmax, 6) {
		x := xpos(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n", x, h-padB, x, h-padB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n", x, h-padB+18, fmtTick(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := ypos(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n", padL-5, y, padL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n", padL-8, y+4, fmtTick(t))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n", padL, y, w-padR, y)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n", w/2, h-12, esc(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n", h/2, h/2, esc(f.YLabel))

	switch f.Kind {
	case Violin:
		f.renderViolins(&b, xpos, ypos)
	case HistoKind:
		f.renderBars(&b, xpos, ypos, h)
	default:
		f.renderLines(&b, xpos, ypos)
	}

	// Legend.
	ly := padT + 4
	for i, s := range f.Series {
		color := Palette[i%len(Palette)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", w-padR-120, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n", w-padR-104, ly+10, esc(s.Name))
		ly += 18
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func (f *Figure) renderLines(b *strings.Builder, xpos, ypos func(float64) float64) {
	for i, s := range f.Series {
		color := Palette[i%len(Palette)]
		var path strings.Builder
		for j, p := range s.Points {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xpos(p.X), ypos(p.Y))
		}
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", strings.TrimSpace(path.String()), color)
		for _, p := range s.Points {
			// Error bars from aggregated repetitions.
			if p.YErr > 0 {
				x, lo, hi := xpos(p.X), ypos(p.Y-p.YErr), ypos(p.Y+p.YErr)
				fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"/>`+"\n", x, lo, x, hi, color)
				fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"/>`+"\n", x-3, lo, x+3, lo, color)
				fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"/>`+"\n", x-3, hi, x+3, hi, color)
			}
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n", xpos(p.X), ypos(p.Y), color)
		}
	}
}

func (f *Figure) renderBars(b *strings.Builder, xpos, ypos func(float64) float64, h int) {
	for i, s := range f.Series {
		color := Palette[i%len(Palette)]
		width := 8.0
		if len(s.Points) > 1 {
			width = math.Max(2, (xpos(s.Points[1].X)-xpos(s.Points[0].X))*0.8)
		}
		for _, p := range s.Points {
			y := ypos(p.Y)
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.75"/>`+"\n",
				xpos(p.X)-width/2, y, width, float64(h-padB)-y, color)
		}
	}
}

func (f *Figure) renderViolins(b *strings.Builder, xpos, ypos func(float64) float64) {
	halfWidth := 0.35
	for i, nv := range f.Violins {
		color := Palette[i%len(Palette)]
		cx := float64(i)
		if len(nv.Violin.Profile) > 1 {
			var path strings.Builder
			// Right side down, left side up.
			for j, p := range nv.Violin.Profile {
				cmd := "L"
				if j == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xpos(cx+p.Y*halfWidth), ypos(p.X))
			}
			for j := len(nv.Violin.Profile) - 1; j >= 0; j-- {
				p := nv.Violin.Profile[j]
				fmt.Fprintf(&path, "L%.1f %.1f ", xpos(cx-p.Y*halfWidth), ypos(p.X))
			}
			fmt.Fprintf(b, `<path d="%sZ" fill="%s" fill-opacity="0.5" stroke="%s"/>`+"\n", strings.TrimSpace(path.String()), color, color)
		}
		// Quartile box and median tick.
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="3"/>`+"\n",
			xpos(cx), ypos(nv.Violin.Q1), xpos(cx), ypos(nv.Violin.Q3))
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="white" stroke="black"/>`+"\n",
			xpos(cx), ypos(nv.Violin.Summary.Median))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xpos(cx), ypos(0)+32, esc(nv.Name))
	}
}

// CSV renders the figure's data as comma-separated values: one row per
// point, with a series column. A yerr column appears when any point carries
// aggregation error.
func (f *Figure) CSV() string {
	hasErr := false
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.YErr > 0 {
				hasErr = true
			}
		}
	}
	var b strings.Builder
	if hasErr {
		b.WriteString("series,x,y,yerr\n")
	} else {
		b.WriteString("series,x,y\n")
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if hasErr {
				fmt.Fprintf(&b, "%s,%g,%g,%g\n", s.Name, p.X, p.Y, p.YErr)
			} else {
				fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.Y)
			}
		}
	}
	for _, nv := range f.Violins {
		v := nv.Violin
		fmt.Fprintf(&b, "%s,min,%g\n", nv.Name, v.Summary.Min)
		fmt.Fprintf(&b, "%s,q1,%g\n", nv.Name, v.Q1)
		fmt.Fprintf(&b, "%s,median,%g\n", nv.Name, v.Summary.Median)
		fmt.Fprintf(&b, "%s,q3,%g\n", nv.Name, v.Q3)
		fmt.Fprintf(&b, "%s,max,%g\n", nv.Name, v.Summary.Max)
	}
	return b.String()
}

// TeX renders the figure as a pgfplots axis environment.
func (f *Figure) TeX() string {
	var b strings.Builder
	b.WriteString("\\begin{tikzpicture}\n\\begin{axis}[\n")
	fmt.Fprintf(&b, "  title={%s},\n  xlabel={%s},\n  ylabel={%s},\n", texEsc(f.Title), texEsc(f.XLabel), texEsc(f.YLabel))
	b.WriteString("  legend pos=north west,\n]\n")
	for _, s := range f.Series {
		hasErr := false
		for _, p := range s.Points {
			if p.YErr > 0 {
				hasErr = true
			}
		}
		switch {
		case f.Kind == HistoKind:
			b.WriteString("\\addplot+[ybar] coordinates {\n")
		case f.Kind == CDFKind:
			b.WriteString("\\addplot+[const plot] coordinates {\n")
		case hasErr:
			b.WriteString("\\addplot+[mark=*, error bars/.cd, y dir=both, y explicit] coordinates {\n")
		default:
			b.WriteString("\\addplot+[mark=*] coordinates {\n")
		}
		for _, p := range s.Points {
			if hasErr {
				fmt.Fprintf(&b, "  (%g, %g) +- (0, %g)\n", p.X, p.Y, p.YErr)
			} else {
				fmt.Fprintf(&b, "  (%g, %g)\n", p.X, p.Y)
			}
		}
		b.WriteString("};\n")
		fmt.Fprintf(&b, "\\addlegendentry{%s}\n", texEsc(s.Name))
	}
	b.WriteString("\\end{axis}\n\\end{tikzpicture}\n")
	return b.String()
}

func texEsc(s string) string {
	r := strings.NewReplacer("_", "\\_", "%", "\\%", "&", "\\&", "#", "\\#")
	return r.Replace(s)
}

// Sorted returns series names in render order, for tests and manifests.
func (f *Figure) Sorted() []string {
	names := make([]string, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
