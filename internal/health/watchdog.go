package health

import (
	"sync"
	"time"

	"pos/internal/eventlog"
)

// ProbeState is one probe's current standing as the watchdog sees it —
// what GET /api/v1/health serves and what trip callbacks receive.
type ProbeState struct {
	Name   string    `json:"name"`
	OK     bool      `json:"ok"`
	Detail string    `json:"detail,omitempty"`
	Since  time.Time `json:"since"` // when the probe entered its current state
	Trips  uint64    `json:"trips"`
	// LastTrip is zero until the probe has tripped once.
	LastTrip time.Time `json:"last_trip"`
}

type probeEntry struct {
	probe  Probe
	onTrip func(ProbeState)
	state  ProbeState
}

// Watchdog periodically runs its registered probes and turns unhealthy
// transitions into typed eventlog events, pos_health_* metrics, and trip
// callbacks. Trips are edge-triggered: a probe that stays bad fires once,
// then again only after it has recovered — a stuck campaign produces one
// flight record, not one per tick.
type Watchdog struct {
	interval time.Duration

	mu      sync.Mutex
	now     func() time.Time
	probes  []*probeEntry
	events  *eventlog.Pipeline
	onTrip  func(ProbeState)
	stop    chan struct{}
	done    chan struct{}
	tickMu  sync.Mutex // serializes Tick passes (probes keep unlocked state)
	lastRun time.Time
}

// NewWatchdog returns a stopped watchdog checking every interval once
// started (minimum 10ms; zero defaults to 5s).
func NewWatchdog(interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Watchdog{interval: interval, now: time.Now}
}

// SetClock pins the watchdog's time source (tests drive Tick manually
// against a fake clock).
func (w *Watchdog) SetClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// SetEvents attaches the pipeline that receives typed health events on
// probe trips and recoveries.
func (w *Watchdog) SetEvents(p *eventlog.Pipeline) {
	w.mu.Lock()
	w.events = p
	w.mu.Unlock()
}

// SetOnTrip installs a global trip callback, invoked after any probe's own
// callback — the serve path uses it to dump a flight record to disk.
func (w *Watchdog) SetOnTrip(fn func(ProbeState)) {
	w.mu.Lock()
	w.onTrip = fn
	w.mu.Unlock()
}

// Register adds a probe with an optional per-probe trip callback and
// returns its removal function. Probes can come and go while the watchdog
// runs — a campaign registers its progress probe for exactly its lifetime.
func (w *Watchdog) Register(p Probe, onTrip func(ProbeState)) (remove func()) {
	e := &probeEntry{probe: p, onTrip: onTrip}
	w.mu.Lock()
	e.state = ProbeState{Name: p.Name(), OK: true, Since: w.now()}
	w.probes = append(w.probes, e)
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			for i, cur := range w.probes {
				if cur == e {
					w.probes = append(w.probes[:i], w.probes[i+1:]...)
					break
				}
			}
			w.mu.Unlock()
		})
	}
}

// Tick runs one check pass over all probes. Start's loop calls it on the
// interval; tests call it directly against a pinned clock. Passes are
// serialized, and callbacks/event publishes run outside the state lock.
func (w *Watchdog) Tick() {
	w.tickMu.Lock()
	defer w.tickMu.Unlock()

	w.mu.Lock()
	now := w.now()
	entries := append([]*probeEntry(nil), w.probes...)
	w.mu.Unlock()

	type firing struct {
		st ProbeState
		fn func(ProbeState)
	}
	var trips, recoveries []firing
	bad := 0
	for _, e := range entries {
		ok, detail := e.probe.Check(now)
		w.mu.Lock()
		prevOK := e.state.OK
		e.state.Detail = detail
		if ok != prevOK {
			e.state.Since = now
		}
		e.state.OK = ok
		if !ok {
			bad++
		}
		if !ok && prevOK {
			e.state.Trips++
			e.state.LastTrip = now
			trips = append(trips, firing{e.state, e.onTrip})
		} else if ok && !prevOK {
			recoveries = append(recoveries, firing{e.state, nil})
		}
		w.mu.Unlock()
	}

	w.mu.Lock()
	events := w.events
	global := w.onTrip
	w.lastRun = now
	w.mu.Unlock()
	probesBad.Set(float64(bad))

	for _, f := range trips {
		tripCounter(f.st.Name).Inc()
		if events != nil {
			events.Publish(eventlog.Event{
				Typ: eventlog.TypeHealth, Level: "ERROR", Run: eventlog.NoRun,
				Message: "watchdog tripped: " + f.st.Name + ": " + f.st.Detail,
				Attrs:   map[string]string{"probe": f.st.Name, "state": "tripped"},
			})
		}
		if f.fn != nil {
			f.fn(f.st)
		}
		if global != nil {
			global(f.st)
		}
	}
	for _, f := range recoveries {
		if events != nil {
			events.Publish(eventlog.Event{
				Typ: eventlog.TypeHealth, Level: "INFO", Run: eventlog.NoRun,
				Message: "watchdog probe recovered: " + f.st.Name,
				Attrs:   map[string]string{"probe": f.st.Name, "state": "ok"},
			})
		}
	}
}

// Status reports every registered probe's current state, sorted by
// registration order.
func (w *Watchdog) Status() []ProbeState {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ProbeState, len(w.probes))
	for i, e := range w.probes {
		out[i] = e.state
	}
	return out
}

// Start begins periodic checking (idempotent while running).
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.stop, w.done = stop, done
	w.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Stop halts periodic checking and waits for the check goroutine to exit.
// The watchdog can be started again afterwards.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
