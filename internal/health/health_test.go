package health

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pos/internal/eventlog"
	"pos/internal/telemetry"
)

func TestStallProbeTripAndReset(t *testing.T) {
	var v atomic.Uint64
	active := true
	p := NewStallProbe("t", func() float64 { return float64(v.Load()) },
		func() bool { return active }, 100*time.Millisecond)
	now := time.Unix(1000, 0)

	if ok, _ := p.Check(now); !ok {
		t.Fatal("first check must prime, not trip")
	}
	// Value frozen within the deadline: still healthy.
	now = now.Add(50 * time.Millisecond)
	if ok, _ := p.Check(now); !ok {
		t.Fatal("tripped inside the deadline")
	}
	// Frozen past the deadline: trip.
	now = now.Add(100 * time.Millisecond)
	ok, detail := p.Check(now)
	if ok {
		t.Fatal("no trip after deadline elapsed with a frozen value")
	}
	if !strings.Contains(detail, "no progress") {
		t.Fatalf("detail = %q", detail)
	}
	// Progress resumes: healthy again, stall clock re-primed.
	v.Add(1)
	if ok, _ := p.Check(now.Add(time.Millisecond)); !ok {
		t.Fatal("advancing value must reset the probe")
	}
	// Going inactive resets the stall clock entirely.
	active = false
	now = now.Add(time.Hour)
	if ok, detail := p.Check(now); !ok || detail != "idle" {
		t.Fatalf("inactive probe: ok=%v detail=%q", ok, detail)
	}
	active = true
	if ok, _ := p.Check(now); !ok {
		t.Fatal("first active check after idle must re-prime")
	}
}

func TestGrowthProbeWindow(t *testing.T) {
	var v atomic.Uint64
	p := NewGrowthProbe("g", func() float64 { return float64(v.Load()) }, 5, time.Second)
	now := time.Unix(2000, 0)

	p.Check(now) // baseline
	v.Store(3)
	if ok, _ := p.Check(now.Add(100 * time.Millisecond)); !ok {
		t.Fatal("growth under the limit tripped")
	}
	v.Store(9) // +9 > 5 within the window
	ok, detail := p.Check(now.Add(200 * time.Millisecond))
	if ok {
		t.Fatal("no trip on growth past the limit")
	}
	if !strings.Contains(detail, "grew by 9") {
		t.Fatalf("detail = %q", detail)
	}
	// The trip reset the window: the same value is the new baseline.
	if ok, _ := p.Check(now.Add(300 * time.Millisecond)); !ok {
		t.Fatal("probe must recover after the trip reset its base")
	}
	// Slow growth across window rollovers never accumulates into a trip.
	for i := 0; i < 10; i++ {
		v.Add(2)
		now = now.Add(1100 * time.Millisecond)
		if ok, _ := p.Check(now); !ok {
			t.Fatal("window rollover leaked growth across windows")
		}
	}
}

func TestWatchdogEdgeTriggeredTrips(t *testing.T) {
	var v atomic.Uint64
	now := time.Unix(3000, 0)
	w := NewWatchdog(time.Hour) // never self-ticks; the test drives Tick
	w.SetClock(func() time.Time { return now })
	events := eventlog.NewPipeline()
	sub := events.Subscribe(64)
	defer sub.Close()
	w.SetEvents(events)

	var probeTrips, globalTrips atomic.Int32
	remove := w.Register(
		NewStallProbe("stall", func() float64 { return float64(v.Load()) }, nil, 100*time.Millisecond),
		func(ProbeState) { probeTrips.Add(1) })
	defer remove()
	w.SetOnTrip(func(ProbeState) { globalTrips.Add(1) })

	w.Tick() // prime
	now = now.Add(time.Minute)
	w.Tick() // frozen past deadline: trip
	now = now.Add(time.Minute)
	w.Tick() // still bad: edge-triggered, no second trip
	if got := probeTrips.Load(); got != 1 {
		t.Fatalf("probe trips = %d, want 1 (edge-triggered)", got)
	}
	if got := globalTrips.Load(); got != 1 {
		t.Fatalf("global trips = %d, want 1", got)
	}
	st := w.Status()
	if len(st) != 1 || st[0].OK || st[0].Trips != 1 || st[0].LastTrip.IsZero() {
		t.Fatalf("status = %+v", st)
	}

	// Progress resumes: recovery, then a second stall trips again.
	v.Add(1)
	w.Tick()
	if st := w.Status(); !st[0].OK {
		t.Fatalf("probe did not recover: %+v", st[0])
	}
	now = now.Add(time.Minute)
	w.Tick()
	if got := probeTrips.Load(); got != 2 {
		t.Fatalf("probe trips after second stall = %d, want 2", got)
	}

	// The pipeline saw a trip ERROR, a recovery INFO, and a second trip.
	var health []eventlog.Event
	for len(health) < 3 {
		ev, ok := sub.Next(t.Context())
		if !ok {
			t.Fatal("subscription closed early")
		}
		if ev.Typ == eventlog.TypeHealth {
			health = append(health, ev)
		}
	}
	if health[0].Level != "ERROR" || health[0].Attrs["probe"] != "stall" {
		t.Fatalf("trip event = %+v", health[0])
	}
	if health[1].Level != "INFO" || health[1].Attrs["state"] != "ok" {
		t.Fatalf("recovery event = %+v", health[1])
	}
}

// TestWatchdogHammer runs a fast-ticking watchdog against live goroutines —
// under -race this doubles as the concurrency check. While the progress
// counter advances the probe must never trip; once the counter freezes the
// trip must arrive.
func TestWatchdogHammer(t *testing.T) {
	var progress atomic.Uint64
	var trips atomic.Int32
	w := NewWatchdog(2 * time.Millisecond)
	w.Register(
		NewStallProbe("hammer", func() float64 { return float64(progress.Load()) }, nil, 150*time.Millisecond),
		func(ProbeState) { trips.Add(1) })
	tripped := make(chan struct{}, 1)
	w.SetOnTrip(func(ProbeState) {
		select {
		case tripped <- struct{}{}:
		default:
		}
	})
	w.Start()
	defer w.Stop()

	// Healthy phase: concurrent writers keep the signal moving.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				progress.Add(1)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	if got := trips.Load(); got != 0 {
		t.Fatalf("healthy watchdog tripped %d times", got)
	}

	// Freeze the signal: the trip must arrive within a few deadlines.
	close(stop)
	<-done
	select {
	case <-tripped:
	case <-time.After(5 * time.Second):
		t.Fatal("frozen signal never tripped the watchdog")
	}
	if got := trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want exactly 1", got)
	}
}

func TestWatchdogRegisterRemove(t *testing.T) {
	w := NewWatchdog(time.Hour)
	now := time.Unix(4000, 0)
	w.SetClock(func() time.Time { return now })
	remove := w.Register(NewStallProbe("p", func() float64 { return 0 }, nil, time.Millisecond), nil)
	if len(w.Status()) != 1 {
		t.Fatal("probe not registered")
	}
	remove()
	remove() // idempotent
	if len(w.Status()) != 0 {
		t.Fatal("probe not removed")
	}
}

func TestRecorderRingAndCapture(t *testing.T) {
	r := NewRecorder(4, telemetry.Default)
	for i := 0; i < 10; i++ {
		r.Record(eventlog.Event{Seq: uint64(i + 1), Message: fmt.Sprintf("ev%d", i)})
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("ring = %+v", evs)
	}

	fr := r.Capture(TriggerWatchdog, "stall", "no progress")
	if fr.Trigger != TriggerWatchdog || fr.Probe != "stall" || fr.At.IsZero() {
		t.Fatalf("record header = %+v", fr)
	}
	if len(fr.Events) != 4 {
		t.Fatalf("captured %d events, want 4", len(fr.Events))
	}
	if !strings.Contains(fr.Goroutines, "goroutine") {
		t.Fatal("capture carries no goroutine dump")
	}
	if len(fr.Metrics.Metrics) == 0 {
		t.Fatal("capture carries no metrics snapshot")
	}

	data, err := fr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFlightRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trigger != fr.Trigger || len(back.Events) != len(fr.Events) ||
		back.Goroutines != fr.Goroutines {
		t.Fatal("flight record did not round-trip")
	}
}

func TestRecorderAttach(t *testing.T) {
	p := eventlog.NewPipeline()
	r := NewRecorder(8, telemetry.Default)
	detach := r.Attach(p)
	for i := 0; i < 5; i++ {
		p.Publish(eventlog.Event{Message: fmt.Sprintf("m%d", i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(r.Events()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("recorder saw %d of 5 published events", len(r.Events()))
		}
		time.Sleep(time.Millisecond)
	}
	detach()
	detach() // idempotent
	p.Publish(eventlog.Event{Message: "after detach"})
	time.Sleep(10 * time.Millisecond)
	if n := len(r.Events()); n != 5 {
		t.Fatalf("detached recorder kept recording: %d events", n)
	}
}
