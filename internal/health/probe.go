// Package health is the operator-side supervision layer on top of the
// telemetry and eventlog stacks: a watchdog running pluggable liveness
// probes over the process's own metrics, and a flight recorder that keeps
// the recent event stream ready to dump — with a metrics snapshot and a
// goroutine stack dump — the moment something goes wrong. The paper's
// position is that a result is only trustworthy with its conditions
// recorded; this package extends that from results to incidents: when a
// campaign stalls or fails, the evidence is already on disk.
package health

import (
	"fmt"
	"time"

	"pos/internal/telemetry"
)

// Probe is one watchdog check. Check inspects the watched signal at now
// and reports whether it is healthy plus a human-readable detail line.
// Probes keep internal state between checks (last value, window base); the
// watchdog serializes all Check calls, so probes need no locking of their
// own.
type Probe interface {
	Name() string
	Check(now time.Time) (ok bool, detail string)
}

// StallProbe trips when a monotonic progress signal stops advancing for
// longer than its deadline while the watched activity is supposed to be
// making progress. It is the shape of most "is it stuck?" questions:
// campaign run completions, shard synchronization rounds, queue
// admissions.
type StallProbe struct {
	name     string
	value    func() float64
	active   func() bool
	deadline time.Duration

	primed     bool
	last       float64
	lastChange time.Time
}

// NewStallProbe builds a stall probe: value is the progress signal, active
// reports whether progress is currently expected (nil: always), deadline is
// how long the value may sit still before the probe trips.
func NewStallProbe(name string, value func() float64, active func() bool, deadline time.Duration) *StallProbe {
	return &StallProbe{name: name, value: value, active: active, deadline: deadline}
}

// Name identifies the probe in events, metrics, and flight records.
func (p *StallProbe) Name() string { return p.name }

// Check implements Probe. While inactive the probe is healthy and its
// stall clock resets — a quiet system is not a stuck one.
func (p *StallProbe) Check(now time.Time) (bool, string) {
	if p.active != nil && !p.active() {
		p.primed = false
		return true, "idle"
	}
	v := p.value()
	if !p.primed || v != p.last {
		p.primed, p.last, p.lastChange = true, v, now
		return true, fmt.Sprintf("advancing (at %g)", v)
	}
	if stalled := now.Sub(p.lastChange); stalled > p.deadline {
		return false, fmt.Sprintf("no progress for %s (value %g, deadline %s)",
			stalled.Round(time.Millisecond), v, p.deadline)
	}
	return true, fmt.Sprintf("quiet %s (at %g)", now.Sub(p.lastChange).Round(time.Millisecond), v)
}

// GrowthProbe trips when an error counter climbs by more than limit within
// one observation window — the shape of "is something silently bleeding?"
// questions, like event-broker drop counters.
type GrowthProbe struct {
	name   string
	value  func() float64
	limit  float64
	window time.Duration

	primed      bool
	base        float64
	windowStart time.Time
}

// NewGrowthProbe builds a growth probe over a cumulative counter signal.
func NewGrowthProbe(name string, value func() float64, limit float64, window time.Duration) *GrowthProbe {
	return &GrowthProbe{name: name, value: value, limit: limit, window: window}
}

// Name identifies the probe in events, metrics, and flight records.
func (p *GrowthProbe) Name() string { return p.name }

// Check implements Probe. A trip resets the window, so the probe recovers
// on the next check unless the counter keeps climbing past the limit again.
func (p *GrowthProbe) Check(now time.Time) (bool, string) {
	v := p.value()
	if !p.primed {
		p.primed, p.base, p.windowStart = true, v, now
		return true, fmt.Sprintf("baseline %g", v)
	}
	grown := v - p.base
	if grown > p.limit {
		elapsed := now.Sub(p.windowStart)
		p.base, p.windowStart = v, now
		return false, fmt.Sprintf("grew by %g in %s (limit %g per %s)",
			grown, elapsed.Round(time.Millisecond), p.limit, p.window)
	}
	if now.Sub(p.windowStart) >= p.window {
		p.base, p.windowStart = v, now
	}
	return true, fmt.Sprintf("+%g this window", grown)
}

// totalOf adapts a registry family total into a probe signal; an
// unregistered family reads as zero, so probes can be armed before the
// subsystem they watch has initialized.
func totalOf(reg *telemetry.Registry, name string) func() float64 {
	return func() float64 {
		v, _ := reg.Total(name)
		return v
	}
}

// CampaignProgress watches the runner's completed-run counter while the
// campaign scheduler holds runs in flight: dispatched work that never
// finishes — a hung measurement script past every timeout, a wedged
// replica — trips it.
func CampaignProgress(reg *telemetry.Registry, deadline time.Duration) *StallProbe {
	return NewStallProbe("campaign-progress",
		totalOf(reg, "pos_runner_runs_total"),
		func() bool { v, _ := reg.Total("pos_sched_inflight_runs"); return v > 0 },
		deadline)
}

// ShardProgress watches the data plane's shard synchronization rounds
// while shard groups are running: a deadlocked window barrier or a
// livelocked lookahead round stops pos_sim_shard_windows_total cold.
func ShardProgress(reg *telemetry.Registry, deadline time.Duration) *StallProbe {
	return NewStallProbe("shard-progress",
		totalOf(reg, "pos_sim_shard_windows_total"),
		func() bool { v, _ := reg.Total("pos_sim_shard_groups_active"); return v > 0 },
		deadline)
}

// QueueStarvation watches the campaign queue's starved-pass counter:
// admission passes that admitted nothing while submissions were queued and
// no campaign held an allocation. A handful in a row means tenants are
// waiting on capacity that is actually free.
func QueueStarvation(reg *telemetry.Registry, passes float64, window time.Duration) *GrowthProbe {
	return NewGrowthProbe("queue-starvation",
		totalOf(reg, "pos_queue_starved_passes_total"), passes, window)
}

// EventDrops watches the broker's ring-buffer drop counter: sustained
// growth means live observers are losing events faster than they consume
// them and should resume from the journal.
func EventDrops(reg *telemetry.Registry, limit float64, window time.Duration) *GrowthProbe {
	return NewGrowthProbe("event-drops",
		totalOf(reg, "pos_events_dropped_total"), limit, window)
}
