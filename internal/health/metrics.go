package health

import "pos/internal/telemetry"

// Health-layer telemetry: watchdog verdicts and flight-record activity,
// exposed at /metrics through the process-wide registry so a scraper can
// alert on trips without tailing the event stream.
var (
	trips = telemetry.Default.CounterVec("pos_health_trips_total",
		"Watchdog probe trips (healthy-to-unhealthy transitions), by probe.", "probe")
	probesBad = telemetry.Default.Gauge("pos_health_probes_bad",
		"Watchdog probes currently in the unhealthy state.")
	flightRecords = telemetry.Default.Counter("pos_health_flight_records_total",
		"Flight records captured (watchdog trips, campaign failures, SIGQUIT).")
)

func tripCounter(probe string) *telemetry.Counter { return trips.With(probe) }
