package health

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"

	"pos/internal/eventlog"
	"pos/internal/telemetry"
)

// Flight-record trigger labels.
const (
	TriggerWatchdog        = "watchdog"
	TriggerCampaignFailure = "campaign-failure"
	TriggerSignal          = "sigquit"
)

// DefaultRecorderCapacity is the ring size used when the caller does not
// choose one.
const DefaultRecorderCapacity = 256

// Recorder keeps a bounded ring of the most recent events so that the
// moment something goes wrong — a watchdog trip, a failed campaign, an
// operator's SIGQUIT — the last thing the system did is already in memory,
// ready to be captured together with a metrics snapshot and a goroutine
// stack dump. It is the post-mortem counterpart of the journal: small,
// always warm, and dumped in one piece.
type Recorder struct {
	reg *telemetry.Registry

	mu   sync.Mutex
	buf  []eventlog.Event // ring
	head int              // index of the oldest recorded event
	n    int
}

// NewRecorder returns a recorder keeping the last capacity events
// (DefaultRecorderCapacity when <= 0), snapshotting metrics from reg
// (telemetry.Default when nil) at capture time.
func NewRecorder(capacity int, reg *telemetry.Registry) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	if reg == nil {
		reg = telemetry.Default
	}
	return &Recorder{reg: reg, buf: make([]eventlog.Event, capacity)}
}

// Record appends ev to the ring, evicting the oldest entry when full.
func (r *Recorder) Record(ev eventlog.Event) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ev
	r.n++
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []eventlog.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]eventlog.Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Attach subscribes the recorder to a pipeline and feeds every published
// event into the ring until the returned detach function is called. Detach
// waits for the feed goroutine to exit.
func (r *Recorder) Attach(p *eventlog.Pipeline) (detach func()) {
	sub := p.Subscribe(len(r.buf))
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer close(done)
		for {
			ev, ok := sub.Next(ctx)
			if !ok {
				return
			}
			r.Record(ev)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sub.Close()
			cancel()
			<-done
		})
	}
}

// FlightRecord is one captured incident: what tripped, what the system was
// doing just before (recent events), what the metrics said, and what every
// goroutine was doing at that instant.
type FlightRecord struct {
	Trigger    string             `json:"trigger"` // watchdog | campaign-failure | sigquit
	Probe      string             `json:"probe,omitempty"`
	Detail     string             `json:"detail,omitempty"`
	At         time.Time          `json:"at"`
	Events     []eventlog.Event   `json:"events"`
	Metrics    telemetry.Snapshot `json:"metrics"`
	Goroutines string             `json:"goroutines"`
	// Analysis, when present, is the campaign's critical path and per-phase
	// attribution as computed at capture time (a timeline.Summary). Typed
	// `any` so health stays below the timeline package in the import graph;
	// readers decode it structurally from the JSON.
	Analysis any `json:"analysis,omitempty"`
}

// Capture assembles a flight record now: the ring's events, a registry
// snapshot, and a full goroutine stack dump.
func (r *Recorder) Capture(trigger, probe, detail string) FlightRecord {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	flightRecords.Inc()
	return FlightRecord{
		Trigger:    trigger,
		Probe:      probe,
		Detail:     detail,
		At:         time.Now(),
		Events:     r.Events(),
		Metrics:    r.reg.Snapshot(),
		Goroutines: string(buf),
	}
}

// Encode renders the record as indented JSON with a trailing newline — the
// exact bytes archived as flightrec.json.
func (fr FlightRecord) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile encodes the record and writes it to path.
func (fr FlightRecord) WriteFile(path string) error {
	data, err := fr.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// DecodeFlightRecord parses bytes produced by Encode.
func DecodeFlightRecord(data []byte) (FlightRecord, error) {
	var fr FlightRecord
	err := json.Unmarshal(data, &fr)
	return fr, err
}
