package perfmodel

import (
	"testing"

	"pos/internal/sim"
)

func TestBareMetalCapacityMatchesPaper(t *testing.T) {
	m := NewBareMetal()
	got := m.CapacityPPS(0, 64)
	if got < 1.70e6 || got > 1.80e6 {
		t.Errorf("64B capacity = %.0f pps, want ~1.75M (Fig. 3a)", got)
	}
	// Size independence: the bare-metal model is CPU-bound per packet,
	// not per byte; the 1500 B ceiling comes from the NIC, not here.
	if got1500 := m.CapacityPPS(0, 1500); got1500 != got {
		t.Errorf("capacity depends on size: %v vs %v", got, got1500)
	}
}

func TestBareMetalIsDeterministic(t *testing.T) {
	m := NewBareMetal()
	a := m.CapacityPPS(0, 64)
	b := m.CapacityPPS(sim.Time(10*sim.Second), 64)
	if a != b {
		t.Errorf("bare-metal capacity varies over time: %v vs %v", a, b)
	}
}

func TestVirtualDropFreeRegionMatchesPaper(t *testing.T) {
	m := NewVirtual(1)
	for _, size := range []int{64, 1500} {
		floor := MaxDropFreePPS(m, size)
		if floor < 40e3 {
			t.Errorf("drop-free floor for %dB = %.0f pps, want >= 40k (Fig. 3b)", size, floor)
		}
		if floor > 80e3 {
			t.Errorf("drop-free floor for %dB = %.0f pps, implausibly high", size, floor)
		}
	}
}

func TestVirtualBareMetalGapFactor(t *testing.T) {
	// "a decrease in the maximum forwarding throughput by a factor of up
	// to 44" — bare-metal max vs VM drop-free max.
	bm := NewBareMetal()
	vm := NewVirtual(1)
	ratio := bm.CapacityPPS(0, 64) / MaxDropFreePPS(vm, 1500)
	if ratio < 30 || ratio > 55 {
		t.Errorf("bare-metal/VM ratio = %.1f, want ~44", ratio)
	}
}

func TestVirtualCapacityIsSizeDependent(t *testing.T) {
	vm := NewVirtual(1)
	small := vm.nominalPPS(64)
	large := vm.nominalPPS(1500)
	if small <= large {
		t.Errorf("VM capacity 64B=%.0f <= 1500B=%.0f, want per-byte cost to matter", small, large)
	}
}

func TestVirtualJitterRedrawsPerInterval(t *testing.T) {
	vm := NewVirtual(7)
	first := vm.CapacityPPS(0, 64)
	// Within the same interval the capacity is stable.
	if again := vm.CapacityPPS(sim.Time(10*sim.Millisecond), 64); again != first {
		t.Errorf("capacity changed within an interval: %v vs %v", first, again)
	}
	// Across intervals it fluctuates.
	changed := false
	for i := 1; i <= 20; i++ {
		at := sim.Time(i) * sim.Time(100*sim.Millisecond)
		if vm.CapacityPPS(at, 64) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("capacity never changed across 20 jitter intervals")
	}
}

func TestVirtualJitterBounds(t *testing.T) {
	vm := NewVirtual(99)
	nominal := vm.nominalPPS(64)
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * sim.Time(100*sim.Millisecond)
		c := vm.CapacityPPS(at, 64)
		if c < nominal*vm.JitterLow-1 || c > nominal*vm.JitterHigh+1 {
			t.Fatalf("capacity %v outside jitter bounds [%v, %v]",
				c, nominal*vm.JitterLow, nominal*vm.JitterHigh)
		}
	}
}

func TestVirtualSameSeedSameSequence(t *testing.T) {
	a, b := NewVirtual(42), NewVirtual(42)
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * sim.Time(100*sim.Millisecond)
		if a.CapacityPPS(at, 64) != b.CapacityPPS(at, 64) {
			t.Fatal("same seed produced different capacity sequences")
		}
	}
}

func TestUnseededJitterPanics(t *testing.T) {
	m := &CycleModel{
		ModelName:          "broken",
		BudgetCyclesPerSec: 1e9,
		PerPacketCycles:    100,
		JitterLow:          0.5,
		JitterHigh:         1.5,
		JitterInterval:     sim.Millisecond,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unseeded jittered model")
		}
	}()
	m.CapacityPPS(0, 64)
}

func TestLatencyGrowsWithUtilization(t *testing.T) {
	m := NewBareMetal()
	idle := m.Latency(0)
	busy := m.Latency(1)
	if busy <= idle {
		t.Errorf("latency did not grow: idle=%v busy=%v", idle, busy)
	}
	if m.Latency(-1) != idle {
		t.Error("negative utilization not clamped")
	}
	if m.Latency(100) != m.Latency(4) {
		t.Error("excess utilization not clamped")
	}
}

func TestSampleLatencyJitter(t *testing.T) {
	m := NewBareMetal()
	base := m.Latency(0)
	seen := map[sim.Duration]bool{}
	for i := 0; i < 200; i++ {
		s := m.SampleLatency(0)
		if s < base/2 {
			t.Fatalf("sample %v below floor %v", s, base/2)
		}
		seen[s] = true
	}
	if len(seen) < 50 {
		t.Errorf("jitter produced only %d distinct samples", len(seen))
	}
	// Without jitter the sample equals the deterministic latency.
	plain := &CycleModel{ModelName: "plain", BudgetCyclesPerSec: 1e9, PerPacketCycles: 100, BaseLatency: sim.Microsecond}
	if plain.SampleLatency(0) != plain.Latency(0) {
		t.Error("jitter-free model sampled noise")
	}
}

func TestSampleLatencyDeterministicPerSeed(t *testing.T) {
	a, b := NewBareMetal(), NewBareMetal()
	for i := 0; i < 100; i++ {
		if a.SampleLatency(0.5) != b.SampleLatency(0.5) {
			t.Fatal("same default seed diverged")
		}
	}
}

func TestVMLatencyExceedsBareMetal(t *testing.T) {
	if NewVirtual(1).Latency(0) <= NewBareMetal().Latency(0) {
		t.Error("VM base latency should exceed bare metal")
	}
}

func TestZeroCostModelYieldsZeroCapacity(t *testing.T) {
	m := &CycleModel{ModelName: "degenerate", BudgetCyclesPerSec: 1e9}
	if got := m.CapacityPPS(0, 64); got != 0 {
		t.Errorf("capacity = %v, want 0 for zero cost", got)
	}
}

func TestModelNames(t *testing.T) {
	if NewBareMetal().Name() != "baremetal" {
		t.Error("bare metal name")
	}
	if NewVirtual(0).Name() != "vm" {
		t.Error("vm name")
	}
}
