// Package perfmodel provides the packet-processing capacity models that turn
// the emulated Linux router into a stand-in for the paper's two devices under
// test: the bare-metal server (pos) and its virtual clone (vpos).
//
// Both models express forwarding capacity as a CPU budget divided by a
// per-packet cost, cost = PerPacketCycles + PerByteCycles·size. The
// parameters are calibrated against the published case study (Fig. 3):
//
//   - Bare metal: ≈1.75 Mpps regardless of packet size (the Intel 82599's
//     10 Gbit/s line rate, modelled by netem, caps 1500 B frames at
//     ≈0.81 Mpps before the CPU limit is reached).
//   - Virtualized: drop-free only up to ≈0.04 Mpps; above that, capacity
//     fluctuates interval-to-interval (vhost/bridge scheduling noise) and
//     develops a packet-size dependence through the per-byte copy cost —
//     exactly the instability visible in Fig. 3b.
//
// The ≈44× bare-metal/VM gap the paper reports falls out of these numbers.
package perfmodel

import (
	"fmt"

	"pos/internal/sim"
)

// Model yields a forwarding capacity, possibly redrawn per measurement
// interval to model run-to-run variance.
type Model interface {
	// CapacityPPS returns the packets-per-second the device can forward
	// for the given frame size during the interval starting at now.
	CapacityPPS(now sim.Time, frameSize int) float64
	// Latency returns the deterministic per-packet processing latency at
	// the given utilization (0..1+); queueing on top of it is modelled by
	// netem.
	Latency(utilization float64) sim.Duration
	// SampleLatency returns one latency observation: Latency plus the
	// model's scheduling jitter. Repeated calls draw fresh noise.
	SampleLatency(utilization float64) sim.Duration
	// Name identifies the model in metadata and result files.
	Name() string
}

// CycleModel is the shared cost-based implementation.
type CycleModel struct {
	// ModelName appears in experiment metadata ("baremetal", "vm").
	ModelName string
	// BudgetCyclesPerSec is the CPU budget available for forwarding.
	BudgetCyclesPerSec float64
	// PerPacketCycles is the fixed per-packet cost.
	PerPacketCycles float64
	// PerByteCycles is the size-dependent cost (copies, bridge hops).
	PerByteCycles float64
	// BaseLatency is the unloaded forwarding latency.
	BaseLatency sim.Duration
	// LatencyJitterStd is the standard deviation of per-packet scheduling
	// noise added by SampleLatency (interrupt moderation, softirq
	// batching, cache effects). Zero disables jitter.
	LatencyJitterStd sim.Duration
	// JitterLow/JitterHigh bound the multiplicative capacity jitter that
	// is redrawn every JitterInterval. Equal values disable jitter.
	JitterLow, JitterHigh float64
	// JitterInterval is the redraw period (0 disables jitter).
	JitterInterval sim.Duration

	rng         *sim.Rand
	lastDraw    sim.Time
	currentMult float64
	drawn       bool

	// nomPPS caches nominalPPS for nomFrameSize: within a measurement run
	// every batch has one frame size, and the cycle parameters are fixed at
	// construction, so the per-batch hot path skips the float division.
	nomPPS       float64
	nomFrameSize int
	nomValid     bool
}

// Name implements Model.
func (m *CycleModel) Name() string { return m.ModelName }

// Seed (re)initializes the jitter source; models with jitter must be seeded
// before use so results stay reproducible for a given seed.
func (m *CycleModel) Seed(seed uint64) {
	m.rng = sim.NewRand(seed)
	m.drawn = false
}

// nominalPPS is the capacity before jitter.
func (m *CycleModel) nominalPPS(frameSize int) float64 {
	if m.nomValid && frameSize == m.nomFrameSize {
		return m.nomPPS
	}
	cost := m.PerPacketCycles + m.PerByteCycles*float64(frameSize)
	pps := 0.0
	if cost > 0 {
		pps = m.BudgetCyclesPerSec / cost
	}
	m.nomPPS, m.nomFrameSize, m.nomValid = pps, frameSize, true
	return pps
}

// CapacityPPS implements Model.
func (m *CycleModel) CapacityPPS(now sim.Time, frameSize int) float64 {
	pps := m.nominalPPS(frameSize)
	if m.JitterInterval <= 0 || m.JitterHigh <= m.JitterLow {
		return pps
	}
	if m.rng == nil {
		panic(fmt.Sprintf("perfmodel: %s used with jitter but not seeded", m.ModelName))
	}
	if !m.drawn || now.Sub(m.lastDraw) >= m.JitterInterval {
		m.currentMult = m.JitterLow + m.rng.Float64()*(m.JitterHigh-m.JitterLow)
		m.lastDraw = now
		m.drawn = true
	}
	return pps * m.currentMult
}

// Latency implements Model: processing latency grows with utilization,
// approximating the service-time inflation of a busy softirq path.
func (m *CycleModel) Latency(utilization float64) sim.Duration {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 4 {
		utilization = 4
	}
	return m.BaseLatency + sim.Duration(float64(m.BaseLatency)*utilization)
}

// SampleLatency implements Model: the deterministic latency plus truncated
// Gaussian scheduling noise, never less than half the deterministic value.
func (m *CycleModel) SampleLatency(utilization float64) sim.Duration {
	base := m.Latency(utilization)
	if m.LatencyJitterStd <= 0 || m.rng == nil {
		return base
	}
	noisy := base + sim.Duration(m.rng.NormFloat64()*float64(m.LatencyJitterStd))
	if noisy < base/2 {
		noisy = base / 2
	}
	return noisy
}

// NewBareMetal returns the pos (hardware testbed) DuT model: two Xeon Silver
// 4214 sockets, but Linux forwarding of a single flow is effectively bound to
// one core — 2.2 GHz over ≈1257 cycles/packet ≈ 1.75 Mpps, size-independent.
func NewBareMetal() *CycleModel {
	m := &CycleModel{
		ModelName:          "baremetal",
		BudgetCyclesPerSec: 2.2e9,
		PerPacketCycles:    1257,
		PerByteCycles:      0,
		BaseLatency:        4 * sim.Microsecond,
		LatencyJitterStd:   1500 * sim.Nanosecond,
	}
	m.Seed(0x706f73) // deterministic default; capacity stays jitter-free
	return m
}

// NewVirtual returns the vpos DuT model: a KVM guest behind Linux bridges.
// The fixed cost is dominated by VM exits and bridge traversals, the
// per-byte cost by packet copies, and capacity is redrawn with ±20%-class
// jitter every interval. Calibration: ≈65 kpps for 64 B frames and ≈53 kpps
// for 1500 B frames nominal, with the jitter floor keeping both sizes
// drop-free at ≤40 kpps — Fig. 3b's stable region.
func NewVirtual(seed uint64) *CycleModel {
	m := &CycleModel{
		ModelName:          "vm",
		BudgetCyclesPerSec: 1.3e9,
		PerPacketCycles:    20000,
		PerByteCycles:      3,
		BaseLatency:        60 * sim.Microsecond,
		LatencyJitterStd:   25 * sim.Microsecond,
		JitterLow:          0.78,
		JitterHigh:         1.15,
		JitterInterval:     100 * sim.Millisecond,
	}
	m.Seed(seed)
	return m
}

// MaxDropFreePPS returns the worst-case (jitter floor) capacity for the given
// frame size: the highest offered rate guaranteed to be forwarded without
// loss.
func MaxDropFreePPS(m *CycleModel, frameSize int) float64 {
	pps := m.nominalPPS(frameSize)
	if m.JitterInterval > 0 && m.JitterHigh > m.JitterLow {
		pps *= m.JitterLow
	}
	return pps
}
