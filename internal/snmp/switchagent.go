package snmp

import (
	"fmt"
	"strconv"

	"pos/internal/netem"
)

// Standard-ish OIDs exposed by the switch agent (IF-MIB/BRIDGE-MIB shaped).
const (
	OIDSysDescr = "1.3.6.1.2.1.1.1.0"
	OIDSysName  = "1.3.6.1.2.1.1.5.0"
	// Per-interface OIDs take the 1-based port number as a suffix.
	OIDIfAdminStatusPrefix = "1.3.6.1.2.1.2.2.1.7"
	OIDIfInOctetsPrefix    = "1.3.6.1.2.1.2.2.1.10"
	OIDIfInPktsPrefix      = "1.3.6.1.2.1.2.2.1.11"
	OIDIfOutOctetsPrefix   = "1.3.6.1.2.1.2.2.1.16"
	OIDIfOutPktsPrefix     = "1.3.6.1.2.1.2.2.1.17"
	// Bridge MIB: learned addresses and flush control.
	OIDFdbCount = "1.3.6.1.2.1.17.4.1.0"
	OIDFdbFlush = "1.3.6.1.2.1.17.4.2.0"
	// Admin status values.
	StatusUp   = "up"
	StatusDown = "down"
)

// ifOID builds a per-interface OID for the 1-based port number.
func ifOID(prefix string, port int) string { return fmt.Sprintf("%s.%d", prefix, port) }

// NewSwitchAgent wires a managed switch's state into an SNMP agent — the
// testbed's example of a non-Linux experiment device configured through its
// native management protocol (R1). Serve must be called by the caller.
func NewSwitchAgent(sw *netem.Switch, community string) *Agent {
	a := NewAgent(community)
	a.Register(OIDSysDescr, Handler{
		Get: func() (string, error) {
			return fmt.Sprintf("pos emulated L2 switch %s, %d ports", sw.Name, sw.NumPorts()), nil
		},
	})
	a.RegisterValue(OIDSysName, sw.Name)
	a.Register(OIDFdbCount, Handler{
		Get: func() (string, error) { return strconv.Itoa(sw.FDBSize()), nil },
	})
	a.Register(OIDFdbFlush, Handler{
		Get: func() (string, error) { return "0", nil },
		Set: func(v string) error {
			if v != "1" {
				return fmt.Errorf("%w: write 1 to flush", ErrBadValue)
			}
			sw.FlushFDB()
			return nil
		},
	})
	for i := 0; i < sw.NumPorts(); i++ {
		i := i
		num := i + 1 // SNMP interfaces are 1-based
		a.Register(ifOID(OIDIfAdminStatusPrefix, num), Handler{
			Get: func() (string, error) {
				if sw.PortEnabled(i) {
					return StatusUp, nil
				}
				return StatusDown, nil
			},
			Set: func(v string) error {
				switch v {
				case StatusUp:
					sw.SetPortEnabled(i, true)
				case StatusDown:
					sw.SetPortEnabled(i, false)
				default:
					return fmt.Errorf("%w: %q (want up|down)", ErrBadValue, v)
				}
				return nil
			},
		})
		counter := func(read func(netem.Counters) int64) Handler {
			return Handler{Get: func() (string, error) {
				return strconv.FormatInt(read(sw.Port(i).Stats()), 10), nil
			}}
		}
		a.Register(ifOID(OIDIfInOctetsPrefix, num), counter(func(c netem.Counters) int64 { return c.RxBytes }))
		a.Register(ifOID(OIDIfInPktsPrefix, num), counter(func(c netem.Counters) int64 { return c.RxPackets }))
		a.Register(ifOID(OIDIfOutOctetsPrefix, num), counter(func(c netem.Counters) int64 { return c.TxBytes }))
		a.Register(ifOID(OIDIfOutPktsPrefix, num), counter(func(c netem.Counters) int64 { return c.TxPackets }))
	}
	return a
}
