// Package snmp implements a compact SNMP-style management protocol over UDP
// for devices that are not Linux servers — switches, hardware packet
// generators, power distribution units. The paper names SNMP (besides HTTP)
// as a configuration/initialization API through which such devices join the
// testbed as experiment hosts (R1, heterogeneity).
//
// The protocol keeps SNMP's model — community-authenticated GET/SET/WALK
// over an OID tree, datagram transport with client-side retries — with JSON
// encoding instead of ASN.1 BER, which is incidental to the methodology.
package snmp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Ops supported by the agent.
const (
	OpGet  = "get"
	OpSet  = "set"
	OpWalk = "walk"
)

// Request is one management datagram.
type Request struct {
	// ID matches responses to requests across retries.
	ID uint64 `json:"id"`
	// Community authenticates the request (SNMPv2c style).
	Community string `json:"community"`
	Op        string `json:"op"`
	OID       string `json:"oid"`
	// Value applies to set.
	Value string `json:"value,omitempty"`
}

// Binding is one OID/value pair.
type Binding struct {
	OID   string `json:"oid"`
	Value string `json:"value"`
}

// Response answers a Request.
type Response struct {
	ID       uint64    `json:"id"`
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Bindings []Binding `json:"bindings,omitempty"`
}

// Errors surfaced by agents and the client.
var (
	ErrNoSuchOID    = errors.New("snmp: no such OID")
	ErrReadOnly     = errors.New("snmp: OID is read-only")
	ErrBadCommunity = errors.New("snmp: bad community")
	ErrTimeout      = errors.New("snmp: request timed out")
	ErrBadValue     = errors.New("snmp: bad value")
)

// Handler implements one managed OID.
type Handler struct {
	// Get returns the current value.
	Get func() (string, error)
	// Set applies a new value; nil marks the OID read-only.
	Set func(string) error
}

// Agent is an SNMP-style management endpoint for one device.
type Agent struct {
	community string
	mu        sync.Mutex
	tree      map[string]Handler
	conn      net.PacketConn
	closed    chan struct{}
}

// NewAgent creates an agent guarding its tree with the given community
// string.
func NewAgent(community string) *Agent {
	return &Agent{
		community: community,
		tree:      make(map[string]Handler),
		closed:    make(chan struct{}),
	}
}

// Register adds a managed OID. Registering an existing OID replaces it.
func (a *Agent) Register(oid string, h Handler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tree[oid] = h
}

// RegisterValue adds a plain read-write variable OID and returns a getter
// for the device side.
func (a *Agent) RegisterValue(oid, initial string) func() string {
	var mu sync.Mutex
	val := initial
	a.Register(oid, Handler{
		Get: func() (string, error) {
			mu.Lock()
			defer mu.Unlock()
			return val, nil
		},
		Set: func(v string) error {
			mu.Lock()
			defer mu.Unlock()
			val = v
			return nil
		},
	})
	return func() string {
		mu.Lock()
		defer mu.Unlock()
		return val
	}
}

// Serve starts the agent on a loopback UDP port.
func (a *Agent) Serve() error {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("snmp: %w", err)
	}
	a.conn = conn
	go a.loop()
	return nil
}

// Addr returns the agent's UDP address (valid after Serve).
func (a *Agent) Addr() string { return a.conn.LocalAddr().String() }

// Close stops the agent.
func (a *Agent) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
		close(a.closed)
	}
	return a.conn.Close()
}

func (a *Agent) loop() {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := a.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
				continue
			}
		}
		var req Request
		if err := json.Unmarshal(buf[:n], &req); err != nil {
			continue // not our protocol; drop like any UDP service
		}
		resp := a.handle(req)
		data, err := json.Marshal(resp)
		if err != nil {
			continue
		}
		a.conn.WriteTo(data, addr)
	}
}

func (a *Agent) handle(req Request) Response {
	resp := Response{ID: req.ID}
	if req.Community != a.community {
		resp.Error = ErrBadCommunity.Error()
		return resp
	}
	switch req.Op {
	case OpGet:
		a.mu.Lock()
		h, ok := a.tree[req.OID]
		a.mu.Unlock()
		if !ok {
			resp.Error = fmt.Sprintf("%v: %s", ErrNoSuchOID, req.OID)
			return resp
		}
		v, err := h.Get()
		if err != nil {
			resp.Error = err.Error()
			return resp
		}
		resp.OK = true
		resp.Bindings = []Binding{{OID: req.OID, Value: v}}
	case OpSet:
		a.mu.Lock()
		h, ok := a.tree[req.OID]
		a.mu.Unlock()
		if !ok {
			resp.Error = fmt.Sprintf("%v: %s", ErrNoSuchOID, req.OID)
			return resp
		}
		if h.Set == nil {
			resp.Error = fmt.Sprintf("%v: %s", ErrReadOnly, req.OID)
			return resp
		}
		if err := h.Set(req.Value); err != nil {
			resp.Error = err.Error()
			return resp
		}
		resp.OK = true
		resp.Bindings = []Binding{{OID: req.OID, Value: req.Value}}
	case OpWalk:
		a.mu.Lock()
		var oids []string
		for oid := range a.tree {
			if req.OID == "" || oid == req.OID || strings.HasPrefix(oid, req.OID+".") {
				oids = append(oids, oid)
			}
		}
		handlers := make([]Handler, len(oids))
		for i, oid := range oids {
			handlers[i] = a.tree[oid]
		}
		a.mu.Unlock()
		sort.Strings(oids)
		// Re-fetch handlers in sorted order.
		for i, oid := range oids {
			a.mu.Lock()
			handlers[i] = a.tree[oid]
			a.mu.Unlock()
		}
		for i, oid := range oids {
			v, err := handlers[i].Get()
			if err != nil {
				continue
			}
			resp.Bindings = append(resp.Bindings, Binding{OID: oid, Value: v})
		}
		resp.OK = true
	default:
		resp.Error = fmt.Sprintf("snmp: unknown op %q", req.Op)
	}
	return resp
}

// Client drives an agent over UDP with timeouts and retries.
type Client struct {
	addr      string
	community string
	// Timeout per attempt; Retries additional attempts. Defaults:
	// 250 ms, 3 retries.
	Timeout time.Duration
	Retries int

	mu     sync.Mutex
	nextID uint64
}

// NewClient returns a client for the agent at addr.
func NewClient(addr, community string) *Client {
	return &Client{addr: addr, community: community, Timeout: 250 * time.Millisecond, Retries: 3}
}

func (c *Client) call(req Request) (Response, error) {
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	c.mu.Unlock()
	req.Community = c.community

	data, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("snmp: %w", err)
	}
	var lastErr error = ErrTimeout
	for attempt := 0; attempt <= c.Retries; attempt++ {
		conn, err := net.Dial("udp", c.addr)
		if err != nil {
			return Response{}, fmt.Errorf("snmp: %w", err)
		}
		conn.SetDeadline(time.Now().Add(c.Timeout))
		if _, err := conn.Write(data); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				lastErr = ErrTimeout
				break
			}
			var resp Response
			if err := json.Unmarshal(buf[:n], &resp); err != nil || resp.ID != req.ID {
				continue // stale or foreign datagram; keep reading
			}
			conn.Close()
			if !resp.OK {
				return resp, fmt.Errorf("snmp: %s %s: %s", req.Op, req.OID, resp.Error)
			}
			return resp, nil
		}
		conn.Close()
	}
	return Response{}, lastErr
}

// Get reads one OID.
func (c *Client) Get(oid string) (string, error) {
	resp, err := c.call(Request{Op: OpGet, OID: oid})
	if err != nil {
		return "", err
	}
	if len(resp.Bindings) != 1 {
		return "", fmt.Errorf("snmp: get %s: %d bindings", oid, len(resp.Bindings))
	}
	return resp.Bindings[0].Value, nil
}

// Set writes one OID.
func (c *Client) Set(oid, value string) error {
	_, err := c.call(Request{Op: OpSet, OID: oid, Value: value})
	return err
}

// Walk lists the subtree under prefix (every OID when prefix is empty).
func (c *Client) Walk(prefix string) ([]Binding, error) {
	resp, err := c.call(Request{Op: OpWalk, OID: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Bindings, nil
}
