package snmp

import (
	"bufio"
	"context"
	"fmt"
	"strings"
)

// DeviceHost adapts an SNMP-managed device to the workflow engine's Host
// interface, so a switch (or any other non-Linux device) participates in an
// experiment like any experiment host: "the entire device can be added to
// the testbed as a new experiment host and managed through the provided
// configuration APIs" (Sec. 4.2).
//
// Its "scripts" are sequences of management commands, one per line:
//
//	snmpset 1.3.6.1.2.1.2.2.1.7.2 down
//	snmpget 1.3.6.1.2.1.17.4.1.0
//	snmpwalk 1.3.6.1.2.1.2.2.1.10
//
// $NAME and ${NAME} expand from the run's variable environment, so loop
// variables steer device configuration exactly as they steer Linux hosts.
type DeviceHost struct {
	// NodeName is the device's testbed node name.
	NodeName string
	// Client talks to the device's agent.
	Client *Client
	// ResetOIDs are written on Reboot to restore the device's clean
	// state (live-boot has no meaning for an ASIC; a defined reset
	// sequence is its equivalent).
	ResetOIDs []Binding
}

// Name implements core.Host.
func (d *DeviceHost) Name() string { return d.NodeName }

// SetBoot implements core.Host: devices have no boot images; a firmware
// selection could be mapped to an OID. Accepting and recording the ref keeps
// experiment definitions uniform.
func (d *DeviceHost) SetBoot(imageRef string, params map[string]string) error {
	// Record the requested "image" on the device's sysName-adjacent OID
	// if the agent exposes one; otherwise it is a documented no-op.
	return nil
}

// Reboot implements core.Host: apply the reset sequence.
func (d *DeviceHost) Reboot() error {
	for _, b := range d.ResetOIDs {
		if err := d.Client.Set(b.OID, b.Value); err != nil {
			return fmt.Errorf("snmp host %s: reset %s: %w", d.NodeName, b.OID, err)
		}
	}
	return nil
}

// DeployTools implements core.Host: management devices need no tools.
func (d *DeviceHost) DeployTools() error { return nil }

// Exec implements core.Host: interpret the management-command script.
func (d *DeviceHost) Exec(ctx context.Context, script string, env map[string]string) (string, error) {
	var out strings.Builder
	sc := bufio.NewScanner(strings.NewReader(script))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := ctx.Err(); err != nil {
			return out.String(), err
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(expandVars(line, env))
		var err error
		switch fields[0] {
		case "snmpget":
			if len(fields) != 2 {
				err = fmt.Errorf("usage: snmpget <oid>")
				break
			}
			var v string
			if v, err = d.Client.Get(fields[1]); err == nil {
				fmt.Fprintf(&out, "%s = %s\n", fields[1], v)
			}
		case "snmpset":
			if len(fields) != 3 {
				err = fmt.Errorf("usage: snmpset <oid> <value>")
				break
			}
			if err = d.Client.Set(fields[1], fields[2]); err == nil {
				fmt.Fprintf(&out, "%s <- %s\n", fields[1], fields[2])
			}
		case "snmpwalk":
			prefix := ""
			if len(fields) == 2 {
				prefix = fields[1]
			}
			var bindings []Binding
			if bindings, err = d.Client.Walk(prefix); err == nil {
				for _, b := range bindings {
					fmt.Fprintf(&out, "%s = %s\n", b.OID, b.Value)
				}
			}
		case "echo":
			fmt.Fprintln(&out, strings.Join(fields[1:], " "))
		default:
			err = fmt.Errorf("%s: not a management command", fields[0])
		}
		if err != nil {
			fmt.Fprintf(&out, "%s: line %d: %v\n", d.NodeName, lineNo, err)
			return out.String(), fmt.Errorf("snmp host %s: line %d: %w", d.NodeName, lineNo, err)
		}
	}
	return out.String(), nil
}

// expandVars substitutes $NAME / ${NAME} from env.
func expandVars(s string, env map[string]string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '$' {
			b.WriteByte(s[i])
			i++
			continue
		}
		j := i + 1
		braced := j < len(s) && s[j] == '{'
		if braced {
			j++
		}
		start := j
		for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
			j++
		}
		name := s[start:j]
		if braced {
			if j < len(s) && s[j] == '}' {
				j++
			} else {
				b.WriteByte(s[i])
				i++
				continue
			}
		}
		if name == "" {
			b.WriteByte(s[i])
			i++
			continue
		}
		b.WriteString(env[name])
		i = j
	}
	return b.String()
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
