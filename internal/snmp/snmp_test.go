package snmp

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"pos/internal/netem"
	"pos/internal/packet"
	"pos/internal/sim"
)

func startAgent(t *testing.T, community string) (*Agent, *Client) {
	t.Helper()
	a := NewAgent(community)
	if err := a.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, NewClient(a.Addr(), community)
}

func TestGetSetRoundTrip(t *testing.T) {
	a, c := startAgent(t, "private")
	read := a.RegisterValue("1.2.3", "initial")
	v, err := c.Get("1.2.3")
	if err != nil || v != "initial" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := c.Set("1.2.3", "changed"); err != nil {
		t.Fatal(err)
	}
	if read() != "changed" {
		t.Errorf("device-side value = %q", read())
	}
	v, err = c.Get("1.2.3")
	if err != nil || v != "changed" {
		t.Errorf("get after set = %q, %v", v, err)
	}
}

func TestBadCommunityRejected(t *testing.T) {
	a, _ := startAgent(t, "private")
	a.RegisterValue("1.2.3", "x")
	evil := NewClient(a.Addr(), "public")
	evil.Timeout = 100 * time.Millisecond
	if _, err := evil.Get("1.2.3"); err == nil || !strings.Contains(err.Error(), "community") {
		t.Errorf("err = %v", err)
	}
}

func TestNoSuchOID(t *testing.T) {
	_, c := startAgent(t, "private")
	if _, err := c.Get("9.9.9"); err == nil {
		t.Error("get of missing OID succeeded")
	}
	if err := c.Set("9.9.9", "x"); err == nil {
		t.Error("set of missing OID succeeded")
	}
}

func TestReadOnlyOID(t *testing.T) {
	a, c := startAgent(t, "private")
	a.Register("1.1", Handler{Get: func() (string, error) { return "ro", nil }})
	if err := c.Set("1.1", "x"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("err = %v", err)
	}
}

func TestWalkSubtree(t *testing.T) {
	a, c := startAgent(t, "private")
	a.RegisterValue("1.2.1", "a")
	a.RegisterValue("1.2.2", "b")
	a.RegisterValue("1.3.1", "c")
	a.RegisterValue("1.20.1", "d") // prefix "1.2" must not match "1.20"
	got, err := c.Walk("1.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].OID != "1.2.1" || got[1].OID != "1.2.2" {
		t.Errorf("walk = %+v", got)
	}
	all, err := c.Walk("")
	if err != nil || len(all) != 4 {
		t.Errorf("walk all = %d bindings, %v", len(all), err)
	}
}

func TestClientTimeoutOnDeadAgent(t *testing.T) {
	a, c := startAgent(t, "private")
	a.RegisterValue("1.1", "x")
	a.Close()
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	start := time.Now()
	_, err := c.Get("1.1")
	if err == nil {
		t.Fatal("get from closed agent succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout too slow")
	}
}

func TestAgentIgnoresGarbageDatagrams(t *testing.T) {
	a, c := startAgent(t, "private")
	a.RegisterValue("1.1", "ok")
	// Fire garbage at the agent, then a valid request must still work.
	conn, err := netDial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("not json at all"))
	conn.Close()
	v, err := c.Get("1.1")
	if err != nil || v != "ok" {
		t.Errorf("get after garbage = %q, %v", v, err)
	}
}

func TestSwitchAgentEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	sw := netem.NewSwitch(e, "sw", 2, 0)
	src := netem.NewSink("src")
	dst := netem.NewSink("dst")
	netem.Wire(e, src.Port, sw.Port(0), netem.LinkConfig{})
	netem.Wire(e, dst.Port, sw.Port(1), netem.LinkConfig{})

	agent := NewSwitchAgent(sw, "private")
	if err := agent.Serve(); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	c := NewClient(agent.Addr(), "private")

	// Identity.
	descr, err := c.Get(OIDSysDescr)
	if err != nil || !strings.Contains(descr, "2 ports") {
		t.Errorf("sysDescr = %q, %v", descr, err)
	}

	frame, err := packet.UDPTemplate{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		FrameSize: 64,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	send := func(count int64) {
		src.Port.Send(e.Now(), netem.Batch{Data: frame, FrameSize: 64, Count: count})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	send(10)
	if dst.Packets != 10 {
		t.Fatalf("delivered %d", dst.Packets)
	}
	// Counters over SNMP.
	v, err := c.Get(ifOID(OIDIfInPktsPrefix, 1))
	if err != nil || v != "10" {
		t.Errorf("ifInPkts.1 = %q, %v", v, err)
	}
	fdb, err := c.Get(OIDFdbCount)
	if err != nil || fdb != "1" {
		t.Errorf("fdb count = %q, %v", fdb, err)
	}

	// Disable the ingress port: traffic stops.
	if err := c.Set(ifOID(OIDIfAdminStatusPrefix, 1), StatusDown); err != nil {
		t.Fatal(err)
	}
	send(5)
	if dst.Packets != 10 {
		t.Errorf("traffic crossed a disabled port: %d", dst.Packets)
	}
	// Re-enable: traffic flows again.
	if err := c.Set(ifOID(OIDIfAdminStatusPrefix, 1), StatusUp); err != nil {
		t.Fatal(err)
	}
	send(5)
	if dst.Packets != 15 {
		t.Errorf("delivered %d after re-enable, want 15", dst.Packets)
	}

	// Bad admin value rejected.
	if err := c.Set(ifOID(OIDIfAdminStatusPrefix, 1), "sideways"); err == nil {
		t.Error("bad admin status accepted")
	}

	// FDB flush.
	if err := c.Set(OIDFdbFlush, "1"); err != nil {
		t.Fatal(err)
	}
	if fdb, _ := c.Get(OIDFdbCount); fdb != "0" {
		t.Errorf("fdb after flush = %q", fdb)
	}
	if err := c.Set(OIDFdbFlush, "7"); err == nil {
		t.Error("bad flush value accepted")
	}
}

func TestDeviceHostExec(t *testing.T) {
	e := sim.NewEngine()
	sw := netem.NewSwitch(e, "sw1", 2, 0)
	agent := NewSwitchAgent(sw, "private")
	if err := agent.Serve(); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	host := &DeviceHost{
		NodeName: "sw1",
		Client:   NewClient(agent.Addr(), "private"),
		ResetOIDs: []Binding{
			{OID: ifOID(OIDIfAdminStatusPrefix, 1), Value: StatusUp},
			{OID: ifOID(OIDIfAdminStatusPrefix, 2), Value: StatusUp},
			{OID: OIDFdbFlush, Value: "1"},
		},
	}
	if host.Name() != "sw1" {
		t.Errorf("Name = %s", host.Name())
	}
	if err := host.SetBoot("firmware-1.2", nil); err != nil {
		t.Fatal(err)
	}
	if err := host.DeployTools(); err != nil {
		t.Fatal(err)
	}
	// A device "setup script": disable port 2, driven by a variable.
	out, err := host.Exec(context.Background(), `
# disable the port under test
echo configuring $NODE
snmpset 1.3.6.1.2.1.2.2.1.7.$port down
snmpget 1.3.6.1.2.1.2.2.1.7.$port
`, map[string]string{"NODE": "sw1", "port": "2"})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "configuring sw1") || !strings.Contains(out, "= down") {
		t.Errorf("output = %q", out)
	}
	if sw.PortEnabled(1) {
		t.Error("port 2 still enabled")
	}
	// Reboot = reset sequence restores the clean state.
	if err := host.Reboot(); err != nil {
		t.Fatal(err)
	}
	if !sw.PortEnabled(1) {
		t.Error("reset did not re-enable port 2")
	}
	// walk through the host interface.
	out, err = host.Exec(context.Background(), "snmpwalk 1.3.6.1.2.1.2.2.1.7", nil)
	if err != nil || !strings.Contains(out, "1.3.6.1.2.1.2.2.1.7.1 = up") {
		t.Errorf("walk output = %q, %v", out, err)
	}
}

func TestDeviceHostExecErrors(t *testing.T) {
	e := sim.NewEngine()
	sw := netem.NewSwitch(e, "sw", 2, 0)
	agent := NewSwitchAgent(sw, "private")
	if err := agent.Serve(); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	host := &DeviceHost{NodeName: "sw", Client: NewClient(agent.Addr(), "private")}
	for _, script := range []string{
		"rm -rf /",      // not a management command
		"snmpget",       // missing OID
		"snmpset 1.1",   // missing value
		"snmpget 9.9.9", // no such OID
	} {
		if _, err := host.Exec(context.Background(), script, nil); err == nil {
			t.Errorf("script %q succeeded", script)
		}
	}
	// Cancelled context stops execution.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := host.Exec(ctx, "echo hi", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestExpandVars(t *testing.T) {
	env := map[string]string{"port": "2", "x_y": "z"}
	cases := map[string]string{
		"a.$port.b":      "a.2.b",
		"${port}":        "2",
		"$x_y":           "z",
		"$missing":       "",
		"plain":          "plain",
		"$":              "$",
		"${unterminated": "${unterminated",
	}
	for in, want := range cases {
		if got := expandVars(in, env); got != want {
			t.Errorf("expand(%q) = %q, want %q", in, got, want)
		}
	}
}

// netDial is a tiny helper to write raw datagrams at an agent.
func netDial(addr string) (interface {
	Write([]byte) (int, error)
	Close() error
}, error) {
	return net.Dial("udp", addr)
}
