package eventlog

import (
	"context"
	"time"
)

// Admission describes how a campaign got scheduled: who submitted it, when,
// and when the queue admitted it. The queue controller attaches it to the
// launch context; the campaign publishes it as a TypeQueue event *after* its
// journal is attached — events published on the private pipeline before that
// point never reach the archive, so queue wait would otherwise be invisible
// to the timeline assembler.
type Admission struct {
	SubmissionID string    `json:"submission_id"`
	User         string    `json:"user,omitempty"`
	Submitted    time.Time `json:"submitted"`
	Admitted     time.Time `json:"admitted"`
}

// Wait returns the submit→admit latency (zero when either stamp is missing).
func (a Admission) Wait() time.Duration {
	if a.Submitted.IsZero() || a.Admitted.IsZero() {
		return 0
	}
	if d := a.Admitted.Sub(a.Submitted); d > 0 {
		return d
	}
	return 0
}

type admissionKey struct{}

// WithAdmission attaches queue admission info to the context.
func WithAdmission(ctx context.Context, a Admission) context.Context {
	return context.WithValue(ctx, admissionKey{}, a)
}

// AdmissionFromContext returns the admission info installed by WithAdmission.
func AdmissionFromContext(ctx context.Context) (Admission, bool) {
	a, ok := ctx.Value(admissionKey{}).(Admission)
	return a, ok
}
