package eventlog

import "context"

// ForwardTo bridges two pipelines: every event published on p from now on is
// re-published into dst, optionally rewritten by decorate first. dst assigns
// its own sequence numbers (the forwarded copy keeps its original timestamp),
// so a destination stream stays monotonic even when several sources feed it.
//
// The campaign queue uses this to give each admitted campaign a private
// pipeline — journaled under the campaign's own experiment directory — while
// a live observer on the controller's shared stream still sees every event,
// tagged with the campaign that produced it.
//
// The returned stop function detaches from p, drains events already
// buffered, and waits for the forwarder goroutine to exit. Forwarding
// inherits the broker's non-blocking contract: a burst beyond the buffer
// drops events on the bridge rather than stalling publishers.
func (p *Pipeline) ForwardTo(dst *Pipeline, decorate func(Event) Event) (stop func()) {
	sub := p.Subscribe(forwardBuffer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ev, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			if decorate != nil {
				ev = decorate(ev)
			}
			dst.Publish(ev)
		}
	}()
	return func() {
		sub.Close()
		<-done
	}
}

// forwardBuffer sizes the bridge's ring buffer. Generous because a bridge
// that drops loses events for every downstream observer, not just one.
const forwardBuffer = 4096
