// Package eventlog is the live observability pipeline: typed experiment
// events with monotonic sequence numbers, an append-only JSONL journal per
// experiment (size-rotated, crash-safe replay), and an in-process broker
// whose subscribers each own a bounded ring buffer — a slow or stalled
// consumer drops events and counts them, it never stalls the publisher.
//
// The paper's workflow (Fig. 2) runs long unattended sweeps; MACI's lesson
// (PAPERS.md) is that such campaigns are only operable when their progress is
// observable live. This package turns core.ProgressEvent/trace.Recorder-style
// after-the-fact recording into a streamable event spine: the runner and
// campaign scheduler publish here, the api serves it as Server-Sent Events,
// and the journal makes the stream replayable after the fact with the exact
// sequence a live observer saw.
package eventlog

import (
	"encoding/json"
	"fmt"
	"time"
)

// Type classifies an event.
type Type string

const (
	// TypeProgress mirrors a core.ProgressEvent: the workflow advanced.
	TypeProgress Type = "progress"
	// TypeLog is a structured log record teed in through the slog handler.
	TypeLog Type = "log"
	// TypeExec carries captured host command output (stdout+stderr) from a
	// setup or measurement script.
	TypeExec Type = "exec"
	// TypeHeartbeat is a replica liveness probe.
	TypeHeartbeat Type = "heartbeat"
	// TypeQueue is a campaign-queue lifecycle transition (submitted,
	// admitted, done, failed, cancelled) published by the controller's
	// admission scheduler; Attrs carry campaign id, user, and state.
	TypeQueue Type = "queue"
	// TypeHealth is a watchdog verdict: a probe tripped or recovered.
	// Attrs carry the probe name and new state.
	TypeHealth Type = "health"
	// TypeDropped is synthesized per subscriber — never published or
	// journaled — when its ring buffer overflowed: Attrs["dropped"] is how
	// many events the consumer lost since it was last told. Seq is zero, so
	// it must not advance a resume cursor.
	TypeDropped Type = "events.dropped"
)

// NoRun is the Run value of events that are not attached to a measurement
// run (setup-phase events, logs, heartbeats).
const NoRun = -1

// Event is one entry of the experiment event stream. Seq is assigned by the
// pipeline at publication and is strictly monotonic within one pipeline —
// it doubles as the SSE event id, so a consumer can resume a broken stream
// exactly where it left off.
type Event struct {
	Seq uint64    `json:"seq"`
	At  time.Time `json:"at"`
	Typ Type      `json:"type"`
	// Level is the slog level for log events ("INFO", "WARN", ...).
	Level string `json:"level,omitempty"`
	// Replica names the executing replica testbed ("" outside campaigns).
	Replica string `json:"replica,omitempty"`
	// Node names the physical host for per-host events.
	Node string `json:"node,omitempty"`
	// Phase is the workflow phase (core.PhaseSetup, ...) when known.
	Phase string `json:"phase,omitempty"`
	// Run is the measurement run index, or NoRun (-1) when the event is not
	// attached to a run.
	Run       int `json:"run"`
	TotalRuns int `json:"total_runs,omitempty"`
	// Attempt is the dispatch attempt for retry-aware campaign events.
	Attempt int    `json:"attempt,omitempty"`
	Message string `json:"message,omitempty"`
	Error   string `json:"error,omitempty"`
	// Attrs carries structured key/value context (slog attrs, exec sizes).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Encode renders the event as one JSONL line (trailing newline included).
func (e Event) Encode() ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("eventlog: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses one JSONL line produced by Encode.
func Decode(line []byte) (Event, error) {
	ev := Event{Run: NoRun}
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("eventlog: decode: %w", err)
	}
	return ev, nil
}
