package eventlog

import (
	"context"
	"testing"
	"time"

	"pos/internal/telemetry"
)

// TestLoggerStampsTraceCorrelation: inside a traced context every log event
// teed into the pipeline carries trace_id/span_id attrs, so journal output
// greps by trace. Untraced contexts stay unstamped.
func TestLoggerStampsTraceCorrelation(t *testing.T) {
	p := NewPipeline()
	sub := p.Subscribe(16)
	defer sub.Close()

	lg := NewLogger(p, nil)
	tr := telemetry.NewTrace("campaign:x")

	// Untraced: no correlation attrs.
	plain := WithLogger(context.Background(), lg)
	Logger(plain).Info("plain")

	// Traced: stamped with the active span's identity.
	sctx, span := telemetry.StartSpan(telemetry.ContextWithTrace(plain, tr), "setup")
	Logger(sctx).Info("traced", "replica", "alpha")
	span.End()
	tr.Finish()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	var got []Event
	for i := 0; i < 2; i++ {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatal("subscriber starved")
		}
		got = append(got, ev)
	}

	if got[0].Attrs[KeyTraceID] != "" || got[0].Attrs[KeySpanID] != "" {
		t.Errorf("untraced event stamped: %v", got[0].Attrs)
	}
	ev := got[1]
	if ev.Attrs[KeyTraceID] != tr.ID() {
		t.Errorf("trace_id = %q, want %q", ev.Attrs[KeyTraceID], tr.ID())
	}
	if ev.Attrs[KeySpanID] != span.SpanID() || span.SpanID() == "" {
		t.Errorf("span_id = %q, want active span %q", ev.Attrs[KeySpanID], span.SpanID())
	}
	if ev.Replica != "alpha" {
		t.Errorf("reserved attrs still promote: replica = %q", ev.Replica)
	}
}
