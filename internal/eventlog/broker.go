package eventlog

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// DefaultSubscriberBuffer is the ring capacity handed to subscribers that do
// not choose their own.
const DefaultSubscriberBuffer = 1024

// Broker fans published events out to subscribers. Publication never blocks:
// each subscriber owns a bounded ring buffer, and when a consumer falls
// behind, its oldest buffered events are dropped and counted instead of the
// publisher (the measurement hot path) waiting. A stalled SSE client
// therefore costs the campaign nothing but that client's own completeness.
type Broker struct {
	mu   sync.Mutex
	subs map[*Subscription]struct{}
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[*Subscription]struct{})}
}

// Subscribe registers a consumer with a ring buffer of the given capacity
// (DefaultSubscriberBuffer when <= 0). The caller must Close the
// subscription when done.
func (b *Broker) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{
		broker: b,
		buf:    make([]Event, buffer),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers ev to every live subscriber without blocking.
func (b *Broker) Publish(ev Event) {
	b.mu.Lock()
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
	}
}

func (b *Broker) remove(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscription is one consumer's bounded view of the stream.
type Subscription struct {
	broker *Broker

	mu      sync.Mutex
	buf     []Event // ring
	head    int     // index of the oldest buffered event
	n       int     // buffered count
	dropped uint64
	acked   uint64 // drops already reported to the consumer via TypeDropped
	closed  bool
	notify  chan struct{}
}

// push appends ev, evicting the oldest buffered event when full.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		eventsDropped.Inc()
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is buffered, the subscription is closed, or ctx
// ends. It returns ok=false once the subscription is closed and drained.
// When the ring overflowed since the last call, Next first returns one
// synthetic TypeDropped event (Seq 0, Attrs["dropped"] = gap size) so the
// consumer learns it lost events instead of silently missing them.
func (s *Subscription) Next(ctx context.Context) (Event, bool) {
	for {
		s.mu.Lock()
		if gap := s.dropped - s.acked; gap > 0 {
			s.acked = s.dropped
			s.mu.Unlock()
			return Event{
				At:    time.Now(),
				Typ:   TypeDropped,
				Level: "WARN",
				Run:   NoRun,
				Attrs: map[string]string{"dropped": strconv.FormatUint(gap, 10)},
			}, true
		}
		if s.n > 0 {
			ev := s.buf[s.head]
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-ctx.Done():
			return Event{}, false
		case <-s.notify:
		}
	}
}

// Dropped reports how many events this subscriber lost to backpressure.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the broker. Buffered events remain
// readable via Next until drained.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.broker.remove(s)
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
