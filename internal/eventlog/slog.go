package eventlog

import (
	"context"
	"log/slog"
	"strconv"

	"pos/internal/telemetry"
)

// Reserved slog attribute keys promoted into typed Event fields by the tee
// handler; everything else lands in Event.Attrs.
const (
	KeyReplica = "replica"
	KeyNode    = "node"
	KeyPhase   = "phase"
	KeyRun     = "run"
	KeyError   = "err"

	// Trace correlation attrs stamped by Logger when the context carries an
	// active span — they stay in Event.Attrs (not typed fields) so journal
	// output can be grepped by trace without a schema change.
	KeyTraceID = "trace_id"
	KeySpanID  = "span_id"
)

type loggerKey struct{}

// WithLogger attaches a structured logger to the context. The runner,
// scheduler, and tool services pull it back out with Logger — the logging
// spine is carried by context, never by globals.
func WithLogger(ctx context.Context, lg *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, lg)
}

// Logger returns the context's logger, or a discard logger when none is
// attached — callers log unconditionally and the spine decides whether the
// records go anywhere. Inside a traced context every record is stamped with
// trace_id/span_id attrs, so `posctl events` output greps by trace. The
// stamping happens here (not in Handle) because slog.Logger methods hand
// context.Background to the handler, not the caller's context.
func Logger(ctx context.Context) *slog.Logger {
	lg, ok := ctx.Value(loggerKey{}).(*slog.Logger)
	if !ok || lg == nil {
		return discardLogger
	}
	if s := telemetry.SpanFromContext(ctx); s != nil {
		return lg.With(KeyTraceID, s.TraceID(), KeySpanID, s.SpanID())
	}
	return lg
}

// discardHandler is a no-op slog.Handler. (slog.DiscardHandler only exists
// from Go 1.24; this module's language version is older.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger whose records go nowhere.
func Discard() *slog.Logger { return discardLogger }

// Handler is a slog.Handler that tees records into an event pipeline as
// TypeLog events. Reserved keys (replica, node, phase, run, err) become
// typed Event fields; remaining attrs are carried as strings in Event.Attrs.
type Handler struct {
	p     *Pipeline
	level slog.Leveler
	attrs []slog.Attr
	group string
}

// NewHandler tees records at or above level (nil means slog.LevelInfo) into p.
func NewHandler(p *Pipeline, level slog.Leveler) *Handler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &Handler{p: p, level: level}
}

// NewLogger is shorthand for slog.New(NewHandler(p, level)).
func NewLogger(p *Pipeline, level slog.Leveler) *slog.Logger {
	return slog.New(NewHandler(p, level))
}

// Enabled implements slog.Handler.
func (h *Handler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// WithAttrs implements slog.Handler.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

// WithGroup implements slog.Handler. Groups prefix non-reserved keys.
func (h *Handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	if h.group != "" {
		nh.group = h.group + "." + name
	} else {
		nh.group = name
	}
	return &nh
}

// Handle implements slog.Handler: the record becomes one published event.
func (h *Handler) Handle(_ context.Context, rec slog.Record) error {
	ev := Event{Typ: TypeLog, Level: rec.Level.String(), Message: rec.Message, Run: NoRun, At: rec.Time}
	absorb := func(a slog.Attr) {
		key := a.Key
		val := a.Value.Resolve()
		if h.group == "" {
			switch key {
			case KeyReplica:
				ev.Replica = val.String()
				return
			case KeyNode:
				ev.Node = val.String()
				return
			case KeyPhase:
				ev.Phase = val.String()
				return
			case KeyError:
				ev.Error = val.String()
				return
			case KeyRun:
				if n, err := strconv.Atoi(val.String()); err == nil {
					ev.Run = n
					return
				}
			}
		} else {
			key = h.group + "." + key
		}
		if ev.Attrs == nil {
			ev.Attrs = make(map[string]string)
		}
		ev.Attrs[key] = val.String()
	}
	for _, a := range h.attrs {
		absorb(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		absorb(a)
		return true
	})
	h.p.Publish(ev)
	return nil
}
