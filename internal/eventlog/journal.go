package eventlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultSegmentLimit is the size at which a journal segment rotates.
const DefaultSegmentLimit = 4 << 20 // 4 MiB

const (
	segmentPrefix = "events-"
	segmentSuffix = ".jsonl"
)

// Journal is the append-only on-disk form of the event stream: one directory
// per experiment holding JSONL segment files (events-00000.jsonl, ...) that
// rotate at a size limit. Appends are whole lines written in one syscall;
// a crash can at worst tear the final line, which Open truncates away and
// Replay tolerates — everything before it replays exactly.
type Journal struct {
	mu       sync.Mutex
	dir      string
	segLimit int64
	f        *os.File
	size     int64
	segIdx   int
	lastSeq  uint64
}

// OpenJournal opens (creating if needed) the journal rooted at dir. An
// existing journal is continued: the highest segment is re-opened for append
// after truncating any torn trailing line, so a crashed controller picks up
// where the stream broke off. segLimit <= 0 selects DefaultSegmentLimit.
func OpenJournal(dir string, segLimit int64) (*Journal, error) {
	if segLimit <= 0 {
		segLimit = DefaultSegmentLimit
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: journal: %w", err)
	}
	j := &Journal{dir: dir, segLimit: segLimit}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		j.segIdx = last
		if err := j.recoverTail(j.segPath(last)); err != nil {
			return nil, err
		}
	}
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) segPath(idx int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%05d%s", segmentPrefix, idx, segmentSuffix))
}

// segments lists the existing segment indices in ascending order.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: journal: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix))
		if err != nil {
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// recoverTail truncates a torn trailing line (no final newline) left by a
// crash mid-append and records the last sequence number seen, so appends
// after reopen continue the stream without overlapping replay.
func (j *Journal) recoverTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	if n := len(data); n > 0 && data[n-1] != '\n' {
		cut := bytes.LastIndexByte(data, '\n') + 1
		if err := os.Truncate(path, int64(cut)); err != nil {
			return fmt.Errorf("eventlog: journal: truncate torn tail: %w", err)
		}
		data = data[:cut]
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if ev, err := Decode(line); err == nil && ev.Seq > j.lastSeq {
			j.lastSeq = ev.Seq
		}
	}
	return nil
}

// openSegment opens the current segment index for append.
func (j *Journal) openSegment() error {
	f, err := os.OpenFile(j.segPath(j.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	j.f, j.size = f, st.Size()
	return nil
}

// Append writes one event as a JSONL line, rotating to a fresh segment first
// when the current one is at its size limit.
func (j *Journal) Append(ev Event) error {
	line, err := ev.Encode()
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("eventlog: journal: closed")
	}
	if j.size > 0 && j.size+int64(len(line)) > j.segLimit {
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("eventlog: journal: %w", err)
		}
		j.segIdx++
		if err := j.openSegment(); err != nil {
			return err
		}
		journalRotations.Inc()
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	j.size += int64(len(line))
	if ev.Seq > j.lastSeq {
		j.lastSeq = ev.Seq
	}
	journalBytes.Add(float64(len(line)))
	return nil
}

// LastSeq returns the highest sequence number the journal has seen (from
// recovery or appends).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Sync forces the current segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	return nil
}

// Close closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("eventlog: journal: %w", err)
	}
	return nil
}

// Replay reads every event recorded under dir in sequence order. A torn
// trailing line in the newest segment (crash mid-append) is skipped; a torn
// or corrupt line anywhere else is an error — the journal's contract is that
// only the very tail can be damaged.
func Replay(dir string) ([]Event, error) {
	return ReplaySince(dir, 0)
}

// ReplaySince reads the events with Seq > after. It reads segment files
// directly, so it works on live journals (appends are line-atomic within one
// process) and on finished experiments alike.
func ReplaySince(dir string, after uint64) ([]Event, error) {
	idxs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var events []Event
	for si, idx := range idxs {
		path := filepath.Join(dir, fmt.Sprintf("%s%05d%s", segmentPrefix, idx, segmentSuffix))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("eventlog: journal: %w", err)
		}
		lines := bytes.Split(data, []byte{'\n'})
		for li, line := range lines {
			if len(line) == 0 {
				continue
			}
			ev, err := Decode(line)
			if err != nil {
				// Only the newest segment's final line may be torn.
				if si == len(idxs)-1 && li == len(lines)-1 {
					continue
				}
				return nil, fmt.Errorf("eventlog: journal: segment %d line %d: %w", idx, li+1, err)
			}
			if ev.Seq > after {
				events = append(events, ev)
			}
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })
	return events, nil
}
