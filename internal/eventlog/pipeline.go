package eventlog

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline is the process-side event spine: it assigns monotonic sequence
// numbers, appends to the experiment journal when one is attached, and fans
// out to live subscribers through the broker. Publish is safe for concurrent
// use and never blocks on a slow consumer; the journal write is the only
// synchronous cost on the hot path.
type Pipeline struct {
	seq    atomic.Uint64
	broker *Broker
	clock  atomic.Pointer[func() time.Time]

	mu      sync.Mutex // orders journal appends with attach/detach
	journal *Journal
}

// NewPipeline returns a pipeline with no journal attached. Events published
// before a journal is attached reach live subscribers but are not persisted —
// the journal attaches once the experiment's results directory exists.
func NewPipeline() *Pipeline {
	return &Pipeline{broker: NewBroker()}
}

// SetClock pins the timestamp source (tests use this; default time.Now).
func (p *Pipeline) SetClock(clock func() time.Time) {
	p.clock.Store(&clock)
}

func (p *Pipeline) now() time.Time {
	if c := p.clock.Load(); c != nil {
		return (*c)()
	}
	return time.Now()
}

// AttachJournal starts persisting published events into j. The sequence
// counter is advanced past the journal's last recorded sequence, so a
// controller resuming a crashed experiment continues the stream instead of
// reissuing ids.
func (p *Pipeline) AttachJournal(j *Journal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.journal = j
	if j == nil {
		return
	}
	last := j.LastSeq()
	for {
		cur := p.seq.Load()
		if cur >= last || p.seq.CompareAndSwap(cur, last) {
			return
		}
	}
}

// DetachJournal stops persisting and returns the previously attached journal
// (nil if none). The caller owns closing it.
func (p *Pipeline) DetachJournal() *Journal {
	p.mu.Lock()
	defer p.mu.Unlock()
	j := p.journal
	p.journal = nil
	return j
}

// Publish stamps ev with the next sequence number and the current time, then
// journals and broadcasts it. The stamped event is returned. Journal append
// failures are counted, not propagated — observability must never fail the
// experiment it observes.
func (p *Pipeline) Publish(ev Event) Event {
	ev.Seq = p.seq.Add(1)
	if ev.At.IsZero() {
		ev.At = p.now()
	}
	if ev.Typ == "" {
		ev.Typ = TypeLog
	}
	p.mu.Lock()
	if p.journal != nil {
		if err := p.journal.Append(ev); err != nil {
			journalErrors.Inc()
		}
	}
	p.mu.Unlock()
	p.broker.Publish(ev)
	eventsPublished.Inc()
	return ev
}

// Subscribe attaches a live consumer (see Broker.Subscribe).
func (p *Pipeline) Subscribe(buffer int) *Subscription {
	return p.broker.Subscribe(buffer)
}

// LastSeq returns the sequence number of the most recently published event.
func (p *Pipeline) LastSeq() uint64 { return p.seq.Load() }

// ReplaySince reads journaled events with Seq > after. It returns nil
// without error when no journal is attached — the stream then has no
// replayable history.
func (p *Pipeline) ReplaySince(after uint64) ([]Event, error) {
	p.mu.Lock()
	j := p.journal
	p.mu.Unlock()
	if j == nil {
		return nil, nil
	}
	return ReplaySince(j.Dir(), after)
}
