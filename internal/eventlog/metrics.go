package eventlog

import "pos/internal/telemetry"

// Event-pipeline telemetry: publication volume, subscriber backpressure, and
// journal health. Drops count per-subscriber ring evictions — a rising value
// with a flat published count points at one stalled consumer, not at the
// campaign.
var (
	eventsPublished = telemetry.Default.Counter("pos_events_published_total",
		"Events published into the experiment event pipeline.")
	eventsDropped = telemetry.Default.Counter("pos_events_dropped_total",
		"Events evicted from slow subscribers' ring buffers.")
	journalBytes = telemetry.Default.Counter("pos_events_journal_bytes_total",
		"Bytes appended to event journals.")
	journalRotations = telemetry.Default.Counter("pos_events_journal_rotations_total",
		"Journal segment rotations.")
	journalErrors = telemetry.Default.Counter("pos_events_journal_errors_total",
		"Failed journal appends (events still reached live subscribers).")
)
