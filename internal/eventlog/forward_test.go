package eventlog

import (
	"context"
	"testing"
	"time"
)

func TestForwardTo(t *testing.T) {
	src := NewPipeline()
	dst := NewPipeline()
	sub := dst.Subscribe(16)
	defer sub.Close()

	stop := src.ForwardTo(dst, func(ev Event) Event {
		attrs := make(map[string]string, len(ev.Attrs)+1)
		for k, v := range ev.Attrs {
			attrs[k] = v
		}
		attrs["campaign"] = "7"
		ev.Attrs = attrs
		return ev
	})

	// Seed dst past src's sequence so re-stamping is observable.
	dst.Publish(Event{Typ: TypeLog, Run: NoRun, Message: "pre-existing"})
	orig := src.Publish(Event{Typ: TypeLog, Run: NoRun, Message: "hello",
		Attrs: map[string]string{"k": "v"}})
	stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	first, ok := sub.Next(ctx)
	if !ok || first.Message != "pre-existing" {
		t.Fatalf("first dst event = %+v, ok=%v", first, ok)
	}
	fwd, ok := sub.Next(ctx)
	if !ok {
		t.Fatal("forwarded event never arrived")
	}
	if fwd.Message != "hello" || fwd.Attrs["campaign"] != "7" || fwd.Attrs["k"] != "v" {
		t.Errorf("forwarded event = %+v", fwd)
	}
	if fwd.Seq != first.Seq+1 {
		t.Errorf("forwarded Seq = %d, want dst-stamped %d", fwd.Seq, first.Seq+1)
	}
	if !fwd.At.Equal(orig.At) {
		t.Errorf("forwarded At = %v, want original %v", fwd.At, orig.At)
	}
	// The original event on src must be untouched by the decorator.
	if orig.Attrs["campaign"] != "" {
		t.Errorf("decorator mutated the source event: %+v", orig.Attrs)
	}
}

func TestForwardToStopDrains(t *testing.T) {
	src := NewPipeline()
	dst := NewPipeline()
	sub := dst.Subscribe(64)
	defer sub.Close()

	stop := src.ForwardTo(dst, nil)
	const n = 32
	for i := 0; i < n; i++ {
		src.Publish(Event{Typ: TypeLog, Run: NoRun, Message: "ev"})
	}
	stop() // must deliver everything already published before returning

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if _, ok := sub.Next(ctx); !ok {
			t.Fatalf("only %d/%d events survived stop", i, n)
		}
	}
	// Publishing after stop must not reach dst.
	src.Publish(Event{Typ: TypeLog, Run: NoRun, Message: "late"})
	if dst.LastSeq() != uint64(n) {
		t.Errorf("dst LastSeq = %d after post-stop publish, want %d", dst.LastSeq(), n)
	}
}
