package eventlog

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testClock() func() time.Time {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "events")
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Event, 0, 10)
	for i := 1; i <= 10; i++ {
		ev := Event{
			Seq: uint64(i), At: time.Unix(int64(1000+i), 0).UTC(),
			Typ: TypeProgress, Phase: "measurement", Run: i - 1, TotalRuns: 10,
			Replica: "replica0", Message: fmt.Sprintf("run %d", i-1),
		}
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
		want = append(want, ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "events")
	j, err := OpenJournal(dir, 256) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	const total = 50
	for i := 1; i <= total; i++ {
		ev := Event{Seq: uint64(i), At: time.Unix(int64(i), 0).UTC(), Typ: TypeLog,
			Run: NoRun, Message: fmt.Sprintf("event number %d with some padding text", i)}
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}
	got, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("replayed %d events across %d segments, want %d", len(got), len(segs), total)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	// ReplaySince skips the prefix exactly.
	tail, err := ReplaySince(dir, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 10 || tail[0].Seq != 41 {
		t.Fatalf("ReplaySince(40) = %d events starting at %d, want 10 starting at 41", len(tail), tail[0].Seq)
	}
}

func TestJournalTornTailRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "events")
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := j.Append(Event{Seq: uint64(i), At: time.Unix(int64(i), 0).UTC(), Typ: TypeLog, Run: NoRun}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: tear the final line.
	seg := filepath.Join(dir, "events-00000.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay on the damaged journal drops only the torn line.
	got, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d events from torn journal, want 4", len(got))
	}

	// Reopen truncates the tail and continues the sequence.
	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last := j2.LastSeq(); last != 4 {
		t.Fatalf("recovered LastSeq = %d, want 4", last)
	}
	if err := j2.Append(Event{Seq: 5, At: time.Unix(5, 0).UTC(), Typ: TypeLog, Run: NoRun}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4].Seq != 5 {
		t.Fatalf("after recovery replay has %d events (last seq %d), want 5 ending at 5", len(got), got[len(got)-1].Seq)
	}
}

func TestBrokerSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBroker()
	slow := b.Subscribe(4) // never read until the end
	fast := b.Subscribe(64)
	defer slow.Close()
	defer fast.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 32; i++ {
			b.Publish(Event{Seq: uint64(i), Typ: TypeLog, Run: NoRun})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}

	if d := slow.Dropped(); d != 32-4 {
		t.Fatalf("slow subscriber dropped %d events, want %d", d, 32-4)
	}
	// The slow subscriber is first told about the gap (one synthetic
	// overflow notice), then sees the newest events, in order.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	notice, ok := slow.Next(ctx)
	if !ok || notice.Typ != TypeDropped || notice.Attrs["dropped"] != "28" {
		t.Fatalf("first slow.Next = %+v/%v, want a TypeDropped notice for 28 events", notice, ok)
	}
	for want := uint64(29); want <= 32; want++ {
		ev, ok := slow.Next(ctx)
		if !ok || ev.Seq != want {
			t.Fatalf("slow.Next = %v/%v, want seq %d", ev.Seq, ok, want)
		}
	}
	// The fast subscriber lost nothing.
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast subscriber dropped %d events", d)
	}
	for want := uint64(1); want <= 32; want++ {
		ev, ok := fast.Next(ctx)
		if !ok || ev.Seq != want {
			t.Fatalf("fast.Next = %v/%v, want seq %d", ev.Seq, ok, want)
		}
	}
}

func TestSubscriptionNextUnblocksOnClose(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(4)
	go func() {
		time.Sleep(10 * time.Millisecond)
		sub.Close()
	}()
	if _, ok := sub.Next(context.Background()); ok {
		t.Fatal("Next returned an event from an empty closed subscription")
	}
}

func TestPipelinePublishJournalsAndBroadcasts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "events")
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	p.SetClock(testClock())
	p.AttachJournal(j)
	sub := p.Subscribe(16)
	defer sub.Close()

	for i := 0; i < 5; i++ {
		p.Publish(Event{Typ: TypeProgress, Phase: "measurement", Run: i, Message: "go"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatal("subscriber starved")
		}
		if ev.Seq != uint64(i+1) || ev.Run != i || ev.At.IsZero() {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	if p.DetachJournal() != j {
		t.Fatal("DetachJournal did not return the attached journal")
	}
	j.Close()
	got, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("journal holds %d events, want 5", len(got))
	}
	// Replay through the pipeline after detach: no journal, no history.
	if evs, err := p.ReplaySince(0); err != nil || evs != nil {
		t.Fatalf("ReplaySince on journal-less pipeline = %v, %v", evs, err)
	}
}

func TestPipelineResumesSequenceFromJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "events")
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	p.AttachJournal(j)
	for i := 0; i < 3; i++ {
		p.Publish(Event{Typ: TypeLog, Run: NoRun})
	}
	p.DetachJournal()
	j.Close()

	// A fresh controller (crash restart) reopens the same journal: the new
	// pipeline continues at seq 4, never reissuing ids.
	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p2 := NewPipeline()
	p2.AttachJournal(j2)
	ev := p2.Publish(Event{Typ: TypeLog, Run: NoRun})
	if ev.Seq != 4 {
		t.Fatalf("resumed pipeline published seq %d, want 4", ev.Seq)
	}
}

func TestSlogHandlerTeesIntoPipeline(t *testing.T) {
	p := NewPipeline()
	p.SetClock(testClock())
	sub := p.Subscribe(16)
	defer sub.Close()

	lg := NewLogger(p, slog.LevelInfo)
	lg.Debug("dropped below level")
	lg.Info("boot complete", "replica", "replica1", "node", "vriga", "run", 7, "elapsed", "1.2s")
	lg.With("phase", "setup").Warn("barrier timeout", "err", "deadline exceeded")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok {
		t.Fatal("no event for Info record")
	}
	if ev.Typ != TypeLog || ev.Level != "INFO" || ev.Message != "boot complete" {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Replica != "replica1" || ev.Node != "vriga" || ev.Run != 7 {
		t.Fatalf("reserved keys not promoted: %+v", ev)
	}
	if ev.Attrs["elapsed"] != "1.2s" {
		t.Fatalf("attrs not carried: %+v", ev.Attrs)
	}
	ev, ok = sub.Next(ctx)
	if !ok {
		t.Fatal("no event for Warn record")
	}
	if ev.Level != "WARN" || ev.Phase != "setup" || ev.Error != "deadline exceeded" {
		t.Fatalf("unexpected event %+v", ev)
	}
	// Only the two >= Info records were published.
	cctx, ccancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer ccancel()
	if extra, ok := sub.Next(cctx); ok {
		t.Fatalf("unexpected extra event %+v", extra)
	}
}

func TestContextLoggerDefaultsToDiscard(t *testing.T) {
	lg := Logger(context.Background())
	if lg == nil {
		t.Fatal("Logger returned nil")
	}
	lg.Info("goes nowhere") // must not panic
	p := NewPipeline()
	attached := NewLogger(p, slog.LevelInfo)
	ctx := WithLogger(context.Background(), attached)
	if Logger(ctx) != attached {
		t.Fatal("WithLogger/Logger round trip failed")
	}
}

func TestPublishConcurrentSequenceUnique(t *testing.T) {
	p := NewPipeline()
	sub := p.Subscribe(4096)
	defer sub.Close()
	var wg sync.WaitGroup
	const goroutines, each = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Publish(Event{Typ: TypeLog, Run: NoRun})
			}
		}()
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 0; i < goroutines*each; i++ {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("starved after %d events", i)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if p.LastSeq() != goroutines*each {
		t.Fatalf("LastSeq = %d, want %d", p.LastSeq(), goroutines*each)
	}
}

// TestDroppedNoticeOncePerGap: the synthetic overflow notice reports each
// gap exactly once, carries no sequence number (it must not advance a resume
// cursor), and a further overflow produces a fresh notice for the new gap.
func TestDroppedNoticeOncePerGap(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(2)
	defer sub.Close()
	for i := 1; i <= 5; i++ {
		b.Publish(Event{Seq: uint64(i), Typ: TypeLog, Run: NoRun})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	notice, ok := sub.Next(ctx)
	if !ok || notice.Typ != TypeDropped {
		t.Fatalf("first Next = %+v/%v, want TypeDropped", notice, ok)
	}
	if notice.Seq != 0 {
		t.Fatalf("synthetic notice carries seq %d, must be 0", notice.Seq)
	}
	if notice.Attrs["dropped"] != "3" || notice.At.IsZero() {
		t.Fatalf("notice = %+v, want dropped=3 with a timestamp", notice)
	}
	// The gap is acknowledged: the buffered events follow without another
	// notice.
	for want := uint64(4); want <= 5; want++ {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Seq != want || ev.Typ == TypeDropped {
			t.Fatalf("Next = %+v/%v, want seq %d", ev, ok, want)
		}
	}
	// A second overflow yields a second notice for exactly the new gap.
	for i := 6; i <= 9; i++ {
		b.Publish(Event{Seq: uint64(i), Typ: TypeLog, Run: NoRun})
	}
	notice, ok = sub.Next(ctx)
	if !ok || notice.Typ != TypeDropped || notice.Attrs["dropped"] != "2" {
		t.Fatalf("second notice = %+v/%v, want dropped=2", notice, ok)
	}
}
