// Package pdu emulates a remotely switchable power distribution unit — the
// alternative initialization API the paper names besides IPMI ("a remotely
// switchable power plug that triggers a device reboot"). A PDU knows nothing
// about the devices it powers: it exposes numbered outlets over a small
// HTTP/JSON interface, and cutting an outlet's power hard-resets whatever
// hangs off it. Testbeds use it for nodes without a BMC: even a completely
// wedged OS cannot survive losing power (requirement R3).
package pdu

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Outlet abstracts the powered device: the PDU can only switch the supply.
type Outlet interface {
	// PowerOff cuts the supply immediately.
	PowerOff()
	// PowerOn restores the supply (the device boots its configured
	// image, which may fail — the PDU does not care).
	PowerOn() error
}

// OutletState is the reported state of one outlet.
type OutletState struct {
	ID int `json:"id"`
	// On reports whether the outlet currently supplies power.
	On bool `json:"on"`
	// Label is a free-form operator note ("rack 3, vtartu").
	Label string `json:"label,omitempty"`
}

// Server is an emulated PDU.
type Server struct {
	mu      sync.Mutex
	outlets map[int]*outlet
	http    *http.Server
	ln      net.Listener
}

type outlet struct {
	dev   Outlet
	on    bool
	label string
}

// NewServer returns a PDU with no outlets wired.
func NewServer() *Server {
	return &Server{outlets: make(map[int]*outlet)}
}

// Attach wires a device to an outlet (initially powered on — devices are
// racked live). Re-attaching to an occupied outlet fails.
func (s *Server) Attach(id int, label string, dev Outlet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.outlets[id]; busy {
		return fmt.Errorf("pdu: outlet %d already occupied", id)
	}
	s.outlets[id] = &outlet{dev: dev, on: true, label: label}
	return nil
}

// Serve starts the PDU's HTTP interface on a loopback port.
func (s *Server) Serve() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("pdu: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("GET /outlets", s.list)
	mux.HandleFunc("GET /outlets/{id}", s.get)
	mux.HandleFunc("POST /outlets/{id}/power", s.power)
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return nil
}

// Addr returns the PDU's HTTP address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP interface (outlet power is unaffected).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]OutletState, 0, len(s.outlets))
	for id, o := range s.outlets {
		out = append(out, OutletState{ID: id, On: o.on, Label: o.label})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) outletOf(r *http.Request) (int, *outlet, bool) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		return 0, nil, false
	}
	s.mu.Lock()
	o, ok := s.outlets[id]
	s.mu.Unlock()
	return id, o, ok
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	id, o, ok := s.outletOf(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such outlet"})
		return
	}
	s.mu.Lock()
	st := OutletState{ID: id, On: o.on, Label: o.label}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// powerRequest is the body of a power command.
type powerRequest struct {
	// Op is "on", "off", or "cycle".
	Op string `json:"op"`
}

func (s *Server) power(w http.ResponseWriter, r *http.Request) {
	id, o, ok := s.outletOf(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such outlet"})
		return
	}
	var req powerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	apply := func(on bool) {
		s.mu.Lock()
		o.on = on
		s.mu.Unlock()
		if on {
			// A boot failure is the device's problem; the outlet
			// delivered power either way.
			_ = o.dev.PowerOn()
		} else {
			o.dev.PowerOff()
		}
	}
	switch req.Op {
	case "on":
		apply(true)
	case "off":
		apply(false)
	case "cycle":
		apply(false)
		apply(true)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown op %q", req.Op)})
		return
	}
	s.mu.Lock()
	st := OutletState{ID: id, On: o.on, Label: o.label}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Client drives a PDU over HTTP.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the PDU at addr.
func NewClient(addr string) *Client {
	return &Client{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
}

// Outlets lists the PDU's outlets.
func (c *Client) Outlets() ([]OutletState, error) {
	resp, err := c.hc.Get(c.base + "/outlets")
	if err != nil {
		return nil, fmt.Errorf("pdu: %w", err)
	}
	defer resp.Body.Close()
	var out []OutletState
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("pdu: %w", err)
	}
	return out, nil
}

// Power issues a power command ("on", "off", "cycle") to an outlet.
func (c *Client) Power(id int, op string) (OutletState, error) {
	body, _ := json.Marshal(powerRequest{Op: op})
	resp, err := c.hc.Post(fmt.Sprintf("%s/outlets/%d/power", c.base, id), "application/json", bytes.NewReader(body))
	if err != nil {
		return OutletState{}, fmt.Errorf("pdu: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb map[string]string
		json.NewDecoder(resp.Body).Decode(&eb)
		return OutletState{}, fmt.Errorf("pdu: power %s outlet %d: %s", op, id, eb["error"])
	}
	var st OutletState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return OutletState{}, fmt.Errorf("pdu: %w", err)
	}
	return st, nil
}

// Cycle power-cycles an outlet — the PDU's reboot primitive.
func (c *Client) Cycle(id int) error {
	_, err := c.Power(id, "cycle")
	return err
}
