package pdu

import (
	"context"
	"strings"
	"testing"

	"pos/internal/image"
	"pos/internal/node"
)

func newNode(t *testing.T, name string) *node.Node {
	t.Helper()
	store := image.NewStore()
	if err := store.Add(image.DefaultDebianBuster()); err != nil {
		t.Fatal(err)
	}
	n := node.New(name, store)
	n.BootDelay = 0
	if err := n.SetBoot("debian-buster", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.PowerOn(); err != nil {
		t.Fatal(err)
	}
	return n
}

func setup(t *testing.T) (*Server, *Client, *node.Node) {
	t.Helper()
	n := newNode(t, "vtartu")
	s := NewServer()
	if err := s.Attach(3, "rack 1, vtartu", n); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, NewClient(s.Addr()), n
}

func TestListOutlets(t *testing.T) {
	_, c, _ := setup(t)
	outlets, err := c.Outlets()
	if err != nil {
		t.Fatal(err)
	}
	if len(outlets) != 1 || outlets[0].ID != 3 || !outlets[0].On || outlets[0].Label != "rack 1, vtartu" {
		t.Errorf("outlets = %+v", outlets)
	}
}

func TestPowerOffOn(t *testing.T) {
	_, c, n := setup(t)
	st, err := c.Power(3, "off")
	if err != nil {
		t.Fatal(err)
	}
	if st.On {
		t.Error("outlet reports on after off")
	}
	if n.State() != node.StateOff {
		t.Errorf("node state = %s", n.State())
	}
	st, err = c.Power(3, "on")
	if err != nil || !st.On {
		t.Fatalf("power on: %+v, %v", st, err)
	}
	if n.State() != node.StateRunning {
		t.Errorf("node state = %s after power on", n.State())
	}
}

func TestCycleRecoversWedgedNode(t *testing.T) {
	// The R3 scenario without a BMC: OS wedged, only the power plug can
	// recover the machine.
	_, c, n := setup(t)
	n.Wedge()
	if _, err := n.Exec(context.Background(), "echo alive", nil); err == nil {
		t.Fatal("wedged node executed a script")
	}
	if err := c.Cycle(3); err != nil {
		t.Fatal(err)
	}
	out, err := n.Exec(context.Background(), "echo alive", nil)
	if err != nil || !strings.Contains(out, "alive") {
		t.Errorf("after power cycle: %q, %v", out, err)
	}
	if n.BootCount() != 2 {
		t.Errorf("boot count = %d", n.BootCount())
	}
}

func TestCycleSurvivesBootFailure(t *testing.T) {
	// The PDU delivers power regardless of whether the device boots.
	_, c, n := setup(t)
	n.InjectBootFailures(1)
	if err := c.Cycle(3); err != nil {
		t.Fatalf("cycle reported the device's boot failure: %v", err)
	}
	if n.State() != node.StateWedged {
		t.Errorf("state = %s, want wedged after injected failure", n.State())
	}
	// A second cycle recovers.
	if err := c.Cycle(3); err != nil {
		t.Fatal(err)
	}
	if n.State() != node.StateRunning {
		t.Errorf("state = %s", n.State())
	}
}

func TestErrors(t *testing.T) {
	s, c, _ := setup(t)
	if _, err := c.Power(99, "off"); err == nil {
		t.Error("power to missing outlet succeeded")
	}
	if _, err := c.Power(3, "explode"); err == nil {
		t.Error("unknown op accepted")
	}
	if err := s.Attach(3, "dup", newNode(t, "other")); err == nil {
		t.Error("double attach accepted")
	}
}

func TestMultipleOutlets(t *testing.T) {
	s := NewServer()
	a, b := newNode(t, "a"), newNode(t, "b")
	if err := s.Attach(1, "a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(2, "b", b); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr())
	if _, err := c.Power(1, "off"); err != nil {
		t.Fatal(err)
	}
	if a.State() != node.StateOff {
		t.Error("outlet 1 did not cut node a")
	}
	if b.State() != node.StateRunning {
		t.Error("outlet 1 affected node b")
	}
	outlets, _ := c.Outlets()
	if len(outlets) != 2 || outlets[0].ID != 1 || outlets[1].ID != 2 {
		t.Errorf("outlets = %+v", outlets)
	}
}
