package netem

import (
	"time"

	"pos/internal/pcap"
	"pos/internal/sim"
)

// Tap is an inline capture point: wired between two segments, it forwards
// every batch unchanged while recording one pcap record per batch
// (representative frame, original batch size in the record's length field).
// It is the emulation's tcpdump — captures taken here can be inspected with
// standard tooling and replayed by the load generator.
type Tap struct {
	Name string

	in, out *Port
	writer  *pcap.Writer
	// Epoch anchors virtual time zero in the capture's wall-clock
	// timestamps.
	Epoch time.Time
	// Records counts captured batches.
	Records int64
}

// NewTap returns a tap writing to w. Wire its In and Out ports inline.
func NewTap(name string, w *pcap.Writer) *Tap {
	t := &Tap{
		Name:   name,
		writer: w,
		Epoch:  time.Date(2021, 12, 7, 0, 0, 0, 0, time.UTC),
	}
	t.in = NewPort(name+".in", t)
	t.out = NewPort(name+".out", t)
	t.in.HardwareTimestamps = true
	t.out.HardwareTimestamps = true
	return t
}

// In returns the port facing the traffic source.
func (t *Tap) In() *Port { return t.in }

// Out returns the port facing the traffic destination.
func (t *Tap) Out() *Port { return t.out }

// HandleBatch implements Device: record, then pass through.
func (t *Tap) HandleBatch(now sim.Time, b Batch, rx *Port) {
	if t.writer != nil {
		_ = t.writer.WritePacket(pcap.Packet{
			Timestamp: t.Epoch.Add(time.Duration(now)),
			Data:      b.Data,
			OrigLen:   b.FrameSize,
		})
		t.Records++
	}
	if rx == t.in {
		t.out.Send(now, b)
	} else {
		t.in.Send(now, b)
	}
}
