package netem

import (
	"bytes"
	"testing"

	"pos/internal/pcap"
	"pos/internal/sim"
)

func TestLossyLinkDropsApproximately(t *testing.T) {
	e := sim.NewEngine()
	sink := NewSink("rx")
	tx := NewPort("tx", nil)
	Wire(e, tx, sink.Port, LinkConfig{LossRatio: 0.1, Seed: 7})
	data := frame(t, 64, 1, 2)
	const offered = 100_000
	for i := 0; i < 100; i++ {
		i := i
		e.At(sim.Time(i)*sim.Time(sim.Millisecond), func(now sim.Time) {
			tx.Send(now, Batch{Data: data, FrameSize: 64, Count: offered / 100})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	loss := 1 - float64(sink.Packets)/float64(offered)
	if loss < 0.08 || loss > 0.12 {
		t.Errorf("loss = %.4f, want ~0.10", loss)
	}
	// TX counters see every packet as sent — in-transit loss shows up
	// only as the TX/RX counter discrepancy, like on real hardware.
	st := tx.Stats()
	if st.TxPackets != offered || st.TxDropped != 0 {
		t.Errorf("tx accounting: sent=%d dropped=%d, want %d/0", st.TxPackets, st.TxDropped, offered)
	}
	if sink.Packets >= st.TxPackets {
		t.Errorf("delivered %d >= sent %d on a lossy wire", sink.Packets, st.TxPackets)
	}
}

func TestLossyLinkDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) int64 {
		e := sim.NewEngine()
		sink := NewSink("rx")
		tx := NewPort("tx", nil)
		Wire(e, tx, sink.Port, LinkConfig{LossRatio: 0.05, Seed: seed})
		data := frame(t, 64, 1, 2)
		for i := 0; i < 50; i++ {
			i := i
			e.At(sim.Time(i)*sim.Time(sim.Millisecond), func(now sim.Time) {
				tx.Send(now, Batch{Data: data, FrameSize: 64, Count: 100})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return sink.Packets
	}
	if run(1) != run(1) {
		t.Error("same seed produced different loss")
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical loss (suspicious)")
	}
}

func TestLossyLinkLargeBatchGaussianPath(t *testing.T) {
	// Batches above 1000 packets take the Gaussian approximation; the
	// thinning must stay near the expectation and inside [0, count].
	e := sim.NewEngine()
	sink := NewSink("rx")
	tx := NewPort("tx", nil)
	// A generous queue so the whole burst is accepted and only the loss
	// process thins it.
	Wire(e, tx, sink.Port, LinkConfig{LossRatio: 0.2, Seed: 3, QueueDelayLimit: 100 * sim.Millisecond})
	data := frame(t, 64, 1, 2)
	tx.Send(0, Batch{Data: data, FrameSize: 64, Count: 100_000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Packets < 78_000 || sink.Packets > 82_000 {
		t.Errorf("survived %d of 100000 at 20%% loss", sink.Packets)
	}
}

func TestLosslessLinkHasNoRNG(t *testing.T) {
	e := sim.NewEngine()
	sink := NewSink("rx")
	tx := NewPort("tx", nil)
	l := Wire(e, tx, sink.Port, LinkConfig{})
	if l.rng != nil {
		t.Error("lossless link allocated a loss RNG")
	}
	tx.Send(0, Batch{Data: frame(t, 64, 1, 2), FrameSize: 64, Count: 1000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Packets != 1000 {
		t.Errorf("lossless link dropped packets: %d", sink.Packets)
	}
}

func TestTapCapturesAndForwards(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, 0)
	e := sim.NewEngine()
	tap := NewTap("tap0", w)
	src := NewSink("src")
	dst := NewSink("dst")
	Wire(e, src.Port, tap.In(), LinkConfig{})
	Wire(e, tap.Out(), dst.Port, LinkConfig{})

	data := frame(t, 128, 1, 2)
	for i := 0; i < 5; i++ {
		i := i
		e.At(sim.Time(i)*sim.Time(sim.Millisecond), func(now sim.Time) {
			src.Port.Send(now, Batch{Data: data, FrameSize: 128, Count: 10})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Pass-through intact.
	if dst.Packets != 50 {
		t.Errorf("delivered %d, want 50", dst.Packets)
	}
	if tap.Records != 5 {
		t.Errorf("records = %d, want 5 (one per batch)", tap.Records)
	}
	// The capture parses as a pcap with monotonic timestamps.
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil || len(pkts) != 5 {
		t.Fatalf("capture = %d packets, %v", len(pkts), err)
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Timestamp.Before(pkts[i-1].Timestamp) {
			t.Error("capture timestamps not monotonic")
		}
	}
	if len(pkts[0].Data) != 128 {
		t.Errorf("captured frame = %d bytes", len(pkts[0].Data))
	}
}

func TestTapBidirectional(t *testing.T) {
	e := sim.NewEngine()
	tap := NewTap("tap0", nil) // no writer: pure pass-through
	a := NewSink("a")
	b := NewSink("b")
	Wire(e, a.Port, tap.In(), LinkConfig{})
	Wire(e, tap.Out(), b.Port, LinkConfig{})
	a.Port.Send(0, Batch{Data: frame(t, 64, 1, 2), FrameSize: 64, Count: 3})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	b.Port.Send(e.Now(), Batch{Data: frame(t, 64, 2, 1), FrameSize: 64, Count: 4})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Packets != 3 || a.Packets != 4 {
		t.Errorf("a=%d b=%d, want 4/3", a.Packets, b.Packets)
	}
}

func TestDelayJitterSpreadsDeliveries(t *testing.T) {
	measure := func(jitter sim.Duration) []sim.Duration {
		e := sim.NewEngine()
		sink := NewSink("rx")
		tx := NewPort("tx", nil)
		Wire(e, tx, sink.Port, LinkConfig{
			PropagationDelay: 10 * sim.Microsecond,
			DelayJitterStd:   jitter,
			Seed:             5,
		})
		var delays []sim.Duration
		sink.OnBatch = func(_ sim.Time, b Batch) { delays = append(delays, b.Delay) }
		data := frame(t, 64, 1, 2)
		for i := 0; i < 50; i++ {
			i := i
			e.At(sim.Time(i)*sim.Time(sim.Millisecond), func(now sim.Time) {
				tx.Send(now, Batch{Data: data, FrameSize: 64, Count: 1})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return delays
	}
	clean := measure(0)
	jittered := measure(2 * sim.Microsecond)
	distinct := map[sim.Duration]bool{}
	for _, d := range jittered {
		distinct[d] = true
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
	if len(distinct) < 10 {
		t.Errorf("jittered deliveries only had %d distinct delays", len(distinct))
	}
	cleanDistinct := map[sim.Duration]bool{}
	for _, d := range clean {
		cleanDistinct[d] = true
	}
	if len(cleanDistinct) != 1 {
		t.Errorf("jitter-free link produced %d distinct delays", len(cleanDistinct))
	}
}

func TestDelayJitterDeterministicPerSeed(t *testing.T) {
	run := func() sim.Duration {
		e := sim.NewEngine()
		sink := NewSink("rx")
		tx := NewPort("tx", nil)
		Wire(e, tx, sink.Port, LinkConfig{DelayJitterStd: sim.Microsecond, Seed: 9})
		var got sim.Duration
		sink.OnBatch = func(_ sim.Time, b Batch) { got = b.Delay }
		tx.Send(0, Batch{Data: frame(t, 64, 1, 2), FrameSize: 64, Count: 1})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if run() != run() {
		t.Error("same-seed jitter diverged")
	}
}
